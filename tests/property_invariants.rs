//! Property-based tests over the core invariants the scheme rests on:
//! packet round-tripping, CRC implementations agreeing, variant-field
//! masking, MAC tamper-detection, key-envelope round trips, and replay
//! window monotonicity.
//!
//! Driven by `ib_runtime::check`: cases generate from a deterministic
//! seed (override with `CHECK_SEED=<u64>` to replay a failure), and
//! failing cases shrink before being reported.

use ib_crypto::crc::{crc16_bitwise, crc16_iba, crc32_bitwise, crc32_ieee, crc32_ieee_slice4};
use ib_crypto::mac::{AnyMac, AuthAlgorithm, Mac};
use ib_crypto::toyrsa;
use ib_crypto::umac::Umac;
use ib_mgmt::keymgmt::{KeyEnvelope, SecretKey};
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, QKey, Qpn, VirtualLane};
use ib_runtime::check;
use ib_security::auth::{Authenticator, KeyScope};
use ib_security::replay::ReplayWindow;

const OPCODES: [OpCode; 5] = [
    OpCode::RC_SEND_ONLY,
    OpCode::UD_SEND_ONLY,
    OpCode::RC_RDMA_WRITE_ONLY,
    OpCode::RC_RDMA_READ_REQUEST,
    OpCode::RC_ACKNOWLEDGE,
];

fn build(opcode: OpCode, slid: u16, dlid: u16, pkey: u16, psn: u32, payload: Vec<u8>) -> Packet {
    let mut b = PacketBuilder::new(opcode)
        .slid(Lid(slid))
        .dlid(Lid(dlid))
        .pkey(PKey(pkey))
        .psn(Psn::new(psn));
    if opcode.service.has_deth() {
        b = b.qkey(QKey(psn ^ 0xABCD), Qpn::new(slid as u32));
    }
    if opcode.operation.has_reth() {
        b = b.rdma(0x1000, ib_packet::RKey(77), payload.len() as u32);
    }
    if opcode.operation.has_aeth() {
        b = b.ack(0, psn);
    }
    if opcode.operation.has_payload() {
        b = b.payload(payload);
    }
    b.build()
}

/// Any packet the builder can produce round-trips bit-exactly.
#[test]
fn packet_roundtrip() {
    check::run(
        "packet_roundtrip",
        256,
        |g| {
            (
                *g.choose(&OPCODES),
                g.u16_in(1..100),
                g.u16_in(1..100),
                g.u16_in(0x8000..0x9000),
                g.u32_in(0..0x00FF_FFFF),
                g.bytes(0..1024),
            )
        },
        |(opcode, slid, dlid, pkey, psn, payload)| {
            check::shrink_bytes(payload)
                .into_iter()
                .map(|p| (*opcode, *slid, *dlid, *pkey, *psn, p))
                .collect()
        },
        |&(opcode, slid, dlid, pkey, psn, ref payload)| {
            let pkt = build(opcode, slid, dlid, pkey, psn, payload.clone());
            assert!(pkt.icrc_ok());
            assert!(pkt.vcrc_ok());
            let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
            assert_eq!(parsed, pkt);
        },
    );
}

/// All three CRC-32 implementations agree on arbitrary data, as do the
/// two CRC-16 implementations.
#[test]
fn crc_implementations_agree() {
    check::run(
        "crc_implementations_agree",
        256,
        |g| g.bytes(0..2048),
        |data| check::shrink_bytes(data),
        |data| {
            let reference = crc32_bitwise(data);
            assert_eq!(crc32_ieee(data), reference);
            assert_eq!(crc32_ieee_slice4(data), reference);
            assert_eq!(crc16_iba(data), crc16_bitwise(data));
        },
    );
}

/// The variant fields (VL, Resv8a) never affect the ICRC; every
/// invariant field does.
#[test]
fn icrc_masking_invariants() {
    check::run(
        "icrc_masking_invariants",
        256,
        |g| {
            let payload = g.bytes(1..256);
            let flip_index = g.index(payload.len());
            (g.u8() % 16, g.u8(), payload, flip_index)
        },
        check::no_shrink,
        |&(vl, selector, ref payload, flip_index)| {
            let mut pkt = build(OpCode::RC_SEND_ONLY, 1, 2, 0x8001, 5, payload.clone());
            let base_icrc = pkt.compute_icrc();
            // Variant rewrites: ICRC unchanged.
            pkt.lrh.vl = VirtualLane(vl);
            pkt.bth.resv8a = selector;
            assert_eq!(pkt.compute_icrc(), base_icrc);
            // Invariant flip: ICRC changes.
            pkt.payload[flip_index] ^= 0x01;
            assert_ne!(pkt.compute_icrc(), base_icrc);
        },
    );
}

/// Every keyed MAC detects every single-bit payload flip (probabilistic
/// in principle, but a 2^-32-chance false pass never fires in practice;
/// a failure here means a real bug).
#[test]
fn macs_detect_bit_flips() {
    check::run(
        "macs_detect_bit_flips",
        256,
        |g| {
            let payload = g.bytes(1..512);
            let flip = g.index(payload.len());
            let alg_idx = g.usize_in(1..AuthAlgorithm::ALL.len());
            (g.u64(), g.u64(), payload, flip, alg_idx)
        },
        check::no_shrink,
        |&(seed, nonce, ref payload, flip, alg_idx)| {
            let alg = AuthAlgorithm::ALL[alg_idx];
            let key = SecretKey::from_seed(seed).0;
            let mac = AnyMac::new(alg, &key);
            let tag = mac.tag32(nonce, payload);
            let mut tampered = payload.clone();
            tampered[flip] ^= 1 << (seed % 8);
            assert!(
                !mac.verify(nonce, &tampered, tag),
                "{alg:?} missed flip at {flip}"
            );
            assert!(mac.verify(nonce, payload, tag));
        },
    );
}

/// UMAC's Carter-Wegman structure: same message, different nonces give
/// different tags (pad freshness), and the hash half is nonce-free.
#[test]
fn umac_nonce_freshness() {
    check::run(
        "umac_nonce_freshness",
        256,
        |g| {
            let n1 = g.u64();
            let mut n2 = g.u64();
            if n2 == n1 {
                n2 = n1.wrapping_add(1);
            }
            (g.u64(), n1, n2, g.bytes(0..256))
        },
        check::no_shrink,
        |&(seed, n1, n2, ref msg)| {
            let u = Umac::new(&SecretKey::from_seed(seed).0);
            assert_eq!(u.hash64(msg), u.hash64(msg));
            // Tag difference equals pad difference: t1 ^ t2 independent of msg.
            let d1 = u.tag32(n1, msg) ^ u.tag32(n2, msg);
            let d2 = u.tag32(n1, b"other") ^ u.tag32(n2, b"other");
            assert_eq!(d1, d2);
        },
    );
}

/// Toy-RSA envelopes round-trip arbitrary secrets for arbitrary key
/// pairs.
#[test]
fn envelope_roundtrip() {
    check::run(
        "envelope_roundtrip",
        128,
        |g| (g.u64_in(1..5000), g.u64()),
        |&(k, s)| {
            check::shrink_pair(k, s)
                .into_iter()
                .filter(|&(k, _)| k >= 1)
                .collect()
        },
        |&(key_seed, secret_seed)| {
            let (pk, sk) = toyrsa::generate_keypair(key_seed);
            let secret = SecretKey::from_seed(secret_seed);
            let env = KeyEnvelope::seal(&secret, &pk);
            assert_eq!(env.open(&sk), Some(secret));
        },
    );
}

/// Replay window: any sequence of offers accepts each value at most
/// once.
#[test]
fn replay_window_never_accepts_twice() {
    check::run(
        "replay_window_never_accepts_twice",
        256,
        |g| {
            let len = g.usize_in(1..100);
            let seqs: Vec<u64> = (0..len).map(|_| g.u64_in(0..200)).collect();
            (seqs, g.u32_in(1..64))
        },
        |(seqs, window)| {
            // Shrink by dropping halves of the offer sequence.
            let n = seqs.len();
            let mut out = Vec::new();
            if n > 1 {
                out.push((seqs[..n / 2].to_vec(), *window));
                out.push((seqs[n / 2..].to_vec(), *window));
                out.push((seqs[..n - 1].to_vec(), *window));
            }
            out
        },
        |(seqs, window)| {
            let mut w = ReplayWindow::new(*window);
            let mut accepted = std::collections::HashSet::new();
            for &s in seqs {
                if w.accept(s) {
                    assert!(accepted.insert(s), "sequence {s} accepted twice");
                }
            }
        },
    );
}

/// End-to-end: an authenticated packet round-trips the wire and
/// verifies.
#[test]
fn tagged_packet_wire_invariants() {
    check::run(
        "tagged_packet_wire_invariants",
        256,
        |g| (g.u32_in(0..0xFFFF), g.bytes(1..512)),
        |(psn, payload)| {
            check::shrink_bytes(payload)
                .into_iter()
                .filter(|p| !p.is_empty())
                .map(|p| (*psn, p))
                .collect()
        },
        |&(psn, ref payload)| {
            let pkey = PKey(0x8001);
            let mut auth = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
            auth.keys
                .install_partition_secret(pkey, SecretKey::from_seed(11));
            let mut pkt = build(OpCode::UD_SEND_ONLY, 1, 2, 0x8001, psn, payload.clone());
            auth.tag_packet(&mut pkt).unwrap();
            let wire = pkt.to_bytes();
            let parsed = Packet::parse(&wire).unwrap();
            assert!(auth.verify_packet(&parsed).is_ok());
        },
    );
}

/// Every streaming MAC yields the one-shot tag no matter how the message
/// is sliced into update calls.
#[test]
fn streaming_mac_equals_oneshot_across_splits() {
    check::run(
        "streaming_mac_equals_oneshot_across_splits",
        128,
        |g| {
            let msg = g.bytes(0..2048);
            let cuts: Vec<usize> = (0..g.usize_in(0..8))
                .map(|_| g.index(msg.len() + 1))
                .collect();
            let mut key = [0u8; 16];
            for b in key.iter_mut() {
                *b = g.u8();
            }
            (key, g.u64(), msg, cuts)
        },
        check::no_shrink,
        |&(key, nonce, ref msg, ref cuts)| {
            let mut cuts = cuts.clone();
            cuts.sort_unstable();
            for alg in AuthAlgorithm::ALL {
                let mac = AnyMac::new(alg, &key);
                let expected = mac.tag32(nonce, msg);
                let mut st = mac.stream(nonce);
                let mut prev = 0;
                for &cut in &cuts {
                    st.update(&msg[prev..cut]);
                    prev = cut;
                }
                st.update(&msg[prev..]);
                assert_eq!(
                    st.finalize(),
                    expected,
                    "{} over {} bytes, cuts {:?}",
                    alg.name(),
                    msg.len(),
                    cuts
                );
            }
        },
    );
}

/// The scratch-buffer serialization forms are byte-identical to the
/// allocating ones for every header combination (GRH present or absent,
/// DETH/RETH/AETH per opcode), and the ICRC slice walk concatenates to
/// exactly the materialized ICRC message.
#[test]
fn scratch_serialization_matches_allocating_forms() {
    check::run(
        "scratch_serialization_matches_allocating_forms",
        256,
        |g| {
            (
                *g.choose(&OPCODES),
                g.bool(),
                g.u16_in(1..100),
                g.u16_in(1..100),
                g.u16_in(0x8000..0x9000),
                g.u32_in(0..0x00FF_FFFF),
                g.bytes(0..1024),
            )
        },
        |(opcode, grh, slid, dlid, pkey, psn, payload)| {
            check::shrink_bytes(payload)
                .into_iter()
                .map(|p| (*opcode, *grh, *slid, *dlid, *pkey, *psn, p))
                .collect()
        },
        |&(opcode, grh, slid, dlid, pkey, psn, ref payload)| {
            let mut pkt = build(opcode, slid, dlid, pkey, psn, payload.clone());
            if grh {
                pkt.grh = Some(ib_packet::Grh {
                    sgid: ib_packet::grh::Gid(slid as u128),
                    dgid: ib_packet::grh::Gid(dlid as u128),
                    ..Default::default()
                });
                pkt.seal();
            }
            let mut wire = vec![0xAA; 7]; // stale contents must not leak through
            pkt.write_into(&mut wire);
            assert_eq!(wire, pkt.to_bytes(), "write_into == to_bytes");
            let mut msg = vec![0x55; 3];
            pkt.icrc_message_into(&mut msg);
            assert_eq!(msg, pkt.icrc_message(), "icrc_message_into == icrc_message");
            let mut cat = Vec::new();
            pkt.for_each_icrc_slice(|s| cat.extend_from_slice(s));
            assert_eq!(cat, msg, "slice walk concatenates to the ICRC message");
        },
    );
}

/// Management datagrams round-trip through their 256-byte wire form for
/// arbitrary header fields and attribute payloads, and malformed buffers
/// fail with the right error instead of mis-parsing.
#[test]
fn mad_roundtrip_and_malformed_buffers() {
    use ib_packet::mad::{Mad, Method, MgmtClass, MAD_HEADER_LEN, MAD_LEN};
    use ib_packet::ParseError;

    const CLASSES: [MgmtClass; 2] = [MgmtClass::SubnLid, MgmtClass::SubnAdm];
    const METHODS: [Method; 5] = [
        Method::Get,
        Method::Set,
        Method::GetResp,
        Method::Trap,
        Method::TrapRepress,
    ];

    check::run(
        "mad_roundtrip_and_malformed_buffers",
        256,
        |g| {
            (
                g.index(CLASSES.len()),
                g.index(METHODS.len()),
                g.u64(),
                (g.u64(), g.bytes(0..MAD_LEN - MAD_HEADER_LEN)),
            )
        },
        |(class, method, h, (tid, data))| {
            check::shrink_bytes(data)
                .into_iter()
                .map(|d| (*class, *method, *h, (*tid, d)))
                .collect()
        },
        |&(class, method, h, (tid, ref data))| {
            let mut mad = Mad {
                mgmt_class: CLASSES[class],
                method: METHODS[method],
                status: h as u16,
                transaction_id: tid,
                attribute_id: (h >> 16) as u16,
                attribute_modifier: (h >> 32) as u32,
                data: [0; MAD_LEN - MAD_HEADER_LEN],
            };
            mad.data[..data.len()].copy_from_slice(data);

            // Round trip: every field and the attribute payload survive.
            let bytes = mad.to_bytes();
            assert_eq!(bytes.len(), MAD_LEN);
            let back = Mad::parse(&bytes).expect("well-formed MAD parses");
            assert_eq!(back, mad);

            // Truncation at any shorter length reports Truncated with an
            // honest byte count, never a garbled MAD.
            let cut = (tid % MAD_LEN as u64) as usize;
            match Mad::parse(&bytes[..cut]) {
                Err(ParseError::Truncated { needed, got }) => {
                    assert_eq!(needed, MAD_LEN);
                    assert_eq!(got, cut);
                }
                other => panic!("truncated parse must fail, got {other:?}"),
            }

            // Corrupt class / method bytes are rejected as unknown
            // opcodes rather than aliasing onto a valid enum value.
            let bad_class = 0x42u8 ^ (h as u8 & 0x10);
            let mut b = bytes;
            b[1] = bad_class;
            assert_eq!(Mad::parse(&b), Err(ParseError::UnknownOpCode(bad_class)));
            b[1] = bytes[1];
            b[3] = 0x7F;
            assert_eq!(Mad::parse(&b), Err(ParseError::UnknownOpCode(0x7F)));
        },
    );
}
