//! Integration: RC verbs at the wire level — MTU segmentation and the
//! MAC's coverage of RDMA addressing.
//!
//! Two properties the fig_rdma experiment depends on:
//!
//! * **Segmentation round-trip** — any message length from 0 B to just
//!   past 8 MTUs segments into First/Middle/Last (or Only) packets that
//!   reassemble byte-identically, consuming exactly one MSN per message
//!   no matter how many segments it took.
//! * **RETH under the MAC** — the ICRC-as-MAC input covers the RETH's
//!   virtual address, R_Key and DMA length, so an on-path attacker who
//!   redirects an RDMA WRITE by rewriting its addressing (and dutifully
//!   fixing up the VCRC, as any switch would) is caught by tag
//!   verification at the responder.

use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Qpn, RKey};
use ib_packet::Packet;
use ib_runtime::{Rng, Seed};
use ib_security::ChannelSecurity;
use ib_sim::time::US;
use ib_sim::SimTime;
use ib_transport::{RcConfig, RetransmitMode, SecureRcEndpoint};

const PKEY: PKey = PKey(0x8001);

fn endpoint_pair(mode: RetransmitMode) -> (SecureRcEndpoint, SecureRcEndpoint) {
    let secret = SecretKey::from_seed(7702);
    let cfg = RcConfig {
        retransmit: mode,
        ..RcConfig::default()
    };
    let a = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(1),
        Lid(2),
        Qpn(3),
    );
    let b = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(2),
        Lid(1),
        Qpn(3),
    );
    (a, b)
}

/// Pump a lossless wire between the pair until the sender drains,
/// returning every delivered message in order.
fn pump_until_idle(
    a: &mut SecureRcEndpoint,
    b: &mut SecureRcEndpoint,
    expected: usize,
) -> Vec<Vec<u8>> {
    let mut delivered = Vec::new();
    let mut now: SimTime = 0;
    for _ in 0..10_000 {
        for bytes in a.poll(now) {
            b.handle_wire(now, &bytes);
        }
        delivered.extend(b.take_delivered());
        for bytes in b.poll(now) {
            a.handle_wire(now, &bytes);
        }
        if a.tx_idle() && delivered.len() == expected {
            return delivered;
        }
        now += 10 * US;
    }
    panic!(
        "wire did not drain: {}/{} delivered, tx_idle={}",
        delivered.len(),
        expected,
        a.tx_idle()
    );
}

/// Satellite: random lengths from 0 B to 8 MTUs ± 1 segment, cross the
/// wire, and reassemble byte-identically — one MSN per message.
#[test]
fn segmentation_round_trips_any_length() {
    let mtu = RcConfig::default().mtu;
    for mode in [RetransmitMode::GoBackN, RetransmitMode::SelectiveRepeat] {
        let mut rng = Rng::from_seed(Seed(0x5E63_E27A));
        let mut lengths: Vec<usize> = vec![
            0,
            1,
            mtu - 1,
            mtu,
            mtu + 1,
            2 * mtu,
            8 * mtu - 1,
            8 * mtu,
            8 * mtu + 1,
        ];
        for _ in 0..16 {
            lengths.push(rng.gen_range(0..8 * mtu + 2));
        }

        let (mut a, mut b) = endpoint_pair(mode);
        let posted: Vec<Vec<u8>> = lengths
            .iter()
            .map(|&len| (0..len).map(|_| rng.next_u64() as u8).collect())
            .collect();
        for payload in &posted {
            a.post(payload.clone());
        }

        let delivered = pump_until_idle(&mut a, &mut b, posted.len());
        assert_eq!(delivered, posted, "{mode:?}: byte-identical, in order");
        assert_eq!(
            b.rx_msn(),
            posted.len() as u32,
            "{mode:?}: exactly one MSN per message regardless of segment count"
        );
        assert_eq!(a.retransmits(), 0, "{mode:?}: lossless wire");
    }
}

/// Satellite: every RETH byte is under the MAC. Rewriting the virtual
/// address, R_Key or DMA length of a sealed RDMA WRITE — with the VCRC
/// refreshed so the fabric itself stays happy — must fail verification
/// at the responder and produce no write.
#[test]
fn mutating_any_reth_byte_fails_verification() {
    let payload = b"redirect me if you can".to_vec();
    let (mut a, _) = endpoint_pair(RetransmitMode::GoBackN);
    let make_b = || {
        let (_, mut b) = endpoint_pair(RetransmitMode::GoBackN);
        b.configure_memory(4096, RKey(0xBEEF));
        b
    };
    a.post_write(128, RKey(0xBEEF), payload.clone());
    let wire = a.poll(0);
    assert_eq!(wire.len(), 1, "single-MTU write is one WRITE ONLY packet");

    // Positive control: the untouched packet lands.
    let mut b = make_b();
    b.handle_wire(0, &wire[0]);
    assert_eq!(b.take_write_events(), vec![(128, payload.len() as u32)]);
    assert_eq!(&b.memory()[128..128 + payload.len()], &payload[..]);

    // RETH wire image: virt_addr (8 B) | rkey (4 B) | dma_len (4 B).
    for byte_idx in 0..16 {
        let mut pkt = Packet::parse(&wire[0]).expect("sealed packet parses");
        let reth = pkt.reth.as_mut().expect("WRITE ONLY carries a RETH");
        match byte_idx {
            0..=7 => reth.virt_addr ^= 1 << (8 * (7 - byte_idx)),
            8..=11 => reth.rkey.0 ^= 1 << (8 * (11 - byte_idx)),
            _ => reth.dma_len ^= 1 << (8 * (15 - byte_idx)),
        }
        // The attacker fixes the hop-by-hop VCRC (any switch recomputes
        // it anyway) but cannot forge the keyed tag.
        pkt.vcrc = pkt.compute_vcrc();

        let mut b = make_b();
        b.handle_wire(0, &pkt.to_bytes());
        assert_eq!(
            b.channel().stats.rejected_auth,
            1,
            "RETH byte {byte_idx}: tag must not verify"
        );
        assert!(
            b.take_write_events().is_empty(),
            "RETH byte {byte_idx}: no write may land"
        );
        assert!(
            b.memory().iter().all(|&x| x == 0),
            "RETH byte {byte_idx}: memory untouched"
        );
    }
}
