//! Scheduler-equivalence property: the calendar-queue [`EventQueue`] pops
//! the exact same `(time, payload)` stream as the reference binary-heap
//! [`HeapQueue`] under randomized push/pop interleavings — including
//! same-tick bursts (the determinism tie-break), pushes landing exactly
//! on bucket boundaries, and far-future times that traverse the overflow
//! heap and migrate back onto the wheel.
//!
//! Driven by `ib_runtime::check`: cases generate from a deterministic
//! seed (override with `CHECK_SEED=<u64>` to replay a failure), failing
//! cases shrink before being reported, and counterexamples persist to
//! `tests/corpus/`.

use ib_runtime::check;
use ib_sim::event::{EventQueue, HeapQueue, BUCKET_WIDTH_PS, HORIZON_PS};
use ib_sim::SimTime;

/// One step of an interleaving script.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Schedule at `current floor + delta` (the floor is the last popped
    /// time, so scripts never push into the queue's past).
    Push {
        delta: SimTime,
    },
    Pop,
}

/// Delta families the wheel must handle: same-tick, sub-bucket, exact
/// bucket boundaries, near-horizon, and past-horizon (overflow path).
fn gen_delta(g: &mut check::Gen) -> SimTime {
    match g.u64_in(0..6) {
        0 => 0,
        1 => g.u64_in(1..64),
        2 => BUCKET_WIDTH_PS * g.u64_in(0..3),
        3 => g.u64_in(0..4 * BUCKET_WIDTH_PS),
        4 => HORIZON_PS - g.u64_in(0..2 * BUCKET_WIDTH_PS),
        _ => HORIZON_PS + g.u64_in(0..3 * HORIZON_PS),
    }
}

fn gen_script(g: &mut check::Gen) -> Vec<Op> {
    let len = g.usize_in(1..200);
    (0..len)
        .map(|_| {
            // Push-biased so the queue builds depth worth popping through.
            if g.u64_in(0..3) == 0 {
                Op::Pop
            } else {
                Op::Push {
                    delta: gen_delta(g),
                }
            }
        })
        .collect()
}

/// Script shrinking: halves, then drop-one — the standard list shrinker,
/// which preserves op order (the property is order-sensitive).
fn shrink_script(script: &[Op]) -> Vec<Vec<Op>> {
    let mut out = Vec::new();
    let n = script.len();
    if n > 1 {
        out.push(script[..n / 2].to_vec());
        out.push(script[n / 2..].to_vec());
    }
    for i in 0..n.min(32) {
        let mut v = script.to_vec();
        v.remove(i);
        out.push(v);
    }
    out
}

/// The one shape both schedulers expose to the script runner.
trait Queue {
    fn push(&mut self, at: SimTime, payload: u64);
    fn pop(&mut self) -> Option<(SimTime, u64)>;
}

impl Queue for EventQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        EventQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        EventQueue::pop(self)
    }
}

impl Queue for HeapQueue<u64> {
    fn push(&mut self, at: SimTime, payload: u64) {
        HeapQueue::push(self, at, payload);
    }
    fn pop(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::pop(self)
    }
}

/// Execute `script` against one scheduler; returns the popped
/// `(time, payload)` stream plus a full drain at the end. Payloads are
/// the push counter, so the stream exposes tie-break order, not just
/// times.
fn execute<Q: Queue>(script: &[Op], q: &mut Q) -> Vec<(SimTime, u64)> {
    let mut popped = Vec::new();
    let mut floor: SimTime = 0;
    let mut tag: u64 = 0;
    for op in script {
        match *op {
            Op::Push { delta } => {
                q.push(floor + delta, tag);
                tag += 1;
            }
            Op::Pop => {
                if let Some((t, p)) = q.pop() {
                    floor = t;
                    popped.push((t, p));
                }
            }
        }
    }
    while let Some(item) = q.pop() {
        popped.push(item);
    }
    popped
}

/// The equivalence property itself — the contract every figure's
/// byte-identity rests on.
#[test]
fn calendar_queue_matches_heap_reference() {
    check::run(
        "calendar_queue_matches_heap_reference",
        256,
        gen_script,
        |script| shrink_script(script),
        |script| {
            let mut calendar: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapQueue<u64> = HeapQueue::new();
            let a = execute(script, &mut calendar);
            let b = execute(script, &mut heap);
            assert_eq!(
                a, b,
                "calendar and heap schedulers diverged on the same script"
            );
            assert!(calendar.is_empty() && heap.is_empty());
        },
    );
}

/// Dense same-tick bursts: every event at one of two adjacent times, so
/// the pop stream is decided almost entirely by the insertion-seq
/// tie-break.
#[test]
fn same_tick_bursts_match_heap_reference() {
    check::run(
        "same_tick_bursts_match_heap_reference",
        128,
        |g| {
            let base = g.u64_in(0..2 * HORIZON_PS);
            let len = g.usize_in(1..100);
            (0..len)
                .map(|_| {
                    if g.u64_in(0..4) == 0 {
                        Op::Pop
                    } else {
                        Op::Push {
                            delta: base % 7, // a couple of clustered values
                        }
                    }
                })
                .collect::<Vec<Op>>()
        },
        |script| shrink_script(script),
        |script| {
            let mut calendar: EventQueue<u64> = EventQueue::new();
            let mut heap: HeapQueue<u64> = HeapQueue::new();
            let a = execute(script, &mut calendar);
            let b = execute(script, &mut heap);
            assert_eq!(a, b, "tie-break order diverged");
        },
    );
}
