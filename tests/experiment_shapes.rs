//! Scaled-down versions of the paper's experiments, run as integration
//! tests: each asserts the qualitative *shape* the paper reports (who
//! wins, what explodes, what stays flat) on shortened, seed-averaged
//! simulations so the suite stays fast. The bench binaries run the
//! full-length versions.

use ib_mgmt::enforcement::EnforcementKind;
use ib_security::experiments::{
    fig1_config, fig5_config, fig6_config, run_many, run_seed_averaged,
};
use ib_sim::config::{AuthMode, SimConfig};
use ib_sim::time::{MS, US};

fn quick(mut cfg: SimConfig) -> SimConfig {
    cfg.duration = 3 * MS;
    cfg.warmup = 300 * US;
    cfg
}

/// Figure 1's headline: "even one attacker can decrease network
/// performance significantly" — attack traffic floods through to victims
/// and best-effort queuing grows.
#[test]
fn fig1_attack_reaches_victims_and_hurts() {
    let base = run_seed_averaged(&quick(fig1_config(0)), 2);
    let attacked = run_seed_averaged(&quick(fig1_config(1)), 2);
    // Attack traffic reached the victims (stock IBA blocks only at HCA).
    assert!(attacked.hca_blocked > 0);
    // And queuing did not improve (averaged over placements it grows).
    assert!(
        attacked.be_queuing_us > base.be_queuing_us * 0.9,
        "one attacker: BE queuing {} -> {}",
        base.be_queuing_us,
        attacked.be_queuing_us
    );
}

/// Figure 1's main effect: four attackers multiply best-effort queuing
/// while network latency grows far less.
#[test]
fn fig1_queuing_explodes_latency_does_not() {
    // The fig1 operating point sits at the fabric's knee; short runs need
    // extra seeds before the attack signal clears placement variance.
    let base = run_seed_averaged(&quick(fig1_config(0)), 6);
    let worst = run_seed_averaged(&quick(fig1_config(4)), 6);
    assert!(
        worst.be_queuing_us > base.be_queuing_us * 2.0,
        "4 attackers: {} -> {}",
        base.be_queuing_us,
        worst.be_queuing_us
    );
    let q_growth = worst.be_queuing_us / base.be_queuing_us.max(1e-9);
    let n_growth = worst.be_network_us / base.be_network_us.max(1e-9);
    assert!(
        q_growth > n_growth,
        "queuing x{q_growth:.1} vs latency x{n_growth:.1}"
    );
}

/// Figure 1(a) vs (b): realtime's VL priority shields it relative to
/// best-effort.
#[test]
fn fig1_realtime_shielded_relative_to_best_effort() {
    let r = run_seed_averaged(&quick(fig1_config(4)), 2);
    assert!(
        r.be_queuing_us >= r.rt_queuing_us,
        "BE {} vs RT {}",
        r.be_queuing_us,
        r.rt_queuing_us
    );
    assert!(
        r.be_network_us >= r.rt_network_us,
        "BE latency {} vs RT latency {}",
        r.be_network_us,
        r.rt_network_us
    );
}

/// Figure 5 with a full-probability attack (shape amplified for the short
/// run): every filtering method beats No-Filtering.
#[test]
fn fig5_filtering_ordering_under_sustained_attack() {
    let mk = |kind| {
        let mut cfg = quick(fig5_config(0.5, kind));
        cfg.attack_probability = 1.0;
        cfg
    };
    let points: Vec<_> = [
        EnforcementKind::NoFiltering,
        EnforcementKind::Dpt,
        EnforcementKind::If,
        EnforcementKind::Sif,
    ]
    .into_iter()
    .map(|k| run_seed_averaged(&mk(k), 2))
    .collect();
    let total: Vec<f64> = points
        .iter()
        .map(|p| p.legit_queuing_us + p.legit_network_us)
        .collect();
    let (nf, dpt, iff, sif) = (total[0], total[1], total[2], total[3]);
    assert!(dpt < nf, "DPT {dpt} must beat No-Filtering {nf}");
    assert!(iff < nf, "IF {iff} must beat No-Filtering {nf}");
    assert!(sif < nf, "SIF {sif} must beat No-Filtering {nf}");
    // DPT and IF never let an invalid packet through; SIF leaks until the
    // trap loop closes.
    assert_eq!(points[1].hca_blocked, 0);
    assert_eq!(points[2].hca_blocked, 0);
    assert!(points[3].hca_blocked > 0);
    assert!(points[3].filter_drops > 0);
}

/// §6's SIF observation: with rare attacks (the paper's 1 %), SIF pays
/// (almost) no lookup cycles, unlike DPT and IF which pay on every packet.
#[test]
fn fig5_sif_lookup_economy() {
    let reports = run_many(vec![
        quick(fig5_config(0.5, EnforcementKind::Dpt)),
        quick(fig5_config(0.5, EnforcementKind::If)),
        quick(fig5_config(0.5, EnforcementKind::Sif)),
    ]);
    let per_packet: Vec<f64> = reports
        .iter()
        .map(|r| r.lookup_cycles as f64 / r.generated.max(1) as f64)
        .collect();
    assert!(
        per_packet[0] > per_packet[1],
        "DPT {} > IF {}",
        per_packet[0],
        per_packet[1]
    );
    assert!(
        per_packet[2] < per_packet[1] * 0.5,
        "SIF {} must be well below IF {}",
        per_packet[2],
        per_packet[1]
    );
}

/// Figure 6: With-Key vs No-Key differ only marginally, for both
/// key-management levels, at a moderate load.
#[test]
fn fig6_auth_overhead_marginal() {
    let none = run_seed_averaged(&quick(fig6_config(0.4, AuthMode::None)), 2);
    let part = run_seed_averaged(&quick(fig6_config(0.4, AuthMode::PartitionLevel)), 2);
    let qp = run_seed_averaged(&quick(fig6_config(0.4, AuthMode::QpLevel)), 2);
    let total =
        |p: &ib_security::experiments::AveragedPoint| p.legit_queuing_us + p.legit_network_us;
    // Partition-level: secrets pre-distributed, overhead ~ one cycle/msg.
    assert!(
        (total(&part) - total(&none)).abs() < 1.0,
        "partition-level overhead: {} vs {}",
        total(&part),
        total(&none)
    );
    // QP-level: plus one RTT per pair, still marginal on average.
    assert!(
        total(&qp) - total(&none) < 5.0,
        "QP-level overhead: {} vs {}",
        total(&qp),
        total(&none)
    );
    assert!(
        total(&qp) + 1e-9 >= total(&none),
        "auth cannot speed things up: {} vs {}",
        total(&qp),
        total(&none)
    );
}

/// Determinism across thread-parallel sweeps: the same config in two
/// different batches yields identical statistics.
#[test]
fn sweeps_are_reproducible() {
    let a = run_many(vec![
        quick(fig1_config(2)),
        quick(fig5_config(0.4, EnforcementKind::Sif)),
    ]);
    let b = run_many(vec![
        quick(fig5_config(0.4, EnforcementKind::Sif)),
        quick(fig1_config(2)),
    ]);
    assert_eq!(a[0].generated, b[1].generated);
    assert_eq!(a[1].generated, b[0].generated);
    assert_eq!(a[0].hca_blocked, b[1].hca_blocked);
    assert!((a[1].legit_queuing_mean() - b[0].legit_queuing_mean()).abs() < 1e-12);
}
