//! Corpus-backed equivalence properties for the vectorized datapath.
//!
//! Every dispatched kernel — CRC-32 slicing/folding, the NH SSE2/AVX2
//! lanes and the 4-buffer lockstep variant, the GHASH multipliers, the
//! AES-NI block batches, and the AEAD arm built on all of them — must be
//! **byte-identical** to its portable scalar oracle for arbitrary
//! message lengths (0–9000 B) and arbitrary split points. This is the
//! scalar-fallback guarantee DESIGN.md's "SIMD datapath" section
//! promises, enforced over random corpora with persistent failure
//! replay (`ib_runtime::check`): any counterexample ever found is
//! re-checked on every future run before new random exploration.
//!
//! On hosts without the CPU features (or under `IB_SIMD=off`) the
//! dispatched paths *are* the scalar paths and these properties pin the
//! dispatch plumbing instead — they are meaningful in both worlds.

use ib_crypto::aes::Aes128;
use ib_crypto::mac::{AnyMac, AuthAlgorithm, Mac};
use ib_crypto::simd::{gf128, nh};
use ib_crypto::{AesGcm32, Crc32, Umac};
use ib_runtime::check;

/// Exclusive length bound: past the largest (jumbo-ish) MTU the paper's
/// experiments use, and far past every kernel's widest stride.
const MAX_LEN: usize = 9001;

#[test]
fn crc_kernels_match_bitwise_reference() {
    check::run(
        "simd-eq: crc32 slice4/slice8/auto == bitwise, any split",
        64,
        |g| (g.bytes(0..MAX_LEN), g.u64()),
        |(b, s)| {
            check::shrink_bytes(b)
                .into_iter()
                .map(|b| (b, *s))
                .collect()
        },
        |(bytes, split)| {
            let want = ib_crypto::crc::crc32_bitwise(bytes);
            assert_eq!(ib_crypto::crc32_ieee(bytes), want, "table kernel");
            assert_eq!(Crc32::new().update_slice4(bytes).finalize(), want);
            assert_eq!(Crc32::new().update_slice8(bytes).finalize(), want);
            assert_eq!(Crc32::new().update_auto(bytes).finalize(), want);
            // Streaming through the dispatched kernel must fold the
            // running state across any split identically.
            let cut = (*split as usize) % (bytes.len() + 1);
            let mut c = Crc32::new();
            c.update_auto(&bytes[..cut]);
            c.update_auto(&bytes[cut..]);
            assert_eq!(c.finalize(), want, "split at {cut}");
        },
    );
}

#[test]
fn nh_lanes_match_scalar() {
    check::run(
        "simd-eq: nh dispatched lane == scalar, any pair count",
        64,
        |g| {
            let pairs = g.usize_in(0..129); // 0..=1024 bytes, one NH chunk
            let data = g.bytes(pairs * 8..pairs * 8 + 1);
            let keys: Vec<u32> = (0..pairs * 2).map(|_| g.u64() as u32).collect();
            (data, keys, g.u64())
        },
        check::no_shrink,
        |(data, keys, sum)| {
            assert_eq!(
                nh::nh_pairs(*sum, keys, data),
                nh::nh_pairs_scalar(*sum, keys, data),
                "{} pairs",
                data.len() / 8
            );
        },
    );
    check::run(
        "simd-eq: nh x4 lockstep == 4 independent scalars",
        48,
        |g| {
            let bufs: Vec<Vec<u8>> = (0..4).map(|_| g.bytes(0..1025)).collect();
            let min = bufs.iter().map(|b| b.len()).min().unwrap();
            let len = g.usize_in(0..min / 8 + 1) * 8;
            let keys: Vec<u32> = (0..256).map(|_| g.u64() as u32).collect();
            let sums = [g.u64(), g.u64(), g.u64(), g.u64()];
            (bufs, keys, len, sums)
        },
        check::no_shrink,
        |(bufs, keys, len, sums)| {
            let b = [&bufs[0][..], &bufs[1][..], &bufs[2][..], &bufs[3][..]];
            let got = nh::nh_pairs_x4(*sums, keys, b, *len);
            for (j, lane) in got.iter().enumerate() {
                let want = nh::nh_pairs_scalar(sums[j], &keys[..len / 4], &b[j][..*len]);
                assert_eq!(*lane, want, "lane {j} over {len} bytes");
            }
        },
    );
}

#[test]
fn ghash_multipliers_match() {
    check::run(
        "simd-eq: gf128 clmul/table == shift-and-xor reference",
        128,
        |g| (g.u64(), g.u64(), g.u64(), g.u64()),
        check::no_shrink,
        |&(x0, x1, h0, h1)| {
            let x = (x0 as u128) | ((x1 as u128) << 64);
            let mut h_block = [0u8; 16];
            h_block[..8].copy_from_slice(&h0.to_be_bytes());
            h_block[8..].copy_from_slice(&h1.to_be_bytes());
            let key = gf128::GhashKey::new(&h_block);
            let want = gf128::mul_scalar(x, gf128::from_block(&h_block));
            assert_eq!(key.mul_table(x), want, "Shoup table");
            assert_eq!(key.mul(x), want, "dispatched");
        },
    );
}

#[test]
fn aes_block_batches_match_table_implementation() {
    check::run(
        "simd-eq: aes-ni single/quad/octet == FIPS 197 tables",
        48,
        |g| {
            let key: [u8; 16] = std::array::from_fn(|_| g.u8());
            let blocks: Vec<[u8; 16]> = (0..8).map(|_| std::array::from_fn(|_| g.u8())).collect();
            (key, blocks)
        },
        check::no_shrink,
        |(key, blocks)| {
            let aes = Aes128::new(key);
            let soft: Vec<[u8; 16]> = blocks
                .iter()
                .map(|b| {
                    let mut s = *b;
                    aes.encrypt_block_soft(&mut s);
                    s
                })
                .collect();
            let mut one = blocks[0];
            aes.encrypt_block(&mut one);
            assert_eq!(one, soft[0], "single dispatched block");
            let mut quad: [[u8; 16]; 4] = std::array::from_fn(|i| blocks[i]);
            aes.encrypt_blocks(&mut quad);
            assert_eq!(&quad[..], &soft[..4], "quad batch");
            let mut octet: [[u8; 16]; 8] = std::array::from_fn(|i| blocks[i]);
            aes.encrypt_blocks(&mut octet);
            assert_eq!(&octet[..], &soft[..], "octet batch");
        },
    );
}

#[test]
fn umac_paths_match_scalar_oracle() {
    check::run(
        "simd-eq: umac one-shot/stream/x4 == scalar oracle",
        32,
        |g| {
            let key: [u8; 16] = std::array::from_fn(|_| g.u8());
            let msg = g.bytes(0..MAX_LEN);
            let cuts: Vec<u64> = (0..g.usize_in(0..6)).map(|_| g.u64()).collect();
            (key, msg, cuts, g.u64())
        },
        check::no_shrink,
        |(key, msg, cuts, nonce)| {
            let u = Umac::new(key);
            let want = u.tag32_scalar(*nonce, msg);
            assert_eq!(u.hash64(msg), u.hash64_scalar(msg), "hash64");
            assert_eq!(u.tag32(*nonce, msg), want, "one-shot");
            // Streaming across arbitrary split points.
            let mut splits: Vec<usize> =
                cuts.iter().map(|&c| c as usize % (msg.len() + 1)).collect();
            splits.sort_unstable();
            let mut s = u.stream(*nonce);
            let mut prev = 0;
            for &c in &splits {
                s.update(&msg[prev..c]);
                prev = c;
            }
            s.update(&msg[prev..]);
            assert_eq!(s.finalize(), want, "stream splits {splits:?}");
            // 4-lane lockstep over distinct-length suffixes.
            let q = msg.len() / 4;
            let msgs = [&msg[..], &msg[q..], &msg[q * 2..], &msg[q * 3..]];
            let nonces = [*nonce, nonce ^ 1, nonce ^ 2, nonce ^ 3];
            let got = u.tag32_x4(nonces, msgs);
            for (j, tag) in got.iter().enumerate() {
                assert_eq!(*tag, u.tag32_scalar(nonces[j], msgs[j]), "x4 lane {j}");
            }
        },
    );
}

#[test]
fn mac_stream_and_x4_match_one_shot_every_algorithm() {
    check::run(
        "simd-eq: MacStream splits + x4 == one-shot, every algorithm",
        16,
        |g| {
            let key: [u8; 16] = std::array::from_fn(|_| g.u8());
            let msg = g.bytes(0..4097);
            let cuts: Vec<u64> = (0..g.usize_in(0..5)).map(|_| g.u64()).collect();
            (key, msg, cuts, g.u64())
        },
        check::no_shrink,
        |(key, msg, cuts, nonce)| {
            for alg in AuthAlgorithm::ALL {
                let mac = AnyMac::new(alg, key);
                let want = mac.tag32(*nonce, msg);
                let mut splits: Vec<usize> =
                    cuts.iter().map(|&c| c as usize % (msg.len() + 1)).collect();
                splits.sort_unstable();
                let mut s = mac.stream(*nonce);
                let mut prev = 0;
                for &c in &splits {
                    s.update(&msg[prev..c]);
                    prev = c;
                }
                s.update(&msg[prev..]);
                assert_eq!(s.finalize(), want, "{} stream {splits:?}", alg.name());
                let q = msg.len() / 4;
                let msgs = [&msg[..], &msg[q..], &msg[q * 2..], &msg[q * 3..]];
                let nonces = [*nonce, nonce ^ 1, nonce ^ 2, nonce ^ 3];
                let got = mac.tag32_x4(nonces, msgs);
                for (j, tag) in got.iter().enumerate() {
                    assert_eq!(*tag, mac.tag32(nonces[j], msgs[j]), "{} x4 {j}", alg.name());
                }
            }
        },
    );
}

#[test]
fn aead_round_trips_and_rejects_tampering() {
    check::run(
        "simd-eq: aead seal/open deterministic round-trip, tamper reject",
        48,
        |g| {
            let key: [u8; 16] = std::array::from_fn(|_| g.u8());
            (key, g.u64(), g.bytes(0..64), g.bytes(0..MAX_LEN), g.u64())
        },
        check::no_shrink,
        |(key, nonce, aad, data, tamper)| {
            let aead = AesGcm32::new(key);
            let mut sealed = data.clone();
            let tag = aead.seal(*nonce, aad, &mut sealed);
            let mut sealed2 = data.clone();
            assert_eq!(
                aead.seal(*nonce, aad, &mut sealed2),
                tag,
                "deterministic tag"
            );
            assert_eq!(sealed, sealed2, "deterministic ciphertext");
            let mut opened = sealed.clone();
            assert!(aead.open(*nonce, aad, &mut opened, tag), "round trip");
            assert_eq!(&opened, data, "decrypts to the plaintext");
            let mut intact = sealed.clone();
            assert!(!aead.open(*nonce, aad, &mut intact, tag ^ 1), "bad tag");
            assert_eq!(intact, sealed, "buffer untouched on failure");
            if !sealed.is_empty() {
                let mut forged = sealed.clone();
                let i = *tamper as usize % forged.len();
                forged[i] ^= 0x40;
                assert!(
                    !aead.open(*nonce, aad, &mut forged, tag),
                    "flipped ciphertext byte {i}"
                );
            }
        },
    );
}
