//! Routing soundness property over *randomly generated* fabric
//! instances: for any mesh / fat-tree / dragonfly the generators can
//! produce, and any flow hash, every route must be connected (reaches the
//! destination's host port), loop-free (never revisits a switch), and
//! diameter-bounded — the `ib_sim::topology::conformance` invariants,
//! driven here across the parameter space instead of the handful of
//! fixed instances the unit tests pin.
//!
//! Driven by `ib_runtime::check`: cases generate from a deterministic
//! seed (override with `CHECK_SEED=<u64>` to replay a failure), failing
//! cases shrink toward a minimal instance, and counterexamples persist
//! to `tests/corpus/`.

use ib_runtime::check;
use ib_sim::topology::conformance;
use ib_sim::{Dragonfly, FatTree, MeshTopology, Topology};

/// One generated fabric instance plus the flow hashes to probe its
/// multi-path spread with.
#[derive(Debug, Clone)]
struct Case {
    kind: Kind,
    hashes: Vec<u64>,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    Mesh {
        dim: usize,
    },
    FatTree {
        k: usize,
    },
    Dragonfly {
        a: usize,
        p: usize,
        h: usize,
        valiant: bool,
    },
}

impl Kind {
    fn build(self) -> Box<dyn Topology> {
        match self {
            Kind::Mesh { dim } => Box::new(MeshTopology::new(dim)),
            Kind::FatTree { k } => Box::new(FatTree::new(k)),
            Kind::Dragonfly { a, p, h, valiant } => Box::new(Dragonfly::new(a, p, h, valiant)),
        }
    }
}

fn gen_case(g: &mut check::Gen) -> Case {
    let kind = match g.u64_in(0..3) {
        0 => Kind::Mesh {
            dim: g.usize_in(1..9),
        },
        // Even arities only; k = 10 → 250 hosts keeps the full
        // reachability sweep affordable.
        1 => Kind::FatTree {
            k: 2 * g.usize_in(1..6),
        },
        _ => Kind::Dragonfly {
            a: g.usize_in(1..6),
            p: g.usize_in(1..5),
            h: g.usize_in(1..5),
            valiant: g.bool(),
        },
    };
    let hashes = (0..g.usize_in(1..9)).map(|_| g.u64()).collect();
    Case { kind, hashes }
}

/// Shrink toward the smallest instance that still fails: step each
/// parameter down, then thin the probe hashes.
fn shrink_case(c: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    let mut kinds = Vec::new();
    match c.kind {
        Kind::Mesh { dim } if dim > 1 => kinds.push(Kind::Mesh { dim: dim - 1 }),
        Kind::FatTree { k } if k > 2 => kinds.push(Kind::FatTree { k: k - 2 }),
        Kind::Dragonfly { a, p, h, valiant } => {
            if a > 1 {
                kinds.push(Kind::Dragonfly {
                    a: a - 1,
                    p,
                    h,
                    valiant,
                });
            }
            if p > 1 {
                kinds.push(Kind::Dragonfly {
                    a,
                    p: p - 1,
                    h,
                    valiant,
                });
            }
            if h > 1 {
                kinds.push(Kind::Dragonfly {
                    a,
                    p,
                    h: h - 1,
                    valiant,
                });
            }
            if valiant {
                kinds.push(Kind::Dragonfly {
                    a,
                    p,
                    h,
                    valiant: false,
                });
            }
        }
        _ => {}
    }
    for kind in kinds {
        out.push(Case {
            kind,
            hashes: c.hashes.clone(),
        });
    }
    if c.hashes.len() > 1 {
        out.push(Case {
            kind: c.kind,
            hashes: c.hashes[..c.hashes.len() / 2].to_vec(),
        });
    }
    out
}

#[test]
fn generated_fabrics_route_soundly() {
    check::run(
        "topology_routing::generated_fabrics_route_soundly",
        96,
        gen_case,
        shrink_case,
        |case| {
            let t = case.kind.build();
            let t: &dyn Topology = &*t;
            conformance::peers_are_symmetric(t);
            conformance::hosts_attach_uniquely(t);
            conformance::lids_round_trip(t);
            let n = t.num_nodes();
            if n * n * case.hashes.len() <= 200_000 {
                // Small instance: every (src, dst, hash) triple.
                conformance::routing_reaches_everyone(t, &case.hashes);
            } else {
                // Big instance: a deterministic sample of pairs per hash
                // (stride chosen coprime-ish with n to spread sources).
                for (i, &h) in case.hashes.iter().enumerate() {
                    let stride = (n / 7).max(1) | 1;
                    let mut src = (i * 13) % n;
                    for _ in 0..64 {
                        let dst = (src + stride) % n;
                        if src != dst {
                            let hops = conformance::route_is_sound(t, src, dst, h);
                            assert!(
                                hops <= t.diameter(),
                                "{}: {src}->{dst} took {hops} hops, diameter {}",
                                t.name(),
                                t.diameter()
                            );
                        }
                        src = (src + stride + 1) % n;
                    }
                }
            }
        },
    );
}

/// The ECMP/Valiant hash steers paths but must never steer them apart
/// for the *same* flow: route choice is a pure function of the hash.
#[test]
fn path_choice_is_hash_deterministic() {
    check::run(
        "topology_routing::path_choice_is_hash_deterministic",
        48,
        gen_case,
        shrink_case,
        |case| {
            let t = case.kind.build();
            let n = t.num_nodes();
            for &h in &case.hashes {
                let (src, dst) = ((h as usize) % n, (h as usize >> 16) % n);
                if src == dst {
                    continue;
                }
                let a = conformance::route_is_sound(&*t, src, dst, h);
                let b = conformance::route_is_sound(&*t, src, dst, h);
                assert_eq!(a, b, "{}: hop count must be stable", t.name());
                assert_eq!(
                    t.hops_on_path(src, dst, h),
                    a,
                    "{}: hops_on_path agrees with the conformance walk",
                    t.name()
                );
            }
        },
    );
}
