//! The PR's zero-allocation claim, enforced: once caches, scratch
//! buffers, and the endpoint's buffer pool are warm, the steady-state
//! tag / verify / seal / send paths perform **no heap allocation at
//! all** — counted by a wrapping global allocator, not argued from
//! inspection.
//!
//! Everything lives in a single `#[test]` so no sibling test thread can
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Psn, Qpn};
use ib_packet::{OpCode, Packet, PacketBuilder};
use ib_security::{Admit, Authenticator, ChannelSecurity, KeyScope, SecureChannel};
use ib_transport::{RcConfig, SecureRcEndpoint};

/// Counts allocation events (alloc + realloc; frees are irrelevant to
/// the per-packet claim) on top of the system allocator.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Allocation events across `f`, after `f` already ran once to warm up.
fn steady_state_allocs(mut f: impl FnMut()) -> u64 {
    f(); // warm: caches fill, buffers reach steady capacity
    f();
    let before = allocs();
    f();
    allocs() - before
}

const PKEY: PKey = PKey(0x8001);
const ROUNDS: u32 = 8;

fn data_packet(psn: u32, len: usize) -> Packet {
    PacketBuilder::new(OpCode::RC_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKEY)
        .dest_qp(Qpn(7))
        .psn(Psn(psn))
        .payload(vec![0x5A; len])
        .build()
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    // --- scratch-buffer serialization -------------------------------
    let pkt = data_packet(42, 512);
    let mut wire = Vec::new();
    let mut msg = Vec::new();
    let n = steady_state_allocs(|| {
        for _ in 0..ROUNDS {
            pkt.write_into(&mut wire);
            pkt.icrc_message_into(&mut msg);
        }
    });
    assert_eq!(n, 0, "write_into/icrc_message_into with warm buffers");

    // --- authenticator tag + verify, every algorithm ----------------
    for alg in &AuthAlgorithm::ALL[1..] {
        let mut auth = Authenticator::new(*alg, KeyScope::Partition);
        auth.keys
            .install_partition_secret(PKEY, SecretKey::from_seed(7));
        let mut pkt = data_packet(100, 512);
        let n = steady_state_allocs(|| {
            for _ in 0..ROUNDS {
                auth.tag_packet(&mut pkt).unwrap();
                auth.verify_packet(&pkt).unwrap();
            }
        });
        assert_eq!(n, 0, "tag+verify steady state for {}", alg.name());
    }

    // --- channel seal + admit ---------------------------------------
    let secret = SecretKey::from_seed(11);
    let tx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut rx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut pkt = data_packet(0, 512);
    let mut psn = 0u32;
    let n = steady_state_allocs(|| {
        for _ in 0..ROUNDS {
            pkt.bth.psn = Psn(psn);
            psn += 1;
            tx.seal(&mut pkt).unwrap();
            assert!(matches!(rx.admit(&pkt), Ok(Admit::Fresh)));
        }
    });
    assert_eq!(n, 0, "channel seal+admit steady state");

    // --- endpoint send path (templates + buffer pool) ---------------
    let cfg = RcConfig {
        ack_coalesce: 1,
        ..RcConfig::default()
    };
    let mut a = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(1),
        Lid(2),
        Qpn(3),
    );
    let mut b = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(2),
        Lid(1),
        Qpn(3),
    );
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut now = 0;
    // Warm cycles: pool fills with recycled wire buffers, the in-flight
    // queue reaches capacity, ACKs clear it again.
    for _ in 0..2 {
        for i in 0..ROUNDS {
            a.post(vec![i as u8; 256]);
        }
        a.poll_into(now, &mut out);
        for bytes in out.drain(..) {
            b.handle_wire(now, &bytes);
            a.recycle(bytes);
        }
        b.take_delivered();
        b.poll_into(now, &mut out);
        for ack in out.drain(..) {
            a.handle_wire(now, &ack);
            b.recycle(ack);
        }
        now += 1000;
    }
    // Payload buffers are the caller's input — they exist before the
    // measured region, like application data would.
    let payloads: Vec<Vec<u8>> = (0..ROUNDS).map(|i| vec![i as u8; 256]).collect();
    let before = allocs();
    for p in payloads {
        a.post(p);
    }
    a.poll_into(now, &mut out);
    let n = allocs() - before;
    assert_eq!(out.len(), ROUNDS as usize, "whole burst fits the window");
    assert_eq!(n, 0, "endpoint post+poll_into steady state");
}
