//! The PR's zero-allocation claim, enforced: once caches, scratch
//! buffers, and the endpoint's buffer pool are warm, the steady-state
//! tag / verify / seal / send paths perform **no heap allocation at
//! all** — counted by a wrapping global allocator, not argued from
//! inspection.
//!
//! Everything lives in a single `#[test]` so no sibling test thread can
//! allocate concurrently and pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Psn, Qpn};
use ib_packet::{OpCode, Packet, PacketBuilder};
use ib_security::{Admit, Authenticator, ChannelSecurity, KeyScope, SecureChannel};
use ib_transport::{RcConfig, SecureRcEndpoint};

/// Counts allocation events (alloc + realloc; frees are irrelevant to
/// the per-packet claim) on top of the system allocator.
struct CountingAlloc;

static ALLOC_EVENTS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_EVENTS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOC_EVENTS.load(Ordering::Relaxed)
}

/// Allocation events across `f`, after `f` already ran once to warm up.
/// Minimum over three measured passes: the claim is that steady state
/// *requires* no allocation, so one clean pass proves it — the min
/// screens out ambient process noise (lazy runtime/TLS initialization
/// outside the code under test) hitting the global counter.
fn steady_state_allocs(mut f: impl FnMut()) -> u64 {
    f(); // warm: caches fill, buffers reach steady capacity
    f();
    (0..3)
        .map(|_| {
            let before = allocs();
            f();
            allocs() - before
        })
        .min()
        .unwrap()
}

const PKEY: PKey = PKey(0x8001);
const ROUNDS: u32 = 8;

fn data_packet(psn: u32, len: usize) -> Packet {
    PacketBuilder::new(OpCode::RC_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKEY)
        .dest_qp(Qpn(7))
        .psn(Psn(psn))
        .payload(vec![0x5A; len])
        .build()
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    // --- scratch-buffer serialization -------------------------------
    let pkt = data_packet(42, 512);
    let mut wire = Vec::new();
    let mut msg = Vec::new();
    let n = steady_state_allocs(|| {
        for _ in 0..ROUNDS {
            pkt.write_into(&mut wire);
            pkt.icrc_message_into(&mut msg);
        }
    });
    assert_eq!(n, 0, "write_into/icrc_message_into with warm buffers");

    // --- authenticator tag + verify, every algorithm ----------------
    for alg in &AuthAlgorithm::ALL[1..] {
        let mut auth = Authenticator::new(*alg, KeyScope::Partition);
        auth.keys
            .install_partition_secret(PKEY, SecretKey::from_seed(7));
        let mut pkt = data_packet(100, 512);
        let n = steady_state_allocs(|| {
            for _ in 0..ROUNDS {
                auth.tag_packet(&mut pkt).unwrap();
                auth.verify_packet(&pkt).unwrap();
            }
        });
        assert_eq!(n, 0, "tag+verify steady state for {}", alg.name());
    }

    // --- channel seal + admit ---------------------------------------
    let secret = SecretKey::from_seed(11);
    let tx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut rx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut pkt = data_packet(0, 512);
    let mut psn = 0u32;
    let n = steady_state_allocs(|| {
        for _ in 0..ROUNDS {
            pkt.bth.psn = Psn(psn);
            psn += 1;
            tx.seal(&mut pkt).unwrap();
            assert!(matches!(rx.admit(&pkt), Ok(Admit::Fresh)));
        }
    });
    assert_eq!(n, 0, "channel seal+admit steady state");

    // --- batched admission (admit_many) -----------------------------
    // Same verdict stream as the loop above, one dispatch: the batch
    // scratch (verdict vectors) reaches capacity during warmup and the
    // SIMD pre-pass works in-place after that.
    let batch_tx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut batch_rx = SecureChannel::new(ChannelSecurity::AuthReplay, PKEY, secret, 64);
    let mut batch: Vec<Packet> = (0..ROUNDS).map(|i| data_packet(i, 512)).collect();
    let mut verdicts = Vec::new();
    let mut batch_psn = 0u32;
    let n = steady_state_allocs(|| {
        for pkt in batch.iter_mut() {
            pkt.bth.psn = Psn(batch_psn);
            batch_psn += 1;
            batch_tx.seal(pkt).unwrap();
        }
        batch_rx.admit_many(&batch, &mut verdicts);
        assert!(verdicts.iter().all(|v| matches!(v, Ok(Admit::Fresh))));
    });
    assert_eq!(n, 0, "admit_many steady state");

    // --- AEAD seal + open (in-place, tag-only expansion) ------------
    let aead = ib_crypto::AesGcm32::new(&[0x42; 16]);
    let mut sealed = vec![0x5A; 512];
    let aad = [0u8; 40];
    let mut nonce = 0u64;
    let n = steady_state_allocs(|| {
        for _ in 0..ROUNDS {
            nonce += 1;
            let tag = aead.seal(nonce, &aad, &mut sealed);
            assert!(aead.open(nonce, &aad, &mut sealed, tag));
        }
    });
    assert_eq!(n, 0, "AEAD seal+open steady state");

    // --- endpoint send path (templates + buffer pool) ---------------
    let cfg = RcConfig {
        ack_coalesce: 1,
        ..RcConfig::default()
    };
    let mut a = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(1),
        Lid(2),
        Qpn(3),
    );
    let mut b = SecureRcEndpoint::new(
        ChannelSecurity::AuthReplay,
        PKEY,
        secret,
        64,
        cfg,
        Lid(2),
        Lid(1),
        Qpn(3),
    );
    let mut out: Vec<Vec<u8>> = Vec::new();
    let mut now = 0;
    // Warm cycles: pool fills with recycled wire buffers, the in-flight
    // queue reaches capacity, ACKs clear it again.
    for _ in 0..2 {
        for i in 0..ROUNDS {
            a.post(vec![i as u8; 256]);
        }
        a.poll_into(now, &mut out);
        for bytes in out.drain(..) {
            b.handle_wire(now, &bytes);
            a.recycle(bytes);
        }
        b.take_delivered();
        b.poll_into(now, &mut out);
        for ack in out.drain(..) {
            a.handle_wire(now, &ack);
            b.recycle(ack);
        }
        now += 1000;
    }
    // Payload buffers are the caller's input — they exist before the
    // measured region, like application data would.
    let payloads: Vec<Vec<u8>> = (0..ROUNDS).map(|i| vec![i as u8; 256]).collect();
    let before = allocs();
    for p in payloads {
        a.post(p);
    }
    a.poll_into(now, &mut out);
    let n = allocs() - before;
    assert_eq!(out.len(), ROUNDS as usize, "whole burst fits the window");
    assert_eq!(n, 0, "endpoint post+poll_into steady state");

    // --- endpoint batched receive (poll_batch) ----------------------
    // The data burst from `a` above crosses to `b` as one batch, and the
    // resulting ACK burst comes back to `a` as one batch. The measured
    // region is the sender consuming the ACK batch: parse into pooled
    // shells, one batched MAC pre-pass, per-packet dispatch, poll tail —
    // all on warm scratch. (The data direction hands each delivered
    // message to the application as a fresh buffer by contract, exactly
    // like `post`'s payloads on the way in, so it is warmup here.)
    let mut acks: Vec<Vec<u8>> = Vec::new();
    let data_refs: Vec<&[u8]> = out.iter().map(|w| w.as_slice()).collect();
    b.poll_batch(now, &data_refs, &mut acks);
    b.take_delivered();
    assert_eq!(acks.len(), ROUNDS as usize, "one ACK per unsealed packet");
    let mut ack_out: Vec<Vec<u8>> = Vec::new();
    let ack_refs: [&[u8]; ROUNDS as usize] = std::array::from_fn(|i| acks[i].as_slice());
    // Warm once with the full batch so `a`'s shell pool and verdict
    // scratch reach batch capacity, then measure a second full pass.
    // Cumulative ACKs are idempotent, so the duplicate batch walks the
    // same parse/precheck/dispatch path as the first.
    a.poll_batch(now, &ack_refs, &mut ack_out);
    assert!(a.tx_idle(), "the ACK batch cleared the in-flight window");
    let n = steady_state_allocs(|| {
        ack_out.clear();
        a.poll_batch(now, &ack_refs, &mut ack_out);
    });
    assert_eq!(n, 0, "endpoint poll_batch (ACK batch) steady state");
}
