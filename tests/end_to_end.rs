//! Cross-crate integration tests: wire bytes produced by `ib-packet`,
//! keyed by `ib-mgmt` flows, tagged/verified by `ib-security`, with the
//! management plane (`SubnetManager`, traps, enforcement) in the loop.

use ib_crypto::mac::{AuthAlgorithm, Mac};
use ib_crypto::toyrsa;
use ib_mgmt::enforcement::{FilterDecision, PartitionEnforcer, SifEnforcer};
use ib_mgmt::keymgmt::SecretKey;
use ib_mgmt::partition::PartitionConfig;
use ib_mgmt::sm::SubnetManager;
use ib_mgmt::trap::Trap;
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, QKey, Qpn};
use ib_security::auth::{Authenticator, KeyScope};
use ib_security::fabric::{FabricError, SecureFabric};

/// The full §4.2 + §5 pipeline with no shortcuts: SM mints a partition
/// secret, distributes it via real toy-RSA envelopes, members build real
/// wire packets, tag them, ship bytes, parse, verify.
#[test]
fn sm_key_distribution_to_verified_delivery() {
    let mut sm = SubnetManager::new(2, 99);
    let (pk0, sk0) = toyrsa::generate_keypair(1);
    let (pk1, sk1) = toyrsa::generate_keypair(2);
    sm.register_public_key(Lid(1), pk0);
    sm.register_public_key(Lid(2), pk1);
    let pkey = PKey(0x8001);
    let (_, envelopes) = sm.create_partition(PartitionConfig {
        pkey,
        members: vec![0, 1],
    });
    assert_eq!(envelopes.len(), 2);

    let mut alice = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
    let mut bob = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
    for (member, env) in envelopes {
        let secret = match member {
            0 => env.open(&sk0).unwrap(),
            1 => env.open(&sk1).unwrap(),
            _ => unreachable!(),
        };
        match member {
            0 => alice.keys.install_partition_secret(pkey, secret),
            _ => bob.keys.install_partition_secret(pkey, secret),
        }
    }

    let mut pkt = PacketBuilder::new(OpCode::UD_SEND_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(pkey)
        .psn(Psn(7))
        .qkey(QKey(0x42), Qpn(5))
        .payload(b"distributed-key payload".to_vec())
        .build();
    alice.tag_packet(&mut pkt).unwrap();
    let wire = pkt.to_bytes();

    let arrived = Packet::parse(&wire).unwrap();
    bob.verify_packet(&arrived).unwrap();
    assert_eq!(arrived.payload, b"distributed-key payload");
}

/// §3.3's full control loop against real state machines: HCA detects a bad
/// P_Key, raises a trap, the SM locates the attacker's edge switch, SIF is
/// programmed, and subsequent attack packets are dropped at ingress while
/// legitimate traffic still passes.
#[test]
fn trap_to_sif_programming_loop() {
    let mut sm = SubnetManager::new(4, 5);
    // Attacker = node 2, attached to switch 2 port 4.
    sm.attach(Lid(3), 2, 4);
    let mut sif = SifEnforcer::new(5, 1_000_000, 8);
    let bad = PKey(0x8666);

    // Before the trap: SIF is dormant, the flood passes the switch.
    let check = sif.check(0, 4, true, Lid(3), bad);
    assert_eq!(check.decision, FilterDecision::Pass);
    assert_eq!(check.lookup_cycles, 0);

    // Victim (node 0) raises a trap; SM maps it to (switch 2, port 4).
    let trap = Trap::pkey_violation(Lid(1), bad, Lid(3), 1);
    let action = sm.handle_trap(&trap).expect("SM locates the violator");
    assert_eq!((action.switch, action.port), (2, 4));

    // Program the filter (the simulator does this after program_latency).
    sif.register_invalid(100, action.port, action.pkey);

    // The flood now dies at the attacker's own ingress port…
    let check = sif.check(101, 4, true, Lid(3), bad);
    assert_eq!(check.decision, FilterDecision::Drop);
    // …while a legitimate key from the same port passes (1-cycle lookup).
    let ok = sif.check(102, 4, true, Lid(3), PKey(0x8001));
    assert_eq!(ok.decision, FilterDecision::Pass);
    assert_eq!(ok.lookup_cycles, 1);
}

/// Tags survive what switches legitimately do to packets (VL rewrite) and
/// break under what attackers do (any invariant-field tamper) — across
/// every registered MAC algorithm.
#[test]
fn tags_survive_switch_hops_break_under_tamper_all_algorithms() {
    for alg in &AuthAlgorithm::ALL[1..] {
        let pkey = PKey(0x8001);
        let secret = SecretKey::from_seed(0xD00D);
        let mut auth = Authenticator::new(*alg, KeyScope::Partition);
        auth.keys.install_partition_secret(pkey, secret);

        let mut pkt = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(pkey)
            .psn(Psn(1))
            .qkey(QKey(9), Qpn(4))
            .payload(vec![0xAB; 100])
            .build();
        auth.tag_packet(&mut pkt).unwrap();

        // Two VL rewrites en route (switch behaviour): tag still verifies.
        pkt.rewrite_vl(ib_packet::VirtualLane(3));
        pkt.rewrite_vl(ib_packet::VirtualLane(9));
        let hop = Packet::parse(&pkt.to_bytes()).unwrap();
        auth.verify_packet(&hop)
            .unwrap_or_else(|e| panic!("{alg:?} after VL rewrite: {e}"));

        // Tampers an attacker would try: each must break verification.
        let mut payload_tamper = hop.clone();
        payload_tamper.payload[50] ^= 0x01;
        payload_tamper.vcrc = payload_tamper.compute_vcrc();
        assert!(
            auth.verify_packet(&payload_tamper).is_err(),
            "{alg:?} payload"
        );

        let mut qkey_tamper = hop.clone();
        qkey_tamper.deth.as_mut().unwrap().qkey = QKey(0xFFFF);
        qkey_tamper.vcrc = qkey_tamper.compute_vcrc();
        assert!(auth.verify_packet(&qkey_tamper).is_err(), "{alg:?} Q_Key");

        let mut psn_tamper = hop.clone();
        psn_tamper.bth.psn = Psn(2);
        psn_tamper.vcrc = psn_tamper.compute_vcrc();
        assert!(
            auth.verify_packet(&psn_tamper).is_err(),
            "{alg:?} PSN/nonce"
        );
    }
}

/// The compatibility story: a fabric where one side upgraded and the other
/// didn't. Legacy packets (selector 0) flow as before until policy forbids
/// them, and upgraded packets look like CRC-failed packets to legacy gear.
#[test]
fn mixed_legacy_and_upgraded_nodes() {
    let pkey = PKey(0x8001);
    let mut fabric = SecureFabric::new(3, AuthAlgorithm::Umac32, KeyScope::Partition, 31);
    fabric.create_partition(pkey, &[0, 1, 2]);

    // Legacy sender (plain ICRC) to an upgraded receiver with no policy:
    let wire = fabric
        .send_unauthenticated(0, 1, pkey, QKey(1), b"legacy")
        .unwrap();
    assert!(fabric.deliver(1, &wire).is_ok());

    // Upgraded sender to a "legacy" receiver: the packet parses fine at
    // the link layer and its ICRC field simply fails a plain CRC check —
    // exactly the paper's graceful-degradation story.
    let wire = fabric
        .send_datagram(0, 1, pkey, QKey(1), b"tagged")
        .unwrap();
    let parsed = Packet::parse(&wire).unwrap();
    assert!(parsed.vcrc_ok());
    assert!(!parsed.icrc_ok(), "tag is not a CRC");
    assert_eq!(parsed.bth.resv8a, AuthAlgorithm::Umac32.selector());

    // Once policy requires tags, the legacy path closes.
    fabric.require_auth_for_partition(pkey);
    let wire = fabric
        .send_unauthenticated(0, 1, pkey, QKey(1), b"legacy")
        .unwrap();
    assert_eq!(fabric.deliver(1, &wire), Err(FabricError::PolicyViolation));
}

/// A keyed MAC instance agrees with itself across crate boundaries: the
/// secret from `ib-mgmt` keying drives `ib-crypto` MACs over `ib-packet`
/// invariant bytes identically whether called via the Authenticator or
/// directly.
#[test]
fn authenticator_matches_direct_mac_composition() {
    let pkey = PKey(0x8003);
    let secret = SecretKey::from_seed(777);
    let mut auth = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
    auth.keys.install_partition_secret(pkey, secret);

    let pkt = PacketBuilder::new(OpCode::UD_SEND_ONLY)
        .slid(Lid(4))
        .dlid(Lid(5))
        .pkey(pkey)
        .psn(Psn(1234))
        .qkey(QKey(8), Qpn(2))
        .payload(b"cross-crate agreement".to_vec())
        .build();

    let via_auth = auth.compute_tag(&pkt).unwrap();
    let direct = ib_crypto::umac::Umac::new(&secret.0)
        .tag32(Authenticator::nonce(&pkt), &pkt.icrc_message());
    assert_eq!(via_auth, direct);

    // And AnyMac's dispatch agrees too.
    let any = ib_crypto::mac::AnyMac::new(AuthAlgorithm::Umac32, &secret.0);
    assert_eq!(
        any.tag32(Authenticator::nonce(&pkt), &pkt.icrc_message()),
        direct
    );
}
