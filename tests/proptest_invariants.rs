//! Property-based tests over the core invariants the scheme rests on:
//! packet round-tripping, CRC implementations agreeing, variant-field
//! masking, MAC tamper-detection, key-envelope round trips, and replay
//! window monotonicity.

use ib_crypto::crc::{crc16_bitwise, crc16_iba, crc32_bitwise, crc32_ieee, crc32_ieee_slice4};
use ib_crypto::mac::{AnyMac, AuthAlgorithm, Mac};
use ib_crypto::toyrsa;
use ib_crypto::umac::Umac;
use ib_mgmt::keymgmt::{KeyEnvelope, SecretKey};
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, QKey, Qpn, VirtualLane};
use ib_security::auth::{Authenticator, KeyScope};
use ib_security::replay::ReplayWindow;
use proptest::prelude::*;

fn arb_opcode() -> impl Strategy<Value = OpCode> {
    prop_oneof![
        Just(OpCode::RC_SEND_ONLY),
        Just(OpCode::UD_SEND_ONLY),
        Just(OpCode::RC_RDMA_WRITE_ONLY),
        Just(OpCode::RC_RDMA_READ_REQUEST),
        Just(OpCode::RC_ACKNOWLEDGE),
    ]
}

fn build(
    opcode: OpCode,
    slid: u16,
    dlid: u16,
    pkey: u16,
    psn: u32,
    payload: Vec<u8>,
) -> Packet {
    let mut b = PacketBuilder::new(opcode)
        .slid(Lid(slid))
        .dlid(Lid(dlid))
        .pkey(PKey(pkey))
        .psn(Psn::new(psn));
    if opcode.service.has_deth() {
        b = b.qkey(QKey(psn ^ 0xABCD), Qpn::new(slid as u32));
    }
    if opcode.operation.has_reth() {
        b = b.rdma(0x1000, ib_packet::RKey(77), payload.len() as u32);
    }
    if opcode.operation.has_aeth() {
        b = b.ack(0, psn);
    }
    if opcode.operation.has_payload() {
        b = b.payload(payload);
    }
    b.build()
}

proptest! {
    /// Any packet the builder can produce round-trips bit-exactly.
    #[test]
    fn packet_roundtrip(
        opcode in arb_opcode(),
        slid in 1u16..100,
        dlid in 1u16..100,
        pkey in 0x8000u16..0x9000,
        psn in 0u32..0x00FF_FFFF,
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let pkt = build(opcode, slid, dlid, pkey, psn, payload);
        prop_assert!(pkt.icrc_ok());
        prop_assert!(pkt.vcrc_ok());
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    /// All three CRC-32 implementations agree on arbitrary data, as do the
    /// two CRC-16 implementations.
    #[test]
    fn crc_implementations_agree(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let reference = crc32_bitwise(&data);
        prop_assert_eq!(crc32_ieee(&data), reference);
        prop_assert_eq!(crc32_ieee_slice4(&data), reference);
        prop_assert_eq!(crc16_iba(&data), crc16_bitwise(&data));
    }

    /// The variant fields (VL, Resv8a) never affect the ICRC; every
    /// invariant field does.
    #[test]
    fn icrc_masking_invariants(
        vl in 0u8..16,
        selector in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 1..256),
        flip_index in any::<prop::sample::Index>(),
    ) {
        let mut pkt = build(OpCode::RC_SEND_ONLY, 1, 2, 0x8001, 5, payload.clone());
        let base_icrc = pkt.compute_icrc();
        // Variant rewrites: ICRC unchanged.
        pkt.lrh.vl = VirtualLane(vl);
        pkt.bth.resv8a = selector;
        prop_assert_eq!(pkt.compute_icrc(), base_icrc);
        // Invariant flip: ICRC changes.
        let idx = flip_index.index(payload.len());
        pkt.payload[idx] ^= 0x01;
        prop_assert_ne!(pkt.compute_icrc(), base_icrc);
    }

    /// Every keyed MAC detects every single-bit payload flip (probabilistic
    /// in principle, but a 2^-32-chance false pass never fires in practice;
    /// a failure here means a real bug).
    #[test]
    fn macs_detect_bit_flips(
        seed in any::<u64>(),
        nonce in any::<u64>(),
        payload in proptest::collection::vec(any::<u8>(), 1..512),
        flip in any::<prop::sample::Index>(),
        alg_idx in 1usize..AuthAlgorithm::ALL.len(),
    ) {
        let alg = AuthAlgorithm::ALL[alg_idx];
        let key = SecretKey::from_seed(seed).0;
        let mac = AnyMac::new(alg, &key);
        let tag = mac.tag32(nonce, &payload);
        let mut tampered = payload.clone();
        let i = flip.index(payload.len());
        tampered[i] ^= 1 << (seed % 8);
        prop_assert!(!mac.verify(nonce, &tampered, tag), "{:?} missed flip at {}", alg, i);
        prop_assert!(mac.verify(nonce, &payload, tag));
    }

    /// UMAC's Carter-Wegman structure: same message, different nonces give
    /// different tags (pad freshness), and the hash half is nonce-free.
    #[test]
    fn umac_nonce_freshness(
        seed in any::<u64>(),
        n1 in any::<u64>(),
        n2 in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(n1 != n2);
        let u = Umac::new(&SecretKey::from_seed(seed).0);
        prop_assert_eq!(u.hash64(&msg), u.hash64(&msg));
        // Tag difference equals pad difference: t1 ^ t2 independent of msg.
        let d1 = u.tag32(n1, &msg) ^ u.tag32(n2, &msg);
        let d2 = u.tag32(n1, b"other") ^ u.tag32(n2, b"other");
        prop_assert_eq!(d1, d2);
    }

    /// Toy-RSA envelopes round-trip arbitrary secrets for arbitrary key
    /// pairs.
    #[test]
    fn envelope_roundtrip(key_seed in 1u64..5000, secret_seed in any::<u64>()) {
        let (pk, sk) = toyrsa::generate_keypair(key_seed);
        let secret = SecretKey::from_seed(secret_seed);
        let env = KeyEnvelope::seal(&secret, &pk);
        prop_assert_eq!(env.open(&sk), Some(secret));
    }

    /// Replay window: any sequence of offers accepts each value at most
    /// once.
    #[test]
    fn replay_window_never_accepts_twice(
        seqs in proptest::collection::vec(0u64..200, 1..100),
        window in 1u32..64,
    ) {
        let mut w = ReplayWindow::new(window);
        let mut accepted = std::collections::HashSet::new();
        for s in seqs {
            if w.accept(s) {
                prop_assert!(accepted.insert(s), "sequence {} accepted twice", s);
            }
        }
    }

    /// End-to-end: an authenticated packet round-trips the wire and
    /// verifies; any payload flip on the wire is rejected.
    #[test]
    fn tagged_packet_wire_invariants(
        psn in 0u32..0xFFFF,
        payload in proptest::collection::vec(any::<u8>(), 1..512),
    ) {
        let pkey = PKey(0x8001);
        let mut auth = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
        auth.keys.install_partition_secret(pkey, SecretKey::from_seed(11));
        let mut pkt = build(OpCode::UD_SEND_ONLY, 1, 2, 0x8001, psn, payload);
        auth.tag_packet(&mut pkt).unwrap();
        let wire = pkt.to_bytes();
        let parsed = Packet::parse(&wire).unwrap();
        prop_assert!(auth.verify_packet(&parsed).is_ok());
    }
}
