//! Integration: the §7 replay defense reconciled with reliable-transport
//! retransmission, end to end through real wire bytes.
//!
//! The acceptance scenario from the issue: on one connection, prove that
//! a **replay of a delivered packet is rejected** while a **retransmit of
//! a dropped packet is accepted** — even though the two are byte-identical
//! in every way that matters (same PSN, same MAC tag, same payload
//! encoding), because delivery state is the only thing that tells them
//! apart.

use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Qpn};
use ib_security::ChannelSecurity;
use ib_sim::time::US;
use ib_sim::{FaultConfig, SimTime};
use ib_transport::{run_replay_sim, RcConfig, ReplaySimConfig, SecureRcEndpoint};

const PKEY: PKey = PKey(0x8001);

fn endpoint_pair(security: ChannelSecurity) -> (SecureRcEndpoint, SecureRcEndpoint) {
    let secret = SecretKey::from_seed(2024);
    let cfg = RcConfig {
        ack_coalesce: 1,
        ..RcConfig::default()
    };
    let a = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(1), Lid(2), Qpn(3));
    let b = SecureRcEndpoint::new(security, PKEY, secret, 64, cfg, Lid(2), Lid(1), Qpn(3));
    (a, b)
}

/// Deliver `wire` buffers from one endpoint to the other, returning the
/// replies the receiver produced.
fn deliver(to: &mut SecureRcEndpoint, now: SimTime, wire: &[Vec<u8>]) -> Vec<Vec<u8>> {
    for bytes in wire {
        to.handle_wire(now, bytes);
    }
    to.poll(now)
}

/// The tentpole distinction, at the endpoint level with captured bytes.
#[test]
fn replay_of_delivered_rejected_retransmit_of_dropped_accepted() {
    let (mut a, mut b) = endpoint_pair(ChannelSecurity::AuthReplay);
    for i in 0..4u8 {
        a.post(vec![i; 24]);
    }
    let wire = a.poll(0);
    assert_eq!(wire.len(), 4, "window admits the whole burst");

    // The fault layer eats PSN 2; the attacker captures PSN 1 in flight.
    let captured_psn1 = wire[1].clone();
    let acks = deliver(
        &mut b,
        0,
        &[wire[0].clone(), wire[1].clone(), wire[3].clone()],
    );
    assert_eq!(b.take_delivered().len(), 2, "0 and 1 in order; 3 gapped");

    // Attacker replays the *delivered* PSN 1: byte-identical, MAC valid —
    // suppressed by the replay window, never re-delivered.
    b.handle_wire(2 * US, &captured_psn1);
    assert!(
        b.take_delivered().is_empty(),
        "replay of delivered rejected"
    );
    assert_eq!(b.stats.dup_admitted_fresh, 0);
    assert!(b.stats.dup_suppressed >= 1);

    // The receiver's NAK asks the sender to go back to PSN 2; the
    // retransmit reuses the original PSN and the identical tag...
    for ack in &acks {
        a.handle_wire(3 * US, ack);
    }
    let retrans = a.poll(3 * US);
    assert!(
        !retrans.is_empty(),
        "NAK(PSN-sequence-error) triggered go-back-N"
    );
    assert_eq!(
        retrans[0], wire[2],
        "retransmit is byte-identical to the original"
    );

    // ...and the *undelivered* PSN 2 is accepted, followed by 3.
    deliver(&mut b, 4 * US, &retrans);
    let recovered = b.take_delivered();
    assert_eq!(recovered.len(), 2, "PSNs 2 and 3 complete the sequence");
    assert_eq!(recovered[0], vec![2u8; 24]);
    assert_eq!(recovered[1], vec![3u8; 24]);
    assert_eq!(b.stats.dup_admitted_fresh, 0, "no replay ever walked in");
}

/// Same bytes, no replay window: the attack succeeds. The two tests
/// together are the paper's argument for §7.
#[test]
fn without_window_the_same_replay_is_delivered_twice() {
    for arm in [ChannelSecurity::NoAuth, ChannelSecurity::Auth] {
        let (mut a, mut b) = endpoint_pair(arm);
        a.post(b"wire transfer: $100".to_vec());
        let wire = a.poll(0);
        let captured = wire[0].clone();
        b.handle_wire(0, &captured);
        assert_eq!(b.take_delivered().len(), 1);

        b.handle_wire(10 * US, &captured);
        assert_eq!(
            b.take_delivered().len(),
            1,
            "{arm:?}: replayed payload delivered again"
        );
        assert_eq!(b.stats.dup_admitted_fresh, 1, "{arm:?}");
    }
}

/// Full-system check: the simulated experiment at 2% loss with an active
/// attacker satisfies the acceptance criteria — 100% eventual delivery,
/// zero admitted replays with the window, reproducible to the bit.
#[test]
fn lossy_sim_acceptance_point() {
    let cfg = ReplaySimConfig {
        security: ChannelSecurity::AuthReplay,
        messages: 80,
        payload_len: 128,
        fault: FaultConfig::lossy(0.02, 50_000),
        replay_every: 3,
        seed: 7,
        ..ReplaySimConfig::default()
    };
    let r1 = run_replay_sim(&cfg);
    assert_eq!(r1.delivered, 80, "100% eventual delivery at 2% loss");
    assert!(!r1.failed && !r1.timed_out);
    assert!(r1.retransmits > 0);
    assert!(r1.replays_injected > 0);
    assert_eq!(r1.replays_admitted, 0, "0 attacker replays accepted");

    let r2 = run_replay_sim(&cfg);
    assert_eq!(
        r1.to_json().to_string(),
        r2.to_json().to_string(),
        "identical output across two same-seed runs"
    );
}
