#!/usr/bin/env bash
# Offline CI gate: the workspace must build, test, format and lint with an
# empty registry (dependency-zero policy — see DESIGN.md "External crates").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== fig_replay smoke (twice: results must be byte-identical) =="
cargo run -q --release --offline -p bench --bin fig_replay -- --smoke
mv BENCH_fig_replay.json BENCH_fig_replay.first.json
cargo run -q --release --offline -p bench --bin fig_replay -- --smoke
diff BENCH_fig_replay.first.json BENCH_fig_replay.json
rm BENCH_fig_replay.first.json

echo "== jsonck: emitted results parse back through ib_runtime::json =="
cargo run -q --release --offline -p bench --bin jsonck -- BENCH_*.json

echo "CI OK"
