#!/usr/bin/env bash
# Offline CI gate: the workspace must build, test, format and lint with an
# empty registry (dependency-zero policy — see DESIGN.md "External crates").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "CI OK"
