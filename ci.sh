#!/usr/bin/env bash
# Offline CI gate: the workspace must build, test, format and lint with an
# empty registry (dependency-zero policy — see DESIGN.md "External crates").
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, offline) =="
cargo build --release --offline

echo "== test (offline) =="
cargo test -q --offline

echo "== fmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy --offline --workspace --all-targets -- -D warnings

echo "== fig_replay smoke (twice: results must be byte-identical) =="
cargo run -q --release --offline -p bench --bin fig_replay -- --smoke
mv BENCH_fig_replay.json BENCH_fig_replay.first.json
cargo run -q --release --offline -p bench --bin fig_replay -- --smoke
diff BENCH_fig_replay.first.json BENCH_fig_replay.json
rm BENCH_fig_replay.first.json

echo "== mac_table4 smoke (twice: structure must be stable, asserts must hold) =="
# The binary's own acceptance asserts gate the streaming-vs-one-shot
# equivalence and throughput; across runs the numbers move with the
# clock, so compare the *structure* with numerics normalized away.
cargo run -q --release --offline -p bench --bin mac_table4 -- --smoke
mv BENCH_mac_throughput.json BENCH_mac_throughput.first.json
cargo run -q --release --offline -p bench --bin mac_table4 -- --smoke
normalize_numbers() { sed -E 's/-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?/N/g' "$1"; }
diff <(normalize_numbers BENCH_mac_throughput.first.json) \
     <(normalize_numbers BENCH_mac_throughput.json)
rm BENCH_mac_throughput.first.json

echo "== mac_table4 smoke with IB_SIMD=off (scalar fallback: structure must match) =="
# The dispatched kernels must be observationally interchangeable with
# the scalar fallback: forcing IB_SIMD=off flips only numbers (timings,
# speedup ratios, the simd_active flag), never the document structure,
# the rows emitted, or which in-binary asserts run. The binary's own
# equivalence gates re-run under the fallback too, so this leg also
# proves the scalar path *passes* them byte-identically.
mv BENCH_mac_throughput.json BENCH_mac_throughput.simd.json
IB_SIMD=off cargo run -q --release --offline -p bench --bin mac_table4 -- --smoke
diff <(normalize_numbers BENCH_mac_throughput.simd.json) \
     <(normalize_numbers BENCH_mac_throughput.json)
rm BENCH_mac_throughput.simd.json

echo "== fig1 smoke (twice: results must be byte-identical) =="
# The scheduler/arena determinism gate: a calendar-queue or packet-arena
# bug that perturbs event order changes the averaged figure rows, so two
# same-seed runs diverging fails CI immediately.
cargo run -q --release --offline -p bench --bin fig1 -- --smoke
mv BENCH_fig1.json BENCH_fig1.first.json
cargo run -q --release --offline -p bench --bin fig1 -- --smoke
diff BENCH_fig1.first.json BENCH_fig1.json
rm BENCH_fig1.first.json

echo "== fig_rdma smoke (twice: results must be byte-identical) =="
# The transport-over-fabric gate: SEND / RDMA WRITE / RDMA READ across
# the attacked mesh. The binary's own asserts require 100% delivery,
# zero admitted replays, and selective-repeat >= go-back-N goodput under
# loss; the byte-diff pins the whole co-simulation (endpoints + fabric
# event order) to the seed.
cargo run -q --release --offline -p bench --bin fig_rdma -- --smoke
mv BENCH_fig_rdma.json BENCH_fig_rdma.first.json
cargo run -q --release --offline -p bench --bin fig_rdma -- --smoke
diff BENCH_fig_rdma.first.json BENCH_fig_rdma.json
rm BENCH_fig_rdma.first.json

echo "== fig_rekey smoke (twice: results must be byte-identical) =="
# The key-plane gate: RC fleets under epoch rotation and leader failover.
# The binary's own asserts require 100% eventual delivery in every arm,
# zero stale-epoch admissions, epoch-layer rejections on rotating arms,
# and a successor that re-keys after the leader kill; the byte-diff pins
# the replica election and MAD exchange to the seed.
cargo run -q --release --offline -p bench --bin fig_rekey -- --smoke
mv BENCH_fig_rekey.json BENCH_fig_rekey.first.json
cargo run -q --release --offline -p bench --bin fig_rekey -- --smoke
diff BENCH_fig_rekey.first.json BENCH_fig_rekey.json
rm BENCH_fig_rekey.first.json

echo "== fig_scale smoke (twice: results must be byte-identical) =="
# The scale-out gate: generated fat-tree/dragonfly fabrics, multi-path
# routing, packet vs flow-level engines. The binary's own asserts require
# every flow to complete on every fabric (a routing or dateline-VC bug
# deadlocks or strands flows) and the two engines to agree on the
# calibration mesh; the byte-diff pins topology generation, ECMP hashing
# and the max-min solver to the seed (wall-clock fields are zeroed in
# smoke mode so the diff can hold).
cargo run -q --release --offline -p bench --bin fig_scale -- --smoke
mv BENCH_fig_scale.json BENCH_fig_scale.first.json
cargo run -q --release --offline -p bench --bin fig_scale -- --smoke
diff BENCH_fig_scale.first.json BENCH_fig_scale.json
rm BENCH_fig_scale.first.json

echo "== parallel engine vs serial (fig1 smoke at IB_THREADS=1 and 4) =="
# The sharded-engine gate: the same figure computed by the serial oracle
# and by the windowed parallel engine (IB_ENGINE=par routes run_many
# through ib_sim::ParSimulator) must be byte-identical at every thread
# count — any divergence in cross-domain merge order, RNG decomposition
# or stats merging shows up here.
cargo run -q --release --offline -p bench --bin fig1 -- --smoke
mv BENCH_fig1.json BENCH_fig1.serial.json
IB_ENGINE=par IB_THREADS=1 cargo run -q --release --offline -p bench --bin fig1 -- --smoke
diff BENCH_fig1.serial.json BENCH_fig1.json
IB_ENGINE=par IB_THREADS=4 cargo run -q --release --offline -p bench --bin fig1 -- --smoke
diff BENCH_fig1.serial.json BENCH_fig1.json
rm BENCH_fig1.serial.json

echo "== parallel engine vs serial (fig_scale smoke at IB_THREADS=1 and 4) =="
# fig_scale runs every packet arm through both engines and asserts
# identical completions, event counts and arena high-waters in-binary;
# across the two IB_THREADS runs the only JSON deltas allowed are the
# recorded thread axis itself, which the filter strips.
IB_THREADS=1 cargo run -q --release --offline -p bench --bin fig_scale -- --smoke
mv BENCH_fig_scale.json BENCH_fig_scale.t1.json
IB_THREADS=4 cargo run -q --release --offline -p bench --bin fig_scale -- --smoke
strip_thread_axis() {
  sed -E 's/"threads":\[?[0-9]+\]?,//g; s/"ib_threads_env":("[^"]*"|null),//g' "$1"
}
diff <(strip_thread_axis BENCH_fig_scale.t1.json) \
     <(strip_thread_axis BENCH_fig_scale.json)
rm BENCH_fig_scale.t1.json

echo "== sim_engine smoke (scheduler equivalence + calendar-vs-heap gate) =="
# The binary's own asserts gate (a) all three scheduler arms popping the
# identical event stream and (b) the calendar queue keeping pace with the
# compact-key heap on the hold-model workload.
cargo run -q --release --offline -p bench --bin sim_engine -- --smoke

echo "== jsonck: emitted results parse back through ib_runtime::json =="
cargo run -q --release --offline -p bench --bin jsonck -- BENCH_*.json

echo "CI OK"
