//! Quickstart: secure a 4-node InfiniBand partition in ~30 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the happy path of the paper's scheme: the Subnet Manager creates a
//! partition and distributes a partition secret (encrypted per member, §4.2);
//! members exchange datagrams whose 32-bit ICRC field carries a UMAC tag
//! (§5.1); a captured P_Key alone no longer lets an outsider inject.

use ib_crypto::mac::AuthAlgorithm;
use ib_packet::{PKey, QKey};
use ib_security::auth::KeyScope;
use ib_security::fabric::SecureFabric;

fn main() {
    // A fabric of four nodes, authenticating with UMAC-32 under
    // partition-level key management.
    let mut fabric = SecureFabric::new(4, AuthAlgorithm::Umac32, KeyScope::Partition, 7);

    // The administrator creates partition 0x8001 with nodes 0, 1, 2.
    // Under the hood the SM mints a secret and ships it to each member
    // under the member's public key.
    let pkey = PKey(0x8001);
    fabric.create_partition(pkey, &[0, 1, 2]);
    println!(
        "partition {pkey} created; node 0 holds {} secret(s)",
        fabric.key_count(0)
    );

    // On-demand authentication (§5.1): require tags for this partition.
    fabric.require_auth_for_partition(pkey);

    // Node 0 sends an authenticated datagram to node 1. The wire bytes are
    // a genuine IBA packet: LRH | BTH | DETH | payload | AT | VCRC.
    let wire = fabric
        .send_datagram(0, 1, pkey, QKey(0x11), b"hello, authenticated world")
        .expect("member with the secret can tag");
    println!("wire packet: {} bytes", wire.len());

    // Node 1 parses, checks policy, verifies the tag, checks replay.
    let payload = fabric.deliver(1, &wire).expect("valid tag verifies");
    println!("node 1 received: {}", String::from_utf8_lossy(&payload));

    // Node 3 is outside the partition. It captured the P_Key off the wire —
    // in stock IBA that is all an attacker needs. Here it has no secret, so
    // it cannot produce a verifying tag…
    let forge = fabric.send_datagram(3, 1, pkey, QKey(0x11), b"forged!");
    println!("outsider with captured P_Key, trying to tag: {forge:?}");
    assert!(forge.is_err());

    // …and an unauthenticated packet is refused by the on-demand policy.
    let plain = fabric
        .send_unauthenticated(3, 1, pkey, QKey(0x11), b"forged!")
        .unwrap();
    let refused = fabric.deliver(1, &plain);
    println!("outsider sending plain-ICRC packet: {refused:?}");
    assert!(refused.is_err());

    // Replays of genuine packets are caught by the PSN window (§7).
    let wire = fabric
        .send_datagram(0, 1, pkey, QKey(0x11), b"pay me once")
        .unwrap();
    fabric.deliver(1, &wire).unwrap();
    let replayed = fabric.deliver(1, &wire);
    println!("replaying a captured valid packet: {replayed:?}");
    assert!(replayed.is_err());

    println!("quickstart complete: forgery and replay both defeated.");
}
