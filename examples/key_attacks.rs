//! Table 3, demonstrated: what each captured IBA key buys an attacker in
//! stock IBA, and how the ICRC-as-MAC scheme closes every row.
//!
//! ```text
//! cargo run --example key_attacks
//! ```

use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keys::{KeyClass, VULNERABILITIES};
use ib_packet::{PKey, QKey};
use ib_security::auth::KeyScope;
use ib_security::fabric::{FabricError, SecureFabric};

fn banner(class: KeyClass) {
    let v = class.vulnerability();
    println!("── {} ──", class.name());
    println!("   impact if exposed: {}", v.impact);
    if !v.also_requires.is_empty() {
        let also: Vec<&str> = v.also_requires.iter().map(|k| k.name()).collect();
        println!("   attacker also needs: {}", also.join(" + "));
    }
}

fn main() {
    println!(
        "IBA key-exposure matrix ({} rows, paper Table 3)\n",
        VULNERABILITIES.len()
    );

    let p1 = PKey(0x8001);

    // ---------- P_Key row ----------
    banner(KeyClass::PKey);
    let mut fabric = SecureFabric::new(4, AuthAlgorithm::Umac32, KeyScope::Partition, 11);
    fabric.create_partition(p1, &[0, 1]);
    // Stock IBA: plaintext P_Key captured; outsider (node 3) injects and
    // the receiver's only check is the P_Key table — which matches.
    let wire = fabric
        .send_unauthenticated(3, 1, p1, QKey(1), b"P_Key forgery")
        .unwrap();
    let stock = fabric.deliver(1, &wire);
    println!("   stock IBA: forged injection with captured P_Key -> {stock:?}");
    assert!(stock.is_ok(), "stock IBA accepts: that's the vulnerability");
    // With MAC required: same forgery dies.
    fabric.require_auth_for_partition(p1);
    let wire = fabric
        .send_unauthenticated(3, 1, p1, QKey(1), b"P_Key forgery")
        .unwrap();
    let secured = fabric.deliver(1, &wire);
    println!("   with ICRC-as-MAC:                            -> {secured:?}");
    assert_eq!(secured, Err(FabricError::PolicyViolation));
    println!();

    // ---------- Q_Key row ----------
    banner(KeyClass::QKey);
    // QP-level fabric: datagram secrets minted per (Q_Key request).
    let mut fabric = SecureFabric::new(4, AuthAlgorithm::Umac32, KeyScope::QpLevel, 12);
    fabric.create_partition(p1, &[0, 1, 2]);
    let qkey = fabric.request_qkey(0, 1); // node 0 legitimately keyed to node 1
                                          // Node 2 is *inside* the partition and has captured both P_Key and the
                                          // Q_Key off the wire — the Table 3 precondition. It still has no
                                          // per-QP secret, so it cannot tag:
    let forged = fabric.send_datagram(2, 1, p1, qkey, b"Q_Key forgery");
    println!("   insider with captured P_Key+Q_Key, QP-level keys -> {forged:?}");
    assert!(forged.is_err());
    let legit = fabric.send_datagram(0, 1, p1, qkey, b"legit").unwrap();
    assert!(fabric.deliver(1, &legit).is_ok());
    println!("   legitimate keyed sender                          -> Ok");
    println!();

    // ---------- M_Key / B_Key rows ----------
    banner(KeyClass::MKey);
    println!("   M_Key guards SMP writes; see ib_mgmt::sm::SubnetManager::check_mkey.");
    println!("   Under the scheme, management packets carry tags like any other —");
    println!("   a captured M_Key without the management secret cannot re-configure.");
    banner(KeyClass::BKey);
    println!("   B_Key: identical argument at the baseboard-management level.");
    println!();

    // ---------- Memory-key row ----------
    banner(KeyClass::MemoryKey);
    println!("   RDMA packets carry the R_Key in the RETH, *inside* ICRC coverage —");
    println!("   see examples/secure_rdma.rs for the end-to-end demonstration that a");
    println!("   captured R_Key cannot produce a verifying RDMA write.");
    println!();

    println!(
        "All {} Table 3 rows are closed by per-packet MACs (paper A.5).",
        VULNERABILITIES.len()
    );
}
