//! Securing RDMA: the R_Key exposure (Table 3, last row), end to end.
//!
//! ```text
//! cargo run --example secure_rdma
//! ```
//!
//! RDMA writes bypass the destination QP entirely — the HCA writes memory
//! as soon as the R_Key in the RETH matches. A captured R_Key therefore
//! gives silent remote-memory access in stock IBA. This example builds
//! genuine RDMA-write packets, registers a memory region, and shows the
//! write being applied for a keyed peer and refused for a forger, under
//! QP-level connected-service keys (§4.3: "even if R_Key is exposed,
//! QP-level key management guarantees authentic communication").

use ib_crypto::mac::AuthAlgorithm;
use ib_crypto::toyrsa;
use ib_mgmt::keymgmt::QpKeyManager;
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, Psn, Qpn, RKey};
use ib_security::auth::{Authenticator, KeyScope};

/// A toy RDMA-capable memory region guarded by an R_Key.
struct MemoryRegion {
    rkey: RKey,
    base: u64,
    data: Vec<u8>,
}

impl MemoryRegion {
    /// Apply an RDMA write if the packet's RETH authorizes it.
    fn apply_write(&mut self, pkt: &Packet) -> Result<(), String> {
        let reth = pkt.reth.as_ref().ok_or("not an RDMA packet")?;
        if reth.rkey != self.rkey {
            return Err(format!("R_Key mismatch: {}", reth.rkey));
        }
        let off = reth
            .virt_addr
            .checked_sub(self.base)
            .ok_or("address below region")? as usize;
        let end = off + pkt.payload.len();
        if end > self.data.len() {
            return Err("write past region end".into());
        }
        self.data[off..end].copy_from_slice(&pkt.payload);
        Ok(())
    }
}

fn rdma_write(psn: u32, rkey: RKey, addr: u64, dest_qp: Qpn, payload: &[u8]) -> Packet {
    PacketBuilder::new(OpCode::RC_RDMA_WRITE_ONLY)
        .slid(Lid(1))
        .dlid(Lid(2))
        .pkey(PKey(0x8001))
        .dest_qp(dest_qp)
        .psn(Psn(psn))
        .rdma(addr, rkey, payload.len() as u32)
        .payload(payload.to_vec())
        .build()
}

fn main() {
    // Target node registers 64 bytes of memory at 0x10000 under an R_Key.
    let rkey = RKey(0xCAFE_F00D);
    let mut region = MemoryRegion {
        rkey,
        base: 0x10000,
        data: vec![0u8; 64],
    };
    let dest_qp = Qpn(9);

    // ---- connection setup with QP-level key exchange (§4.3) ----
    let (target_pub, target_priv) = toyrsa::generate_keypair(0xBEEF);
    let mut initiator_mgr = QpKeyManager::new(42);
    let (secret, envelope) = initiator_mgr.initiate_connection(&target_pub);
    let received = envelope.open(&target_priv).expect("target opens envelope");
    assert_eq!(secret, received);

    let mut initiator = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
    initiator.keys.install_connection_secret(dest_qp, secret);
    let mut target = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
    target.keys.install_connection_secret(dest_qp, received);

    // ---- legitimate RDMA write ----
    let mut pkt = rdma_write(1, rkey, 0x10010, dest_qp, b"RDMA payload");
    initiator
        .tag_packet(&mut pkt)
        .expect("keyed initiator tags");
    let wire = pkt.to_bytes();
    println!("RDMA write-only packet: {} bytes on the wire", wire.len());

    let arrived = Packet::parse(&wire).expect("valid wire packet");
    target.verify_packet(&arrived).expect("tag verifies");
    region.apply_write(&arrived).expect("write applies");
    assert_eq!(&region.data[0x10..0x10 + 12], b"RDMA payload");
    println!("keyed peer: tag verified, memory written at +0x10.");

    // ---- attacker captured the R_Key off the wire ----
    // Stock IBA check is R_Key-only: the forged write WOULD apply.
    let forged = rdma_write(2, rkey, 0x10000, dest_qp, b"OWNED!");
    assert!(
        region.apply_write(&forged).is_ok(),
        "stock IBA: captured R_Key is sufficient — the vulnerability"
    );
    println!("stock IBA: forged write with captured R_Key APPLIED (vulnerability shown).");
    region.data[..6].fill(0); // undo for the secured run

    // Under the scheme the target verifies *before* the write. The forged
    // packet carries selector 0 (plain ICRC) — verification passes as
    // *legacy*, which is why an auth-required connection also needs the
    // on-demand policy gate:
    use ib_security::ondemand::OnDemandPolicy;
    let mut policy = OnDemandPolicy::allow_all();
    policy.require_qp(dest_qp);
    assert!(
        !policy.admits(&forged),
        "plain-ICRC packet rejected by policy"
    );
    println!("with ICRC-as-MAC + policy: selector-0 forgery -> rejected by OnDemandPolicy");

    // The forger's alternative is to claim authentication and guess the
    // 32-bit tag (success probability ~2^-30 per attempt):
    let mut guessed = rdma_write(3, rkey, 0x10000, dest_qp, b"OWNED!");
    guessed.set_auth_tag(1, 0xDEAD_BEEF); // a guess
    assert!(
        policy.admits(&guessed),
        "claims authentication, so policy admits…"
    );
    let verdict = target.verify_packet(&guessed);
    println!("…but tag verification -> {verdict:?}");
    assert!(verdict.is_err(), "guessed tag must not verify");
    println!("secure_rdma complete: R_Key exposure closed by QP-level keys.");
}
