//! DoS attack and the SIF defense, live on the simulated testbed (§3).
//!
//! ```text
//! cargo run --release --example dos_attack_defense
//! ```
//!
//! Reproduces the paper's §3 narrative at small scale: a single compromised
//! node flooding random invalid P_Keys multiplies everyone's queuing time
//! even though destination HCAs drop the packets; enabling Stateful Ingress
//! Filtering restores performance, with the trap → SM → program-filter loop
//! visible in the counters.

use ib_mgmt::enforcement::EnforcementKind;
use ib_security::experiments::{run_seed_averaged, AveragedPoint};
use ib_sim::config::{SimConfig, TrafficConfig};
use ib_sim::time::{MS, US};

fn scenario(enforcement: EnforcementKind, attackers: usize) -> SimConfig {
    SimConfig {
        num_attackers: attackers,
        attack_probability: 1.0,
        enforcement,
        traffic: TrafficConfig {
            // Near the fabric's knee, as in Figure 1, so the flood bites.
            realtime_load: 0.25,
            best_effort_load: 0.30,
            realtime_backoff_queue: 8,
        },
        duration: 6 * MS,
        warmup: 600 * US,
        ..SimConfig::default()
    }
}

fn main() {
    println!("Simulating the paper's testbed: 16-node mesh, 2.5 Gb/s links, 4 partitions…");
    println!("(each scenario averages 3 random partition/attacker placements)\n");
    let points: Vec<AveragedPoint> = [
        scenario(EnforcementKind::NoFiltering, 0),
        scenario(EnforcementKind::NoFiltering, 4),
        scenario(EnforcementKind::Sif, 4),
    ]
    .iter()
    .map(|cfg| run_seed_averaged(cfg, 3))
    .collect();
    let labels = ["no attack", "4 attackers, stock IBA", "4 attackers + SIF"];
    for (label, p) in labels.iter().zip(&points) {
        println!("{label}:");
        println!(
            "  best-effort queuing {:7.2} us   network {:6.2} us",
            p.be_queuing_us, p.be_network_us
        );
        println!(
            "  realtime    queuing {:7.2} us   network {:6.2} us",
            p.rt_queuing_us, p.rt_network_us
        );
        println!(
            "  traps {:4}  switch drops {:6}  HCA-blocked {:6}",
            p.traps, p.filter_drops, p.hca_blocked
        );
        println!();
    }

    let (base, attacked, defended) = (&points[0], &points[1], &points[2]);
    let b = base.be_queuing_us;
    let a = attacked.be_queuing_us;
    let d = defended.be_queuing_us;
    println!(
        "best-effort queuing: {b:.1} us -> {a:.1} us under attack (x{:.1})",
        a / b.max(1e-9)
    );
    println!(
        "with SIF:            back to {d:.1} us (x{:.1} of baseline)",
        d / b.max(1e-9)
    );
    assert!(a > b * 1.3, "attack must hurt: {a} vs {b}");
    assert!(d < a, "SIF must help: {d} vs {a}");
    assert!(defended.traps > 0 && defended.filter_drops > 0);
    assert!(
        defended.filter_drops > defended.hca_blocked,
        "once programmed, SIF stops the flood at ingress"
    );
    println!("\nSIF lifecycle: HCA trap -> SM locates attacker's edge switch ->");
    println!("Invalid_P_Key_Table programmed -> flood dies at its ingress port.");
}
