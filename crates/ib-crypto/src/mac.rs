//! The common 32-bit-tag MAC interface and the authentication-algorithm
//! registry for the ICRC-as-MAC scheme.
//!
//! §5.1 of the paper: "we can use [the] Reserved field of Base Transport
//! Header (BTH) for identifying which authentication function is used …
//! If the value is zero, the packet is using original ICRC. Non-zero value
//! means an authentication function is in use." [`AuthAlgorithm`] is that
//! registry; its discriminants are the on-wire BTH `Resv8a` selector values.
//!
//! §5.2 / Table 4 of the paper report, per algorithm, the cycles/byte, the
//! Gb/s at 350 MHz, and the forgery probability. The *reference* (paper)
//! numbers are recorded here as constants; the `table4` bench measures this
//! crate's own implementations next to them.

use crate::hmac::Hmac;
use crate::md5::Md5;
use crate::pmac::Pmac;
use crate::sha1::Sha1;
use crate::stream_mac::StreamMac;
use crate::umac::Umac;

/// A 32-bit authentication tag — the exact size of the ICRC field it
/// replaces on the wire.
pub type Tag32 = u32;

/// Every authentication function the BTH `Resv` selector can name.
///
/// Value 0 (`Icrc`) means "no authentication, original CRC-32 ICRC" — the
/// IBA-compatible default. Values 1–3 are the paper's Table 4 algorithms;
/// 4–5 are the §7 (Discussion) extensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum AuthAlgorithm {
    /// Plain CRC-32 error detection (no key, forgeable).
    Icrc = 0,
    /// UMAC with a 32-bit tag — the paper's recommended MAC.
    Umac32 = 1,
    /// HMAC-MD5 truncated to 32 bits (IPSec-compatible).
    HmacMd5 = 2,
    /// HMAC-SHA1 truncated to 32 bits (IPSec-compatible).
    HmacSha1 = 3,
    /// Stream-cipher MAC computed while the packet streams (§7).
    StreamMac = 4,
    /// Parallelizable MAC over AES (§7).
    Pmac = 5,
}

impl AuthAlgorithm {
    /// All algorithms, in BTH-selector order.
    pub const ALL: [AuthAlgorithm; 6] = [
        AuthAlgorithm::Icrc,
        AuthAlgorithm::Umac32,
        AuthAlgorithm::HmacMd5,
        AuthAlgorithm::HmacSha1,
        AuthAlgorithm::StreamMac,
        AuthAlgorithm::Pmac,
    ];

    /// Decode a BTH `Resv8a` selector byte.
    pub fn from_selector(v: u8) -> Option<Self> {
        Self::ALL.get(v as usize).copied()
    }

    /// The BTH `Resv8a` selector byte for this algorithm.
    pub fn selector(self) -> u8 {
        self as u8
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            AuthAlgorithm::Icrc => "CRC",
            AuthAlgorithm::Umac32 => "UMAC-2/4",
            AuthAlgorithm::HmacMd5 => "HMAC-MD5",
            AuthAlgorithm::HmacSha1 => "HMAC-SHA1",
            AuthAlgorithm::StreamMac => "StreamMAC",
            AuthAlgorithm::Pmac => "PMAC-AES",
        }
    }

    /// log2 of the forgery probability with a 32-bit tag, as the paper's
    /// Table 4 reports it (0 ⇒ probability 1, i.e. no authenticity at all).
    pub fn forgery_log2(self) -> i32 {
        match self {
            AuthAlgorithm::Icrc => 0,
            AuthAlgorithm::Umac32 => -30,
            AuthAlgorithm::HmacMd5 => -32,
            AuthAlgorithm::HmacSha1 => -32,
            // Ring (not field) algebra weakens the bound; see stream_mac docs.
            AuthAlgorithm::StreamMac => -20,
            AuthAlgorithm::Pmac => -32,
        }
    }

    /// Reference cycles/byte from the paper's Table 4 (350 MHz-normalized
    /// literature numbers; `None` for the §7 extensions it does not tabulate).
    pub fn paper_cycles_per_byte(self) -> Option<f64> {
        match self {
            AuthAlgorithm::Icrc => Some(0.25),
            AuthAlgorithm::Umac32 => Some(0.7),
            AuthAlgorithm::HmacMd5 => Some(5.3),
            AuthAlgorithm::HmacSha1 => Some(12.6),
            _ => None,
        }
    }

    /// Reference throughput in Gb/s from the paper's Table 4.
    pub fn paper_gbps(self) -> Option<f64> {
        match self {
            AuthAlgorithm::Icrc => Some(11.2),
            AuthAlgorithm::Umac32 => Some(4.0),
            AuthAlgorithm::HmacMd5 => Some(0.53),
            AuthAlgorithm::HmacSha1 => Some(0.22),
            _ => None,
        }
    }

    /// Whether this algorithm provides message authenticity (vs. only error
    /// detection).
    pub fn is_authenticating(self) -> bool {
        self != AuthAlgorithm::Icrc
    }
}

/// Object-safe-enough MAC interface: everything the authentication layer
/// needs is "32-bit tag from (nonce, message)".
pub trait Mac {
    /// Compute the 32-bit tag.
    fn tag32(&self, nonce: u64, message: &[u8]) -> Tag32;
    /// Verify a tag (default: recompute and compare).
    fn verify(&self, nonce: u64, message: &[u8], tag: Tag32) -> bool {
        (self.tag32(nonce, message) ^ tag) == 0
    }
    /// Which registry entry this keyed instance implements.
    fn algorithm(&self) -> AuthAlgorithm;
}

/// A keyed MAC of any registered algorithm — the concrete object a key
/// table stores per partition / per QP.
// Umac's ~1 KiB of cached NH key material stays inline on purpose: key
// tables hold few entries and the per-packet tag path avoids a pointer
// chase.
#[allow(clippy::large_enum_variant)]
#[derive(Clone)]
pub enum AnyMac {
    /// CRC-32 "MAC": ignores key and nonce (compatibility mode; forgeable).
    Icrc,
    Umac32(Umac),
    HmacMd5([u8; 16]),
    HmacSha1([u8; 16]),
    StreamMac(StreamMac),
    Pmac(Pmac),
}

impl AnyMac {
    /// Compute four tags in lockstep. UMAC runs its 4-lane NH kernel
    /// (see [`crate::umac::Umac::tag32_x4`]); every other algorithm falls
    /// back to four sequential [`Mac::tag32`] calls. Either way the
    /// result is bit-identical to four singles.
    pub fn tag32_x4(&self, nonces: [u64; 4], msgs: [&[u8]; 4]) -> [Tag32; 4] {
        match self {
            AnyMac::Umac32(u) => u.tag32_x4(nonces, msgs),
            _ => {
                let mut out = [0u32; 4];
                for (o, (n, m)) in out.iter_mut().zip(nonces.iter().zip(msgs)) {
                    *o = self.tag32(*n, m);
                }
                out
            }
        }
    }

    /// Instantiate `alg` with a 16-byte secret key (ignored for `Icrc`).
    pub fn new(alg: AuthAlgorithm, key: &[u8; 16]) -> Self {
        match alg {
            AuthAlgorithm::Icrc => AnyMac::Icrc,
            AuthAlgorithm::Umac32 => AnyMac::Umac32(Umac::new(key)),
            AuthAlgorithm::HmacMd5 => AnyMac::HmacMd5(*key),
            AuthAlgorithm::HmacSha1 => AnyMac::HmacSha1(*key),
            AuthAlgorithm::StreamMac => AnyMac::StreamMac(StreamMac::new(key)),
            AuthAlgorithm::Pmac => AnyMac::Pmac(Pmac::new(key)),
        }
    }
}

impl Mac for AnyMac {
    fn tag32(&self, nonce: u64, message: &[u8]) -> Tag32 {
        match self {
            AnyMac::Icrc => crate::crc::crc32_ieee(message),
            AnyMac::Umac32(u) => u.tag32(nonce, message),
            // HMAC has no nonce input; prepend it so replayed PSNs still
            // produce distinct tags (the replay module relies on this).
            AnyMac::HmacMd5(key) => {
                let mut h = Hmac::<Md5>::new(key);
                h.update(&nonce.to_be_bytes());
                h.update(message);
                let out = h.finalize();
                u32::from_be_bytes([out[0], out[1], out[2], out[3]])
            }
            AnyMac::HmacSha1(key) => {
                let mut h = Hmac::<Sha1>::new(key);
                h.update(&nonce.to_be_bytes());
                h.update(message);
                let out = h.finalize();
                u32::from_be_bytes([out[0], out[1], out[2], out[3]])
            }
            AnyMac::StreamMac(s) => s.tag32(nonce, message),
            AnyMac::Pmac(p) => p.tag32(nonce, message),
        }
    }

    fn algorithm(&self) -> AuthAlgorithm {
        match self {
            AnyMac::Icrc => AuthAlgorithm::Icrc,
            AnyMac::Umac32(_) => AuthAlgorithm::Umac32,
            AnyMac::HmacMd5(_) => AuthAlgorithm::HmacMd5,
            AnyMac::HmacSha1(_) => AuthAlgorithm::HmacSha1,
            AnyMac::StreamMac(_) => AuthAlgorithm::StreamMac,
            AnyMac::Pmac(_) => AuthAlgorithm::Pmac,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_roundtrip() {
        for alg in AuthAlgorithm::ALL {
            assert_eq!(AuthAlgorithm::from_selector(alg.selector()), Some(alg));
        }
        assert_eq!(AuthAlgorithm::from_selector(6), None);
        assert_eq!(AuthAlgorithm::from_selector(255), None);
    }

    #[test]
    fn icrc_is_selector_zero() {
        // The compatibility-critical invariant: 0 means plain ICRC.
        assert_eq!(AuthAlgorithm::Icrc.selector(), 0);
        assert!(!AuthAlgorithm::Icrc.is_authenticating());
        for alg in &AuthAlgorithm::ALL[1..] {
            assert!(alg.is_authenticating());
        }
    }

    #[test]
    fn table4_reference_values() {
        assert_eq!(AuthAlgorithm::Umac32.paper_gbps(), Some(4.0));
        assert_eq!(AuthAlgorithm::HmacSha1.paper_cycles_per_byte(), Some(12.6));
        assert_eq!(AuthAlgorithm::Icrc.forgery_log2(), 0);
        assert_eq!(AuthAlgorithm::Umac32.forgery_log2(), -30);
    }

    #[test]
    fn all_keyed_macs_differ_between_keys() {
        let msg = b"authenticated payload";
        for alg in &AuthAlgorithm::ALL[1..] {
            let a = AnyMac::new(*alg, &[1u8; 16]);
            let b = AnyMac::new(*alg, &[2u8; 16]);
            assert_ne!(a.tag32(1, msg), b.tag32(1, msg), "{alg:?}");
        }
    }

    #[test]
    fn all_macs_nonce_sensitive_except_icrc() {
        let msg = b"payload";
        let icrc = AnyMac::new(AuthAlgorithm::Icrc, &[0u8; 16]);
        assert_eq!(icrc.tag32(1, msg), icrc.tag32(2, msg));
        for alg in &AuthAlgorithm::ALL[1..] {
            let m = AnyMac::new(*alg, &[7u8; 16]);
            assert_ne!(m.tag32(1, msg), m.tag32(2, msg), "{alg:?}");
        }
    }

    #[test]
    fn verify_default_impl() {
        let m = AnyMac::new(AuthAlgorithm::Umac32, &[9u8; 16]);
        let t = m.tag32(10, b"data");
        assert!(m.verify(10, b"data", t));
        assert!(!m.verify(10, b"data", t.wrapping_add(1)));
    }

    #[test]
    fn icrc_mode_matches_plain_crc32() {
        let m = AnyMac::new(AuthAlgorithm::Icrc, &[0u8; 16]);
        assert_eq!(m.tag32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn algorithm_reported_correctly() {
        for alg in AuthAlgorithm::ALL {
            let m = AnyMac::new(alg, &[3u8; 16]);
            assert_eq!(m.algorithm(), alg);
        }
    }
}
