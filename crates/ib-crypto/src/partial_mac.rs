//! Partial-coverage MAC — the paper's §7 "trading-off of security strength
//! and MAC computing speed … digest a small part of the message to make
//! the authentication tag. This will increase forgery probability, but it
//! will be better than CRC" (following Adcock et al.'s ACSA work [1]).
//!
//! The sampled byte positions are *keyed and per-nonce*: an attacker who
//! does not hold the key cannot know which bytes are covered, so flipping
//! any single byte is detected with probability ≈ `coverage`. The selected
//! bytes (plus the total length) are then MAC'd with full UMAC, so covered
//! content keeps the 2⁻³⁰ bound.
//!
//! Effective single-modification forgery probability:
//! `P(forge) ≈ (1 − coverage) + coverage·2⁻³⁰` — strictly better than
//! CRC's 1.0 for any coverage > 0, and tunable against throughput.

use crate::aes::Aes128;
use crate::umac::Umac;

/// A MAC that covers a keyed pseudorandom subset of message bytes.
#[derive(Clone)]
pub struct PartialMac {
    umac: Umac,
    sampler: Aes128,
    /// Numerator of coverage out of 256 (e.g. 64 ⇒ 25 % of bytes).
    coverage_u8: u8,
}

impl PartialMac {
    /// A partial MAC covering roughly `coverage` (0, 1] of message bytes.
    pub fn new(key: &[u8; 16], coverage: f64) -> Self {
        assert!(coverage > 0.0 && coverage <= 1.0, "coverage in (0, 1]");
        let mut sampler_key = *key;
        sampler_key[0] ^= 0x99; // domain-separate sampler from MAC keying
        PartialMac {
            umac: Umac::new(key),
            sampler: Aes128::new(&sampler_key),
            coverage_u8: ((coverage * 256.0).round() as u16).clamp(1, 256) as u8,
        }
    }

    /// Fraction of bytes covered.
    pub fn coverage(&self) -> f64 {
        if self.coverage_u8 == 0 {
            // 256/256 wraps to 0 in u8; 0 encodes full coverage.
            1.0
        } else {
            self.coverage_u8 as f64 / 256.0
        }
    }

    /// Approximate probability a single byte modification goes undetected.
    pub fn miss_probability(&self) -> f64 {
        1.0 - self.coverage()
    }

    /// Extract the covered portion of `message` under `nonce`.
    ///
    /// Sampling is *block-granular* (64-byte blocks) so the sampler itself
    /// stays far cheaper than the MAC it feeds: one AES call decides the
    /// fate of 16 blocks (1 KiB of message), and covered blocks are
    /// appended with plain memcpy. Block k is covered iff its keystream
    /// byte is below the coverage threshold — unpredictable without the
    /// key, re-drawn per nonce.
    fn sample(&self, nonce: u64, message: &[u8]) -> Vec<u8> {
        let nblocks = message.len().div_ceil(64);
        let mut selected =
            Vec::with_capacity((message.len() * self.coverage_u8.max(1) as usize) / 200 + 80);
        let mut decisions = [0u8; 16];
        for group in 0..nblocks.div_ceil(16) {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&(nonce ^ 0xA17).to_be_bytes());
            block[8..].copy_from_slice(&(group as u64).to_be_bytes());
            self.sampler.encrypt_block(&mut block);
            decisions.copy_from_slice(&block);
            for (j, &decision) in decisions.iter().enumerate() {
                let k = group * 16 + j;
                if k >= nblocks {
                    break;
                }
                let covered = self.coverage_u8 == 0 || decision < self.coverage_u8;
                if covered {
                    let start = k * 64;
                    let end = (start + 64).min(message.len());
                    selected.extend_from_slice(&message[start..end]);
                }
            }
        }
        selected
    }

    /// Compute the 32-bit tag over the sampled bytes + length.
    pub fn tag32(&self, nonce: u64, message: &[u8]) -> u32 {
        let mut sampled = self.sample(nonce, message);
        sampled.extend_from_slice(&(message.len() as u64).to_le_bytes());
        self.umac.tag32(nonce, &sampled)
    }

    /// Verify a tag.
    pub fn verify(&self, nonce: u64, message: &[u8], tag: u32) -> bool {
        self.tag32(nonce, message) == tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key() -> [u8; 16] {
        *b"partial mac key!"
    }

    #[test]
    fn deterministic_and_key_sensitive() {
        let a = PartialMac::new(&key(), 0.25);
        assert_eq!(a.tag32(1, b"hello world"), a.tag32(1, b"hello world"));
        let mut k2 = key();
        k2[5] ^= 1;
        let b = PartialMac::new(&k2, 0.25);
        assert_ne!(a.tag32(1, b"hello world"), b.tag32(1, b"hello world"));
    }

    #[test]
    fn full_coverage_catches_everything() {
        let m = PartialMac::new(&key(), 1.0);
        let msg = vec![0x5Au8; 300];
        let tag = m.tag32(7, &msg);
        for i in 0..msg.len() {
            let mut tampered = msg.clone();
            tampered[i] ^= 1;
            assert!(
                !m.verify(7, &tampered, tag),
                "byte {i} missed at full coverage"
            );
        }
    }

    #[test]
    fn partial_coverage_catches_about_the_right_fraction() {
        // Block-granular sampling: use enough 64-byte blocks (128) that
        // the binomial variance of covered-block count is small.
        let m = PartialMac::new(&key(), 0.25);
        let msg = vec![0xC3u8; 8192];
        let tag = m.tag32(9, &msg);
        let mut caught = 0;
        let mut tested = 0;
        for i in (0..msg.len()).step_by(16) {
            let mut tampered = msg.clone();
            tampered[i] ^= 0xFF;
            if !m.verify(9, &tampered, tag) {
                caught += 1;
            }
            tested += 1;
        }
        let rate = caught as f64 / tested as f64;
        assert!(
            (rate - 0.25).abs() < 0.10,
            "detection rate {rate} should be near coverage 0.25"
        );
    }

    #[test]
    fn coverage_positions_change_with_nonce() {
        // The same tamper position caught under one nonce may be missed
        // under another — positions are nonce-keyed (replay of analysis
        // across packets is useless to the attacker). Scan one byte per
        // 64-byte block across 32 blocks.
        let m = PartialMac::new(&key(), 0.25);
        let msg = vec![0u8; 2048];
        let t1 = m.tag32(1, &msg);
        let t2 = m.tag32(2, &msg);
        let mut differs = false;
        for block in 0..32 {
            let mut tampered = msg.clone();
            tampered[block * 64] ^= 1;
            let caught_n1 = !m.verify(1, &tampered, t1);
            let caught_n2 = !m.verify(2, &tampered, t2);
            if caught_n1 != caught_n2 {
                differs = true;
                break;
            }
        }
        assert!(differs, "coverage pattern must vary with the nonce");
    }

    #[test]
    fn length_always_covered() {
        let m = PartialMac::new(&key(), 0.1);
        let tag = m.tag32(3, &[0u8; 100]);
        assert!(!m.verify(3, &[0u8; 99], tag));
        assert!(!m.verify(3, &[0u8; 101], tag));
    }

    #[test]
    fn miss_probability_reporting() {
        assert!((PartialMac::new(&key(), 0.25).miss_probability() - 0.75).abs() < 0.01);
        assert_eq!(PartialMac::new(&key(), 1.0).miss_probability(), 0.0);
    }

    #[test]
    #[should_panic(expected = "coverage in (0, 1]")]
    fn zero_coverage_rejected() {
        let _ = PartialMac::new(&key(), 0.0);
    }
}
