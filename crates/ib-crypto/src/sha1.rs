//! SHA-1 message digest (FIPS 180-1), implemented from the specification.
//!
//! SHA-1 underlies HMAC-SHA1, the slowest but (in 2005) strongest MAC in the
//! paper's Table 4 (12.6 cycles/byte). Like MD5, it is reproduced for the
//! evaluation, not recommended for new designs.

use crate::digest::Digest;

/// Streaming SHA-1 state.
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Sha1 {
    fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) =
            (state[0], state[1], state[2], state[3], state[4]);
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | (!b & d), 0x5A827999),
                1 => (b ^ c ^ d, 0x6ED9EBA1),
                2 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
    }

    /// One-shot SHA-1 digest.
    pub fn hash(data: &[u8]) -> [u8; 20] {
        let mut h = Self::new();
        h.update(data);
        let mut out = [0u8; 20];
        Digest::finalize_into(h, &mut out);
        out
    }
}

impl Digest for Sha1 {
    const OUTPUT_LEN: usize = 20;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Sha1 {
            state: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Data exhausted into the partial buffer; don't fall through
                // to the remainder logic, which would clobber buf_len.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            Self::compress(&mut self.state, chunk.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    fn finalize_into(mut self, out: &mut [u8]) {
        let bit_len = self.len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        Self::compress(&mut self.state, &block);
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hex;

    #[test]
    fn fips_vectors() {
        assert_eq!(
            hex(&Sha1::hash(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
        assert_eq!(
            hex(&Sha1::hash(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
        assert_eq!(
            hex(&Sha1::hash(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::hash(&data)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1500u32).map(|i| (i % 253) as u8).collect();
        for split in [0, 1, 63, 64, 65, 512, 1499, 1500] {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            let mut out = [0u8; 20];
            Digest::finalize_into(h, &mut out);
            assert_eq!(out, Sha1::hash(&data), "split {split}");
        }
    }

    #[test]
    fn padding_edges() {
        for len in [55usize, 56, 57, 63, 64, 65, 127, 128] {
            let data = vec![0x5Au8; len];
            let one = Sha1::hash(&data);
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            let mut out = [0u8; 20];
            Digest::finalize_into(h, &mut out);
            assert_eq!(out, one, "len {len}");
        }
    }
}
