//! AES-128 block cipher (FIPS 197), implemented from the specification.
//!
//! AES serves three roles in this reproduction:
//!
//! 1. PRF/KDF inside [`crate::umac`] (the real UMAC of Black et al. keys its
//!    universal hashes from AES output).
//! 2. The block cipher under [`crate::pmac`], the parallelizable MAC the
//!    paper's §7 proposes for "faster InfiniBand".
//! 3. A stand-in for the "30–70 Gbps AES security processor" the paper cites
//!    ([39]) — the `table4` bench reports its software throughput alongside
//!    the MACs.
//!
//! The S-box is *computed* at compile time from the GF(2⁸) inverse and the
//! affine transform rather than transcribed, and the whole cipher is checked
//! against the FIPS 197 Appendix C known-answer vector.

/// GF(2^8) multiplication modulo x^8 + x^4 + x^3 + x + 1 (0x11B).
const fn gf_mul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    let mut i = 0;
    while i < 8 {
        if b & 1 != 0 {
            p ^= a;
        }
        let hi = a & 0x80;
        a <<= 1;
        if hi != 0 {
            a ^= 0x1B;
        }
        b >>= 1;
        i += 1;
    }
    p
}

/// GF(2^8) inverse by exponentiation: a^254 (with 0 ↦ 0).
const fn gf_inv(a: u8) -> u8 {
    // a^254 = product over the binary expansion 0b1111_1110.
    let mut result = 1u8;
    let mut base = a;
    let mut exp = 254u32;
    while exp > 0 {
        if exp & 1 != 0 {
            result = gf_mul(result, base);
        }
        base = gf_mul(base, base);
        exp >>= 1;
    }
    result
}

const fn affine(a: u8) -> u8 {
    a ^ a.rotate_left(1) ^ a.rotate_left(2) ^ a.rotate_left(3) ^ a.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut sbox = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        sbox[i] = affine(gf_inv(i as u8));
        i += 1;
    }
    sbox
}

const fn build_inv_sbox(sbox: &[u8; 256]) -> [u8; 256] {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[sbox[i] as usize] = i as u8;
        i += 1;
    }
    inv
}

/// The AES substitution box, generated at compile time.
pub static SBOX: [u8; 256] = build_sbox();
/// Inverse substitution box.
pub static INV_SBOX: [u8; 256] = build_inv_sbox(&SBOX);

/// AES-128: 10 rounds, 11 round keys of 16 bytes each.
const ROUNDS: usize = 10;

/// An expanded AES-128 key, ready for encryption and decryption.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
    /// AES-NI availability, sampled once at key expansion so the
    /// per-block hot path reads a plain bool (see `crate::simd`).
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    use_aesni: bool,
}

impl Aes128 {
    /// Expand a 16-byte cipher key (FIPS 197 §5.2).
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i].copy_from_slice(&key[i * 4..i * 4 + 4]);
        }
        let mut rcon = 1u8;
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= rcon;
                rcon = gf_mul(rcon, 2);
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes128 {
            round_keys,
            use_aesni: crate::simd::caps().aesni,
        }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for i in 0..16 {
            state[i] ^= rk[i];
        }
    }

    fn sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = SBOX[*b as usize];
        }
    }

    fn inv_sub_bytes(state: &mut [u8; 16]) {
        for b in state.iter_mut() {
            *b = INV_SBOX[*b as usize];
        }
    }

    /// State layout: state[c*4 + r] is row r, column c (column-major, as in
    /// FIPS 197's byte ordering of the input block).
    fn shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[c * 4 + r] = s[((c + r) % 4) * 4 + r];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        let s = *state;
        for r in 1..4 {
            for c in 0..4 {
                state[((c + r) % 4) * 4 + r] = s[c * 4 + r];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[c * 4],
                state[c * 4 + 1],
                state[c * 4 + 2],
                state[c * 4 + 3],
            ];
            state[c * 4] = gf_mul(col[0], 2) ^ gf_mul(col[1], 3) ^ col[2] ^ col[3];
            state[c * 4 + 1] = col[0] ^ gf_mul(col[1], 2) ^ gf_mul(col[2], 3) ^ col[3];
            state[c * 4 + 2] = col[0] ^ col[1] ^ gf_mul(col[2], 2) ^ gf_mul(col[3], 3);
            state[c * 4 + 3] = gf_mul(col[0], 3) ^ col[1] ^ col[2] ^ gf_mul(col[3], 2);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for c in 0..4 {
            let col = [
                state[c * 4],
                state[c * 4 + 1],
                state[c * 4 + 2],
                state[c * 4 + 3],
            ];
            state[c * 4] =
                gf_mul(col[0], 14) ^ gf_mul(col[1], 11) ^ gf_mul(col[2], 13) ^ gf_mul(col[3], 9);
            state[c * 4 + 1] =
                gf_mul(col[0], 9) ^ gf_mul(col[1], 14) ^ gf_mul(col[2], 11) ^ gf_mul(col[3], 13);
            state[c * 4 + 2] =
                gf_mul(col[0], 13) ^ gf_mul(col[1], 9) ^ gf_mul(col[2], 14) ^ gf_mul(col[3], 11);
            state[c * 4 + 3] =
                gf_mul(col[0], 11) ^ gf_mul(col[1], 13) ^ gf_mul(col[2], 9) ^ gf_mul(col[3], 14);
        }
    }

    /// Encrypt one 16-byte block in place (AES-NI when available; the
    /// table implementation otherwise — bit-identical either way).
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            let mut one = [*block];
            // SAFETY: `use_aesni` is only set when detection succeeded.
            unsafe { crate::simd::aesni::encrypt_blocks(&self.round_keys, &mut one) };
            *block = one[0];
            return;
        }
        self.encrypt_block_soft(block);
    }

    /// The portable FIPS 197 table implementation of one block
    /// encryption: the oracle the AES-NI path is checked against.
    pub fn encrypt_block_soft(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[0]);
        for round in 1..ROUNDS {
            Self::sub_bytes(block);
            Self::shift_rows(block);
            Self::mix_columns(block);
            Self::add_round_key(block, &self.round_keys[round]);
        }
        Self::sub_bytes(block);
        Self::shift_rows(block);
        Self::add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Encrypt `N` independent blocks in place. With AES-NI all `N`
    /// states pipeline through the AES unit together (the PMAC-lane /
    /// CTR / packet-batch fast path); otherwise they encrypt
    /// sequentially. Output is bit-identical either way.
    pub fn encrypt_blocks<const N: usize>(&self, blocks: &mut [[u8; 16]; N]) {
        #[cfg(target_arch = "x86_64")]
        if self.use_aesni {
            // SAFETY: `use_aesni` is only set when detection succeeded.
            unsafe { crate::simd::aesni::encrypt_blocks(&self.round_keys, blocks) };
            return;
        }
        for b in blocks.iter_mut() {
            self.encrypt_block_soft(b);
        }
    }

    /// Decrypt one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; 16]) {
        Self::add_round_key(block, &self.round_keys[ROUNDS]);
        for round in (1..ROUNDS).rev() {
            Self::inv_shift_rows(block);
            Self::inv_sub_bytes(block);
            Self::add_round_key(block, &self.round_keys[round]);
            Self::inv_mix_columns(block);
        }
        Self::inv_shift_rows(block);
        Self::inv_sub_bytes(block);
        Self::add_round_key(block, &self.round_keys[0]);
    }

    /// Encrypt a copy of `block` and return it.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// Counter-mode keystream generator: fills `out` with
    /// `AES(key, nonce64 || counter)` blocks. Used as the KDF/PRF inside
    /// UMAC and the stream MAC.
    pub fn ctr_keystream(&self, nonce: u64, start_counter: u64, out: &mut [u8]) {
        let mut counter = start_counter;
        // Eight counter blocks at a time keep the AES-NI pipeline full;
        // AES is deterministic, so the output is identical to the
        // one-block-at-a-time loop below.
        let mut wide = out.chunks_exact_mut(128);
        for chunk in &mut wide {
            let mut blocks = [[0u8; 16]; 8];
            for block in blocks.iter_mut() {
                block[..8].copy_from_slice(&nonce.to_be_bytes());
                block[8..].copy_from_slice(&counter.to_be_bytes());
                counter = counter.wrapping_add(1);
            }
            self.encrypt_blocks(&mut blocks);
            for (dst, block) in chunk.chunks_exact_mut(16).zip(&blocks) {
                dst.copy_from_slice(block);
            }
        }
        for chunk in wide.into_remainder().chunks_mut(16) {
            let mut block = [0u8; 16];
            block[..8].copy_from_slice(&nonce.to_be_bytes());
            block[8..].copy_from_slice(&counter.to_be_bytes());
            self.encrypt_block(&mut block);
            chunk.copy_from_slice(&block[..chunk.len()]);
            counter = counter.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        // Spot values from the FIPS 197 S-box table.
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
        assert_eq!(INV_SBOX[0x63], 0x00);
        assert_eq!(INV_SBOX[0xed], 0x53);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    #[test]
    fn fips197_appendix_c_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let aes = Aes128::new(&key);
        assert_eq!(aes.encrypt(&plaintext), expected);
    }

    #[test]
    fn fips197_appendix_b_vector() {
        let key = *b"\x2b\x7e\x15\x16\x28\xae\xd2\xa6\xab\xf7\x15\x88\x09\xcf\x4f\x3c";
        let pt = *b"\x32\x43\xf6\xa8\x88\x5a\x30\x8d\x31\x31\x98\xa2\xe0\x37\x07\x34";
        let expected = *b"\x39\x25\x84\x1d\x02\xdc\x09\xfb\xdc\x11\x85\x97\x19\x6a\x0b\x32";
        assert_eq!(Aes128::new(&key).encrypt(&pt), expected);
    }

    #[test]
    fn inverse_steps_invert_forward_steps() {
        let mut block: [u8; 16] =
            *b"\x00\x11\x22\x33\x44\x55\x66\x77\x88\x99\xaa\xbb\xcc\xdd\xee\xff";
        let orig = block;
        Aes128::shift_rows(&mut block);
        Aes128::inv_shift_rows(&mut block);
        assert_eq!(block, orig, "shift_rows inverse");
        Aes128::mix_columns(&mut block);
        Aes128::inv_mix_columns(&mut block);
        assert_eq!(block, orig, "mix_columns inverse");
        Aes128::sub_bytes(&mut block);
        Aes128::inv_sub_bytes(&mut block);
        assert_eq!(block, orig, "sub_bytes inverse");
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(b"sixteen byte key");
        for seed in 0..32u8 {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed
                    .wrapping_mul(17)
                    .wrapping_add((i as u8).wrapping_mul(31));
            }
            let orig = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, orig, "encryption must change the block");
            aes.decrypt_block(&mut block);
            assert_eq!(block, orig);
        }
    }

    #[test]
    fn ctr_keystream_deterministic_and_counter_sensitive() {
        let aes = Aes128::new(b"\x00\x01\x02\x03\x04\x05\x06\x07\x08\x09\x0a\x0b\x0c\x0d\x0e\x0f");
        let mut a = [0u8; 48];
        let mut b = [0u8; 48];
        aes.ctr_keystream(7, 0, &mut a);
        aes.ctr_keystream(7, 0, &mut b);
        assert_eq!(a, b);
        aes.ctr_keystream(7, 1, &mut b);
        assert_ne!(a, b);
        // Block i of counter 1 equals block i+1 of counter 0.
        assert_eq!(a[16..32], b[0..16]);
    }

    #[test]
    fn dispatched_paths_match_soft_implementation() {
        let aes = Aes128::new(b"equivalence key!");
        let mut quad = [[0u8; 16]; 4];
        for seed in 0..64u8 {
            let mut block = [0u8; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = seed
                    .wrapping_mul(73)
                    .wrapping_add((i as u8).wrapping_mul(29));
            }
            let mut soft = block;
            aes.encrypt_block_soft(&mut soft);
            let mut fast = block;
            aes.encrypt_block(&mut fast);
            assert_eq!(fast, soft, "seed {seed}");
            quad[(seed % 4) as usize] = block;
            if seed % 4 == 3 {
                let mut batch = quad;
                aes.encrypt_blocks(&mut batch);
                for (lane, b) in quad.iter().enumerate() {
                    let mut want = *b;
                    aes.encrypt_block_soft(&mut want);
                    assert_eq!(batch[lane], want, "seed {seed} lane {lane}");
                }
            }
        }
    }

    #[test]
    fn gf_mul_spot_checks() {
        assert_eq!(gf_mul(0x57, 0x83), 0xc1); // FIPS 197 §4.2 example
        assert_eq!(gf_mul(0x57, 0x13), 0xfe);
        assert_eq!(gf_mul(1, 0xAB), 0xAB);
        assert_eq!(gf_mul(0, 0xAB), 0);
    }
}
