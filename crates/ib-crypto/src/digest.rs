//! A minimal digest abstraction so [`crate::hmac::Hmac`] can wrap any of the
//! hash functions in this crate without dynamic dispatch.

/// A cryptographic hash function with a fixed output size and an internal
/// block size (the block size is what HMAC pads keys to).
pub trait Digest: Clone {
    /// Digest output length in bytes (16 for MD5, 20 for SHA-1).
    const OUTPUT_LEN: usize;
    /// Internal compression-function block size in bytes (64 for both).
    const BLOCK_LEN: usize;
    /// Maximum output length across implementors, for stack buffers.
    const MAX_OUTPUT_LEN: usize = 64;

    /// Fresh hash state.
    fn new() -> Self;
    /// Absorb `data`.
    fn update(&mut self, data: &[u8]);
    /// Finish and write the digest into `out[..Self::OUTPUT_LEN]`.
    /// `out` must be at least `OUTPUT_LEN` bytes.
    fn finalize_into(self, out: &mut [u8]);

    /// Convenience: one-shot digest into a fixed 64-byte buffer, returning
    /// the valid prefix length.
    fn digest(data: &[u8]) -> ([u8; 64], usize) {
        let mut h = Self::new();
        h.update(data);
        let mut out = [0u8; 64];
        h.finalize_into(&mut out);
        (out, Self::OUTPUT_LEN)
    }
}

/// Hex-encode a byte slice (test helper, also used by examples).
pub fn hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        let _ = write!(s, "{b:02x}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::hex;

    #[test]
    fn hex_encodes() {
        assert_eq!(hex(&[0x00, 0xff, 0x0a]), "00ff0a");
        assert_eq!(hex(&[]), "");
    }
}
