//! Streaming (init/update/finalize) counterpart of [`crate::mac::AnyMac`].
//!
//! The paper's viability argument (§5.2) is that the MAC runs at link rate
//! — which only holds if the implementation can consume the invariant
//! fields *as they stream past* instead of materializing a contiguous copy
//! of the message first. [`MacStream`] is that interface: obtain one from
//! [`AnyMac::stream`], feed the message in arbitrary slices, and
//! [`MacStream::finalize`] yields a tag byte-identical to the one-shot
//! [`crate::mac::Mac::tag32`] (property-tested across random split points).
//!
//! Nothing in init/update/finalize heap-allocates, so the per-packet
//! tag/verify path stays allocation-free end to end.

use crate::crc::Crc32;
use crate::hmac::Hmac;
use crate::mac::{AnyMac, Tag32};
use crate::md5::Md5;
use crate::pmac::PmacStream;
use crate::sha1::Sha1;
use crate::stream_mac::{StreamMac, StreamMacState};
use crate::umac::UmacStream;

/// An in-flight incremental MAC computation for one (key, nonce) pair.
///
/// Borrows the keyed [`AnyMac`] where key material is large (UMAC's NH key,
/// PMAC's AES schedule); the HMAC and CRC variants own their small running
/// state outright.
pub enum MacStream<'k> {
    /// Plain CRC-32 (selector 0): ignores the nonce, like [`AnyMac::Icrc`].
    Icrc(Crc32),
    Umac32(UmacStream<'k>),
    HmacMd5(Hmac<Md5>),
    HmacSha1(Hmac<Sha1>),
    StreamMac {
        mac: &'k StreamMac,
        st: StreamMacState,
        nonce: u64,
    },
    Pmac(PmacStream<'k>),
}

impl AnyMac {
    /// Start an incremental tag computation under `nonce`.
    #[inline]
    pub fn stream(&self, nonce: u64) -> MacStream<'_> {
        match self {
            AnyMac::Icrc => MacStream::Icrc(Crc32::new()),
            AnyMac::Umac32(u) => MacStream::Umac32(u.stream(nonce)),
            // HMAC has no nonce input; prepend it, mirroring the one-shot
            // path in `AnyMac::tag32`.
            AnyMac::HmacMd5(key) => {
                let mut h = Hmac::<Md5>::new(key);
                h.update(&nonce.to_be_bytes());
                MacStream::HmacMd5(h)
            }
            AnyMac::HmacSha1(key) => {
                let mut h = Hmac::<Sha1>::new(key);
                h.update(&nonce.to_be_bytes());
                MacStream::HmacSha1(h)
            }
            AnyMac::StreamMac(mac) => MacStream::StreamMac {
                mac,
                st: mac.start(),
                nonce,
            },
            AnyMac::Pmac(p) => MacStream::Pmac(p.stream(nonce)),
        }
    }
}

impl MacStream<'_> {
    /// Absorb the next `data` bytes of the message.
    #[inline]
    pub fn update(&mut self, data: &[u8]) {
        match self {
            MacStream::Icrc(c) => {
                c.update_auto(data);
            }
            MacStream::Umac32(s) => s.update(data),
            MacStream::HmacMd5(h) => h.update(data),
            MacStream::HmacSha1(h) => h.update(data),
            MacStream::StreamMac { mac, st, .. } => mac.update(st, data),
            MacStream::Pmac(s) => s.update(data),
        }
    }

    /// Finish and return the 32-bit tag.
    #[inline]
    pub fn finalize(self) -> Tag32 {
        match self {
            MacStream::Icrc(c) => c.finalize(),
            MacStream::Umac32(s) => s.finalize(),
            MacStream::HmacMd5(h) => {
                let out = h.finalize();
                u32::from_be_bytes([out[0], out[1], out[2], out[3]])
            }
            MacStream::HmacSha1(h) => {
                let out = h.finalize();
                u32::from_be_bytes([out[0], out[1], out[2], out[3]])
            }
            MacStream::StreamMac { mac, st, nonce } => mac.finish(st, nonce),
            MacStream::Pmac(s) => s.finalize(),
        }
    }

    /// Finish and compare against `tag` (XOR-compare, like
    /// [`crate::mac::Mac::verify`]).
    pub fn verify(self, tag: Tag32) -> bool {
        (self.finalize() ^ tag) == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::{AuthAlgorithm, Mac};

    #[test]
    fn stream_equals_oneshot_for_every_algorithm() {
        for alg in AuthAlgorithm::ALL {
            let mac = AnyMac::new(alg, &[0x5Au8; 16]);
            for len in [0usize, 1, 3, 4, 5, 63, 64, 100, 1024, 1500, 4096] {
                let msg: Vec<u8> = (0..len).map(|i| (i * 31 + 5) as u8).collect();
                let expect = mac.tag32(1234, &msg);
                let mut s = mac.stream(1234);
                s.update(&msg);
                assert_eq!(s.finalize(), expect, "{alg:?} len {len} single");
                let mut s = mac.stream(1234);
                for chunk in msg.chunks(7) {
                    s.update(chunk);
                }
                assert_eq!(s.finalize(), expect, "{alg:?} len {len} chunked");
            }
        }
    }

    #[test]
    fn stream_verify_accepts_and_rejects() {
        let mac = AnyMac::new(AuthAlgorithm::Umac32, &[9u8; 16]);
        let tag = mac.tag32(7, b"verify me");
        let mut s = mac.stream(7);
        s.update(b"verify me");
        assert!(s.verify(tag));
        let mut s = mac.stream(7);
        s.update(b"verify mE");
        assert!(!s.verify(tag));
    }

    #[test]
    fn icrc_stream_ignores_nonce() {
        let mac = AnyMac::new(AuthAlgorithm::Icrc, &[0u8; 16]);
        let mut a = mac.stream(1);
        let mut b = mac.stream(2);
        a.update(b"123456789");
        b.update(b"123456789");
        let (ta, tb) = (a.finalize(), b.finalize());
        assert_eq!(ta, tb);
        assert_eq!(ta, 0xCBF4_3926);
    }
}
