//! Runtime-dispatched SIMD kernels for the authenticated datapath.
//!
//! Every kernel here is an *alternative implementation* of a scalar
//! routine elsewhere in this crate — never a new algorithm. The scalar
//! code stays the portable fallback and the correctness oracle: each
//! vector kernel is mathematically exact (CRC folding is linear algebra
//! over GF(2), the NH sum is commutative mod 2^64, PMAC's Σ is an XOR,
//! AES is a deterministic permutation), so outputs are bit-identical on
//! every input, and the `simd_equivalence` property test enforces it.
//!
//! ## Dispatch policy
//!
//! CPU features are detected **once**, on first use, via
//! [`std::arch::is_x86_feature_detected!`] behind a `OnceLock`
//! ([`caps`]). Hot paths read the cached [`SimdCaps`] — no per-call
//! detection cost. On non-x86_64 targets every capability is `false`
//! and all call sites fall through to the scalar kernels.
//!
//! Setting the environment variable `IB_SIMD=off` (checked at the same
//! single detection point) reports an all-false capability set, forcing
//! every call site onto the scalar path. CI runs the `mac_table4`
//! harness both ways and byte-diffs the structural output, so the
//! dispatch layer cannot silently change results.

pub mod crc;
pub mod gf128;
pub mod nh;

#[cfg(target_arch = "x86_64")]
pub mod aesni;

use std::sync::OnceLock;

/// CPU capabilities the kernels in this module can use, detected once.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdCaps {
    /// SSE2 vector integer ops (x86_64 baseline, but still gated so
    /// `IB_SIMD=off` can force scalar).
    pub sse2: bool,
    /// PCLMULQDQ carry-less multiply (CRC-32 folding, GHASH).
    pub pclmul: bool,
    /// 256-bit integer vectors (wider NH lanes).
    pub avx2: bool,
    /// AES round instructions (block-parallel PMAC, AEAD, pads).
    pub aesni: bool,
}

impl SimdCaps {
    /// True when any vector path is available at all.
    pub fn any(&self) -> bool {
        self.sse2 || self.pclmul || self.avx2 || self.aesni
    }
}

static CAPS: OnceLock<SimdCaps> = OnceLock::new();

/// The process-wide capability set: detected on first call, cached
/// forever. Honors `IB_SIMD=off` (any value other than `off`, including
/// unset, enables detection).
#[inline]
pub fn caps() -> SimdCaps {
    *CAPS.get_or_init(detect)
}

fn detect() -> SimdCaps {
    if std::env::var("IB_SIMD").map(|v| v == "off") == Ok(true) {
        return SimdCaps::default();
    }
    #[cfg(target_arch = "x86_64")]
    {
        SimdCaps {
            sse2: is_x86_feature_detected!("sse2"),
            pclmul: is_x86_feature_detected!("pclmulqdq"),
            avx2: is_x86_feature_detected!("avx2"),
            aesni: is_x86_feature_detected!("aes"),
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        SimdCaps::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_are_stable_across_calls() {
        let a = caps();
        let b = caps();
        assert_eq!(a.sse2, b.sse2);
        assert_eq!(a.pclmul, b.pclmul);
        assert_eq!(a.avx2, b.avx2);
        assert_eq!(a.aesni, b.aesni);
    }

    #[test]
    fn default_caps_are_all_off() {
        let c = SimdCaps::default();
        assert!(!c.any());
    }
}
