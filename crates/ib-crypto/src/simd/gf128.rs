//! GF(2¹²⁸) multiplication for GHASH (scalar + PCLMULQDQ).
//!
//! GHASH (NIST SP 800-38D) treats a 16-byte block as a polynomial over
//! GF(2) with the *most significant bit first* — an awkward order for
//! both integer and carry-less-multiply hardware. This module therefore
//! works in the **bit-reflected representation**: a block is loaded as a
//! big-endian `u128` and bit-reversed once ([`from_block`]), after which
//! coefficient *i* of the polynomial sits at plain integer bit *i*.
//! Multiplication is then ordinary carry-less multiplication followed by
//! reduction modulo `g(t) = t¹²⁸ + t⁷ + t² + t + 1` — no shift fix-ups.
//!
//! Three multipliers, all bit-identical:
//!
//! * [`mul_scalar`] — shift-and-XOR over every bit; the definition and
//!   test oracle.
//! * [`GhashKey`]'s table path — Shoup's 4-bit method (one operand, H,
//!   is fixed per key, so 16 precomputed multiples cover it). The
//!   portable fast path.
//! * [`GhashKey`]'s PCLMUL path — Karatsuba over three 64×64 carry-less
//!   multiplies plus the two-step fold reduction.

/// Load a GHASH block into the reflected representation.
#[inline]
pub fn from_block(b: &[u8; 16]) -> u128 {
    u128::from_be_bytes(*b).reverse_bits()
}

/// Store a reflected element back to GHASH block bytes.
#[inline]
pub fn to_block(x: u128) -> [u8; 16] {
    x.reverse_bits().to_be_bytes()
}

/// Reduce a 256-bit carry-less product (lo = coeffs 0..127, hi = coeffs
/// 128..255) modulo `t¹²⁸ + t⁷ + t² + t + 1`.
#[inline]
fn reduce(lo: u128, hi: u128) -> u128 {
    // t¹²⁸ ≡ t⁷ + t² + t + 1: fold `hi` down, then fold the ≤7 bits
    // that overflowed the first fold (they cannot overflow again).
    let lo2 = lo ^ hi ^ (hi << 1) ^ (hi << 2) ^ (hi << 7);
    let hi2 = (hi >> 127) ^ (hi >> 126) ^ (hi >> 121);
    lo2 ^ hi2 ^ (hi2 << 1) ^ (hi2 << 2) ^ (hi2 << 7)
}

/// Carry-less 64×64 → 128 multiply, one bit at a time (branchless).
fn clmul64_soft(a: u64, b: u64) -> u128 {
    let a = a as u128;
    let mut r = 0u128;
    for i in 0..64 {
        r ^= (a << i) * (((b >> i) & 1) as u128);
    }
    r
}

/// Reference multiplication in the reflected representation: full
/// 128×128 carry-less product via four soft 64-bit multiplies, then
/// reduction. The oracle every fast path is tested against.
pub fn mul_scalar(x: u128, y: u128) -> u128 {
    let (x0, x1) = (x as u64, (x >> 64) as u64);
    let (y0, y1) = (y as u64, (y >> 64) as u64);
    let lo = clmul64_soft(x0, y0);
    let hi = clmul64_soft(x1, y1);
    let mid = clmul64_soft(x0, y1) ^ clmul64_soft(x1, y0);
    reduce(lo ^ (mid << 64), hi ^ (mid >> 64))
}

/// A fixed GHASH key H with its precomputed 4-bit multiple table. All
/// products [`GhashKey::mul`] computes are against this H.
#[derive(Clone)]
pub struct GhashKey {
    /// H in reflected representation (for the PCLMUL path).
    h: u128,
    /// `v·H` for every 4-bit polynomial v (Shoup's method).
    table: [u128; 16],
}

impl GhashKey {
    /// Precompute from the GHASH key block (`H = AES_K(0¹²⁸)` in GCM).
    pub fn new(h_block: &[u8; 16]) -> Self {
        let h = from_block(h_block);
        let mut table = [0u128; 16];
        for v in 1..16u32 {
            // v·H = Σ H·tʲ over the set bits j of v.
            let mut acc = 0u128;
            let mut pow = h; // H·tʲ
            for j in 0..4 {
                if (v >> j) & 1 == 1 {
                    acc ^= pow;
                }
                if j < 3 {
                    pow = mul_by_t(pow);
                }
            }
            table[v as usize] = acc;
        }
        GhashKey { h, table }
    }

    /// `x · H`, fastest available kernel; bit-identical to
    /// [`mul_scalar`]`(x, h)`.
    #[inline]
    pub fn mul(&self, x: u128) -> u128 {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::caps().pclmul {
            // SAFETY: pclmul detected (sse2 is baseline).
            return unsafe { mul_clmul(x, self.h) };
        }
        self.mul_table(x)
    }

    /// Shoup's 4-bit table walk, highest nibble first: multiply the
    /// accumulator by t⁴ (with fold) and add the nibble's multiple.
    pub fn mul_table(&self, x: u128) -> u128 {
        let mut acc = 0u128;
        for j in (0..32).rev() {
            let overflow = acc >> 124;
            acc = (acc << 4) ^ overflow ^ (overflow << 1) ^ (overflow << 2) ^ (overflow << 7);
            acc ^= self.table[((x >> (4 * j)) & 0xF) as usize];
        }
        acc
    }
}

/// Multiply a reflected element by t (degree bump with fold).
#[inline]
fn mul_by_t(x: u128) -> u128 {
    let carry = x >> 127;
    (x << 1) ^ carry ^ (carry << 1) ^ (carry << 2) ^ (carry << 7)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2", enable = "pclmulqdq")]
unsafe fn mul_clmul(x: u128, h: u128) -> u128 {
    use core::arch::x86_64::*;
    unsafe {
        let a = _mm_set_epi64x((x >> 64) as i64, x as i64);
        let b = _mm_set_epi64x((h >> 64) as i64, h as i64);
        let lo = _mm_clmulepi64_si128(a, b, 0x00);
        let hi = _mm_clmulepi64_si128(a, b, 0x11);
        // Karatsuba middle term: (x0 ^ x1)·(h0 ^ h1) ^ lo ^ hi.
        let ax = _mm_xor_si128(a, _mm_srli_si128(a, 8));
        let bx = _mm_xor_si128(b, _mm_srli_si128(b, 8));
        let mid = _mm_xor_si128(_mm_clmulepi64_si128(ax, bx, 0x00), _mm_xor_si128(lo, hi));
        let mut lo_w = [0u64; 2];
        let mut hi_w = [0u64; 2];
        let mut mid_w = [0u64; 2];
        _mm_storeu_si128(lo_w.as_mut_ptr() as *mut __m128i, lo);
        _mm_storeu_si128(hi_w.as_mut_ptr() as *mut __m128i, hi);
        _mm_storeu_si128(mid_w.as_mut_ptr() as *mut __m128i, mid);
        let lo = lo_w[0] as u128 | ((lo_w[1] as u128) << 64);
        let hi = hi_w[0] as u128 | ((hi_w[1] as u128) << 64);
        let mid = mid_w[0] as u128 | ((mid_w[1] as u128) << 64);
        reduce(lo ^ (mid << 64), hi ^ (mid >> 64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(i: u64) -> u128 {
        let a = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (a as u128) << 64 | a.rotate_left(17) as u128
    }

    #[test]
    fn block_round_trip() {
        let b: [u8; 16] = *b"0123456789abcdef";
        assert_eq!(to_block(from_block(&b)), b);
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        for i in 0..8u64 {
            let (a, b, c) = (sample(i), sample(i + 100), sample(i + 200));
            assert_eq!(mul_scalar(a, b), mul_scalar(b, a));
            assert_eq!(mul_scalar(a, b ^ c), mul_scalar(a, b) ^ mul_scalar(a, c));
        }
        // 1 (the polynomial "1", bit 0 in reflected form) is the identity.
        assert_eq!(mul_scalar(sample(3), 1), sample(3));
    }

    #[test]
    fn table_path_matches_oracle() {
        for i in 0..16u64 {
            let h = to_block(sample(i));
            let key = GhashKey::new(&h);
            for j in 0..16u64 {
                let x = sample(j + 500);
                assert_eq!(key.mul_table(x), mul_scalar(x, from_block(&h)), "{i}/{j}");
            }
        }
    }

    #[test]
    fn dispatched_path_matches_oracle() {
        for i in 0..16u64 {
            let h = to_block(sample(i + 31));
            let key = GhashKey::new(&h);
            for j in 0..16u64 {
                let x = sample(j + 77);
                assert_eq!(key.mul(x), mul_scalar(x, from_block(&h)), "{i}/{j}");
            }
        }
    }
}
