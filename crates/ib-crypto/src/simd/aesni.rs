//! AES-NI round-instruction kernels over pre-expanded round keys.
//!
//! The `aesenc`/`aesenclast` instructions perform exactly one FIPS 197
//! round (SubBytes∘ShiftRows∘MixColumns∘AddRoundKey), so driving them
//! with the same expanded key schedule as the table implementation in
//! [`crate::aes`] produces bit-identical ciphertext — AES is a
//! deterministic permutation, there is no reassociation to reason about.
//!
//! The multi-block entry point keeps N independent states in flight
//! through each round: the AES unit is pipelined, so 4–8 parallel
//! blocks (PMAC lanes, CTR keystream, UMAC pads for a packet batch)
//! approach one block per `aesenc` throughput instead of serializing on
//! the ~4-cycle latency.

/// Encrypt `N` independent blocks in place under the expanded schedule.
///
/// # Safety
///
/// Caller must ensure the CPU supports AES-NI and SSE2 (check
/// [`crate::simd::caps`]`().aesni`).
#[target_feature(enable = "sse2", enable = "aes")]
pub unsafe fn encrypt_blocks<const N: usize>(rk: &[[u8; 16]; 11], blocks: &mut [[u8; 16]; N]) {
    use core::arch::x86_64::*;
    unsafe {
        let keys: [__m128i; 11] =
            std::array::from_fn(|r| _mm_loadu_si128(rk[r].as_ptr() as *const __m128i));
        let mut state: [__m128i; N] = std::array::from_fn(|i| {
            _mm_xor_si128(
                _mm_loadu_si128(blocks[i].as_ptr() as *const __m128i),
                keys[0],
            )
        });
        for key in &keys[1..10] {
            for s in state.iter_mut() {
                *s = _mm_aesenc_si128(*s, *key);
            }
        }
        for (i, s) in state.iter_mut().enumerate() {
            *s = _mm_aesenclast_si128(*s, keys[10]);
            _mm_storeu_si128(blocks[i].as_mut_ptr() as *mut __m128i, *s);
        }
    }
}

#[cfg(test)]
mod tests {
    // Equivalence with the table implementation is tested from
    // `crate::aes` (which owns a key schedule to test with) and by the
    // workspace `simd_equivalence` corpus test.
}
