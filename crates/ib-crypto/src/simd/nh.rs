//! Vectorized NH inner loops for UMAC (SSE2 / AVX2, plus a 4-buffer
//! lockstep variant for the short-packet regime).
//!
//! NH is `Σ (m₂ᵢ +₃₂ k₂ᵢ)·(m₂ᵢ₊₁ +₃₂ k₂ᵢ₊₁) mod 2⁶⁴`: the additions are
//! lane-local 32-bit wraps and the accumulation is a wrapping 64-bit
//! sum, so any evaluation order produces the identical value — the
//! vector kernels below are bit-exact drop-ins for the scalar loop in
//! [`crate::umac`].
//!
//! The SSE2 trick: after `a = m +₃₂ k` a lane pair `[a₀, a₁]` sits in
//! one 64-bit lane; `_mm_mul_epu32(a, a >> 32)` multiplies the even
//! 32-bit lanes of both operands, yielding `a₀·a₁` (and `a₂·a₃` in the
//! upper lane) directly — two NH products per `pmuludq`.

/// Scalar reference: whole 8-byte pairs only (`data.len() % 8 == 0`,
/// `keys.len() == data.len() / 4`). Always available; the oracle for
/// the vector paths.
pub fn nh_pairs_scalar(mut sum: u64, keys: &[u32], data: &[u8]) -> u64 {
    debug_assert_eq!(data.len() % 8, 0);
    debug_assert_eq!(keys.len(), data.len() / 4);
    for (pair, k) in data.chunks_exact(8).zip(keys.chunks_exact(2)) {
        let m0 = u32::from_le_bytes(pair[0..4].try_into().unwrap());
        let m1 = u32::from_le_bytes(pair[4..8].try_into().unwrap());
        let a = m0.wrapping_add(k[0]) as u64;
        let b = m1.wrapping_add(k[1]) as u64;
        sum = sum.wrapping_add(a.wrapping_mul(b));
    }
    sum
}

/// NH over whole 8-byte pairs, fastest available kernel. Same contract
/// as [`nh_pairs_scalar`]; bit-identical result.
#[inline]
pub fn nh_pairs(sum: u64, keys: &[u32], data: &[u8]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        let caps = crate::simd::caps();
        if caps.avx2 && data.len() >= 128 {
            // SAFETY: avx2 implies sse2; detected above.
            return unsafe { nh_pairs_avx2(sum, keys, data) };
        }
        if caps.sse2 && data.len() >= 16 {
            // SAFETY: detected above.
            return unsafe { nh_pairs_sse2(sum, keys, data) };
        }
    }
    nh_pairs_scalar(sum, keys, data)
}

/// Four NH accumulators advanced in lockstep over the shared key window:
/// `len` bytes (a multiple of 8, within every buffer) are hashed from
/// each of the four buffers. The shared key vector is loaded once per
/// step and the four multiply chains are independent, so the block
/// cipher ports stay saturated even when each packet alone is too short
/// for wide vectors to win.
#[inline]
pub fn nh_pairs_x4(sums: [u64; 4], keys: &[u32], bufs: [&[u8]; 4], len: usize) -> [u64; 4] {
    debug_assert_eq!(len % 8, 0);
    debug_assert!(bufs.iter().all(|b| b.len() >= len));
    debug_assert!(keys.len() >= len / 4);
    #[cfg(target_arch = "x86_64")]
    if crate::simd::caps().sse2 && len >= 16 {
        // SAFETY: sse2 detected above; bounds asserted above.
        return unsafe { nh_pairs_x4_sse2(sums, keys, bufs, len) };
    }
    let mut out = sums;
    for (acc, buf) in out.iter_mut().zip(bufs) {
        *acc = nh_pairs_scalar(*acc, &keys[..len / 4], &buf[..len]);
    }
    out
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn nh_pairs_sse2(sum: u64, keys: &[u32], data: &[u8]) -> u64 {
    use core::arch::x86_64::*;
    unsafe {
        let mut acc = _mm_setzero_si128();
        let blocks = data.len() / 16;
        let dp = data.as_ptr();
        let kp = keys.as_ptr();
        for i in 0..blocks {
            let m = _mm_loadu_si128(dp.add(i * 16) as *const __m128i);
            let k = _mm_loadu_si128(kp.add(i * 4) as *const __m128i);
            let a = _mm_add_epi32(m, k);
            let prod = _mm_mul_epu32(a, _mm_srli_epi64(a, 32));
            acc = _mm_add_epi64(acc, prod);
        }
        let mut lanes = [0u64; 2];
        _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc);
        let vec_sum = lanes[0].wrapping_add(lanes[1]);
        // Odd trailing pair (data length 8 mod 16) stays scalar.
        nh_pairs_scalar(
            sum.wrapping_add(vec_sum),
            &keys[blocks * 4..],
            &data[blocks * 16..],
        )
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn nh_pairs_avx2(sum: u64, keys: &[u32], data: &[u8]) -> u64 {
    use core::arch::x86_64::*;
    unsafe {
        // Two independent accumulator chains, 64 bytes per iteration:
        // the multiply results land in alternating accumulators so the
        // loop is bound by multiply/load throughput, not by the latency
        // of a single vpaddq chain.
        let mut acc0 = _mm256_setzero_si256();
        let mut acc1 = _mm256_setzero_si256();
        let pairs64 = data.len() / 64;
        let dp = data.as_ptr();
        let kp = keys.as_ptr();
        for i in 0..pairs64 {
            let m0 = _mm256_loadu_si256(dp.add(i * 64) as *const __m256i);
            let k0 = _mm256_loadu_si256(kp.add(i * 16) as *const __m256i);
            let a0 = _mm256_add_epi32(m0, k0);
            acc0 = _mm256_add_epi64(acc0, _mm256_mul_epu32(a0, _mm256_srli_epi64(a0, 32)));
            let m1 = _mm256_loadu_si256(dp.add(i * 64 + 32) as *const __m256i);
            let k1 = _mm256_loadu_si256(kp.add(i * 16 + 8) as *const __m256i);
            let a1 = _mm256_add_epi32(m1, k1);
            acc1 = _mm256_add_epi64(acc1, _mm256_mul_epu32(a1, _mm256_srli_epi64(a1, 32)));
        }
        let mut done = pairs64 * 64;
        if data.len() - done >= 32 {
            let m = _mm256_loadu_si256(dp.add(done) as *const __m256i);
            let k = _mm256_loadu_si256(kp.add(done / 4) as *const __m256i);
            let a = _mm256_add_epi32(m, k);
            acc0 = _mm256_add_epi64(acc0, _mm256_mul_epu32(a, _mm256_srli_epi64(a, 32)));
            done += 32;
        }
        let acc = _mm256_add_epi64(acc0, acc1);
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, acc);
        let vec_sum = lanes[0]
            .wrapping_add(lanes[1])
            .wrapping_add(lanes[2])
            .wrapping_add(lanes[3]);
        // Up to 24 trailing bytes: the SSE2 kernel (or scalar) finishes.
        nh_pairs_sse2(sum.wrapping_add(vec_sum), &keys[done / 4..], &data[done..])
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2")]
unsafe fn nh_pairs_x4_sse2(sums: [u64; 4], keys: &[u32], bufs: [&[u8]; 4], len: usize) -> [u64; 4] {
    use core::arch::x86_64::*;
    unsafe {
        let mut acc = [_mm_setzero_si128(); 4];
        let blocks = len / 16;
        let kp = keys.as_ptr();
        for i in 0..blocks {
            let k = _mm_loadu_si128(kp.add(i * 4) as *const __m128i);
            for (j, buf) in bufs.iter().enumerate() {
                let m = _mm_loadu_si128(buf.as_ptr().add(i * 16) as *const __m128i);
                let a = _mm_add_epi32(m, k);
                acc[j] = _mm_add_epi64(acc[j], _mm_mul_epu32(a, _mm_srli_epi64(a, 32)));
            }
        }
        let mut out = sums;
        for (j, buf) in bufs.iter().enumerate() {
            let mut lanes = [0u64; 2];
            _mm_storeu_si128(lanes.as_mut_ptr() as *mut __m128i, acc[j]);
            out[j] = nh_pairs_scalar(
                out[j].wrapping_add(lanes[0]).wrapping_add(lanes[1]),
                &keys[blocks * 4..len / 4],
                &buf[blocks * 16..len],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: usize) -> Vec<u32> {
        (0..n as u32).map(|i| i.wrapping_mul(0x9E37_79B9)).collect()
    }

    fn data(n: usize) -> Vec<u8> {
        (0..n as u32)
            .map(|i| (i.wrapping_mul(167) >> 3) as u8)
            .collect()
    }

    #[test]
    fn vector_matches_scalar_all_pair_counts() {
        for pairs in 0..64 {
            let d = data(pairs * 8);
            let k = keys(pairs * 2);
            assert_eq!(
                nh_pairs(7, &k, &d),
                nh_pairs_scalar(7, &k, &d),
                "pairs {pairs}"
            );
        }
    }

    #[test]
    fn lockstep_matches_independent() {
        let bufs_owned: Vec<Vec<u8>> = (0..4).map(|j| data(512 + j * 8)).collect();
        let bufs = [
            &bufs_owned[0][..],
            &bufs_owned[1][..],
            &bufs_owned[2][..],
            &bufs_owned[3][..],
        ];
        let k = keys(128);
        for len in [0usize, 8, 16, 24, 256, 512] {
            let got = nh_pairs_x4([1, 2, 3, 4], &k, bufs, len);
            for j in 0..4 {
                let want = nh_pairs_scalar(1 + j as u64, &k[..len / 4], &bufs[j][..len]);
                assert_eq!(got[j], want, "len {len} lane {j}");
            }
        }
    }
}
