//! PCLMULQDQ carry-less CRC-32 folding (reflected IEEE 802.3).
//!
//! The kernel follows the Intel "Fast CRC Computation for Generic
//! Polynomials Using PCLMULQDQ Instruction" white paper in its
//! bit-reflected form: four independent 128-bit folding chains consume
//! 64 bytes per iteration (hiding the carry-less multiply latency),
//! then fold to one chain, 16 bytes at a time, and a Barrett reduction
//! collapses the final 128-bit remainder to the 32-bit CRC register.
//! Everything is linear algebra over GF(2), so the result is
//! bit-identical to the slice-by-8 table kernel on every input —
//! enforced by the tests below and the `simd_equivalence` corpus test.
//!
//! The folding constants are `x^N mod P(x)` for the fold distances
//! (N = 4·128+32, 4·128−32, 128+32, 128−32, 64, 32) plus the Barrett
//! pair (P', µ), all in the reflected-domain encoding the white paper
//! derives.

/// Buffers shorter than this stay on the table kernel: below one full
/// fold-by-4 block the setup/reduction cost dominates.
pub const PCLMUL_MIN_LEN: usize = 64;

/// Fold/reduce constants for the reflected IEEE 802.3 polynomial.
#[cfg(target_arch = "x86_64")]
mod k {
    pub const K1: i64 = 0x1_5444_2bd4; // x^(4·128+32) mod P
    pub const K2: i64 = 0x1_c6e4_1596; // x^(4·128−32) mod P
    pub const K3: i64 = 0x1_7519_97d0; // x^(128+32) mod P
    pub const K4: i64 = 0x0_ccaa_009e; // x^(128−32) mod P
    pub const K5: i64 = 0x1_63cd_6124; // x^64 mod P
    pub const P_X: i64 = 0x1_db71_0641; // P'(x), bit-reversed polynomial
    pub const MU: i64 = 0x1_f701_1641; // µ, bit-reversed
}

/// Advance the (non-inverted) CRC-32 register over `data` with the
/// carry-less folding kernel, falling back to the byte table for the
/// sub-16-byte tail. Caller must have checked `caps().pclmul`; lengths
/// below [`PCLMUL_MIN_LEN`] are handled (they just take the table path
/// immediately).
///
/// The `state` convention matches [`crate::crc::Crc32`]: seeded all-ones,
/// complement applied only at finalize.
#[cfg(target_arch = "x86_64")]
pub fn crc32_fold_update(state: u32, data: &[u8]) -> u32 {
    if data.len() < PCLMUL_MIN_LEN {
        return table_update(state, data);
    }
    // SAFETY: the caller checked `caps().pclmul` (detect() only reports
    // pclmul when the CPU has it), and sse2 is the x86_64 baseline.
    unsafe { fold_update(state, data) }
}

/// Portable stub so call sites compile unchanged off x86_64 (dispatch
/// never selects it there — `caps().pclmul` is always false).
#[cfg(not(target_arch = "x86_64"))]
pub fn crc32_fold_update(state: u32, data: &[u8]) -> u32 {
    table_update(state, data)
}

/// Byte-table tail: same recurrence as [`crate::crc::Crc32::update`].
fn table_update(state: u32, data: &[u8]) -> u32 {
    let mut crc = state;
    for &b in data {
        crc = crate::crc::CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2", enable = "pclmulqdq")]
unsafe fn fold_update(state: u32, data: &[u8]) -> u32 {
    use core::arch::x86_64::*;
    unsafe {
        let mut ptr = data.as_ptr();
        let mut len = data.len();

        // Load the first 64 bytes into four folding chains and inject
        // the incoming register into the lowest-order lane.
        let mut x3 = _mm_loadu_si128(ptr as *const __m128i);
        let mut x2 = _mm_loadu_si128(ptr.add(16) as *const __m128i);
        let mut x1 = _mm_loadu_si128(ptr.add(32) as *const __m128i);
        let mut x0 = _mm_loadu_si128(ptr.add(48) as *const __m128i);
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(state as i32));
        ptr = ptr.add(64);
        len -= 64;

        // Fold by 4: each chain folds itself 512 bits forward into the
        // next 16 bytes of input.
        let k1k2 = _mm_set_epi64x(k::K2, k::K1);
        while len >= 64 {
            x3 = fold16(x3, _mm_loadu_si128(ptr as *const __m128i), k1k2);
            x2 = fold16(x2, _mm_loadu_si128(ptr.add(16) as *const __m128i), k1k2);
            x1 = fold16(x1, _mm_loadu_si128(ptr.add(32) as *const __m128i), k1k2);
            x0 = fold16(x0, _mm_loadu_si128(ptr.add(48) as *const __m128i), k1k2);
            ptr = ptr.add(64);
            len -= 64;
        }

        // Fold the four chains into one, then fold by 1 while whole
        // 16-byte blocks remain.
        let k3k4 = _mm_set_epi64x(k::K4, k::K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while len >= 16 {
            x = fold16(x, _mm_loadu_si128(ptr as *const __m128i), k3k4);
            ptr = ptr.add(16);
            len -= 16;
        }

        // Reduce 128 → 64 bits.
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let lo32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, lo32), _mm_set_epi64x(0, k::K5), 0x00),
            _mm_srli_si128(x, 4),
        );

        // Barrett reduction 64 → 32 bits (bit-reversed µ and P').
        let pu = _mm_set_epi64x(k::MU, k::P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), pu, 0x10);
        let t2 = _mm_clmulepi64_si128(_mm_and_si128(t1, lo32), pu, 0x00);
        let folded = _mm_extract_epi32(_mm_xor_si128(x, t2), 1) as u32;

        // Sub-16-byte tail continues from the reduced register.
        table_update(folded, std::slice::from_raw_parts(ptr, len))
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse2", enable = "pclmulqdq")]
unsafe fn fold16(
    a: core::arch::x86_64::__m128i,
    b: core::arch::x86_64::__m128i,
    keys: core::arch::x86_64::__m128i,
) -> core::arch::x86_64::__m128i {
    use core::arch::x86_64::*;
    let lo = _mm_clmulepi64_si128(a, keys, 0x00);
    let hi = _mm_clmulepi64_si128(a, keys, 0x11);
    _mm_xor_si128(_mm_xor_si128(b, lo), hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crc::crc32_bitwise;

    fn fold_oneshot(data: &[u8]) -> u32 {
        !crc32_fold_update(0xFFFF_FFFF, data)
    }

    #[test]
    fn matches_bitwise_all_small_lengths() {
        if !crate::simd::caps().pclmul {
            return;
        }
        let data: Vec<u8> = (0..512u32).map(|i| (i * 131 + 17) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                fold_oneshot(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn matches_bitwise_large_and_split() {
        if !crate::simd::caps().pclmul {
            return;
        }
        let data: Vec<u8> = (0..9000u32)
            .map(|i| (i.wrapping_mul(2654435761) >> 13) as u8)
            .collect();
        assert_eq!(fold_oneshot(&data), crc32_bitwise(&data));
        // Incremental: fold kernel state chains across arbitrary splits.
        for split in [0, 1, 15, 16, 63, 64, 65, 127, 4096, 8999] {
            let mid = crc32_fold_update(0xFFFF_FFFF, &data[..split]);
            let out = !crc32_fold_update(mid, &data[split..]);
            assert_eq!(out, crc32_bitwise(&data), "split {split}");
        }
    }

    #[test]
    fn check_value() {
        if !crate::simd::caps().pclmul {
            return;
        }
        // Long enough to enter the folding path.
        let mut data = b"123456789".repeat(20);
        data.truncate(129);
        assert_eq!(fold_oneshot(&data), crc32_bitwise(&data));
    }
}
