//! A stream-cipher integrity check in the style of Lai-Rueppel-Woollven and
//! Taylor (paper §7: "use a stream cipher MAC where MAC can be made while
//! transferring data").
//!
//! The construction is a polynomial-evaluation MAC over GF(2³²) (the same
//! algebra as GMAC, truncated to the 32-bit ICRC field):
//!
//! ```text
//! state ← 0
//! for each 32-bit word m of the message:  state ← (state ⊕ m) ⊗ h
//! tag = state ⊕ pad(nonce)
//! ```
//!
//! where `h` is a key-derived field point, `⊗` is carry-less multiplication
//! modulo the CRC-32 polynomial `x³² + x²⁶ + ... + 1` (0x04C11DB7), and the
//! pad is an AES-CTR word keyed by the nonce. Because the state update needs
//! only the next word, the tag is computed *while the packet streams through
//! the link layer* — no second pass, which is exactly the property §7 wants
//! for keeping MAC generation off the critical path.
//!
//! NOTE: the CRC-32 polynomial is *not irreducible*, so GF arithmetic here
//! is over a ring, not a field; we deliberately keep it to show that the
//! hardware CRC datapath (LFSR + XOR tree) can be reused. The weakened
//! forgery bound relative to UMAC is reported honestly in
//! [`crate::mac::AuthAlgorithm::forgery_log2`].

use crate::aes::Aes128;

/// The CRC-32 generator polynomial (without the x^32 term), the reduction
/// modulus for the ring multiplication.
const POLY: u32 = 0x04C1_1DB7;

/// Carry-less multiply of two 32-bit ring elements modulo the CRC-32
/// polynomial.
#[inline]
pub fn clmul_mod(a: u32, b: u32) -> u32 {
    let mut acc: u64 = 0;
    for i in 0..32 {
        if (b >> i) & 1 != 0 {
            acc ^= (a as u64) << i;
        }
    }
    // Reduce the 63-bit product.
    for bit in (32..64).rev() {
        if (acc >> bit) & 1 != 0 {
            acc ^= ((POLY as u64) | (1 << 32)) << (bit - 32);
        }
    }
    acc as u32
}

/// A keyed streaming MAC. Clone-cheap; `update` may be called word-by-word
/// as data arrives off the wire.
#[derive(Clone)]
pub struct StreamMac {
    aes: Aes128,
    h: u32,
}

/// In-flight state for one message.
#[derive(Clone, Copy)]
pub struct StreamMacState {
    acc: u32,
    /// Bytes seen so far (folded in at the end so lengths are domain-separated).
    len: u64,
    /// Partial word buffer.
    partial: [u8; 4],
    partial_len: usize,
}

impl StreamMac {
    /// Derive the MAC key point `h` from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut block = [0u8; 16];
        block[0] = 0x05; // domain separation from the UMAC KDF markers
        aes.encrypt_block(&mut block);
        let mut h = u32::from_be_bytes([block[0], block[1], block[2], block[3]]);
        if h == 0 {
            h = 1; // h = 0 would absorb the whole message
        }
        StreamMac { aes, h }
    }

    /// Begin a new message.
    pub fn start(&self) -> StreamMacState {
        StreamMacState {
            acc: 0,
            len: 0,
            partial: [0; 4],
            partial_len: 0,
        }
    }

    /// Absorb bytes as they stream past.
    pub fn update(&self, st: &mut StreamMacState, mut data: &[u8]) {
        st.len += data.len() as u64;
        if st.partial_len > 0 {
            let take = (4 - st.partial_len).min(data.len());
            st.partial[st.partial_len..st.partial_len + take].copy_from_slice(&data[..take]);
            st.partial_len += take;
            data = &data[take..];
            if st.partial_len == 4 {
                let w = u32::from_le_bytes(st.partial);
                st.acc = clmul_mod(st.acc ^ w, self.h);
                st.partial_len = 0;
            } else {
                // Data exhausted into the partial word; don't fall through
                // to the remainder logic, which would clobber partial_len.
                return;
            }
        }
        let mut words = data.chunks_exact(4);
        for w in &mut words {
            let w = u32::from_le_bytes(w.try_into().unwrap());
            st.acc = clmul_mod(st.acc ^ w, self.h);
        }
        let rem = words.remainder();
        st.partial[..rem.len()].copy_from_slice(rem);
        st.partial_len = rem.len();
    }

    /// Finish the message under `nonce`, producing the 32-bit tag.
    pub fn finish(&self, mut st: StreamMacState, nonce: u64) -> u32 {
        if st.partial_len > 0 {
            let mut padded = [0u8; 4];
            padded[..st.partial_len].copy_from_slice(&st.partial[..st.partial_len]);
            let w = u32::from_le_bytes(padded);
            st.acc = clmul_mod(st.acc ^ w, self.h);
        }
        // Fold in the length, then one more ring multiply.
        st.acc = clmul_mod(st.acc ^ (st.len as u32) ^ ((st.len >> 32) as u32), self.h);
        let mut block = [0u8; 16];
        block[0] = 0x06;
        block[8..16].copy_from_slice(&nonce.to_be_bytes());
        self.aes.encrypt_block(&mut block);
        st.acc ^ u32::from_be_bytes([block[0], block[1], block[2], block[3]])
    }

    /// One-shot tag.
    pub fn tag32(&self, nonce: u64, message: &[u8]) -> u32 {
        let mut st = self.start();
        self.update(&mut st, message);
        self.finish(st, nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clmul_identity_and_zero() {
        for a in [0u32, 1, 0xDEADBEEF, 0xFFFFFFFF] {
            assert_eq!(clmul_mod(a, 1), a);
            assert_eq!(clmul_mod(a, 0), 0);
            assert_eq!(clmul_mod(0, a), 0);
        }
    }

    #[test]
    fn clmul_commutes_and_distributes() {
        let samples = [1u32, 3, 0x8000_0001, 0x04C1_1DB7, 0xFFFF_FFFE];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(clmul_mod(a, b), clmul_mod(b, a));
                for &c in &samples {
                    assert_eq!(clmul_mod(a ^ b, c), clmul_mod(a, c) ^ clmul_mod(b, c));
                }
            }
        }
    }

    #[test]
    fn streaming_matches_oneshot() {
        let mac = StreamMac::new(b"stream mac key!!");
        let data: Vec<u8> = (0..517u32).map(|i| (i * 13) as u8).collect();
        for split in [0usize, 1, 2, 3, 4, 5, 100, 516, 517] {
            let mut st = mac.start();
            mac.update(&mut st, &data[..split]);
            mac.update(&mut st, &data[split..]);
            assert_eq!(mac.finish(st, 9), mac.tag32(9, &data), "split {split}");
        }
    }

    #[test]
    fn sensitivity() {
        let mac = StreamMac::new(b"stream mac key!!");
        let t = mac.tag32(1, b"hello world!");
        assert_ne!(t, mac.tag32(2, b"hello world!"));
        assert_ne!(t, mac.tag32(1, b"hello world?"));
        let mac2 = StreamMac::new(b"other  mac key!!");
        assert_ne!(t, mac2.tag32(1, b"hello world!"));
    }

    #[test]
    fn length_domain_separation() {
        let mac = StreamMac::new(b"stream mac key!!");
        assert_ne!(mac.tag32(1, &[0u8; 4]), mac.tag32(1, &[0u8; 8]));
        assert_ne!(mac.tag32(1, &[]), mac.tag32(1, &[0u8]));
    }

    #[test]
    fn word_by_word_streaming() {
        // The property §7 cares about: feed one byte at a time, as if bytes
        // were arriving from the wire, and still get the same tag.
        let mac = StreamMac::new(b"0123456789abcdef");
        let data = b"packet flowing through the link layer";
        let mut st = mac.start();
        for b in data.iter() {
            mac.update(&mut st, std::slice::from_ref(b));
        }
        assert_eq!(mac.finish(st, 77), mac.tag32(77, data));
    }
}
