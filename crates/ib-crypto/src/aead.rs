//! AES-GCM-style authenticated encryption with a 32-bit tag.
//!
//! The paper's Table 4 compares authentication-only MACs; its
//! discussion (and the AES-RDMA line of follow-up work) also wants the
//! *confidentiality + authentication* combination. This mode supplies
//! that arm: AES-128 in counter mode for confidentiality, GHASH over
//! the ciphertext (carry-less multiply when the CPU has PCLMULQDQ, the
//! Shoup table path otherwise — see [`crate::simd::gf128`]) for
//! authentication, truncated to the 32 bits that fit the ICRC slot.
//!
//! The construction follows NIST SP 800-38D with a 96-bit IV derived
//! from the caller's 64-bit nonce (IBA: `SLID‖PSN`, already unique per
//! key epoch): `J₀ = 0³²‖nonce‖1`, CTR starts at `inc₃₂(J₀)`, and the
//! tag is `MSB₃₂(GHASH(A, C) ⊕ AES_K(J₀))`. Truncating to 32 bits
//! matches the ICRC-as-MAC budget and costs forgery probability
//! accordingly (≈2⁻³² per attempt, the same budget as the other
//! Table-4 arms; the CW bound argument in §6 applies unchanged).
//!
//! [`AesGcm32::open`] verifies **before** decrypting: the ciphertext is
//! authenticated, so a forged packet is rejected without ever running
//! the keystream, and the buffer is untouched on failure. Seal and open
//! work in place on `&mut [u8]` and never heap-allocate.

use crate::aes::Aes128;
use crate::simd::gf128::{self, GhashKey};

/// A keyed AES-GCM-32 instance (key schedule + GHASH key, derived once).
#[derive(Clone)]
pub struct AesGcm32 {
    aes: Aes128,
    ghash: GhashKey,
}

impl AesGcm32 {
    /// Derive from a 16-byte key: `H = AES_K(0¹²⁸)` keys GHASH.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block(&mut h);
        AesGcm32 {
            ghash: GhashKey::new(&h),
            aes,
        }
    }

    /// The pre-counter block J₀ for a 96-bit IV `0³² ‖ nonce`.
    fn j0(nonce: u64) -> [u8; 16] {
        let mut block = [0u8; 16];
        block[4..12].copy_from_slice(&nonce.to_be_bytes());
        block[15] = 1;
        block
    }

    /// CTR-mode transform in place, counters starting at `J₀ + ctr_off`.
    /// Eight keystream blocks run per batch (pipelined under AES-NI).
    fn ctr_xor(&self, j0: &[u8; 16], mut ctr: u32, data: &mut [u8]) {
        for chunk in data.chunks_mut(128) {
            let mut ks = [[0u8; 16]; 8];
            let blocks = chunk.len().div_ceil(16);
            for block in ks.iter_mut().take(blocks) {
                *block = *j0;
                let next = u32::from_be_bytes(block[12..16].try_into().unwrap()).wrapping_add(ctr);
                block[12..16].copy_from_slice(&next.to_be_bytes());
                ctr = ctr.wrapping_add(1);
            }
            self.aes.encrypt_blocks(&mut ks);
            let flat: &[u8] = unsafe {
                // SAFETY: [[u8;16];8] is 128 contiguous bytes.
                std::slice::from_raw_parts(ks.as_ptr() as *const u8, 128)
            };
            for (b, k) in chunk.iter_mut().zip(flat) {
                *b ^= k;
            }
        }
    }

    /// GHASH of `aad ‖ pad ‖ ct ‖ pad ‖ len(aad)‖len(ct)` in the
    /// reflected representation.
    fn ghash(&self, aad: &[u8], ct: &[u8]) -> u128 {
        let mut y = 0u128;
        for part in [aad, ct] {
            for chunk in part.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                y = self.ghash.mul(y ^ gf128::from_block(&block));
            }
        }
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        lens[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
        self.ghash.mul(y ^ gf128::from_block(&lens))
    }

    /// The 32-bit tag over an existing ciphertext: `MSB₃₂` of the full
    /// GCM tag block.
    fn tag32(&self, j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> u32 {
        let mut mask = *j0;
        self.aes.encrypt_block(&mut mask);
        let full = gf128::to_block(self.ghash(aad, ct));
        u32::from_be_bytes([
            full[0] ^ mask[0],
            full[1] ^ mask[1],
            full[2] ^ mask[2],
            full[3] ^ mask[3],
        ])
    }

    /// Encrypt `data` in place under `nonce` and return the 32-bit tag
    /// binding ciphertext and `aad`. Nonces must not repeat per key.
    pub fn seal(&self, nonce: u64, aad: &[u8], data: &mut [u8]) -> u32 {
        let j0 = Self::j0(nonce);
        self.ctr_xor(&j0, 1, data);
        self.tag32(&j0, aad, data)
    }

    /// Verify `tag` over the ciphertext in `data` (and `aad`), then —
    /// only on success — decrypt in place. Returns whether the tag
    /// verified; on `false` the buffer is left untouched.
    pub fn open(&self, nonce: u64, aad: &[u8], data: &mut [u8], tag: u32) -> bool {
        let j0 = Self::j0(nonce);
        // XOR-compare keeps timing independent of which bit differs.
        if (self.tag32(&j0, aad, data) ^ tag) != 0 {
            return false;
        }
        self.ctr_xor(&j0, 1, data);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simd::gf128::mul_scalar;

    /// Independent reference GCM-32: soft AES only, bit-loop GF(2¹²⁸)
    /// multiply only. The dispatched implementation must match this on
    /// every input regardless of which kernels detection picked.
    fn reference_seal(key: &[u8; 16], nonce: u64, aad: &[u8], pt: &[u8]) -> (Vec<u8>, u32) {
        let aes = Aes128::new(key);
        let mut h = [0u8; 16];
        aes.encrypt_block_soft(&mut h);
        let h = gf128::from_block(&h);
        let j0 = AesGcm32::j0(nonce);
        // CTR, one block at a time.
        let mut ct = pt.to_vec();
        for (i, chunk) in ct.chunks_mut(16).enumerate() {
            let mut ks = j0;
            let c = u32::from_be_bytes(ks[12..16].try_into().unwrap()).wrapping_add(1 + i as u32);
            ks[12..16].copy_from_slice(&c.to_be_bytes());
            aes.encrypt_block_soft(&mut ks);
            for (b, k) in chunk.iter_mut().zip(ks.iter()) {
                *b ^= k;
            }
        }
        // GHASH.
        let mut y = 0u128;
        for part in [aad, &ct[..]] {
            for chunk in part.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                y = mul_scalar(y ^ gf128::from_block(&block), h);
            }
        }
        let mut lens = [0u8; 16];
        lens[..8].copy_from_slice(&((aad.len() as u64) * 8).to_be_bytes());
        lens[8..].copy_from_slice(&((ct.len() as u64) * 8).to_be_bytes());
        y = mul_scalar(y ^ gf128::from_block(&lens), h);
        let full = gf128::to_block(y);
        let mut mask = j0;
        aes.encrypt_block_soft(&mut mask);
        let tag = u32::from_be_bytes([
            full[0] ^ mask[0],
            full[1] ^ mask[1],
            full[2] ^ mask[2],
            full[3] ^ mask[3],
        ]);
        (ct, tag)
    }

    #[test]
    fn seal_matches_reference_across_lengths() {
        let key = b"gcm equivalence!";
        let gcm = AesGcm32::new(key);
        let aad = b"bth+deth header bytes";
        for len in [0usize, 1, 15, 16, 17, 64, 127, 128, 129, 1024, 4096] {
            let pt: Vec<u8> = (0..len).map(|i| (i * 89 + 7) as u8).collect();
            let (want_ct, want_tag) = reference_seal(key, 0xABCD_1234, aad, &pt);
            let mut data = pt.clone();
            let tag = gcm.seal(0xABCD_1234, aad, &mut data);
            assert_eq!(data, want_ct, "ct len {len}");
            assert_eq!(tag, want_tag, "tag len {len}");
        }
    }

    #[test]
    fn open_round_trips_and_rejects() {
        let gcm = AesGcm32::new(b"round trip key!!");
        let pt: Vec<u8> = (0..777).map(|i| (i * 31) as u8).collect();
        let mut data = pt.clone();
        let tag = gcm.seal(42, b"aad", &mut data);
        assert_ne!(data, pt, "ciphertext differs from plaintext");

        // Wrong tag, wrong aad, wrong nonce: all rejected, buffer intact.
        let ct = data.clone();
        assert!(!gcm.open(42, b"aad", &mut data, tag ^ 1));
        assert!(!gcm.open(42, b"axd", &mut data, tag));
        assert!(!gcm.open(43, b"aad", &mut data, tag));
        assert_eq!(data, ct, "failed open leaves ciphertext untouched");

        // Flipped ciphertext bit: rejected.
        data[100] ^= 0x40;
        assert!(!gcm.open(42, b"aad", &mut data, tag));
        data[100] ^= 0x40;

        assert!(gcm.open(42, b"aad", &mut data, tag));
        assert_eq!(data, pt, "open recovers the plaintext");
    }

    #[test]
    fn nonce_and_key_separate_streams() {
        let a = AesGcm32::new(b"first gcm key..!");
        let b = AesGcm32::new(b"other gcm key..!");
        let pt = vec![0u8; 64];
        let (mut d1, mut d2, mut d3) = (pt.clone(), pt.clone(), pt.clone());
        let t1 = a.seal(1, b"", &mut d1);
        let t2 = a.seal(2, b"", &mut d2);
        let t3 = b.seal(1, b"", &mut d3);
        assert_ne!(d1, d2, "nonce changes the keystream");
        assert_ne!(d1, d3, "key changes the keystream");
        assert_ne!(t1, t2);
        assert_ne!(t1, t3);
    }
}
