//! UMAC-style universal-hash message authentication (Black, Halevi,
//! Krawczyk, Krovetz, Rogaway — CRYPTO '99; RFC 4418).
//!
//! This is the MAC the paper selects for the ICRC-as-MAC scheme "due to its
//! speed and proved security" (§5.2): the 32-bit tag gives a provable 2⁻³⁰
//! forgery bound, and the NH inner hash runs at a fraction of a cycle per
//! byte on SIMD hardware.
//!
//! ## Construction (three-level Carter-Wegman, as in UMAC-32)
//!
//! 1. **L1 — NH**: the message is split into 1024-byte chunks; each chunk is
//!    zero-padded to a multiple of 8 bytes and hashed with
//!    `NH(K,M) = Σ (m₂ᵢ +₃₂ k₂ᵢ)·(m₂ᵢ₊₁ +₃₂ k₂ᵢ₊₁) mod 2⁶⁴ + 8·len`,
//!    a 2-universal hash that needs only 32-bit adds and one 32×32→64
//!    multiply per 8 message bytes.
//! 2. **L2 — POLY**: if the message spans several chunks, their NH images
//!    are compressed with a polynomial hash over the prime `p64 = 2⁶⁴ − 59`.
//! 3. **L3 — inner product**: the 64-bit result is mapped to 32 bits with an
//!    inner-product hash over `p36 = 2³⁶ − 5`, then XORed with an AES-derived
//!    one-time pad indexed by the packet nonce (in IBA, the PSN serves as
//!    the nonce — see `ib-security`'s replay module).
//!
//! All hash keys and pads are derived from a single 16-byte AES key, exactly
//! as in RFC 4418's KDF/PDF split.
//!
//! ## Deviation from RFC 4418 (documented substitution)
//!
//! The RFC's bit-exact test vectors depend on a Toeplitz key-shift scheme and
//! endianness conventions tuned for MMX; this implementation keeps the exact
//! NH/POLY/inner-product algebra (so the forgery bound ε ≤ 2⁻³⁰ carries over
//! — the bound depends only on the universal-hash family, Thm. 4.2 of the
//! CRYPTO '99 paper) but uses a straightforward little-endian layout and a
//! single Toeplitz iteration. Property tests verify the universal-hash
//! distribution empirically.

use crate::aes::Aes128;

/// NH chunk size in bytes (RFC 4418 UMAC-32 default, 1024 bytes).
pub const NH_CHUNK_BYTES: usize = 1024;
const NH_WORDS: usize = NH_CHUNK_BYTES / 4;
/// Prime 2^64 - 59, the POLY modulus.
pub const P64: u64 = 0xFFFF_FFFF_FFFF_FFC5;
/// Prime 2^36 - 5, the L3 inner-product modulus.
pub const P36: u64 = (1 << 36) - 5;

/// KDF domain-separation markers (first byte of the AES input block).
const KDF_NH: u8 = 0x01;
const KDF_POLY: u8 = 0x02;
const KDF_L3: u8 = 0x03;
const PDF_PAD: u8 = 0x04;

/// A keyed UMAC instance. Construction derives all subkeys once; tagging a
/// message performs no heap allocation.
#[derive(Clone)]
pub struct Umac {
    aes: Aes128,
    nh_key: [u32; NH_WORDS],
    poly_key: u64,
    l3_key: [u64; 4],
}

impl Umac {
    /// Derive a UMAC instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);

        let mut nh_bytes = [0u8; NH_CHUNK_BYTES];
        kdf(&aes, KDF_NH, &mut nh_bytes);
        let mut nh_key = [0u32; NH_WORDS];
        for (i, w) in nh_key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(nh_bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }

        let mut poly_bytes = [0u8; 8];
        kdf(&aes, KDF_POLY, &mut poly_bytes);
        // Clamp the poly key below 2^60 so k*y + m cannot overflow u128
        // arithmetic paths and to keep k well inside the field, mirroring
        // RFC 4418's key masking.
        let poly_key = u64::from_le_bytes(poly_bytes) & 0x0FFF_FFFF_FFFF_FFFF;

        let mut l3_bytes = [0u8; 32];
        kdf(&aes, KDF_L3, &mut l3_bytes);
        let mut l3_key = [0u64; 4];
        for (i, k) in l3_key.iter_mut().enumerate() {
            *k = u64::from_le_bytes(l3_bytes[i * 8..i * 8 + 8].try_into().unwrap()) % P36;
        }

        Umac {
            aes,
            nh_key,
            poly_key,
            l3_key,
        }
    }

    /// NH hash of one chunk (`chunk.len() <= NH_CHUNK_BYTES`).
    ///
    /// The chunk is implicitly zero-padded to a multiple of 8 bytes; the
    /// unpadded bit length is folded in, so distinct lengths yield distinct
    /// hash inputs (NH is only universal over equal-length strings).
    fn nh(&self, chunk: &[u8]) -> u64 {
        self.nh_tail(0, 0, chunk)
    }

    /// NH continuation: `sum` already covers `chunk[..done]` (`done` a
    /// multiple of 8); hashes the rest — whole pairs through the
    /// dispatched kernel ([`crate::simd::nh`]), padded remainder and the
    /// length term scalar. The NH sum wraps mod 2⁶⁴, so every
    /// accumulation order yields the identical value.
    fn nh_tail(&self, sum: u64, done: usize, chunk: &[u8]) -> u64 {
        self.nh_tail_with(sum, done, chunk, crate::simd::nh::nh_pairs)
    }

    /// [`Umac::nh_tail`] with an explicit whole-pair kernel, so the
    /// scalar oracle path can bypass dispatch entirely.
    fn nh_tail_with(
        &self,
        sum: u64,
        done: usize,
        chunk: &[u8],
        kernel: fn(u64, &[u32], &[u8]) -> u64,
    ) -> u64 {
        debug_assert!(chunk.len() <= NH_CHUNK_BYTES);
        debug_assert_eq!(done % 8, 0);
        let whole = chunk.len() & !7;
        let mut sum = kernel(sum, &self.nh_key[done / 4..whole / 4], &chunk[done..whole]);
        let rem = &chunk[whole..];
        if !rem.is_empty() {
            let mut padded = [0u8; 8];
            padded[..rem.len()].copy_from_slice(rem);
            let m0 = u32::from_le_bytes(padded[0..4].try_into().unwrap());
            let m1 = u32::from_le_bytes(padded[4..8].try_into().unwrap());
            let i = whole / 4;
            let a = m0.wrapping_add(self.nh_key[i]) as u64;
            let b = m1.wrapping_add(self.nh_key[i + 1]) as u64;
            sum = sum.wrapping_add(a.wrapping_mul(b));
        }
        sum.wrapping_add((chunk.len() as u64).wrapping_mul(8))
    }

    /// L2 polynomial hash over p64 of the NH chunk images.
    fn poly(&self, values: impl Iterator<Item = u64>) -> u64 {
        let mut y: u64 = 1;
        for v in values {
            // Reduce v into the field first (negligible bias: 59/2^64).
            let m = v % P64;
            y = mul_mod_p64(y, self.poly_key);
            y = add_mod_p64(y, m);
        }
        y
    }

    /// L3: 64 → 32 bits via inner product over p36.
    fn l3(&self, y: u64) -> u32 {
        let mut acc: u128 = 0;
        for (i, k) in self.l3_key.iter().enumerate() {
            let chunk = (y >> (48 - 16 * i)) & 0xFFFF;
            acc += (chunk as u128) * (*k as u128);
        }
        ((acc % P36 as u128) as u64 & 0xFFFF_FFFF) as u32
    }

    /// One-time pad for `nonce` (PDF in RFC 4418 terms).
    fn pad32(&self, nonce: u64) -> u32 {
        let mut block = [0u8; 16];
        block[0] = PDF_PAD;
        block[8..16].copy_from_slice(&nonce.to_be_bytes());
        self.aes.encrypt_block(&mut block);
        u32::from_be_bytes([block[0], block[1], block[2], block[3]])
    }

    /// Hash of the message before the pad is applied (the Carter-Wegman
    /// "universal hash" part). Exposed for testing the hash family
    /// independently of the pad.
    pub fn hash64(&self, message: &[u8]) -> u64 {
        if message.len() <= NH_CHUNK_BYTES {
            // Single-chunk fast path: skip POLY entirely (as UMAC does).
            self.nh(message)
        } else {
            self.poly(message.chunks(NH_CHUNK_BYTES).map(|c| self.nh(c)))
        }
    }

    /// [`Umac::hash64`] computed through the portable scalar NH kernel
    /// only, regardless of detected CPU features — the benchmark
    /// baseline and the property-test oracle for the dispatched path.
    pub fn hash64_scalar(&self, message: &[u8]) -> u64 {
        let nh = |c: &[u8]| self.nh_tail_with(0, 0, c, crate::simd::nh::nh_pairs_scalar);
        if message.len() <= NH_CHUNK_BYTES {
            nh(message)
        } else {
            self.poly(message.chunks(NH_CHUNK_BYTES).map(nh))
        }
    }

    /// Compute the 32-bit authentication tag of `message` under `nonce`.
    ///
    /// Nonces must not repeat under the same key (Carter-Wegman requirement);
    /// the IBA integration uses the packet sequence number.
    pub fn tag32(&self, nonce: u64, message: &[u8]) -> u32 {
        self.l3(self.hash64(message)) ^ self.pad32(nonce)
    }

    /// [`Umac::tag32`] through the scalar kernels only (see
    /// [`Umac::hash64_scalar`]). Bit-identical output, always.
    pub fn tag32_scalar(&self, nonce: u64, message: &[u8]) -> u32 {
        self.l3(self.hash64_scalar(message)) ^ self.pad32(nonce)
    }

    /// Verify `tag` over `message`/`nonce` in constant time with respect to
    /// tag contents.
    pub fn verify(&self, nonce: u64, message: &[u8], tag: u32) -> bool {
        // 32-bit XOR-compare then single equality keeps timing independent
        // of which byte differs.
        (self.tag32(nonce, message) ^ tag) == 0
    }

    /// Tag four messages in lockstep — the multi-buffer path for the
    /// short-payload regime where per-buffer SIMD cannot win. When all
    /// four messages are single-chunk (≤ [`NH_CHUNK_BYTES`], the packet
    /// case) the NH inner loops advance four accumulators per shared
    /// key-vector load and the four nonce pads pipeline through AES
    /// together; longer messages fall back per-message. Bit-identical
    /// to four [`Umac::tag32`] calls in every case.
    pub fn tag32_x4(&self, nonces: [u64; 4], msgs: [&[u8]; 4]) -> [u32; 4] {
        let hashes: [u64; 4] = if msgs.iter().all(|m| m.len() <= NH_CHUNK_BYTES) {
            let common = msgs.iter().map(|m| m.len() & !7).min().unwrap_or(0);
            let sums = crate::simd::nh::nh_pairs_x4([0; 4], &self.nh_key, msgs, common);
            std::array::from_fn(|j| self.nh_tail(sums[j], common, msgs[j]))
        } else {
            std::array::from_fn(|j| self.hash64(msgs[j]))
        };
        let mut pads = [[0u8; 16]; 4];
        for (block, nonce) in pads.iter_mut().zip(nonces) {
            block[0] = PDF_PAD;
            block[8..16].copy_from_slice(&nonce.to_be_bytes());
        }
        self.aes.encrypt_blocks(&mut pads);
        std::array::from_fn(|j| {
            let p = u32::from_be_bytes([pads[j][0], pads[j][1], pads[j][2], pads[j][3]]);
            self.l3(hashes[j]) ^ p
        })
    }

    /// Start an incremental tag computation (see [`UmacStream`]).
    #[inline]
    pub fn stream(&self, nonce: u64) -> UmacStream<'_> {
        UmacStream {
            umac: self,
            nonce,
            sum: 0,
            ki: 0,
            chunk_bytes: 0,
            stage: [0u8; STAGE_BYTES],
            stage_len: 0,
            first: 0,
            poly_y: 0,
            chunks: 0,
        }
    }
}

/// Staging-buffer size of [`UmacStream`]: small `update` slices (header
/// fragments) gather here until the NH kernel gets a contiguous run it
/// can vectorize, instead of being hashed a pair at a time.
const STAGE_BYTES: usize = 64;

/// Incremental form of [`Umac::tag32`]: feed the message in arbitrary
/// slices, then [`UmacStream::finalize`]. Byte-identical to the one-shot
/// form, including the single-chunk fast path that skips POLY; the POLY
/// compression of closed chunk images happens on the fly, so state stays
/// O(1) regardless of message length and nothing here heap-allocates.
#[derive(Clone)]
pub struct UmacStream<'k> {
    umac: &'k Umac,
    nonce: u64,
    /// NH accumulator of the chunk in progress.
    sum: u64,
    /// NH key word index of the next 8-byte pair (2 words per pair).
    ki: usize,
    /// True byte count of the chunk in progress (including staged bytes).
    chunk_bytes: usize,
    /// Gathered-but-unhashed input. The hashed prefix of the chunk is
    /// always a whole number of NH pairs, so `chunk_bytes - stage_len`
    /// stays a multiple of 8; the chunk size divides into whole pairs,
    /// so a flush at the chunk boundary is always pair-aligned too.
    stage: [u8; STAGE_BYTES],
    stage_len: usize,
    /// NH image of the first closed chunk, held back so a single-chunk
    /// message can skip POLY exactly like [`Umac::hash64`].
    first: u64,
    /// POLY accumulator, live once a second chunk value exists.
    poly_y: u64,
    chunks: u64,
}

#[inline]
fn poly_step(y: u64, key: u64, v: u64) -> u64 {
    // One POLY iteration: y·k + (v reduced into the field), mod p64.
    add_mod_p64(mul_mod_p64(y, key), v % P64)
}

impl UmacStream<'_> {
    #[inline]
    fn pair(&mut self, bytes: &[u8]) {
        let m0 = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let m1 = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let a = m0.wrapping_add(self.umac.nh_key[self.ki]) as u64;
        let b = m1.wrapping_add(self.umac.nh_key[self.ki + 1]) as u64;
        self.sum = self.sum.wrapping_add(a.wrapping_mul(b));
        self.ki += 2;
    }

    fn push_value(&mut self, v: u64) {
        self.chunks += 1;
        match self.chunks {
            1 => self.first = v,
            2 => {
                let y = poly_step(1, self.umac.poly_key, self.first);
                self.poly_y = poly_step(y, self.umac.poly_key, v);
            }
            _ => self.poly_y = poly_step(self.poly_y, self.umac.poly_key, v),
        }
    }

    fn close_chunk(&mut self) {
        let v = self
            .sum
            .wrapping_add((self.chunk_bytes as u64).wrapping_mul(8));
        self.push_value(v);
        self.sum = 0;
        self.ki = 0;
        self.chunk_bytes = 0;
    }

    /// Hash `data` (whole pairs, inside the current chunk) through the
    /// dispatched NH kernel.
    #[inline]
    fn absorb_pairs(&mut self, data: &[u8]) {
        debug_assert_eq!(data.len() % 8, 0);
        let keys = &self.umac.nh_key[self.ki..self.ki + data.len() / 4];
        self.sum = crate::simd::nh::nh_pairs(self.sum, keys, data);
        self.ki += data.len() / 4;
    }

    /// Hash the gathered stage (a whole number of pairs — see the
    /// `stage` field invariant) and empty it.
    fn flush_stage(&mut self) {
        let stage = self.stage;
        self.absorb_pairs(&stage[..self.stage_len]);
        self.stage_len = 0;
    }

    /// Absorb the next `data` bytes of the message.
    #[inline]
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            let room = NH_CHUNK_BYTES - self.chunk_bytes;
            if self.stage_len == 0 {
                // Direct path: a run long enough for the vector kernels
                // — or one that completes the chunk — is hashed straight
                // out of the input, no copy.
                let direct = (data.len() & !7).min(room);
                if direct >= STAGE_BYTES || (direct > 0 && direct == room) {
                    self.absorb_pairs(&data[..direct]);
                    self.chunk_bytes += direct;
                    data = &data[direct..];
                    if self.chunk_bytes == NH_CHUNK_BYTES {
                        self.close_chunk();
                    }
                    continue;
                }
            }
            // Gather path: header-sized fragments and sub-pair tails
            // copy into the stage; a full stage (or the chunk boundary)
            // hands the kernel one contiguous run.
            let take = (STAGE_BYTES - self.stage_len).min(data.len()).min(room);
            self.stage[self.stage_len..self.stage_len + take].copy_from_slice(&data[..take]);
            self.stage_len += take;
            self.chunk_bytes += take;
            data = &data[take..];
            if self.chunk_bytes == NH_CHUNK_BYTES {
                self.flush_stage();
                self.close_chunk();
            } else if self.stage_len == STAGE_BYTES {
                self.flush_stage();
            }
        }
    }

    /// Finish and return the 32-bit tag. Equals
    /// `umac.tag32(nonce, message)` for the concatenation of all `update`
    /// slices.
    #[inline]
    pub fn finalize(mut self) -> u32 {
        if self.stage_len > 0 {
            let whole = self.stage_len & !7;
            let stage = self.stage;
            self.absorb_pairs(&stage[..whole]);
            let rem = &stage[whole..self.stage_len];
            if !rem.is_empty() {
                let mut padded = [0u8; 8];
                padded[..rem.len()].copy_from_slice(rem);
                self.pair(&padded);
            }
        }
        if self.chunk_bytes > 0 || self.chunks == 0 {
            // Tail chunk — or the empty message, whose NH image is 0.
            let v = self
                .sum
                .wrapping_add((self.chunk_bytes as u64).wrapping_mul(8));
            self.push_value(v);
        }
        let hash = if self.chunks == 1 {
            self.first
        } else {
            self.poly_y
        };
        self.umac.l3(hash) ^ self.umac.pad32(self.nonce)
    }
}

fn kdf(aes: &Aes128, marker: u8, out: &mut [u8]) {
    for (counter, chunk) in out.chunks_mut(16).enumerate() {
        let mut block = [0u8; 16];
        block[0] = marker;
        block[8..16].copy_from_slice(&(counter as u64).to_be_bytes());
        aes.encrypt_block(&mut block);
        chunk.copy_from_slice(&block[..chunk.len()]);
    }
}

#[inline]
fn add_mod_p64(a: u64, b: u64) -> u64 {
    let (sum, carry) = a.overflowing_add(b);
    let mut s = sum;
    if carry || s >= P64 {
        s = s.wrapping_sub(P64);
    }
    s
}

#[inline]
fn mul_mod_p64(a: u64, b: u64) -> u64 {
    ((a as u128 * b as u128) % P64 as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> [u8; 16] {
        [b; 16]
    }

    #[test]
    fn deterministic() {
        let u = Umac::new(&key(1));
        assert_eq!(u.tag32(42, b"hello"), u.tag32(42, b"hello"));
    }

    #[test]
    fn key_sensitivity() {
        let a = Umac::new(&key(1));
        let b = Umac::new(&key(2));
        assert_ne!(a.tag32(1, b"message"), b.tag32(1, b"message"));
    }

    #[test]
    fn nonce_sensitivity() {
        let u = Umac::new(&key(3));
        assert_ne!(u.tag32(1, b"message"), u.tag32(2, b"message"));
    }

    #[test]
    fn message_sensitivity_across_sizes() {
        let u = Umac::new(&key(4));
        for len in [0usize, 1, 7, 8, 9, 100, 1023, 1024, 1025, 4096] {
            let m1 = vec![0u8; len.max(1)];
            let mut m2 = m1.clone();
            m2[0] ^= 1;
            assert_ne!(u.tag32(9, &m1), u.tag32(9, &m2), "len {len}");
        }
    }

    #[test]
    fn length_extension_distinguished() {
        // NH folds in the true length, so a zero-padded message must not
        // collide with its padded form.
        let u = Umac::new(&key(5));
        let short = [0xAAu8, 0, 0, 0];
        let long = [0xAAu8, 0, 0, 0, 0, 0, 0, 0];
        assert_ne!(u.tag32(1, &short), u.tag32(1, &long));
    }

    #[test]
    fn multi_chunk_poly_path() {
        let u = Umac::new(&key(6));
        let m1 = vec![0x11u8; NH_CHUNK_BYTES * 3 + 17];
        let mut m2 = m1.clone();
        m2[NH_CHUNK_BYTES * 2] ^= 0x80; // flip a bit in the third chunk
        assert_ne!(u.tag32(1, &m1), u.tag32(1, &m2));
        // And determinism on the slow path too.
        assert_eq!(u.tag32(1, &m1), u.tag32(1, &m1));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let u = Umac::new(&key(7));
        let tag = u.tag32(100, b"payload");
        assert!(u.verify(100, b"payload", tag));
        assert!(!u.verify(100, b"payload", tag ^ 1));
        assert!(!u.verify(101, b"payload", tag));
        assert!(!u.verify(100, b"payloae", tag));
    }

    #[test]
    fn tag_distribution_rough_uniformity() {
        // Tags of related messages should spread across the 32-bit space:
        // with 512 samples, expect no more than a couple of collisions in
        // any 16-bit projection bucket count far from uniform. We test that
        // all 512 tags are distinct (collision probability ~ 2^-23).
        let u = Umac::new(&key(8));
        let mut tags: Vec<u32> = (0..512u32).map(|i| u.tag32(7, &i.to_le_bytes())).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), 512);
    }

    #[test]
    fn mod_p64_arithmetic() {
        assert_eq!(add_mod_p64(P64 - 1, 1), 0);
        assert_eq!(add_mod_p64(P64 - 1, 2), 1);
        assert_eq!(mul_mod_p64(P64 - 1, P64 - 1), 1); // (-1)^2 = 1 mod p
        assert_eq!(mul_mod_p64(0, 123), 0);
        assert_eq!(mul_mod_p64(1, 123), 123);
    }

    #[test]
    fn stream_equals_oneshot_across_sizes_and_splits() {
        let u = Umac::new(&key(10));
        for len in [0usize, 1, 7, 8, 9, 20, 1023, 1024, 1025, 2048, 2051, 4096] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let expect = u.tag32(77, &msg);
            // Whole-message single update.
            let mut s = u.stream(77);
            s.update(&msg);
            assert_eq!(s.finalize(), expect, "len {len} single");
            // Byte-at-a-time (worst case for the partial-pair buffer).
            let mut s = u.stream(77);
            for b in &msg {
                s.update(std::slice::from_ref(b));
            }
            assert_eq!(s.finalize(), expect, "len {len} bytewise");
            // Splits straddling pair and chunk boundaries.
            for split in [1usize, 4, 8, 13, 1020, 1024, 1028] {
                if split <= len {
                    let mut s = u.stream(77);
                    s.update(&msg[..split]);
                    s.update(&msg[split..]);
                    assert_eq!(s.finalize(), expect, "len {len} split {split}");
                }
            }
        }
    }

    #[test]
    fn tag32_x4_matches_four_singles() {
        let u = Umac::new(&key(11));
        for base in [0usize, 1, 7, 8, 60, 500, 1000, 1024, 1500] {
            let msgs_owned: Vec<Vec<u8>> = (0..4)
                .map(|j| {
                    (0..base + j * 3)
                        .map(|i| (i * 41 + j * 13 + 5) as u8)
                        .collect()
                })
                .collect();
            let msgs = [
                &msgs_owned[0][..],
                &msgs_owned[1][..],
                &msgs_owned[2][..],
                &msgs_owned[3][..],
            ];
            let nonces = [10, 20, 30, 40];
            let got = u.tag32_x4(nonces, msgs);
            for j in 0..4 {
                assert_eq!(got[j], u.tag32(nonces[j], msgs[j]), "base {base} lane {j}");
            }
        }
    }

    #[test]
    fn scalar_oracle_matches_dispatched_tag() {
        let u = Umac::new(&key(12));
        for len in [0usize, 1, 7, 8, 60, 64, 1000, 1023, 1024, 1025, 4096] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 73 + 29) as u8).collect();
            assert_eq!(u.tag32_scalar(5, &msg), u.tag32(5, &msg), "len {len}");
            assert_eq!(u.hash64_scalar(&msg), u.hash64(&msg), "len {len}");
        }
    }

    #[test]
    fn hash64_independent_of_nonce() {
        let u = Umac::new(&key(9));
        // hash64 is the unpadded universal hash; nonce only affects the pad.
        let h = u.hash64(b"some message");
        let t1 = u.tag32(1, b"some message");
        let t2 = u.tag32(2, b"some message");
        assert_eq!(t1 ^ u.pad32(1), t2 ^ u.pad32(2));
        assert_eq!(t1 ^ u.pad32(1), u.l3(h));
    }
}
