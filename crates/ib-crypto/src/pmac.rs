//! PMAC — a fully parallelizable block-cipher MAC (Black & Rogaway,
//! EUROCRYPT 2002), cited by the paper's §7 as a candidate for "faster
//! InfiniBand" authentication because every block can be processed by an
//! independent hardware lane (NIST considered it as an authentication mode
//! of operation).
//!
//! Construction over AES-128:
//!
//! ```text
//! L        = AES_K(0¹²⁸)
//! offset_i = γᵢ · L          (Gray-code multiples in GF(2¹²⁸))
//! Σ        = ⊕ᵢ AES_K(Mᵢ ⊕ offset_i)         for full blocks 1..n-1
//! final    = Mₙ padded 10*  → Σ ⊕ pad, tweaked by whether Mₙ was full
//! tag      = msb₃₂( AES_K(Σ ⊕ tweak·L) ) ⊕ pad(nonce)
//! ```
//!
//! Each `AES_K(Mᵢ ⊕ offset_i)` term is independent of every other, so the
//! XOR-accumulation can be computed in any order — [`Pmac::tag32_chunked`]
//! exposes that by letting callers hash disjoint block ranges separately and
//! combine, which the ablation bench uses to demonstrate linear speedup.
//!
//! The nonce pad is an addition relative to classic (deterministic) PMAC; it
//! makes tags single-use like UMAC's, which the ICRC-as-MAC scheme requires
//! for replay resistance.

use crate::aes::Aes128;

/// Doubling in GF(2^128) with the standard x^128 + x^7 + x^2 + x + 1 modulus.
#[inline]
fn dbl(block: &[u8; 16]) -> [u8; 16] {
    let mut out = [0u8; 16];
    let carry = block[0] >> 7;
    for i in 0..15 {
        out[i] = (block[i] << 1) | (block[i + 1] >> 7);
    }
    out[15] = block[15] << 1;
    if carry != 0 {
        out[15] ^= 0x87;
    }
    out
}

#[inline]
fn xor16(a: &mut [u8; 16], b: &[u8; 16]) {
    for i in 0..16 {
        a[i] ^= b[i];
    }
}

/// A keyed PMAC instance.
#[derive(Clone)]
pub struct Pmac {
    aes: Aes128,
    /// `L·xʲ` for j in 0..64, where L = AES_K(0): the whole offset
    /// schedule is XORs of these (Gray-code bits), so deriving any
    /// offset — or advancing to the next — never runs the `dbl` chain.
    l_pow: [[u8; 16]; 64],
    l_inv: [u8; 16], // L·x⁻¹ equivalent tweak for full final blocks (we use L·x²)
}

impl Pmac {
    /// Derive a PMAC instance from a 16-byte key.
    pub fn new(key: &[u8; 16]) -> Self {
        let aes = Aes128::new(key);
        let mut l = [0u8; 16];
        aes.encrypt_block(&mut l);
        let mut l_pow = [[0u8; 16]; 64];
        l_pow[0] = l;
        for j in 1..64 {
            l_pow[j] = dbl(&l_pow[j - 1]);
        }
        let l_inv = dbl(&dbl(&l)); // tweak used when the final block is full
        Pmac { aes, l_pow, l_inv }
    }

    /// Offset for block index `i` (0-based): the Gray-code schedule is
    /// equivalent to `offset_{i} = offset_{i-1} ⊕ L·x^{ntz(i)}`; computing it
    /// directly from the index keeps block processing order-independent,
    /// which is what makes the chunked/parallel API possible.
    fn offset(&self, i: u64) -> [u8; 16] {
        // gray(i+1) = (i+1) ^ ((i+1)>>1); offset = Σ bits of gray * L·x^bit
        let gray = (i + 1) ^ ((i + 1) >> 1);
        let mut acc = [0u8; 16];
        let mut g = gray;
        while g != 0 {
            xor16(&mut acc, &self.l_pow[g.trailing_zeros() as usize]);
            g &= g - 1;
        }
        acc
    }

    /// XOR-accumulate the PMAC contribution of full 16-byte blocks
    /// `[first_index, first_index + blocks.len()/16)`. Callers may split the
    /// full-block prefix of a message into ranges, process them on separate
    /// threads, and XOR the partial sums.
    ///
    /// Four Δ-masked blocks are encrypted per batch: each block's cipher
    /// call is independent, so under AES-NI the four states pipeline
    /// through the AES unit ([`Aes128::encrypt_blocks`]), and the Σ XOR
    /// commutes — the result is bit-identical to the one-at-a-time loop.
    pub fn accumulate(&self, first_index: u64, blocks: &[u8], sigma: &mut [u8; 16]) {
        debug_assert_eq!(blocks.len() % 16, 0);
        if blocks.is_empty() {
            return;
        }
        // Offsets advance incrementally: from index i to i+1 is one table
        // XOR (gray(i+2) = gray(i+1) ^ (1 << ntz(i+2))).
        let mut idx = first_index;
        let mut offset = self.offset(first_index);
        let advance = |offset: &mut [u8; 16], idx: &mut u64| {
            *idx += 1;
            xor16(offset, &self.l_pow[(*idx + 1).trailing_zeros() as usize]);
        };
        let mut quads = blocks.chunks_exact(64);
        for quad in &mut quads {
            let mut batch = [[0u8; 16]; 4];
            for (j, lane) in batch.iter_mut().enumerate() {
                lane.copy_from_slice(&quad[j * 16..j * 16 + 16]);
                xor16(lane, &offset);
                advance(&mut offset, &mut idx);
            }
            self.aes.encrypt_blocks(&mut batch);
            for lane in &batch {
                xor16(sigma, lane);
            }
        }
        for chunk in quads.remainder().chunks_exact(16) {
            let mut b: [u8; 16] = chunk.try_into().unwrap();
            xor16(&mut b, &offset);
            advance(&mut offset, &mut idx);
            self.aes.encrypt_block(&mut b);
            xor16(sigma, &b);
        }
    }

    /// Fold the final (possibly partial) block into an accumulated sigma
    /// and produce the tag. Public so external parallel drivers can combine
    /// [`Pmac::accumulate`] partial sums themselves and finish here.
    pub fn finalize_sigma(&self, mut sigma: [u8; 16], last: &[u8], nonce: u64) -> u32 {
        if last.len() == 16 {
            let block: [u8; 16] = last.try_into().unwrap();
            xor16(&mut sigma, &block);
            xor16(&mut sigma, &self.l_inv);
        } else {
            let mut padded = [0u8; 16];
            padded[..last.len()].copy_from_slice(last);
            padded[last.len()] = 0x80;
            xor16(&mut sigma, &padded);
        }
        self.aes.encrypt_block(&mut sigma);
        let tag = u32::from_be_bytes([sigma[0], sigma[1], sigma[2], sigma[3]]);
        // Nonce pad (see module docs).
        let mut pad = [0u8; 16];
        pad[0] = 0x07;
        pad[8..16].copy_from_slice(&nonce.to_be_bytes());
        self.aes.encrypt_block(&mut pad);
        tag ^ u32::from_be_bytes([pad[0], pad[1], pad[2], pad[3]])
    }

    /// Split a message into the blocks PMAC accumulates and the final block
    /// it folds in at the end. An empty message has an empty final block.
    pub fn split(message: &[u8]) -> (&[u8], &[u8]) {
        if message.is_empty() {
            return (&[], &[]);
        }
        // The last block is 1..=16 bytes; everything before is full blocks.
        let last_len = match message.len() % 16 {
            0 => 16,
            r => r,
        };
        message.split_at(message.len() - last_len)
    }

    /// One-shot 32-bit tag.
    pub fn tag32(&self, nonce: u64, message: &[u8]) -> u32 {
        let (full, last) = Self::split(message);
        let mut sigma = [0u8; 16];
        self.accumulate(0, full, &mut sigma);
        self.finalize_sigma(sigma, last, nonce)
    }

    /// Start an incremental tag computation (see [`PmacStream`]).
    pub fn stream(&self, nonce: u64) -> PmacStream<'_> {
        PmacStream {
            pmac: self,
            nonce,
            sigma: [0u8; 16],
            idx: 0,
            buf: [0u8; 16],
            buf_len: 0,
        }
    }

    /// Tag computed by accumulating the full-block prefix in `chunks`-many
    /// independently-computed partial sums (sequentially here; the point is
    /// that the partial sums commute, which the test below verifies and the
    /// bench exploits with real threads).
    pub fn tag32_chunked(&self, nonce: u64, message: &[u8], chunks: usize) -> u32 {
        let (full, last) = Self::split(message);
        let nblocks = full.len() / 16;
        let chunks = chunks.max(1);
        let per = nblocks.div_ceil(chunks).max(1);
        let mut sigma = [0u8; 16];
        let mut idx = 0usize;
        while idx < nblocks {
            let end = (idx + per).min(nblocks);
            let mut partial = [0u8; 16];
            self.accumulate(idx as u64, &full[idx * 16..end * 16], &mut partial);
            xor16(&mut sigma, &partial);
            idx = end;
        }
        self.finalize_sigma(sigma, last, nonce)
    }
}

/// Incremental form of [`Pmac::tag32`]: feed the message in arbitrary
/// slices, then [`PmacStream::finalize`]. The final block of a message is
/// special-cased in PMAC ([`Pmac::split`] keeps 1..=16 trailing bytes for
/// [`Pmac::finalize_sigma`]), so the stream lags the input by one buffered
/// block: a full buffer is only flushed into sigma once more data proves it
/// was not the last block. No heap allocation in init/update/finalize.
#[derive(Clone)]
pub struct PmacStream<'k> {
    pmac: &'k Pmac,
    nonce: u64,
    sigma: [u8; 16],
    /// Index of the next full block to accumulate.
    idx: u64,
    /// Lag buffer holding the most recent 0..=16 message bytes.
    buf: [u8; 16],
    buf_len: usize,
}

impl PmacStream<'_> {
    /// Absorb the next `data` bytes of the message.
    pub fn update(&mut self, mut data: &[u8]) {
        while !data.is_empty() {
            if self.buf_len == 16 {
                // More data follows, so the buffered block is not final.
                let block = self.buf;
                self.pmac.accumulate(self.idx, &block, &mut self.sigma);
                self.idx += 1;
                self.buf_len = 0;
            }
            if self.buf_len == 0 && data.len() > 16 {
                // Bulk path: accumulate every block that provably is not
                // the last one (≥ 1 byte must remain for the lag buffer).
                let nblocks = (data.len() - 1) / 16;
                let (head, rest) = data.split_at(nblocks * 16);
                self.pmac.accumulate(self.idx, head, &mut self.sigma);
                self.idx += nblocks as u64;
                data = rest;
            }
            let take = (16 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
        }
    }

    /// Finish and return the 32-bit tag. Equals
    /// `pmac.tag32(nonce, message)` for the concatenation of all `update`
    /// slices.
    pub fn finalize(self) -> u32 {
        self.pmac
            .finalize_sigma(self.sigma, &self.buf[..self.buf_len], self.nonce)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbl_known_behaviour() {
        // Doubling zero is zero; doubling with a high bit set applies 0x87.
        assert_eq!(dbl(&[0u8; 16]), [0u8; 16]);
        let mut one = [0u8; 16];
        one[15] = 1;
        let mut two = [0u8; 16];
        two[15] = 2;
        assert_eq!(dbl(&one), two);
        let mut high = [0u8; 16];
        high[0] = 0x80;
        let d = dbl(&high);
        assert_eq!(d[15], 0x87);
        assert_eq!(&d[..15], &[0u8; 15]);
    }

    #[test]
    fn deterministic_and_sensitive() {
        let p = Pmac::new(b"pmac key 16 byte");
        assert_eq!(p.tag32(5, b"abc"), p.tag32(5, b"abc"));
        assert_ne!(p.tag32(5, b"abc"), p.tag32(6, b"abc"));
        assert_ne!(p.tag32(5, b"abc"), p.tag32(5, b"abd"));
        let q = Pmac::new(b"pmac KEY 16 byte");
        assert_ne!(p.tag32(5, b"abc"), q.tag32(5, b"abc"));
    }

    #[test]
    fn block_boundary_sensitivity() {
        let p = Pmac::new(b"pmac key 16 byte");
        for len in [15usize, 16, 17, 31, 32, 33, 64, 100] {
            let m1 = vec![0x42u8; len];
            let mut m2 = m1.clone();
            *m2.last_mut().unwrap() ^= 1;
            assert_ne!(p.tag32(1, &m1), p.tag32(1, &m2), "len {len}");
        }
    }

    #[test]
    fn full_vs_padded_final_block_distinct() {
        // A 16-byte message and the same message padded with 0x80 0x00...
        // must not collide (the l_inv tweak provides the separation).
        let p = Pmac::new(b"pmac key 16 byte");
        let full = [0x11u8; 16];
        let mut padded_form = [0u8; 16];
        padded_form[..5].copy_from_slice(&[0x11; 5]);
        // Not a rigorous proof, just a regression check on the tweak logic.
        assert_ne!(p.tag32(1, &full), p.tag32(1, &padded_form[..5]));
    }

    #[test]
    fn chunked_matches_sequential() {
        let p = Pmac::new(b"parallel pmac!!!");
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7) as u8).collect();
        let reference = p.tag32(3, &data);
        for chunks in [1usize, 2, 3, 4, 7, 16, 100] {
            assert_eq!(
                p.tag32_chunked(3, &data, chunks),
                reference,
                "{chunks} chunks"
            );
        }
    }

    #[test]
    fn stream_equals_oneshot_across_sizes_and_splits() {
        let p = Pmac::new(b"pmac key 16 byte");
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 100, 1000] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 13 + 7) as u8).collect();
            let expect = p.tag32(9, &msg);
            let mut s = p.stream(9);
            s.update(&msg);
            assert_eq!(s.finalize(), expect, "len {len} single");
            let mut s = p.stream(9);
            for b in &msg {
                s.update(std::slice::from_ref(b));
            }
            assert_eq!(s.finalize(), expect, "len {len} bytewise");
            for split in [1usize, 15, 16, 17, 32] {
                if split <= len {
                    let mut s = p.stream(9);
                    s.update(&msg[..split]);
                    s.update(&msg[split..]);
                    assert_eq!(s.finalize(), expect, "len {len} split {split}");
                }
            }
        }
    }

    #[test]
    fn empty_message() {
        let p = Pmac::new(b"pmac key 16 byte");
        assert_eq!(p.tag32(1, b""), p.tag32(1, b""));
        assert_ne!(p.tag32(1, b""), p.tag32(2, b""));
        assert_ne!(p.tag32(1, b""), p.tag32(1, b"\x00"));
    }

    #[test]
    fn batched_accumulate_matches_per_block_reference() {
        // The 4-lane accumulate (incremental offsets + batched AES) must
        // reproduce the naive one-block-at-a-time definition bit for bit,
        // from any starting index.
        let p = Pmac::new(b"batch pmac key!!");
        let data: Vec<u8> = (0..40 * 16u32).map(|i| (i * 11 + 3) as u8).collect();
        for first in [
            0u64,
            1,
            2,
            3,
            4,
            7,
            8,
            31,
            32,
            63,
            64,
            1000,
            u32::MAX as u64,
        ] {
            for nblocks in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 16, 40] {
                let mut want = [0u8; 16];
                for (k, chunk) in data[..nblocks * 16].chunks_exact(16).enumerate() {
                    let mut b: [u8; 16] = chunk.try_into().unwrap();
                    xor16(&mut b, &p.offset(first + k as u64));
                    p.aes.encrypt_block_soft(&mut b);
                    xor16(&mut want, &b);
                }
                let mut got = [0u8; 16];
                p.accumulate(first, &data[..nblocks * 16], &mut got);
                assert_eq!(got, want, "first {first} nblocks {nblocks}");
            }
        }
    }

    #[test]
    fn offsets_are_distinct() {
        let p = Pmac::new(b"pmac key 16 byte");
        let offsets: Vec<[u8; 16]> = (0..64).map(|i| p.offset(i)).collect();
        for i in 0..offsets.len() {
            for j in i + 1..offsets.len() {
                assert_ne!(offsets[i], offsets[j], "offset {i} == offset {j}");
            }
        }
    }
}
