//! HMAC keyed-hash message authentication (RFC 2104), generic over the
//! [`Digest`] implementations in this crate.
//!
//! The paper (Table 4) benchmarks HMAC-MD5 and HMAC-SHA1 as the
//! "conventional MACs adopted in IPSec", truncating their tags to the 32-bit
//! ICRC field. [`Hmac::tag32`] performs that truncation (leftmost 4 bytes,
//! per RFC 2104 §5 truncation convention).

use crate::digest::Digest;

/// Streaming HMAC state over digest `D`.
///
/// ```
/// use ib_crypto::{hmac::Hmac, md5::Md5};
/// let mut mac = Hmac::<Md5>::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(&tag[..4], &Hmac::<Md5>::tag32(b"key",
///     b"The quick brown fox jumps over the lazy dog").to_be_bytes());
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Key XOR opad, retained for the outer pass.
    opad_key: [u8; 64],
}

impl<D: Digest> Hmac<D> {
    /// Create an HMAC instance for `key`. Keys longer than the digest block
    /// are first hashed, per RFC 2104.
    pub fn new(key: &[u8]) -> Self {
        assert!(D::BLOCK_LEN <= 64, "unsupported block length");
        let mut key_block = [0u8; 64];
        if key.len() > D::BLOCK_LEN {
            let mut h = D::new();
            h.update(key);
            let mut out = [0u8; 64];
            h.finalize_into(&mut out);
            key_block[..D::OUTPUT_LEN].copy_from_slice(&out[..D::OUTPUT_LEN]);
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; 64];
        let mut opad_key = [0u8; 64];
        for i in 0..D::BLOCK_LEN {
            ipad_key[i] = key_block[i] ^ 0x36;
            opad_key[i] = key_block[i] ^ 0x5c;
        }
        let mut inner = D::new();
        inner.update(&ipad_key[..D::BLOCK_LEN]);
        Hmac { inner, opad_key }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish, returning the full digest in a 64-byte buffer; the valid
    /// prefix is `D::OUTPUT_LEN` bytes.
    pub fn finalize(self) -> [u8; 64] {
        let mut inner_digest = [0u8; 64];
        self.inner.finalize_into(&mut inner_digest);
        let mut outer = D::new();
        outer.update(&self.opad_key[..D::BLOCK_LEN]);
        outer.update(&inner_digest[..D::OUTPUT_LEN]);
        let mut out = [0u8; 64];
        outer.finalize_into(&mut out);
        out
    }

    /// One-shot full-length HMAC.
    pub fn mac(key: &[u8], message: &[u8]) -> [u8; 64] {
        let mut h = Self::new(key);
        h.update(message);
        h.finalize()
    }

    /// One-shot HMAC truncated to a 32-bit tag (leftmost 4 bytes,
    /// big-endian), the form stored in the ICRC field by the paper's scheme.
    pub fn tag32(key: &[u8], message: &[u8]) -> u32 {
        let out = Self::mac(key, message);
        u32::from_be_bytes([out[0], out[1], out[2], out[3]])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hex;
    use crate::md5::Md5;
    use crate::sha1::Sha1;

    fn hmac_md5_hex(key: &[u8], msg: &[u8]) -> String {
        hex(&Hmac::<Md5>::mac(key, msg)[..16])
    }

    fn hmac_sha1_hex(key: &[u8], msg: &[u8]) -> String {
        hex(&Hmac::<Sha1>::mac(key, msg)[..20])
    }

    // RFC 2202 test cases.
    #[test]
    fn rfc2202_md5() {
        assert_eq!(
            hmac_md5_hex(&[0x0b; 16], b"Hi There"),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );
        assert_eq!(
            hmac_md5_hex(b"Jefe", b"what do ya want for nothing?"),
            "750c783e6ab0b503eaa86e310a5db738"
        );
        assert_eq!(
            hmac_md5_hex(&[0xaa; 16], &[0xdd; 50]),
            "56be34521d144c88dbb8c733f0e8b3f6"
        );
        let key: Vec<u8> = (1..=25).collect();
        assert_eq!(
            hmac_md5_hex(&key, &[0xcd; 50]),
            "697eaf0aca3a3aea3a75164746ffaa79"
        );
        // Key longer than block size.
        assert_eq!(
            hmac_md5_hex(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd"
        );
    }

    #[test]
    fn rfc2202_sha1() {
        assert_eq!(
            hmac_sha1_hex(&[0x0b; 20], b"Hi There"),
            "b617318655057264e28bc0b6fb378c8ef146be00"
        );
        assert_eq!(
            hmac_sha1_hex(b"Jefe", b"what do ya want for nothing?"),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
        );
        assert_eq!(
            hmac_sha1_hex(&[0xaa; 20], &[0xdd; 50]),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3"
        );
        assert_eq!(
            hmac_sha1_hex(
                &[0xaa; 80],
                b"Test Using Larger Than Block-Size Key - Hash Key First"
            ),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"
        );
    }

    #[test]
    fn tag32_is_leftmost_truncation() {
        let full = Hmac::<Sha1>::mac(b"k", b"m");
        let tag = Hmac::<Sha1>::tag32(b"k", b"m");
        assert_eq!(tag.to_be_bytes(), full[..4]);
    }

    #[test]
    fn different_keys_different_tags() {
        let m = b"same message";
        assert_ne!(
            Hmac::<Md5>::tag32(b"key-a", m),
            Hmac::<Md5>::tag32(b"key-b", m)
        );
        assert_ne!(
            Hmac::<Sha1>::tag32(b"key-a", m),
            Hmac::<Sha1>::tag32(b"key-b", m)
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| i as u8).collect();
        let mut h = Hmac::<Sha1>::new(b"stream-key");
        h.update(&data[..100]);
        h.update(&data[100..]);
        assert_eq!(h.finalize(), Hmac::<Sha1>::mac(b"stream-key", &data));
    }

    #[test]
    fn empty_message_and_empty_key() {
        // Just must not panic and must be deterministic.
        assert_eq!(Hmac::<Md5>::tag32(b"", b""), Hmac::<Md5>::tag32(b"", b""));
        assert_ne!(Hmac::<Md5>::tag32(b"", b""), Hmac::<Md5>::tag32(b"x", b""));
    }
}
