//! MD5 message digest (RFC 1321), implemented from the specification.
//!
//! MD5 is one of the two conventional hash functions the paper benchmarks
//! under HMAC (Table 4: HMAC-MD5 at ~5.3 cycles/byte). It is *broken* for
//! collision resistance today; it is reproduced here because the paper
//! evaluates it, not because new designs should use it.

use crate::digest::Digest;

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(2^32 * abs(sin(i+1))) — the RFC 1321 constant table.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Streaming MD5 state.
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    /// Total message length in bytes (mod 2^64).
    len: u64,
    buf: [u8; 64],
    buf_len: usize,
}

impl Md5 {
    fn compress(state: &mut [u32; 4], block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        let (mut a, mut b, mut c, mut d) = (state[0], state[1], state[2], state[3]);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(K[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
    }

    /// One-shot MD5 digest.
    pub fn hash(data: &[u8]) -> [u8; 16] {
        let mut h = Self::new();
        h.update(data);
        let mut out = [0u8; 16];
        Digest::finalize_into(h, &mut out);
        out
    }
}

impl Digest for Md5 {
    const OUTPUT_LEN: usize = 16;
    const BLOCK_LEN: usize = 64;

    fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            len: 0,
            buf: [0u8; 64],
            buf_len: 0,
        }
    }

    fn update(&mut self, mut data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                Self::compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Data exhausted into the partial buffer; don't fall through
                // to the remainder logic, which would clobber buf_len.
                return;
            }
        }
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            Self::compress(&mut self.state, chunk.try_into().unwrap());
        }
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    fn finalize_into(mut self, out: &mut [u8]) {
        let bit_len = self.len.wrapping_mul(8);
        // Padding: 0x80 then zeros to 56 mod 64, then little-endian bit count.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Appending the length by hand rather than via update(): update()
        // would perturb self.len, which no longer matters, but it would also
        // recurse through the buffering path — this is simpler.
        self.buf[56..64].copy_from_slice(&bit_len.to_le_bytes());
        let block = self.buf;
        Self::compress(&mut self.state, &block);
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::hex;

    // RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(&hex(&Md5::hash(input)), expect);
        }
    }

    #[test]
    fn quick_brown_fox() {
        assert_eq!(
            hex(&Md5::hash(b"The quick brown fox jumps over the lazy dog")),
            "9e107d9d372bb6826bd81d3542a419d6"
        );
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 63, 64, 65, 500, 999, 1000] {
            let mut h = Md5::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            let mut out = [0u8; 16];
            Digest::finalize_into(h, &mut out);
            assert_eq!(out, Md5::hash(&data), "split {split}");
        }
    }

    #[test]
    fn exact_block_boundaries() {
        // Lengths around the 55/56-byte padding edge and 64-byte block edge.
        for len in [55usize, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xABu8; len];
            let one = Md5::hash(&data);
            let mut h = Md5::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            let mut out = [0u8; 16];
            Digest::finalize_into(h, &mut out);
            assert_eq!(out, one, "len {len}");
        }
    }
}
