//! A deliberately tiny RSA used to *simulate* the paper's PKI assumption.
//!
//! §4.2/§4.3 of the paper assume "SM knows public keys of all CAs and each
//! CA can decrypt the secret key encrypted by the SM" — public-key transport
//! is an assumption, never a measured mechanism. This module provides the
//! functional semantics (key pairs, encrypt-to-public, decrypt-with-private)
//! with 64-bit moduli so the simulator can exercise the *exact* key
//! distribution flows (partition-level and QP-level) end to end.
//!
//! **NOT cryptographically secure.** A 64-bit modulus is factorable in
//! milliseconds. Production IBA deployments would use a real PKI; this is a
//! documented substitution (see DESIGN.md "Substitutions").

/// Public half of a key pair: (modulus n, exponent e).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublicKey {
    pub n: u64,
    pub e: u64,
}

/// Private half of a key pair: (modulus n, exponent d).
#[derive(Debug, Clone, Copy)]
pub struct PrivateKey {
    pub n: u64,
    pub d: u64,
}

/// Modular exponentiation base^exp mod m (m < 2^64).
pub fn mod_pow(mut base: u64, mut exp: u64, m: u64) -> u64 {
    assert!(m > 1);
    let mut result = 1u64;
    base %= m;
    while exp > 0 {
        if exp & 1 != 0 {
            result = ((result as u128 * base as u128) % m as u128) as u64;
        }
        base = ((base as u128 * base as u128) % m as u128) as u64;
        exp >>= 1;
    }
    result
}

/// Deterministic Miller-Rabin, valid for all n < 2^64 with this base set.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = mod_pow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Modular inverse of a mod m, if gcd(a, m) == 1.
pub fn mod_inverse(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(((x % m as i128 + m as i128) % m as i128) as u64)
}

/// Next prime >= n (n must leave headroom below u64::MAX; callers pass
/// ~31-bit values).
fn next_prime(mut n: u64) -> u64 {
    if n <= 2 {
        return 2;
    }
    if n.is_multiple_of(2) {
        n += 1;
    }
    while !is_prime(n) {
        n += 2;
    }
    n
}

/// A simple deterministic key generator: derives a key pair from a seed via
/// an xorshift walk to two ~31-bit primes. Deterministic so simulations are
/// reproducible.
pub fn generate_keypair(seed: u64) -> (PublicKey, PrivateKey) {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
    let mut next = || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    loop {
        // Two distinct primes in [2^30, 2^31) so n fits comfortably in u64
        // and every 7-byte message block is < n... (2^30)^2 = 2^60 > 2^56. ✓
        let p = next_prime((next() % (1 << 30)) + (1 << 30));
        let mut q = next_prime((next() % (1 << 30)) + (1 << 30));
        if p == q {
            q = next_prime(q + 2);
        }
        let n = p * q;
        let phi = (p - 1) * (q - 1);
        let e = 65537u64;
        if let Some(d) = mod_inverse(e, phi) {
            return (PublicKey { n, e }, PrivateKey { n, d });
        }
    }
}

/// Encrypt an arbitrary byte string to `pk`. Each 7-byte chunk becomes one
/// u64 ciphertext (7 bytes < 2^56 < n always). The length is carried in the
/// first ciphertext block so decryption restores the exact byte string.
pub fn encrypt(pk: &PublicKey, plaintext: &[u8]) -> Vec<u64> {
    let mut out = Vec::with_capacity(1 + plaintext.len().div_ceil(7));
    out.push(mod_pow(plaintext.len() as u64, pk.e, pk.n));
    for chunk in plaintext.chunks(7) {
        let mut block = [0u8; 8];
        block[..chunk.len()].copy_from_slice(chunk);
        let m = u64::from_le_bytes(block);
        debug_assert!(m < pk.n);
        out.push(mod_pow(m, pk.e, pk.n));
    }
    out
}

/// Decrypt a ciphertext produced by [`encrypt`]. Returns `None` on a
/// malformed ciphertext (wrong length framing).
pub fn decrypt(sk: &PrivateKey, ciphertext: &[u64]) -> Option<Vec<u8>> {
    let (&len_block, blocks) = ciphertext.split_first()?;
    let len = mod_pow(len_block, sk.d, sk.n) as usize;
    if blocks.len() != len.div_ceil(7) {
        return None;
    }
    let mut out = Vec::with_capacity(len);
    for (i, &c) in blocks.iter().enumerate() {
        let m = mod_pow(c, sk.d, sk.n);
        let bytes = m.to_le_bytes();
        let take = (len - i * 7).min(7);
        out.extend_from_slice(&bytes[..take]);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_spot_checks() {
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(is_prime(1_073_741_827)); // 2^30 + 3
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(1_073_741_825));
        assert!(is_prime(0xFFFF_FFFF_FFFF_FFC5)); // P64 = 2^64 - 59
        assert!(!is_prime(u64::MAX)); // 2^64-1 = 3·5·17·257·641·65537·6700417
    }

    #[test]
    fn mod_inverse_works() {
        assert_eq!(mod_inverse(3, 10), Some(7));
        assert_eq!(mod_inverse(2, 4), None);
        let m = 1_000_000_007u64;
        for a in [2u64, 12345, 999_999_999] {
            let inv = mod_inverse(a, m).unwrap();
            assert_eq!((a as u128 * inv as u128 % m as u128) as u64, 1);
        }
    }

    #[test]
    fn roundtrip_various_lengths() {
        let (pk, sk) = generate_keypair(42);
        for len in [0usize, 1, 6, 7, 8, 13, 14, 16, 100] {
            let msg: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            let ct = encrypt(&pk, &msg);
            assert_eq!(decrypt(&sk, &ct).unwrap(), msg, "len {len}");
        }
    }

    #[test]
    fn different_seeds_different_keys() {
        let (pk1, _) = generate_keypair(1);
        let (pk2, _) = generate_keypair(2);
        assert_ne!(pk1.n, pk2.n);
    }

    #[test]
    fn deterministic_keygen() {
        assert_eq!(generate_keypair(7).0, generate_keypair(7).0);
    }

    #[test]
    fn wrong_key_garbles() {
        let (pk, _) = generate_keypair(5);
        let (_, sk_wrong) = generate_keypair(6);
        let msg = b"secret partition key S_K1";
        let ct = encrypt(&pk, msg);
        // Wrong private key either fails framing or yields different bytes.
        match decrypt(&sk_wrong, &ct) {
            None => {}
            Some(pt) => assert_ne!(pt, msg),
        }
    }

    #[test]
    fn malformed_ciphertext_rejected() {
        let (pk, sk) = generate_keypair(9);
        let mut ct = encrypt(&pk, b"16-byte secretkk");
        ct.pop();
        assert!(decrypt(&sk, &ct).is_none());
        assert!(decrypt(&sk, &[]).is_none());
    }
}
