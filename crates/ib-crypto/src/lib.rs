//! # ib-crypto
//!
//! From-scratch implementations of every cryptographic and error-detection
//! primitive that *Security Enhancement in InfiniBand Architecture*
//! (IPPS 2005) touches:
//!
//! * [`crc`] — CRC-32 (IEEE 802.3 polynomial, used by the IBA Invariant CRC)
//!   and CRC-16 (polynomial 0x100B, used by the IBA Variant CRC), in bitwise
//!   reference, byte-table, and slice-by-4 variants.
//! * [`md5`] / [`sha1`] — the hash functions underlying HMAC-MD5 and
//!   HMAC-SHA1 (Table 4 of the paper).
//! * [`hmac`] — RFC 2104 keyed-hash message authentication, generic over any
//!   [`digest::Digest`].
//! * [`aes`] — AES-128 block cipher (FIPS 197), the PRF inside our UMAC and
//!   PMAC and the cipher the paper's §7 "30–70 Gbps AES processor" remark
//!   refers to.
//! * [`umac`] — NH + Carter-Wegman universal-hash MAC in the style of
//!   UMAC (Black et al., CRYPTO '99 / RFC 4418); the paper's fast MAC of
//!   choice for the 32-bit authentication tag.
//! * [`stream_mac`] — a stream-cipher integrity check in the style of
//!   Lai-Rueppel/Taylor (§7 discussion: MAC computed while transferring).
//! * [`pmac`] — a parallelizable block-cipher MAC (§7 discussion: PMAC).
//! * [`partial_mac`] — the §7/ACSA strength-for-speed trade-off: MAC a
//!   keyed pseudorandom subset of message blocks.
//! * [`toyrsa`] — a deliberately tiny mod-exp RSA envelope used to *simulate*
//!   the paper's PKI assumption ("SM knows public keys of all CAs").
//!   **Not cryptographically secure**; see crate docs there.
//! * [`mac`] — a common [`mac::Mac`] object interface plus the
//!   [`mac::AuthAlgorithm`] registry that maps to the BTH `Resv` selector
//!   values used by the ICRC-as-MAC scheme, with the forgery-probability
//!   table the paper reports (Table 4).
//! * [`mac_stream`] — the incremental (init/update/finalize) counterpart of
//!   [`mac::AnyMac`], so tags can be computed over in-place packet slices
//!   without materializing the message (§5.2's link-rate argument).
//! * [`simd`] — runtime-dispatched vector kernels (PCLMULQDQ CRC-32
//!   folding, SSE2/AVX2 NH, AES-NI, carry-less GHASH) with the scalar
//!   implementations above as always-available fallback and oracle.
//! * [`aead`] — an AES-GCM-style authenticated encryption mode with a
//!   32-bit tag, the Table-4 arm for the paper's confidentiality +
//!   authentication combination.
//!
//! Everything is `no_std`-style pure computation over byte slices (we still
//! link `std` for convenience); nothing allocates on the hot path except
//! where explicitly noted.

pub mod aead;
pub mod aes;
pub mod crc;
pub mod digest;
pub mod hmac;
pub mod mac;
pub mod mac_stream;
pub mod md5;
pub mod partial_mac;
pub mod pmac;
pub mod sha1;
pub mod simd;
pub mod stream_mac;
pub mod toyrsa;
pub mod umac;

pub use aead::AesGcm32;
pub use crc::{crc16_iba, crc32_ieee, Crc16, Crc32};
pub use digest::Digest;
pub use hmac::Hmac;
pub use mac::{AuthAlgorithm, Mac, Tag32};
pub use mac_stream::MacStream;
pub use md5::Md5;
pub use sha1::Sha1;
pub use umac::Umac;
