//! Cyclic redundancy checks used by the InfiniBand Architecture.
//!
//! IBA defines two data-packet CRCs (spec §7.8):
//!
//! * **ICRC** — a 32-bit CRC over the *invariant* fields of the packet,
//!   using the same generator polynomial as Ethernet (IEEE 802.3),
//!   `0x04C11DB7`, bit-reflected, seeded with `0xFFFF_FFFF` and inverted on
//!   output. This is the field the paper repurposes as a 32-bit
//!   authentication tag.
//! * **VCRC** — a 16-bit CRC over the whole packet, generator polynomial
//!   `x^16 + x^12 + x^3 + x + 1` (`0x100B`), seeded with `0xFFFF`.
//!
//! Several implementations are provided for each width: a bitwise reference
//! (the definition), a 256-entry byte table, and slice-by-4 / slice-by-8
//! tables for the 32-bit CRC (the variants a 10 Gbps "multistage" hardware
//! generator like the one cited in the paper's Table 4 parallelizes). The
//! table variants are cross-checked against the bitwise reference by unit
//! and property tests.

/// Reflected IEEE 802.3 polynomial (0x04C11DB7 bit-reversed).
pub const CRC32_POLY_REFLECTED: u32 = 0xEDB8_8320;
/// Reflected IBA VCRC polynomial (0x100B bit-reversed).
pub const CRC16_POLY_REFLECTED: u16 = 0xD008;

/// Bitwise reference CRC-32 (IEEE 802.3, reflected, init/xorout all-ones).
///
/// `crc32_bitwise(b"123456789") == 0xCBF4_3926`.
pub fn crc32_bitwise(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= byte as u32;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= CRC32_POLY_REFLECTED;
            }
        }
    }
    !crc
}

/// Bitwise reference CRC-16 with the IBA VCRC polynomial (reflected form),
/// init `0xFFFF`, no output inversion (per IBA spec §7.8.2 the VCRC is the
/// register contents, not its complement).
pub fn crc16_bitwise(data: &[u8]) -> u16 {
    let mut crc = 0xFFFFu16;
    for &byte in data {
        crc ^= byte as u16;
        for _ in 0..8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= CRC16_POLY_REFLECTED;
            }
        }
    }
    crc
}

const fn build_crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= CRC32_POLY_REFLECTED;
            }
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const fn build_crc16_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u16;
        let mut bit = 0;
        while bit < 8 {
            let lsb = crc & 1;
            crc >>= 1;
            if lsb != 0 {
                crc ^= CRC16_POLY_REFLECTED;
            }
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Byte-at-a-time CRC-32 lookup table (compile-time generated).
pub static CRC32_TABLE: [u32; 256] = build_crc32_table();
/// Byte-at-a-time CRC-16 lookup table (compile-time generated).
pub static CRC16_TABLE: [u16; 256] = build_crc16_table();

const fn build_crc32_slice4() -> [[u32; 256]; 4] {
    let t0 = build_crc32_table();
    let mut tables = [[0u32; 256]; 4];
    tables[0] = t0;
    let mut i = 0;
    while i < 256 {
        let mut crc = t0[i];
        let mut k = 1;
        while k < 4 {
            crc = t0[(crc & 0xFF) as usize] ^ (crc >> 8);
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC32_SLICE4: [[u32; 256]; 4] = build_crc32_slice4();

const fn build_crc32_slice8() -> [[u32; 256]; 8] {
    let t0 = build_crc32_table();
    let mut tables = [[0u32; 256]; 8];
    tables[0] = t0;
    let mut i = 0;
    while i < 256 {
        let mut crc = t0[i];
        let mut k = 1;
        while k < 8 {
            crc = t0[(crc & 0xFF) as usize] ^ (crc >> 8);
            tables[k][i] = crc;
            k += 1;
        }
        i += 1;
    }
    tables
}

static CRC32_SLICE8: [[u32; 256]; 8] = build_crc32_slice8();

/// Incremental CRC-32 engine (reflected IEEE 802.3).
///
/// Use [`Crc32::update`] to feed data in pieces — the ICRC computation feeds
/// masked header bytes followed by the payload without materializing a
/// contiguous masked copy.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh engine seeded with all-ones.
    #[inline]
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Feed `data` through the byte-table implementation.
    #[inline]
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut crc = self.state;
        for &b in data {
            crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Feed `data` using the slice-by-4 implementation (4 bytes per step).
    #[inline]
    pub fn update_slice4(&mut self, data: &[u8]) -> &mut Self {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(4);
        for chunk in &mut chunks {
            let word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            crc ^= word;
            crc = CRC32_SLICE4[3][(crc & 0xFF) as usize]
                ^ CRC32_SLICE4[2][((crc >> 8) & 0xFF) as usize]
                ^ CRC32_SLICE4[1][((crc >> 16) & 0xFF) as usize]
                ^ CRC32_SLICE4[0][((crc >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Feed `data` using the slice-by-8 implementation (8 bytes per step).
    ///
    /// This is the widest software kernel here and the one the hot paths
    /// use; a multistage hardware generator (Table 4's 10 Gbps CRC)
    /// parallelizes the same recurrence further.
    #[inline]
    pub fn update_slice8(&mut self, data: &[u8]) -> &mut Self {
        let mut crc = self.state;
        let mut chunks = data.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = CRC32_SLICE8[7][(lo & 0xFF) as usize]
                ^ CRC32_SLICE8[6][((lo >> 8) & 0xFF) as usize]
                ^ CRC32_SLICE8[5][((lo >> 16) & 0xFF) as usize]
                ^ CRC32_SLICE8[4][((lo >> 24) & 0xFF) as usize]
                ^ CRC32_SLICE8[3][(hi & 0xFF) as usize]
                ^ CRC32_SLICE8[2][((hi >> 8) & 0xFF) as usize]
                ^ CRC32_SLICE8[1][((hi >> 16) & 0xFF) as usize]
                ^ CRC32_SLICE8[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Feed `data` through the fastest kernel available at runtime:
    /// PCLMULQDQ carry-less folding for buffers of at least
    /// [`crate::simd::crc::PCLMUL_MIN_LEN`] bytes when the CPU supports
    /// it (and `IB_SIMD=off` is not set), slice-by-8 otherwise. CRC is
    /// linear over GF(2), so the result is bit-identical to
    /// [`Crc32::update_slice8`] on every input and split.
    #[inline]
    pub fn update_auto(&mut self, data: &[u8]) -> &mut Self {
        if data.len() >= crate::simd::crc::PCLMUL_MIN_LEN && crate::simd::caps().pclmul {
            self.state = crate::simd::crc::crc32_fold_update(self.state, data);
            self
        } else {
            self.update_slice8(data)
        }
    }

    /// Final CRC value (state complemented). Does not consume the engine, so
    /// intermediate CRCs of a growing message can be observed.
    #[inline]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// Incremental CRC-16 engine with the IBA VCRC polynomial.
#[derive(Debug, Clone, Copy)]
pub struct Crc16 {
    state: u16,
}

impl Default for Crc16 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc16 {
    /// Fresh engine seeded with all-ones.
    #[inline]
    pub fn new() -> Self {
        Crc16 { state: 0xFFFF }
    }

    /// Feed `data` through the byte-table implementation.
    #[inline]
    pub fn update(&mut self, data: &[u8]) -> &mut Self {
        let mut crc = self.state;
        for &b in data {
            crc = CRC16_TABLE[((crc ^ b as u16) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
        self
    }

    /// Final VCRC value (no complement, per IBA spec).
    #[inline]
    pub fn finalize(&self) -> u16 {
        self.state
    }
}

/// One-shot CRC-32 over `data` (byte-table implementation).
#[inline]
pub fn crc32_ieee(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(data);
    c.finalize()
}

/// One-shot CRC-32 over `data` (slice-by-4 implementation).
#[inline]
pub fn crc32_ieee_slice4(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update_slice4(data);
    c.finalize()
}

/// One-shot CRC-32 over `data` (slice-by-8 implementation).
#[inline]
pub fn crc32_ieee_slice8(data: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update_slice8(data);
    c.finalize()
}

/// One-shot IBA VCRC CRC-16 over `data`.
#[inline]
pub fn crc16_iba(data: &[u8]) -> u16 {
    let mut c = Crc16::new();
    c.update(data);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32_bitwise(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_ieee(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_ieee_slice4(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32_ieee_slice8(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_slice8_matches_bitwise_all_lengths() {
        // Every length 0..64 exercises each remainder class of the 8-byte
        // main loop plus the byte-table tail.
        let data: Vec<u8> = (0..64u32).map(|i| (i * 131 + 17) as u8).collect();
        for len in 0..=data.len() {
            assert_eq!(
                crc32_ieee_slice8(&data[..len]),
                crc32_bitwise(&data[..len]),
                "len {len}"
            );
        }
    }

    #[test]
    fn crc32_slice8_incremental_split_points() {
        let data: Vec<u8> = (0..2048u32).map(|i| (i * 29 + 5) as u8).collect();
        let expect = crc32_bitwise(&data);
        for split in [0, 1, 3, 7, 8, 9, 511, 1024, 2047, 2048] {
            let mut c = Crc32::new();
            c.update_slice8(&data[..split])
                .update_slice8(&data[split..]);
            assert_eq!(c.finalize(), expect, "split {split}");
        }
    }

    #[test]
    fn crc32_update_auto_matches_slice8() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i * 197 + 3) as u8).collect();
        for len in [0, 1, 8, 63, 64, 65, 127, 128, 1024, 4096, 4999, 5000] {
            assert_eq!(
                Crc32::new().update_auto(&data[..len]).finalize(),
                crc32_ieee_slice8(&data[..len]),
                "len {len}"
            );
        }
        for split in [0, 1, 63, 64, 100, 2500, 5000] {
            let mut c = Crc32::new();
            c.update_auto(&data[..split]).update_auto(&data[split..]);
            assert_eq!(c.finalize(), crc32_ieee_slice8(&data), "split {split}");
        }
    }

    #[test]
    fn crc32_empty() {
        assert_eq!(crc32_bitwise(b""), 0);
        assert_eq!(crc32_ieee(b""), 0);
    }

    #[test]
    fn crc32_single_bytes() {
        for b in 0..=255u8 {
            assert_eq!(crc32_bitwise(&[b]), crc32_ieee(&[b]), "byte {b}");
            assert_eq!(crc32_bitwise(&[b]), crc32_ieee_slice4(&[b]), "byte {b}");
        }
    }

    #[test]
    fn crc16_table_matches_bitwise() {
        for b in 0..=255u8 {
            assert_eq!(crc16_bitwise(&[b]), crc16_iba(&[b]), "byte {b}");
        }
        assert_eq!(crc16_bitwise(b"123456789"), crc16_iba(b"123456789"));
    }

    #[test]
    fn crc32_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..1024u32).map(|i| (i * 7 + 3) as u8).collect();
        let mut c = Crc32::new();
        c.update(&data[..100])
            .update(&data[100..517])
            .update(&data[517..]);
        assert_eq!(c.finalize(), crc32_ieee(&data));
    }

    #[test]
    fn crc16_incremental_equals_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 31 + 1) as u8).collect();
        let mut c = Crc16::new();
        c.update(&data[..3])
            .update(&data[3..700])
            .update(&data[700..]);
        assert_eq!(c.finalize(), crc16_iba(&data));
    }

    #[test]
    fn crc32_detects_single_bit_flip() {
        let mut data = vec![0xA5u8; 256];
        let orig = crc32_ieee(&data);
        for byte in 0..256 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc32_ieee(&data), orig, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn crc16_detects_single_bit_flip() {
        let mut data = vec![0x3Cu8; 64];
        let orig = crc16_iba(&data);
        for byte in 0..64 {
            for bit in 0..8 {
                data[byte] ^= 1 << bit;
                assert_ne!(crc16_iba(&data), orig, "flip at {byte}:{bit} undetected");
                data[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn crc32_is_stateless_function() {
        // Same input twice -> same output (no hidden state in statics).
        let d = b"infiniband";
        assert_eq!(crc32_ieee(d), crc32_ieee(d));
    }
}
