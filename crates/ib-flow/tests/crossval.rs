//! Cross-validation: the flow-level analytic model against the packet
//! engine (the ground truth) on small meshes. Both engines route with the
//! same `Topology::route_flow` + `flow_hash`, so a flow takes the same
//! path in both; the fluid approximation should then land within a
//! store-and-forward-shaped tolerance of the packet numbers on bulk
//! transfers. This is the gate that keeps `fig_scale`'s fast-path sweeps
//! honest.

use ib_flow::{simulate, Flow};
use ib_sim::{SimConfig, SimTime, Simulator, TopoSpec};

/// Flows big enough that bandwidth dominates per-packet latency:
/// 128 KiB = 128 MTU-sized packets at the default 1 KiB MTU.
const FLOW_BYTES: u64 = 128 * 1024;

/// Relative disagreement allowed between the engines. The fluid model
/// ignores credit stalls, VL arbitration slots and packet quantization,
/// each worth a few percent on a 4×4 mesh.
const TOLERANCE: f64 = 0.25;

fn crossval_cfg(topology: TopoSpec) -> SimConfig {
    SimConfig {
        topology,
        // One partition so the receive-side P_Key check passes and flows
        // can complete; no background traffic so the flows are the only
        // load in either engine.
        num_partitions: 1,
        ..SimConfig::default()
    }
}

fn ring_flows(n: usize) -> Vec<Flow> {
    (0..n)
        .map(|i| Flow {
            src: i,
            dst: (i + 1) % n,
            bytes: FLOW_BYTES,
        })
        .collect()
}

/// Run the packet engine on the same flow set and return
/// (per-flow completion ps, makespan ps).
fn packet_reference(cfg: &SimConfig, flows: &[Flow]) -> (Vec<f64>, f64) {
    let mut cfg = cfg.clone();
    cfg.traffic.realtime_load = 0.0;
    cfg.traffic.best_effort_load = 0.0;
    let mut sim = Simulator::new(cfg);
    for f in flows {
        sim.post_flow(f.src, f.dst, f.bytes);
    }
    sim.run_hosts_until(SimTime::MAX);
    let completions: Vec<f64> = sim
        .flows()
        .iter()
        .map(|f| {
            f.completed_at
                .expect("crossval flows must complete in the packet engine") as f64
        })
        .collect();
    let makespan = completions.iter().fold(0.0f64, |a, &b| a.max(b));
    (completions, makespan)
}

fn assert_close(label: &str, packet: f64, flow: f64) {
    let rel = (packet - flow).abs() / packet.max(1e-9);
    assert!(
        rel <= TOLERANCE,
        "{label}: packet={packet:.0} flow={flow:.0} rel-err {:.1}% > {:.0}%",
        rel * 100.0,
        TOLERANCE * 100.0
    );
}

fn crossval_on(topology: TopoSpec, n_nodes: usize) {
    let mut cfg = crossval_cfg(topology);
    if matches!(cfg.topology, TopoSpec::Mesh) {
        cfg.mesh_dim = 2;
        assert_eq!(n_nodes, 4);
    }
    let flows = ring_flows(n_nodes);
    let (pkt_fct, pkt_makespan) = packet_reference(&cfg, &flows);
    let topo = cfg.build_topology();
    let rep = simulate(&*topo, &cfg, &flows);

    assert_close(
        &format!("{} makespan", topo.name()),
        pkt_makespan,
        rep.makespan_ps,
    );
    let pkt_mean = pkt_fct.iter().sum::<f64>() / pkt_fct.len() as f64;
    let flow_mean = rep.completions_ps.iter().sum::<f64>() / rep.completions_ps.len() as f64;
    assert_close(&format!("{} mean FCT", topo.name()), pkt_mean, flow_mean);
    // Every individual flow should agree too — same path, same fair
    // share, so disagreement is purely the fluid approximation.
    for (i, (&p, &f)) in pkt_fct.iter().zip(&rep.completions_ps).enumerate() {
        assert_close(&format!("{} flow {i} FCT", topo.name()), p, f);
    }
}

#[test]
fn mesh2_ring_agrees() {
    crossval_on(TopoSpec::Mesh, 4);
}

#[test]
fn mesh4_ring_agrees() {
    let mut cfg = crossval_cfg(TopoSpec::Mesh);
    cfg.mesh_dim = 4;
    let flows = ring_flows(16);
    let (pkt_fct, pkt_makespan) = packet_reference(&cfg, &flows);
    let topo = cfg.build_topology();
    let rep = simulate(&*topo, &cfg, &flows);
    assert_close("mesh4 makespan", pkt_makespan, rep.makespan_ps);
    let pkt_mean = pkt_fct.iter().sum::<f64>() / pkt_fct.len() as f64;
    let flow_mean = rep.completions_ps.iter().sum::<f64>() / rep.completions_ps.len() as f64;
    assert_close("mesh4 mean FCT", pkt_mean, flow_mean);
}

#[test]
fn fat_tree_ring_agrees() {
    crossval_on(TopoSpec::FatTree { k: 4 }, 16);
}

#[test]
fn dragonfly_ring_agrees() {
    crossval_on(
        TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: false,
        },
        12,
    );
}
