//! # ib-flow
//!
//! A flow-level analytic fast path for the fabric: instead of simulating
//! every packet, credit and arbitration slot, each transfer is a *fluid
//! flow* pushing bytes along its routed path, and link bandwidth is split
//! by **max-min fairness** (progressive filling / water-filling — the
//! dslab `network`/`throughput-model` idiom). Rates are recomputed at
//! every flow-completion epoch, so a run costs `O(epochs · links · flows)`
//! arithmetic rather than millions of discrete events — the regime where
//! "millions of users" experiments become affordable.
//!
//! The model shares everything observable with the packet engine:
//!
//! * the same [`Topology`] object, walked with the same
//!   [`flow_hash`]-steered [`Topology::route_flow`] — so a flow takes the
//!   *identical* path in both engines;
//! * the same directed-link identity convention as the engine's fault
//!   layer (`node` for the HCA uplink, `n_nodes + switch·radix + port`
//!   for switch outputs);
//! * the same [`SimConfig`] capacity and latency constants.
//!
//! ## Assumptions and limits
//!
//! * **Fluid approximation** — no packetization, so MTU-granularity
//!   effects (head-of-line blocking, credit stalls, VL arbitration) are
//!   invisible; accuracy improves as flows grow past a few MTUs.
//! * **All flows start at t = 0** and run until their bytes drain; the
//!   epoch loop advances directly between completion instants.
//! * **Single traffic class** — flows model best-effort bulk transfers;
//!   there is no priority preemption between classes.
//! * **No faults, no enforcement** — drops and P_Key filtering are
//!   packet-level mechanisms; use the packet engine (the ground truth)
//!   when they matter.
//!
//! The `crossval` integration test pins the two engines together:
//! aggregate goodput on small meshes must agree within tolerance.

use ib_sim::{flow_hash, Peer, SimConfig, Topology};

/// One finite transfer for the flow-level model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Source node.
    pub src: usize,
    /// Destination node (≠ `src`).
    pub dst: usize,
    /// Transfer size in bytes.
    pub bytes: u64,
}

/// Results of a flow-level run.
#[derive(Debug, Clone)]
pub struct FlowReport {
    /// Per-flow completion time in ps, in input order: the max-min
    /// bandwidth term plus the path's store-and-forward latency.
    pub completions_ps: Vec<f64>,
    /// Time the last flow completes, ps.
    pub makespan_ps: f64,
    /// Total bytes delivered per unit makespan, expressed in Gb/s.
    pub aggregate_goodput_gbps: f64,
    /// Mean utilization over links that carried any traffic
    /// (`bytes / (capacity · makespan)`).
    pub mean_link_utilization: f64,
    /// Utilization of the busiest link.
    pub max_link_utilization: f64,
    /// Rate-recomputation epochs the run took (one per distinct
    /// completion instant).
    pub epochs: usize,
}

/// The directed links a flow crosses, under the engine's link-identity
/// convention: the source HCA's uplink is link `src`, and every switch
/// output (including the final switch → HCA hop) is
/// `n_nodes + switch·radix + port`.
fn path_links(topo: &dyn Topology, src: usize, dst: usize) -> Vec<usize> {
    let n_nodes = topo.num_nodes();
    let radix = topo.radix();
    let hash = flow_hash(src, dst);
    let mut links = vec![src];
    let (mut s, _) = topo.host_attachment(src);
    let (dsw, _) = topo.host_attachment(dst);
    loop {
        let port = topo.route_flow(s, dst, hash);
        links.push(n_nodes + s * radix + port);
        if s == dsw {
            return links; // that port was the host port
        }
        match topo.peer(s, port) {
            Peer::Switch { switch, .. } => s = switch,
            other => panic!("route {src}->{dst} fell off the fabric: {other:?}"),
        }
    }
}

/// Max-min fair rates (bytes/ps) for `active` flows over shared links of
/// capacity `cap` bytes/ps each, by progressive filling: repeatedly find
/// the bottleneck link (smallest remaining-capacity-per-unfrozen-flow
/// share, lowest index on ties — deterministic), grant that share to every
/// unfrozen flow crossing it, freeze them, and subtract. Returns rates
/// indexed like `active`.
fn maxmin_rates(paths: &[Vec<usize>], active: &[usize], n_links: usize, cap: f64) -> Vec<f64> {
    let mut load = vec![0u32; n_links];
    let mut cap_left = vec![cap; n_links];
    for &f in active {
        for &l in &paths[f] {
            load[l] += 1;
        }
    }
    let mut rates = vec![0.0; active.len()];
    let mut frozen = vec![false; active.len()];
    let mut unfrozen = active.len();
    while unfrozen > 0 {
        let mut share = f64::INFINITY;
        let mut at = usize::MAX;
        for (l, &n) in load.iter().enumerate() {
            if n > 0 {
                let s = cap_left[l].max(0.0) / n as f64;
                if s < share {
                    share = s;
                    at = l;
                }
            }
        }
        debug_assert!(at != usize::MAX, "unfrozen flows must cross loaded links");
        for (i, &f) in active.iter().enumerate() {
            if !frozen[i] && paths[f].contains(&at) {
                frozen[i] = true;
                rates[i] = share;
                unfrozen -= 1;
                for &l in &paths[f] {
                    load[l] -= 1;
                    cap_left[l] -= share;
                }
            }
        }
    }
    rates
}

/// Run the flow-level model: `flows` all start at t = 0 over `topo`, with
/// link capacity, MTU and latency constants from `cfg`. Deterministic —
/// same inputs, bit-identical report.
pub fn simulate(topo: &dyn Topology, cfg: &SimConfig, flows: &[Flow]) -> FlowReport {
    assert!(
        flows
            .iter()
            .all(|f| f.src != f.dst && f.src < topo.num_nodes() && f.dst < topo.num_nodes()),
        "flows must join distinct in-range nodes"
    );
    let n_links = topo.num_nodes() + topo.num_switches() * topo.radix();
    // Gb/s → bytes per picosecond.
    let cap = cfg.link_gbps / 8000.0;
    let paths: Vec<Vec<usize>> = flows
        .iter()
        .map(|f| path_links(topo, f.src, f.dst))
        .collect();

    let mut remaining: Vec<f64> = flows.iter().map(|f| f.bytes as f64).collect();
    let mut bw_done = vec![0.0f64; flows.len()];
    let mut link_bytes = vec![0.0f64; n_links];
    let mut t = 0.0f64;
    let mut epochs = 0usize;

    loop {
        let active: Vec<usize> = (0..flows.len()).filter(|&i| remaining[i] > 0.0).collect();
        if active.is_empty() {
            break;
        }
        epochs += 1;
        let rates = maxmin_rates(&paths, &active, n_links, cap);
        // Advance to the next completion instant.
        let dt = active
            .iter()
            .zip(&rates)
            .map(|(&f, &r)| remaining[f] / r)
            .fold(f64::INFINITY, f64::min);
        debug_assert!(dt.is_finite() && dt > 0.0, "an active flow must progress");
        t += dt;
        for (i, &f) in active.iter().enumerate() {
            let moved = (rates[i] * dt).min(remaining[f]);
            remaining[f] -= moved;
            for &l in &paths[f] {
                link_bytes[l] += moved;
            }
            // Anything under half a byte is completion-epoch float noise.
            if remaining[f] < 0.5 {
                remaining[f] = 0.0;
                bw_done[f] = t;
            }
        }
    }

    // Store-and-forward path latency added on top of the bandwidth term:
    // each switch contributes its pipeline latency plus one MTU
    // serialization, each link one propagation delay.
    let mtu_tx = ib_sim::time::tx_time_ps(cfg.mtu_bytes, cfg.link_gbps) as f64;
    let completions_ps: Vec<f64> = flows
        .iter()
        .zip(&bw_done)
        .map(|(f, &done)| {
            let switches = topo.hops_on_path(f.src, f.dst, flow_hash(f.src, f.dst)) as f64;
            done + switches * (cfg.switch_latency as f64 + mtu_tx)
                + (switches + 1.0) * cfg.propagation_delay as f64
        })
        .collect();
    let makespan_ps = completions_ps.iter().fold(0.0f64, |a, &b| a.max(b));
    let total_bytes: f64 = flows.iter().map(|f| f.bytes as f64).sum();
    // bits per ps = Tb/s; ×1000 → Gb/s.
    let aggregate_goodput_gbps = if makespan_ps > 0.0 {
        total_bytes * 8.0 / makespan_ps * 1000.0
    } else {
        0.0
    };
    let used: Vec<f64> = link_bytes
        .iter()
        .filter(|&&b| b > 0.0)
        .map(|&b| b / (cap * makespan_ps))
        .collect();
    FlowReport {
        completions_ps,
        makespan_ps,
        aggregate_goodput_gbps,
        mean_link_utilization: if used.is_empty() {
            0.0
        } else {
            used.iter().sum::<f64>() / used.len() as f64
        },
        max_link_utilization: used.iter().fold(0.0f64, |a, &b| a.max(b)),
        epochs,
    }
}

/// The max-min fair starting rates (bytes/ps) for `flows` over `topo` —
/// the first epoch's allocation, exposed for diagnostics and tests.
pub fn fair_rates(topo: &dyn Topology, cfg: &SimConfig, flows: &[Flow]) -> Vec<f64> {
    let n_links = topo.num_nodes() + topo.num_switches() * topo.radix();
    let cap = cfg.link_gbps / 8000.0;
    let paths: Vec<Vec<usize>> = flows
        .iter()
        .map(|f| path_links(topo, f.src, f.dst))
        .collect();
    let active: Vec<usize> = (0..flows.len()).collect();
    maxmin_rates(&paths, &active, n_links, cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::{MeshTopology, TopoSpec};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    const CAP: f64 = 2.5 / 8000.0; // default link, bytes/ps

    #[test]
    fn path_matches_engine_link_convention() {
        // Mesh node 0 → node 3 (same row): uplink 0, then east hops from
        // switches 0,1,2, then switch 3's host port.
        let t = MeshTopology::new(4);
        let links = path_links(&t, 0, 3);
        let radix = 5;
        let n = 16;
        assert_eq!(links[0], 0, "source uplink is link `src`");
        assert_eq!(links.len(), 5);
        // Final link is switch 3's host port (port 4).
        assert_eq!(links[4], n + 3 * radix + 4);
    }

    #[test]
    fn single_flow_gets_the_full_link() {
        let t = MeshTopology::new(4);
        let rates = fair_rates(
            &t,
            &cfg(),
            &[Flow {
                src: 0,
                dst: 3,
                bytes: 1 << 20,
            }],
        );
        assert!((rates[0] - CAP).abs() < 1e-12);
    }

    #[test]
    fn maxmin_is_not_just_equal_split() {
        // f0: 0→2 (crosses s0→s1 and s1→s2), f1: 0→1 (shares 0's uplink
        // and s0→s1), f2/f3: 1→2 (share s1→s2 with f0). The s1→s2 link has
        // 3 flows → bottleneck c/3 freezes f0, f2, f3; f1 then gets the
        // leftover 2c/3 on the shared segment.
        let t = MeshTopology::new(4);
        let flows = [
            Flow {
                src: 0,
                dst: 2,
                bytes: 1,
            },
            Flow {
                src: 0,
                dst: 1,
                bytes: 1,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 1,
            },
            Flow {
                src: 1,
                dst: 2,
                bytes: 1,
            },
        ];
        let r = fair_rates(&t, &cfg(), &flows);
        assert!((r[0] - CAP / 3.0).abs() < 1e-15, "{r:?}");
        assert!((r[1] - 2.0 * CAP / 3.0).abs() < 1e-15, "{r:?}");
        assert!((r[2] - CAP / 3.0).abs() < 1e-15);
        assert!((r[3] - CAP / 3.0).abs() < 1e-15);
    }

    #[test]
    fn equal_flows_complete_together_and_fill_the_ring() {
        // A cyclic shift permutation: every flow same size, symmetric load.
        let t = MeshTopology::new(2);
        let flows: Vec<Flow> = (0..4)
            .map(|i| Flow {
                src: i,
                dst: (i + 1) % 4,
                bytes: 64 * 1024,
            })
            .collect();
        let rep = simulate(&t, &cfg(), &flows);
        assert_eq!(rep.completions_ps.len(), 4);
        assert!(rep.makespan_ps > 0.0);
        assert!(rep.max_link_utilization <= 1.0 + 1e-9);
        assert!(rep.epochs >= 1);
        // Bandwidth symmetry: neighbor-shift flows don't share links on a
        // 2×2 mesh, so each runs at full rate and the bandwidth terms are
        // equal; completions differ only by path latency (a 2-switch vs
        // 3-switch route ≈ 3.4 µs/hop), tiny next to the ~210 µs transfer.
        let spread = rep.completions_ps.iter().fold(0.0f64, |a, &b| a.max(b))
            - rep
                .completions_ps
                .iter()
                .fold(f64::INFINITY, |a, &b| a.min(b));
        assert!(
            spread < 4e6,
            "completions within one hop of latency, spread {spread}"
        );
    }

    #[test]
    fn deterministic_bitwise() {
        let spec = TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: true,
        };
        let c = SimConfig {
            topology: spec,
            ..cfg()
        };
        let t = c.build_topology();
        let flows: Vec<Flow> = (0..12)
            .map(|i| Flow {
                src: i,
                dst: (i + 5) % 12,
                bytes: 100_000 + i as u64,
            })
            .collect();
        let a = simulate(&*t, &c, &flows);
        let b = simulate(&*t, &c, &flows);
        assert_eq!(a.completions_ps, b.completions_ps);
        assert_eq!(a.makespan_ps, b.makespan_ps);
        assert_eq!(a.epochs, b.epochs);
    }

    #[test]
    fn epochs_track_distinct_completions() {
        // Two flows sharing nothing, very different sizes → 2 epochs (the
        // second recomputation happens after the small one drains).
        let t = MeshTopology::new(4);
        let flows = [
            Flow {
                src: 0,
                dst: 1,
                bytes: 1024,
            },
            Flow {
                src: 14,
                dst: 15,
                bytes: 1 << 20,
            },
        ];
        let rep = simulate(&t, &cfg(), &flows);
        assert_eq!(rep.epochs, 2);
        assert!(rep.completions_ps[0] < rep.completions_ps[1]);
    }
}
