//! # ib-security
//!
//! A from-scratch reproduction of *Security Enhancement in InfiniBand
//! Architecture* (Lee, Kim, Yousif — IPPS 2005): the ICRC-as-MAC
//! authentication scheme, the two key-management granularities, stateful
//! ingress filtering against P_Key-flood DoS, and every analytic model and
//! simulated experiment in the paper's evaluation.
//!
//! ## The idea in one paragraph
//!
//! Stock IBA "authenticates" packets by the mere presence of plaintext keys
//! (P_Key, Q_Key, R_Key…) that any on-path observer can copy. The paper
//! keeps the wire format bit-identical but reinterprets the 32-bit
//! Invariant CRC field as a **Message Authentication Code** whenever the
//! (variant, ICRC-masked) BTH `Resv8a` byte carries a non-zero algorithm
//! selector. Keys come from the Subnet Manager per partition (§4.2) or per
//! queue pair (§4.3). A 32-bit UMAC tag bounds forgery at 2⁻³⁰ while
//! running at multi-Gb/s — fast enough for the 2.5 Gb/s 1x links of the
//! evaluation (§5.2, Table 4).
//!
//! ## Crate layout
//!
//! * [`auth`] — tagging/verification of real [`ib_packet::Packet`]s, keyed
//!   from [`ib_mgmt::keymgmt`] tables; the end-to-end functional path.
//! * [`replay`] — §7's nonce/sliding-window replay defense (PSN as nonce).
//! * [`channel`] — authentication + replay window composed into one
//!   receive path, reconciled with reliable-transport retransmission (the
//!   delivered-vs-lost duplicate distinction `ib-transport` builds on).
//! * [`ondemand`] — §5.1's per-partition / per-QP on-demand enablement.
//! * [`fabric`] — an in-memory secure fabric tying SM, key distribution,
//!   tagging and verification together; what the examples drive.
//! * [`analysis`] — the closed-form models: Table 2 (enforcement overhead)
//!   and Table 4 (MAC time & forgery complexity).
//! * [`experiments`] — configured parameter sweeps that regenerate
//!   Figures 1, 5 and 6 on the [`ib_sim`] testbed, parallelized across
//!   configurations with `ib_runtime::par` scoped threads.

pub mod analysis;
pub mod auth;
pub mod channel;
pub mod experiments;
pub mod fabric;
pub mod ondemand;
pub mod replay;

pub use auth::{AuthError, Authenticator, KeyScope};
pub use channel::{Admit, ChannelError, ChannelSecurity, SecureChannel};
pub use fabric::SecureFabric;
pub use ondemand::OnDemandPolicy;
pub use replay::{ReplayVerdict, ReplayWindow};
