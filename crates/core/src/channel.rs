//! A secure receive channel: authentication + replay defense in front of
//! a *reliable* transport.
//!
//! ## The §7 subtlety, made explicit
//!
//! The paper's replay defense says "the replayed packets will be found
//! illegal" — but a reliable transport *legitimately* re-sends packets.
//! A retransmitted packet carries its **original PSN** (IBA §9.7.5.1.1),
//! so it is byte-identical — same nonce, same MAC tag — to an attacker's
//! replay of a captured packet. No content check can tell them apart.
//! What *can* tell them apart is delivery state:
//!
//! * retransmit of a **lost** packet → that PSN was never delivered →
//!   the window says [`ReplayVerdict::Fresh`] → deliver it;
//! * retransmit whose **ACK was lost** → the PSN *was* delivered → the
//!   window says [`ReplayVerdict::Duplicate`] → don't deliver again, but
//!   the transport may re-ACK (ACKs are cumulative and idempotent);
//! * attacker replay of a delivered packet → indistinguishable from the
//!   previous case, and handled identically: suppressed, harmless.
//!
//! The replay window therefore gates **application delivery**, not
//! transport bookkeeping. The one obligation this places on the transport
//! is window sizing: its in-flight window must not exceed the replay
//! window ([`SecureChannel::window_depth`]), or a genuine retransmit could
//! age out and be rejected as [`ReplayVerdict::Stale`].

use std::fmt;

use ib_crypto::mac::AuthAlgorithm;
use ib_mgmt::keymgmt::{KeyEpoch, SecretKey};
use ib_packet::types::PKey;
use ib_packet::Packet;

use crate::auth::{AuthError, Authenticator, KeyScope};
use crate::replay::{ReplayVerdict, ReplayWindow};

/// Security posture of a channel — the three arms of the fig_replay
/// experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelSecurity {
    /// Plain ICRC only: integrity against line noise, nothing against an
    /// adversary.
    NoAuth,
    /// ICRC-as-MAC (§5): forgery is out, but a captured packet replays
    /// verbatim — tag, nonce and all.
    Auth,
    /// MAC plus the §7 sliding replay window: replays of delivered PSNs
    /// are suppressed.
    AuthReplay,
}

impl ChannelSecurity {
    /// All arms, in experiment order.
    pub const ALL: [ChannelSecurity; 3] = [
        ChannelSecurity::NoAuth,
        ChannelSecurity::Auth,
        ChannelSecurity::AuthReplay,
    ];

    /// Stable string form used in JSON configs and result tables.
    pub fn label(self) -> &'static str {
        match self {
            ChannelSecurity::NoAuth => "no-auth",
            ChannelSecurity::Auth => "auth",
            ChannelSecurity::AuthReplay => "auth+replay-window",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<ChannelSecurity> {
        Self::ALL.into_iter().find(|s| s.label() == label)
    }
}

/// Why [`SecureChannel::admit`] refused a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelError {
    /// VCRC failure: wire corruption (fault layer or tampering).
    BadVcrc,
    /// Authentication failure (forged, unkeyed, or corrupted inside the
    /// VCRC's blind spot).
    Auth(AuthError),
    /// The PSN fell off the replay window — too old to judge, rejected
    /// conservatively.
    StalePsn,
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadVcrc => write!(f, "VCRC check failed"),
            ChannelError::Auth(e) => write!(f, "authentication failed: {e}"),
            ChannelError::StalePsn => write!(f, "PSN older than the replay window"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// What an admitted packet is allowed to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Never delivered: hand the payload to the application.
    Fresh,
    /// Already delivered (lost-ACK retransmit or attacker replay — the
    /// receiver cannot and need not distinguish): suppress delivery, but
    /// re-ACKing is safe.
    Duplicate,
}

/// Admission counters (the fig_replay per-arm metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Packets admitted for first-time delivery.
    pub fresh: u64,
    /// Already-delivered PSNs suppressed (replays and lost-ACK retransmits).
    pub duplicates: u64,
    /// Packets failing VCRC (wire corruption).
    pub rejected_vcrc: u64,
    /// Packets failing MAC/ICRC verification.
    pub rejected_auth: u64,
    /// Packets older than the replay window.
    pub rejected_stale: u64,
    /// Packets tagged under a key epoch whose grace window has expired —
    /// the key-rotation analogue of `rejected_stale`.
    pub rejected_stale_epoch: u64,
    /// Packets tagged under a key epoch not yet installed here (the
    /// key-update MAD is still in flight; retransmission recovers these).
    pub rejected_future_epoch: u64,
}

/// One receive direction's security state: optional authenticator,
/// optional replay window, and counters.
pub struct SecureChannel {
    security: ChannelSecurity,
    auth: Option<Authenticator>,
    window: Option<ReplayWindow>,
    /// The partition this channel authenticates under (its epoch ring's
    /// scope index).
    pkey: PKey,
    /// How long a superseded key epoch keeps verifying after the next one
    /// is installed, in the caller's clock units. 0 = hard cutover.
    epoch_grace: u64,
    /// Scheduled retirements: at `.0`, drop every version below `.1`.
    pending_retire: Vec<(u64, KeyEpoch)>,
    /// Admission counters, readable at any time.
    pub stats: ChannelStats,
    /// Reused integrity-verdict scratch for [`Self::admit_many`].
    precheck: Vec<Result<(), ChannelError>>,
    /// Reused authenticator-verdict scratch for [`Self::admit_many`].
    auth_verdicts: Vec<Result<(), AuthError>>,
}

impl SecureChannel {
    /// A channel at `security` level for partition `pkey`, keyed with
    /// `secret` (ignored under [`ChannelSecurity::NoAuth`]); `window` is
    /// the replay-window depth for [`ChannelSecurity::AuthReplay`].
    pub fn new(security: ChannelSecurity, pkey: PKey, secret: SecretKey, window: u32) -> Self {
        let auth = match security {
            ChannelSecurity::NoAuth => None,
            ChannelSecurity::Auth | ChannelSecurity::AuthReplay => {
                let mut a = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
                a.keys.install_partition_secret(pkey, secret);
                Some(a)
            }
        };
        let window = match security {
            ChannelSecurity::AuthReplay => Some(ReplayWindow::new(window)),
            _ => None,
        };
        SecureChannel {
            security,
            auth,
            window,
            pkey,
            epoch_grace: 0,
            pending_retire: Vec::new(),
            stats: ChannelStats::default(),
            precheck: Vec::new(),
            auth_verdicts: Vec::new(),
        }
    }

    /// The configured security arm.
    pub fn security(&self) -> ChannelSecurity {
        self.security
    }

    /// Configure the rotation grace window: after a newer epoch is
    /// installed, superseded versions keep verifying for this long (in
    /// whatever clock units the caller feeds [`Self::install_epoch`] and
    /// [`Self::advance_time`]). The default, 0, is a hard cutover.
    pub fn set_epoch_grace(&mut self, grace: u64) {
        self.epoch_grace = grace;
    }

    /// The epoch the send side currently seals under.
    pub fn send_epoch(&self) -> KeyEpoch {
        self.auth
            .as_ref()
            .and_then(|a| a.keys.partition_epoch(self.pkey))
            .unwrap_or(KeyEpoch::ZERO)
    }

    /// Install a key version learned from a key-update MAD. The send side
    /// switches to the newest epoch immediately (the next [`Self::seal`]
    /// stamps it); every older version is scheduled to retire once the
    /// grace window elapses from `now`. No-op under
    /// [`ChannelSecurity::NoAuth`].
    pub fn install_epoch(&mut self, now: u64, epoch: KeyEpoch, secret: SecretKey) {
        let Some(auth) = &mut self.auth else { return };
        let newer = auth
            .keys
            .partition_epoch(self.pkey)
            .is_none_or(|cur| epoch > cur);
        auth.keys.install_partition_epoch(self.pkey, epoch, secret);
        if newer {
            self.pending_retire
                .push((now.saturating_add(self.epoch_grace), epoch));
        }
    }

    /// Retire key versions whose grace window has expired by `now`.
    /// Endpoints call this from their time-advancing entry points; after
    /// it runs, traffic under a retired epoch is rejected as
    /// [`AuthError::StaleEpoch`].
    pub fn advance_time(&mut self, now: u64) {
        if self.pending_retire.is_empty() {
            return;
        }
        let Some(auth) = &mut self.auth else { return };
        self.pending_retire.retain(|&(at, below)| {
            if at <= now {
                auth.keys.retire_partition_below(self.pkey, below);
                false
            } else {
                true
            }
        });
    }

    /// Replay-window depth, if one is active. A transport stacked on this
    /// channel must keep its in-flight window within this bound so genuine
    /// retransmits never go [`ReplayVerdict::Stale`].
    pub fn window_depth(&self) -> Option<u32> {
        self.window.as_ref().map(|w| w.window())
    }

    /// Outbound side: tag the packet when authenticating, or complete it
    /// with the plain ICRC + VCRC otherwise. The packet's length fields
    /// must be consistent (the builder's `seal()` or a template's
    /// [`Packet::seal_lengths`] both suffice; for an already fully-sealed
    /// packet this is idempotent). Retransmits rebuild identical bytes
    /// under the original PSN, so the tag — nonce and all — comes out
    /// identical too.
    pub fn seal(&self, packet: &mut Packet) -> Result<(), AuthError> {
        match &self.auth {
            Some(auth) => auth.tag_packet(packet),
            None => {
                packet.icrc = packet.compute_icrc();
                packet.vcrc = packet.compute_vcrc();
                Ok(())
            }
        }
    }

    /// The uncounted integrity check: VCRC, then MAC (or plain ICRC).
    /// Counting is split out so the batch path can verify many packets in
    /// one dispatch and feed the verdicts back through the same counters
    /// ([`Self::admit_prechecked`] / [`Self::verify_only_prechecked`]).
    pub fn precheck(&self, packet: &Packet) -> Result<(), ChannelError> {
        if !packet.vcrc_ok() {
            return Err(ChannelError::BadVcrc);
        }
        match &self.auth {
            Some(auth) => auth.verify_packet(packet).map_err(ChannelError::Auth),
            None => {
                // No adversarial protection, but line noise still fails the
                // plain CRC when no tag replaced it.
                if packet.bth.resv8a == 0 && !packet.icrc_ok() {
                    Err(ChannelError::Auth(AuthError::BadIcrc))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Bump the stats counter matching an integrity rejection.
    fn count_integrity_reject(&mut self, e: ChannelError) {
        match e {
            ChannelError::BadVcrc => self.stats.rejected_vcrc += 1,
            ChannelError::Auth(AuthError::StaleEpoch(_)) => self.stats.rejected_stale_epoch += 1,
            ChannelError::Auth(AuthError::FutureEpoch(_)) => self.stats.rejected_future_epoch += 1,
            ChannelError::Auth(_) => self.stats.rejected_auth += 1,
            ChannelError::StalePsn => self.stats.rejected_stale += 1,
        }
    }

    /// Integrity/authenticity check alone, never touching the replay
    /// window. This is the ACK-path check: acknowledgments are cumulative
    /// and idempotent, so replaying an old one is harmless and they carry
    /// data-sequence PSNs that must not pollute the data window.
    pub fn verify_only(&mut self, packet: &Packet) -> Result<(), ChannelError> {
        let r = self.precheck(packet);
        self.verify_only_prechecked(r)
    }

    /// Counted form of a verdict from [`Self::precheck`] /
    /// [`Self::precheck_batch`]: stats move exactly as
    /// [`Self::verify_only`] would have moved them.
    pub fn verify_only_prechecked(
        &mut self,
        pre: Result<(), ChannelError>,
    ) -> Result<(), ChannelError> {
        if let Err(e) = pre {
            self.count_integrity_reject(e);
        }
        pre
    }

    /// The replay-window half of admission (the packet's integrity must
    /// already be established). Counts the delivery verdict.
    fn offer_window(&mut self, psn: u32) -> Result<Admit, ChannelError> {
        match &mut self.window {
            Some(window) => match window.offer_psn(psn) {
                ReplayVerdict::Fresh => {
                    self.stats.fresh += 1;
                    Ok(Admit::Fresh)
                }
                ReplayVerdict::Duplicate => {
                    self.stats.duplicates += 1;
                    Ok(Admit::Duplicate)
                }
                ReplayVerdict::Stale => {
                    self.stats.rejected_stale += 1;
                    Err(ChannelError::StalePsn)
                }
            },
            // Without a window every verifying packet looks first-time —
            // this is precisely how the no-window arms admit replays.
            None => {
                self.stats.fresh += 1;
                Ok(Admit::Fresh)
            }
        }
    }

    /// Inbound side: VCRC, then MAC (or plain ICRC), then the replay
    /// window. Counts every outcome in [`Self::stats`].
    pub fn admit(&mut self, packet: &Packet) -> Result<Admit, ChannelError> {
        self.verify_only(packet)?;
        self.offer_window(packet.bth.psn.0)
    }

    /// Counted admission from a verdict produced by [`Self::precheck`] /
    /// [`Self::precheck_batch`]: verdict and stats are identical to
    /// [`Self::admit`] on the same packet.
    pub fn admit_prechecked(
        &mut self,
        packet: &Packet,
        pre: Result<(), ChannelError>,
    ) -> Result<Admit, ChannelError> {
        self.verify_only_prechecked(pre)?;
        self.offer_window(packet.bth.psn.0)
    }

    /// Uncounted integrity verdicts for a whole batch in one dispatch:
    /// VCRC per packet, MACs through the multi-buffer kernels (see
    /// [`Authenticator::verify_batch`]). Verdicts land positionally in
    /// `out` (cleared first); stats do not move — feed each verdict back
    /// through [`Self::admit_prechecked`] or
    /// [`Self::verify_only_prechecked`] at the point the sequential code
    /// would have verified. Scratch is reused: steady state allocates
    /// nothing. Generic over `Packet` or `&Packet` elements.
    pub fn precheck_batch<P: std::borrow::Borrow<Packet>>(
        &mut self,
        packets: &[P],
        out: &mut Vec<Result<(), ChannelError>>,
    ) {
        out.clear();
        match &self.auth {
            Some(auth) => {
                let mut verdicts = std::mem::take(&mut self.auth_verdicts);
                auth.verify_batch(packets, &mut verdicts);
                for (packet, v) in packets.iter().zip(&verdicts) {
                    // VCRC takes precedence, exactly as in the sequential
                    // check order.
                    out.push(if !packet.borrow().vcrc_ok() {
                        Err(ChannelError::BadVcrc)
                    } else {
                        v.map_err(ChannelError::Auth)
                    });
                }
                self.auth_verdicts = verdicts;
            }
            None => {
                for packet in packets {
                    out.push(self.precheck(packet.borrow()));
                }
            }
        }
    }

    /// Batch admission: the integrity pre-pass runs over the whole batch
    /// in one dispatch, then the replay-window walk runs exactly as the
    /// sequential path would. Verdicts (positional in `out`) and
    /// [`Self::stats`] are identical to calling [`Self::admit`] on each
    /// packet in order. `out` is cleared first; scratch is reused, so the
    /// steady state allocates nothing.
    pub fn admit_many<P: std::borrow::Borrow<Packet>>(
        &mut self,
        packets: &[P],
        out: &mut Vec<Result<Admit, ChannelError>>,
    ) {
        out.clear();
        let mut pre = std::mem::take(&mut self.precheck);
        self.precheck_batch(packets, &mut pre);
        for (packet, pre) in packets.iter().zip(&pre) {
            out.push(self.admit_prechecked(packet.borrow(), *pre));
        }
        self.precheck = pre;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_packet::types::{Lid, Psn, Qpn};
    use ib_packet::{OpCode, PacketBuilder};

    const PKEY: PKey = PKey(0x8001);

    fn rc_packet(psn: u32, payload: &[u8]) -> Packet {
        PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(PKEY)
            .dest_qp(Qpn(9))
            .psn(Psn(psn))
            .payload(payload.to_vec())
            .build()
    }

    fn pair(security: ChannelSecurity) -> (SecureChannel, SecureChannel) {
        let secret = SecretKey::from_seed(77);
        (
            SecureChannel::new(security, PKEY, secret, 64),
            SecureChannel::new(security, PKEY, secret, 64),
        )
    }

    #[test]
    fn seal_admit_roundtrip_all_arms() {
        for arm in ChannelSecurity::ALL {
            let (tx, mut rx) = pair(arm);
            let mut pkt = rc_packet(5, b"hello");
            tx.seal(&mut pkt).unwrap();
            // Admit the in-memory packet directly — no serialize/reparse
            // round trip on the verification path.
            assert_eq!(rx.admit(&pkt).unwrap(), Admit::Fresh, "{arm:?}");
            assert_eq!(rx.stats.fresh, 1);
        }
    }

    /// Regression for the old serialize-reparse round trip: a packet that
    /// crossed the wire must admit exactly like the in-memory original
    /// (same verdict, same stats), so verifying in memory loses nothing.
    #[test]
    fn parsed_from_wire_admits_identically_to_in_memory() {
        for arm in ChannelSecurity::ALL {
            let (tx, mut rx_mem) = pair(arm);
            let (_, mut rx_wire) = pair(arm);
            for psn in [0u32, 1, 2, 1] {
                let mut pkt = rc_packet(psn, b"regression");
                tx.seal(&mut pkt).unwrap();
                let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
                assert_eq!(
                    parsed, pkt,
                    "{arm:?} psn {psn}: wire round trip is lossless"
                );
                assert_eq!(
                    rx_mem.admit(&pkt),
                    rx_wire.admit(&parsed),
                    "{arm:?} psn {psn}"
                );
            }
            assert_eq!(rx_mem.stats.fresh, rx_wire.stats.fresh, "{arm:?}");
            assert_eq!(rx_mem.stats.duplicates, rx_wire.stats.duplicates, "{arm:?}");
        }
    }

    /// The tentpole distinction: replay-of-delivered suppressed, while a
    /// retransmit of a never-delivered PSN goes through.
    #[test]
    fn delivered_replay_suppressed_lost_retransmit_accepted() {
        let (tx, mut rx) = pair(ChannelSecurity::AuthReplay);
        let build = |psn: u32| {
            let mut p = rc_packet(psn, b"data");
            tx.seal(&mut p).unwrap();
            p
        };
        // PSNs 0,1,3 arrive; 2 was dropped by the fault layer.
        for psn in [0, 1, 3] {
            assert_eq!(rx.admit(&build(psn)).unwrap(), Admit::Fresh);
        }
        // Attacker replays the captured PSN-1 packet: byte-identical, MAC
        // verifies — but delivery is suppressed.
        assert_eq!(rx.admit(&build(1)).unwrap(), Admit::Duplicate);
        // Sender's go-back-N retransmits PSN 2 (original PSN, identical
        // tag): never delivered, so it is fresh.
        assert_eq!(rx.admit(&build(2)).unwrap(), Admit::Fresh);
        // And the retransmit of 3 that rides behind it: duplicate, safe to
        // re-ACK, not delivered twice.
        assert_eq!(rx.admit(&build(3)).unwrap(), Admit::Duplicate);
        assert_eq!(rx.stats.fresh, 4);
        assert_eq!(rx.stats.duplicates, 2);
    }

    /// Without a window, the same replay sails through as Fresh — the
    /// vulnerability the fig_replay no-window arms quantify.
    #[test]
    fn no_window_arms_admit_replays() {
        for arm in [ChannelSecurity::NoAuth, ChannelSecurity::Auth] {
            let (tx, mut rx) = pair(arm);
            let mut pkt = rc_packet(4, b"capture me");
            tx.seal(&mut pkt).unwrap();
            assert_eq!(rx.admit(&pkt).unwrap(), Admit::Fresh);
            assert_eq!(rx.admit(&pkt).unwrap(), Admit::Fresh, "{arm:?} replay");
            assert_eq!(rx.stats.fresh, 2);
        }
    }

    #[test]
    fn auth_arm_rejects_forgery_noauth_does_not() {
        let (tx, mut rx) = pair(ChannelSecurity::Auth);
        let mut pkt = rc_packet(1, b"legit");
        tx.seal(&mut pkt).unwrap();
        pkt.payload[0] ^= 1;
        pkt.vcrc = pkt.compute_vcrc(); // attacker repairs the variant CRC
        assert!(matches!(
            rx.admit(&pkt),
            Err(ChannelError::Auth(AuthError::BadTag))
        ));
        assert_eq!(rx.stats.rejected_auth, 1);

        // NoAuth: the attacker also repairs the plain ICRC and walks in.
        let (tx0, mut rx0) = pair(ChannelSecurity::NoAuth);
        let mut pkt = rc_packet(1, b"legit");
        tx0.seal(&mut pkt).unwrap();
        pkt.payload[0] ^= 1;
        pkt.icrc = pkt.compute_icrc();
        pkt.vcrc = pkt.compute_vcrc();
        assert_eq!(rx0.admit(&pkt).unwrap(), Admit::Fresh);
    }

    #[test]
    fn corrupted_wire_fails_vcrc() {
        let (tx, mut rx) = pair(ChannelSecurity::AuthReplay);
        let mut pkt = rc_packet(1, b"bits");
        tx.seal(&mut pkt).unwrap();
        pkt.payload[0] ^= 0x40; // VCRC not recomputed: line noise
        assert_eq!(rx.admit(&pkt), Err(ChannelError::BadVcrc));
        assert_eq!(rx.stats.rejected_vcrc, 1);
    }

    #[test]
    fn stale_psn_rejected() {
        let (tx, mut rx) = pair(ChannelSecurity::AuthReplay);
        let build = |psn: u32| {
            let mut p = rc_packet(psn, b"x");
            tx.seal(&mut p).unwrap();
            p
        };
        assert_eq!(rx.admit(&build(0)).unwrap(), Admit::Fresh);
        assert_eq!(rx.admit(&build(100)).unwrap(), Admit::Fresh);
        // PSN 0 is now 100 behind: unjudgeable.
        assert_eq!(rx.admit(&build(0)), Err(ChannelError::StalePsn));
        assert_eq!(rx.stats.rejected_stale, 1);
    }

    /// The lazy re-keying lifecycle at channel level: send side switches
    /// on install, old epoch verifies through the grace window, then is
    /// rejected — counted separately from forgeries.
    #[test]
    fn epoch_rotation_grace_window_lifecycle() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let (tx, mut rx) = pair(ChannelSecurity::AuthReplay);
        let mut tx = tx;
        rx.set_epoch_grace(100);

        let mut old_pkt = rc_packet(0, b"sealed pre-rotation");
        tx.seal(&mut old_pkt).unwrap();
        assert_eq!(old_pkt.bth.key_epoch, 0);

        // Rotation at t=50: sender first (stamps epoch 1 immediately).
        let s1 = SecretKey::from_seed(1234);
        tx.install_epoch(50, KeyEpoch(1), s1);
        assert_eq!(tx.send_epoch(), KeyEpoch(1));
        let mut new_pkt = rc_packet(1, b"sealed post-rotation");
        tx.seal(&mut new_pkt).unwrap();
        assert_eq!(new_pkt.bth.key_epoch, 1);

        // Receiver still at epoch 0: future-epoch miss, recoverable.
        assert!(matches!(
            rx.admit(&new_pkt),
            Err(ChannelError::Auth(AuthError::FutureEpoch(1)))
        ));
        assert_eq!(rx.stats.rejected_future_epoch, 1);

        // Key-update lands at t=60; both epochs verify until t=160.
        rx.install_epoch(60, KeyEpoch(1), s1);
        rx.advance_time(70);
        assert_eq!(rx.admit(&new_pkt).unwrap(), Admit::Fresh);
        assert_eq!(rx.admit(&old_pkt).unwrap(), Admit::Fresh);

        // Grace expires: a held-back epoch-0 capture is dead for good.
        rx.advance_time(160);
        let mut held = rc_packet(2, b"attacker held this");
        // (sealed under epoch 0 by a pre-rotation sender)
        let (old_tx, _) = pair(ChannelSecurity::AuthReplay);
        old_tx.seal(&mut held).unwrap();
        assert!(matches!(
            rx.admit(&held),
            Err(ChannelError::Auth(AuthError::StaleEpoch(0)))
        ));
        assert_eq!(rx.stats.rejected_stale_epoch, 1);
        assert_eq!(rx.stats.rejected_auth, 0, "epoch misses counted apart");
    }

    /// Grace 0 is a hard cutover: the old epoch dies the moment time
    /// advances past the install.
    #[test]
    fn zero_grace_hard_cutover() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let (tx, mut rx) = pair(ChannelSecurity::Auth);
        let mut old_pkt = rc_packet(0, b"in flight");
        tx.seal(&mut old_pkt).unwrap();
        let s1 = SecretKey::from_seed(9);
        rx.install_epoch(10, KeyEpoch(1), s1);
        rx.advance_time(10);
        assert!(matches!(
            rx.admit(&old_pkt),
            Err(ChannelError::Auth(AuthError::StaleEpoch(0)))
        ));
    }

    /// NoAuth channels ignore the whole epoch plane.
    #[test]
    fn noauth_ignores_epochs() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let (tx, mut rx) = pair(ChannelSecurity::NoAuth);
        let mut pkt = rc_packet(0, b"plain");
        tx.seal(&mut pkt).unwrap();
        rx.install_epoch(0, KeyEpoch(5), SecretKey::from_seed(1));
        rx.advance_time(1_000_000);
        assert_eq!(rx.admit(&pkt).unwrap(), Admit::Fresh);
        assert_eq!(rx.send_epoch(), KeyEpoch::ZERO);
    }

    /// The batch path must be observationally identical to the sequential
    /// one: same verdicts in order, same stats — across every security arm
    /// and a batch mixing fresh traffic, replays, corruption, and forgery.
    #[test]
    fn admit_many_matches_sequential_admits() {
        for arm in ChannelSecurity::ALL {
            let (tx, mut rx_batch) = pair(arm);
            let (_, mut rx_seq) = pair(arm);
            let mut packets = Vec::new();
            for psn in [0u32, 1, 2, 3, 1, 4, 5, 6, 7, 8, 2, 9] {
                let mut p = rc_packet(psn, b"batch equivalence");
                tx.seal(&mut p).unwrap();
                packets.push(p);
            }
            packets[5].payload[0] ^= 1; // line corruption (VCRC catches)
            packets[7].payload[0] ^= 1; // forgery (VCRC repaired)
            packets[7].vcrc = packets[7].compute_vcrc();

            let refs: Vec<&Packet> = packets.iter().collect();
            let mut batch = Vec::new();
            rx_batch.admit_many(&refs, &mut batch);
            let sequential: Vec<_> = refs.iter().map(|p| rx_seq.admit(p)).collect();
            assert_eq!(batch, sequential, "{arm:?}");
            assert_eq!(rx_batch.stats, rx_seq.stats, "{arm:?}");
        }
    }

    #[test]
    fn labels_round_trip_and_window_depth() {
        for arm in ChannelSecurity::ALL {
            assert_eq!(ChannelSecurity::from_label(arm.label()), Some(arm));
        }
        assert_eq!(ChannelSecurity::from_label("bogus"), None);
        let (_, rx) = pair(ChannelSecurity::AuthReplay);
        assert_eq!(rx.window_depth(), Some(64));
        let (_, rx) = pair(ChannelSecurity::Auth);
        assert_eq!(rx.window_depth(), None);
    }
}
