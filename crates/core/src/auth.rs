//! The ICRC-as-MAC authentication layer (§5 of the paper), operating on
//! real [`ib_packet::Packet`]s.
//!
//! Tagging: compute a 32-bit MAC over exactly the bytes the ICRC covers
//! (invariant fields, variant fields masked — streamed in place via
//! [`Packet::for_each_icrc_slice`], no per-packet allocation), store it in
//! the ICRC slot, and put the algorithm selector in BTH
//! `Resv8a`. Verification reverses this. Selector 0 falls back to the
//! plain CRC-32 check, which is what makes the scheme wire-compatible with
//! non-upgraded IBA gear.
//!
//! The MAC nonce is `(SLID << 24) | PSN`: the PSN gives per-flow
//! freshness, the SLID disambiguates senders sharing a partition secret
//! (partition-level keys are shared by every QP in the partition — §4.2).

use std::cell::RefCell;
use std::fmt;

use ib_crypto::mac::{AnyMac, AuthAlgorithm};
use ib_mgmt::keymgmt::{KeyEpoch, NodeKeyTable, SecretKey};
use ib_packet::Packet;

/// Which key-management granularity an [`Authenticator`] uses to find the
/// per-packet secret (§4.2 vs §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KeyScope {
    /// One secret per partition, looked up by the BTH P_Key (Figure 2).
    Partition,
    /// Per-QP secrets: datagrams by `(Q_Key, source QP)` from the DETH
    /// (Figure 3), connected service by the destination QP.
    QpLevel,
}

/// Why tagging or verification failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthError {
    /// BTH selector byte names no registered algorithm.
    UnknownSelector(u8),
    /// No secret key on file for this packet's scope index — for a
    /// receiver this is indistinguishable from a forgery by an outsider.
    NoKey,
    /// Tag mismatch: forged, corrupted, or keyed differently.
    BadTag,
    /// Packet uses plain ICRC (selector 0) and the CRC check failed.
    BadIcrc,
    /// Policy demands authentication for this packet but it carries plain
    /// ICRC.
    AuthRequired,
    /// QP-level scope needs a DETH (datagram) or a connection entry and
    /// the packet offers neither.
    NoScopeIndex,
    /// The packet's BTH key-epoch id names a key version older than every
    /// live one — the rotation grace window has expired for it.
    StaleEpoch(u8),
    /// The packet's BTH key-epoch id names a key version newer than any
    /// installed — the receiver's key-update MAD is still in flight
    /// (recovered by retransmission once it lands).
    FutureEpoch(u8),
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::UnknownSelector(s) => write!(f, "unknown auth selector {s}"),
            AuthError::NoKey => write!(f, "no secret key for this packet's scope"),
            AuthError::BadTag => write!(f, "authentication tag mismatch"),
            AuthError::BadIcrc => write!(f, "ICRC check failed"),
            AuthError::AuthRequired => write!(f, "policy requires an authenticated packet"),
            AuthError::NoScopeIndex => write!(f, "packet carries no usable key index"),
            AuthError::StaleEpoch(e) => write!(f, "key epoch {e} is past its grace window"),
            AuthError::FutureEpoch(e) => write!(f, "key epoch {e} is not yet installed"),
        }
    }
}

impl std::error::Error for AuthError {}

/// Per-node authentication engine: a key table plus the configured
/// algorithm and scope.
pub struct Authenticator {
    /// This node's secrets (installed by the key-management flows).
    pub keys: NodeKeyTable,
    algorithm: AuthAlgorithm,
    scope: KeyScope,
    /// Keyed-MAC cache: constructing an [`AnyMac`] runs the AES key
    /// schedule (and, for UMAC, the ~1 KiB KDF) — far too expensive to
    /// redo per packet. Keyed by `(algorithm, secret)` so secret rotation
    /// naturally misses; growth is bounded by the key table size. A
    /// `RefCell` keeps `compute_tag`/`verify_packet` callable through
    /// `&self` (the engine is per-node, never shared across threads).
    mac_cache: RefCell<Vec<((AuthAlgorithm, SecretKey), AnyMac)>>,
    /// Reused scratch for [`Self::verify_batch`].
    batch: RefCell<BatchScratch>,
}

/// Scratch buffers the batch verifier reuses across calls, so the steady
/// state allocates nothing.
struct BatchScratch {
    /// Packets deferred to the multi-buffer UMAC kernel: `(batch index,
    /// resolved secret)`.
    umac: Vec<(usize, SecretKey)>,
    /// Contiguous ICRC-message images for one 4-lane MAC call (the
    /// lockstep NH kernel needs each message in one slice).
    msgs: [Vec<u8>; 4],
}

impl Authenticator {
    /// An authenticator using `algorithm` and `scope` with an empty key
    /// table.
    pub fn new(algorithm: AuthAlgorithm, scope: KeyScope) -> Self {
        assert!(
            algorithm.is_authenticating(),
            "selector 0 (plain ICRC) is the absence of authentication"
        );
        Authenticator {
            keys: NodeKeyTable::new(),
            algorithm,
            scope,
            mac_cache: RefCell::new(Vec::new()),
            batch: RefCell::new(BatchScratch {
                umac: Vec::new(),
                msgs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            }),
        }
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> AuthAlgorithm {
        self.algorithm
    }

    /// The configured key scope.
    pub fn scope(&self) -> KeyScope {
        self.scope
    }

    /// The MAC nonce for a packet (see module docs).
    pub fn nonce(packet: &Packet) -> u64 {
        ((packet.lrh.slid.0 as u64) << 24) | packet.bth.psn.0 as u64
    }

    /// Find the *current-epoch* secret this packet authenticates under —
    /// the send-side lookup. The index is derived purely from packet
    /// fields, so sender and receiver agree.
    pub fn secret_for(&self, packet: &Packet) -> Result<SecretKey, AuthError> {
        match self.scope {
            KeyScope::Partition => self
                .keys
                .partition_secret(packet.bth.pkey)
                .ok_or(AuthError::NoKey),
            KeyScope::QpLevel => {
                if let Some(deth) = &packet.deth {
                    self.keys
                        .datagram_secret(deth.qkey, deth.src_qp)
                        .ok_or(AuthError::NoKey)
                } else if packet.bth.opcode.service.is_connected() {
                    self.keys
                        .connection_secret(packet.bth.dest_qp)
                        .ok_or(AuthError::NoKey)
                } else {
                    Err(AuthError::NoScopeIndex)
                }
            }
        }
    }

    /// The current key epoch for this packet's scope index — what the
    /// send side stamps into BTH `Resv7b`. Datagram secrets are minted
    /// fresh per Q_Key request, so they stay at epoch 0.
    pub fn send_epoch_for(&self, packet: &Packet) -> KeyEpoch {
        match self.scope {
            KeyScope::Partition => self.keys.partition_epoch(packet.bth.pkey),
            KeyScope::QpLevel if packet.deth.is_none() => {
                self.keys.connection_epoch(packet.bth.dest_qp)
            }
            KeyScope::QpLevel => None,
        }
        .unwrap_or(KeyEpoch::ZERO)
    }

    /// Classify a wire epoch id that matched no live key version.
    fn epoch_miss(wire: u8, current: KeyEpoch) -> AuthError {
        match KeyEpoch::resolve_wire(wire, current) {
            Some(e) if e > current => AuthError::FutureEpoch(wire),
            _ => AuthError::StaleEpoch(wire),
        }
    }

    /// Receive-side lookup: resolve the packet's BTH key-epoch id against
    /// the live key versions for its scope index. Misses split into
    /// [`AuthError::StaleEpoch`] (version graced out — reject for good)
    /// and [`AuthError::FutureEpoch`] (version not yet installed —
    /// recoverable once the key-update MAD lands).
    fn verify_secret_for(&self, packet: &Packet) -> Result<SecretKey, AuthError> {
        let wire = packet.bth.key_epoch;
        match self.scope {
            KeyScope::Partition => {
                let pkey = packet.bth.pkey;
                if let Some((_, s)) = self.keys.partition_secret_by_wire(pkey, wire) {
                    return Ok(s);
                }
                let current = self.keys.partition_epoch(pkey).ok_or(AuthError::NoKey)?;
                Err(Self::epoch_miss(wire, current))
            }
            KeyScope::QpLevel => {
                if let Some(deth) = &packet.deth {
                    self.keys
                        .datagram_secret(deth.qkey, deth.src_qp)
                        .ok_or(AuthError::NoKey)
                } else if packet.bth.opcode.service.is_connected() {
                    let qp = packet.bth.dest_qp;
                    if let Some((_, s)) = self.keys.connection_secret_by_wire(qp, wire) {
                        return Ok(s);
                    }
                    let current = self.keys.connection_epoch(qp).ok_or(AuthError::NoKey)?;
                    Err(Self::epoch_miss(wire, current))
                } else {
                    Err(AuthError::NoScopeIndex)
                }
            }
        }
    }

    /// Run `f` with the cached keyed MAC for `(algorithm, secret)`,
    /// constructing and caching it on first use.
    fn with_mac<R>(
        &self,
        algorithm: AuthAlgorithm,
        secret: SecretKey,
        f: impl FnOnce(&AnyMac) -> R,
    ) -> R {
        let mut cache = self.mac_cache.borrow_mut();
        let idx = match cache.iter().position(|(k, _)| *k == (algorithm, secret)) {
            Some(i) => i,
            None => {
                cache.push(((algorithm, secret), AnyMac::new(algorithm, &secret.0)));
                cache.len() - 1
            }
        };
        f(&cache[idx].1)
    }

    /// Stream the packet's invariant fields through an incremental MAC —
    /// the allocation-free core of both tagging and verification.
    fn stream_tag(mac: &AnyMac, packet: &Packet) -> u32 {
        let mut stream = mac.stream(Self::nonce(packet));
        packet.for_each_icrc_slice(|slice| stream.update(slice));
        stream.finalize()
    }

    /// Compute the tag for a packet under this node's keys (without
    /// mutating the packet).
    pub fn compute_tag(&self, packet: &Packet) -> Result<u32, AuthError> {
        let secret = self.secret_for(packet)?;
        Ok(self.with_mac(self.algorithm, secret, |mac| Self::stream_tag(mac, packet)))
    }

    /// Tag a packet in place: current key epoch into BTH `Resv7b` (under
    /// MAC coverage), selector into BTH `Resv8a`, MAC into the ICRC field,
    /// VCRC refreshed. The packet must be sealed first (the builder does
    /// this). A retransmit after a rotation re-runs this and goes out
    /// under the *new* epoch's key — the lazy re-keying recovery path.
    pub fn tag_packet(&self, packet: &mut Packet) -> Result<(), AuthError> {
        packet.bth.key_epoch = self.send_epoch_for(packet).wire_id();
        let tag = self.compute_tag(packet)?;
        packet.set_auth_tag(self.algorithm.selector(), tag);
        Ok(())
    }

    /// Verify a received packet.
    ///
    /// * Selector 0 → plain ICRC check (compatibility mode).
    /// * Known selector → recompute the MAC under the packet-indexed secret
    ///   and compare with the stored tag.
    pub fn verify_packet(&self, packet: &Packet) -> Result<(), AuthError> {
        let selector = packet.bth.resv8a;
        let algorithm =
            AuthAlgorithm::from_selector(selector).ok_or(AuthError::UnknownSelector(selector))?;
        if algorithm == AuthAlgorithm::Icrc {
            return if packet.icrc_ok() {
                Ok(())
            } else {
                Err(AuthError::BadIcrc)
            };
        }
        let secret = self.verify_secret_for(packet)?;
        let tag = self.with_mac(algorithm, secret, |mac| Self::stream_tag(mac, packet));
        // XOR-compare, like `Mac::verify`, to keep timing tag-independent.
        if (tag ^ packet.icrc) == 0 {
            Ok(())
        } else {
            Err(AuthError::BadTag)
        }
    }

    /// Verify a batch of received packets in one dispatch, writing one
    /// verdict per packet (positionally) into `out` — semantically
    /// identical to calling [`Self::verify_packet`] on each packet in
    /// order. Packets sharing a UMAC secret are MAC'd four at a time
    /// through the lockstep NH kernel ([`AnyMac::tag32_x4`]); everything
    /// else takes the per-packet streaming path. `out` is cleared first;
    /// all scratch is reused, so the steady state allocates nothing.
    pub fn verify_batch<P: std::borrow::Borrow<Packet>>(
        &self,
        packets: &[P],
        out: &mut Vec<Result<(), AuthError>>,
    ) {
        out.clear();
        let mut batch = self.batch.borrow_mut();
        let batch = &mut *batch;
        batch.umac.clear();
        for (i, packet) in packets.iter().enumerate() {
            let packet = packet.borrow();
            let selector = packet.bth.resv8a;
            let Some(algorithm) = AuthAlgorithm::from_selector(selector) else {
                out.push(Err(AuthError::UnknownSelector(selector)));
                continue;
            };
            if algorithm == AuthAlgorithm::Icrc {
                out.push(if packet.icrc_ok() {
                    Ok(())
                } else {
                    Err(AuthError::BadIcrc)
                });
                continue;
            }
            match self.verify_secret_for(packet) {
                Err(e) => out.push(Err(e)),
                Ok(secret) if algorithm == AuthAlgorithm::Umac32 => {
                    // Deferred to the multi-buffer drain below; the
                    // placeholder is overwritten there.
                    batch.umac.push((i, secret));
                    out.push(Ok(()));
                }
                Ok(secret) => {
                    let tag = self.with_mac(algorithm, secret, |mac| Self::stream_tag(mac, packet));
                    out.push(if (tag ^ packet.icrc) == 0 {
                        Ok(())
                    } else {
                        Err(AuthError::BadTag)
                    });
                }
            }
        }
        // Drain deferred UMAC packets: runs of four sharing one secret go
        // through the 4-lane kernel, stragglers through the streaming path
        // (bit-identical either way — the lockstep kernel is exact).
        let mut d = 0;
        while d < batch.umac.len() {
            let secret = batch.umac[d].1;
            let mut run = 1;
            while run < 4 && d + run < batch.umac.len() && batch.umac[d + run].1 == secret {
                run += 1;
            }
            if run == 4 {
                let mut nonces = [0u64; 4];
                for j in 0..4 {
                    let packet = packets[batch.umac[d + j].0].borrow();
                    nonces[j] = Self::nonce(packet);
                    packet.icrc_message_into(&mut batch.msgs[j]);
                }
                let msgs = [
                    &batch.msgs[0][..],
                    &batch.msgs[1][..],
                    &batch.msgs[2][..],
                    &batch.msgs[3][..],
                ];
                let tags = self.with_mac(AuthAlgorithm::Umac32, secret, |mac| {
                    mac.tag32_x4(nonces, msgs)
                });
                for (j, tag) in tags.iter().enumerate() {
                    let i = batch.umac[d + j].0;
                    out[i] = if (tag ^ packets[i].borrow().icrc) == 0 {
                        Ok(())
                    } else {
                        Err(AuthError::BadTag)
                    };
                }
            } else {
                for &(i, secret) in &batch.umac[d..d + run] {
                    let tag = self.with_mac(AuthAlgorithm::Umac32, secret, |mac| {
                        Self::stream_tag(mac, packets[i].borrow())
                    });
                    out[i] = if (tag ^ packets[i].borrow().icrc) == 0 {
                        Ok(())
                    } else {
                        Err(AuthError::BadTag)
                    };
                }
            }
            d += run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_mgmt::keymgmt::SecretKey;
    use ib_packet::{Lid, OpCode, PKey, PacketBuilder, Psn, QKey, Qpn};

    fn ud_packet(pkey: PKey, qkey: QKey, src_qp: Qpn, psn: u32, payload: &[u8]) -> Packet {
        PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(pkey)
            .psn(Psn(psn))
            .qkey(qkey, src_qp)
            .payload(payload.to_vec())
            .build()
    }

    fn partition_pair() -> (Authenticator, Authenticator, PKey, SecretKey) {
        let pkey = PKey(0x8001);
        let secret = SecretKey::from_seed(42);
        let mut sender = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
        sender.keys.install_partition_secret(pkey, secret);
        let mut receiver = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
        receiver.keys.install_partition_secret(pkey, secret);
        (sender, receiver, pkey, secret)
    }

    #[test]
    fn partition_level_roundtrip() {
        let (sender, receiver, pkey, _) = partition_pair();
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 100, b"authenticated payload");
        sender.tag_packet(&mut pkt).unwrap();
        assert_eq!(pkt.bth.resv8a, AuthAlgorithm::Umac32.selector());
        assert!(pkt.vcrc_ok(), "tagging refreshes the VCRC");
        receiver.verify_packet(&pkt).unwrap();
    }

    #[test]
    fn wire_roundtrip_preserves_tag() {
        let (sender, receiver, pkey, _) = partition_pair();
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"over the wire");
        sender.tag_packet(&mut pkt).unwrap();
        let parsed = Packet::parse(&pkt.to_bytes()).unwrap();
        receiver.verify_packet(&parsed).unwrap();
    }

    #[test]
    fn payload_tamper_detected() {
        let (sender, receiver, pkey, _) = partition_pair();
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"original payload");
        sender.tag_packet(&mut pkt).unwrap();
        pkt.payload[0] ^= 1;
        pkt.vcrc = pkt.compute_vcrc(); // attacker can fix the plain CRC…
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::BadTag));
    }

    #[test]
    fn stolen_pkey_without_secret_fails() {
        // Table 3's P_Key row: the attacker captured the P_Key and forges a
        // packet. Without the partition secret, tagging is impossible and a
        // plain-ICRC packet is rejected once policy requires auth — here we
        // check the receiver simply cannot verify an unkeyed forgery.
        let (_, receiver, pkey, _) = partition_pair();
        let mut attacker = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
        let forged_secret = SecretKey::from_seed(999); // guess
        attacker.keys.install_partition_secret(pkey, forged_secret);
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 8, b"forged with stolen P_Key");
        attacker.tag_packet(&mut pkt).unwrap();
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::BadTag));
    }

    #[test]
    fn pkey_swap_detected_because_covered() {
        let (sender, receiver, pkey, secret) = partition_pair();
        let other = PKey(0x8002);
        // Receiver also belongs to the other partition with the same secret
        // (worst case for detection).
        let mut receiver = receiver;
        receiver.keys.install_partition_secret(other, secret);
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"partition I data");
        sender.tag_packet(&mut pkt).unwrap();
        pkt.bth.pkey = other; // in-flight partition swap
        pkt.vcrc = pkt.compute_vcrc();
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::BadTag));
    }

    #[test]
    fn replayed_psn_changes_tag() {
        let (sender, _, pkey, _) = partition_pair();
        let mut p1 = ud_packet(pkey, QKey(7), Qpn(3), 5, b"same bytes");
        let mut p2 = ud_packet(pkey, QKey(7), Qpn(3), 6, b"same bytes");
        sender.tag_packet(&mut p1).unwrap();
        sender.tag_packet(&mut p2).unwrap();
        assert_ne!(p1.icrc, p2.icrc, "PSN is the nonce: tags must differ");
    }

    #[test]
    fn selector_zero_is_plain_icrc() {
        let (_, receiver, pkey, _) = partition_pair();
        let pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"legacy packet");
        // Built by the builder in plain-ICRC mode: verifies as legacy.
        receiver.verify_packet(&pkt).unwrap();
        let mut corrupted = pkt.clone();
        corrupted.payload[2] ^= 4;
        corrupted.vcrc = corrupted.compute_vcrc();
        assert_eq!(receiver.verify_packet(&corrupted), Err(AuthError::BadIcrc));
    }

    #[test]
    fn unknown_selector_rejected() {
        let (_, receiver, pkey, _) = partition_pair();
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"x");
        pkt.set_auth_tag(0x77, 0);
        assert_eq!(
            receiver.verify_packet(&pkt),
            Err(AuthError::UnknownSelector(0x77))
        );
    }

    #[test]
    fn missing_key_is_nokey() {
        let (sender, _, pkey, _) = partition_pair();
        let receiver = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::Partition);
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 5, b"x");
        sender.tag_packet(&mut pkt).unwrap();
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::NoKey));
    }

    #[test]
    fn qp_level_datagram_scope() {
        let secret = SecretKey::from_seed(7);
        let qkey = QKey(0x2000);
        let src_qp = Qpn(4);
        let mut sender = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        sender.keys.install_datagram_secret(qkey, src_qp, secret);
        let mut receiver = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        receiver.keys.install_datagram_secret(qkey, src_qp, secret);

        let mut pkt = ud_packet(PKey(0x8001), qkey, src_qp, 9, b"qp-scoped");
        sender.tag_packet(&mut pkt).unwrap();
        receiver.verify_packet(&pkt).unwrap();

        // A different source QP using the same Q_Key doesn't verify —
        // that's the Figure 3 (Q_Key, src QP) index working.
        let mut other = ud_packet(PKey(0x8001), qkey, Qpn(5), 9, b"qp-scoped");
        assert_eq!(sender.tag_packet(&mut other), Err(AuthError::NoKey));
    }

    #[test]
    fn qp_level_connected_scope() {
        let secret = SecretKey::from_seed(8);
        let mut sender = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        let mut receiver = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        // Both sides index by the wire-visible destination QP.
        sender.keys.install_connection_secret(Qpn(9), secret);
        receiver.keys.install_connection_secret(Qpn(9), secret);
        let mut pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(PKey(0x8001))
            .dest_qp(Qpn(9))
            .psn(Psn(33))
            .payload(b"connected".to_vec())
            .build();
        sender.tag_packet(&mut pkt).unwrap();
        receiver.verify_packet(&pkt).unwrap();
    }

    #[test]
    fn all_algorithms_roundtrip() {
        for alg in &AuthAlgorithm::ALL[1..] {
            let pkey = PKey(0x8001);
            let secret = SecretKey::from_seed(1234);
            let mut sender = Authenticator::new(*alg, KeyScope::Partition);
            sender.keys.install_partition_secret(pkey, secret);
            let mut receiver = Authenticator::new(*alg, KeyScope::Partition);
            receiver.keys.install_partition_secret(pkey, secret);
            let mut pkt = ud_packet(pkey, QKey(1), Qpn(1), 77, b"alg sweep");
            sender.tag_packet(&mut pkt).unwrap();
            receiver
                .verify_packet(&pkt)
                .unwrap_or_else(|e| panic!("{alg:?}: {e}"));
        }
    }

    #[test]
    fn verify_batch_matches_sequential_verdicts() {
        // Mixed batch: good packets, a tampered one, an unknown selector, a
        // legacy plain-ICRC packet, and a batch size that exercises both the
        // 4-lane kernel and the straggler path.
        for alg in &AuthAlgorithm::ALL[1..] {
            let pkey = PKey(0x8001);
            let secret = SecretKey::from_seed(55);
            let mut sender = Authenticator::new(*alg, KeyScope::Partition);
            sender.keys.install_partition_secret(pkey, secret);
            let mut receiver = Authenticator::new(*alg, KeyScope::Partition);
            receiver.keys.install_partition_secret(pkey, secret);

            let mut packets = Vec::new();
            for psn in 0..11u32 {
                let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), psn, b"batched traffic");
                sender.tag_packet(&mut pkt).unwrap();
                packets.push(pkt);
            }
            packets[3].payload[0] ^= 1; // tamper (MAC must catch it)
            packets[3].vcrc = packets[3].compute_vcrc();
            packets[6].set_auth_tag(0x77, 0); // unknown selector
            packets[8] = ud_packet(pkey, QKey(7), Qpn(3), 8, b"legacy"); // selector 0

            let refs: Vec<&Packet> = packets.iter().collect();
            let mut batch = Vec::new();
            receiver.verify_batch(&refs, &mut batch);
            let sequential: Vec<_> = refs.iter().map(|p| receiver.verify_packet(p)).collect();
            assert_eq!(batch, sequential, "{alg:?}");
            assert!(batch[3].is_err() && batch[6].is_err(), "{alg:?}");
            assert!(batch[0].is_ok() && batch[8].is_ok(), "{alg:?}");
        }
    }

    #[test]
    #[should_panic(expected = "absence of authentication")]
    fn icrc_is_not_an_authenticator() {
        let _ = Authenticator::new(AuthAlgorithm::Icrc, KeyScope::Partition);
    }

    #[test]
    fn epoch_lifecycle_future_grace_stale() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let (old_sender, mut receiver, pkey, _) = partition_pair();
        let (mut new_sender, _, _, _) = partition_pair();

        // A packet tagged under epoch 0 before the rotation.
        let mut old_pkt = ud_packet(pkey, QKey(7), Qpn(3), 10, b"epoch 0 traffic");
        old_sender.tag_packet(&mut old_pkt).unwrap();
        assert_eq!(old_pkt.bth.key_epoch, 0);

        // Rotation: the sender learns epoch 1 first (lazy re-keying order
        // is per-CA) and stamps it immediately.
        let s1 = SecretKey::from_seed(4242);
        new_sender
            .keys
            .install_partition_epoch(pkey, KeyEpoch(1), s1);
        let mut new_pkt = ud_packet(pkey, QKey(7), Qpn(3), 11, b"epoch 1 traffic");
        new_sender.tag_packet(&mut new_pkt).unwrap();
        assert_eq!(new_pkt.bth.key_epoch, 1, "send side switches immediately");

        // Receiver hasn't installed epoch 1 yet: a *recoverable* miss.
        assert_eq!(
            receiver.verify_packet(&new_pkt),
            Err(AuthError::FutureEpoch(1))
        );

        // Key-update MAD lands: both epochs verify during the grace window.
        receiver.keys.install_partition_epoch(pkey, KeyEpoch(1), s1);
        receiver.verify_packet(&new_pkt).unwrap();
        receiver.verify_packet(&old_pkt).unwrap();

        // Grace expires: the old version is retired and its traffic is
        // rejected for good — the zero-stale-admissions property.
        receiver.keys.retire_partition_below(pkey, KeyEpoch(1));
        assert_eq!(
            receiver.verify_packet(&old_pkt),
            Err(AuthError::StaleEpoch(0))
        );
        receiver.verify_packet(&new_pkt).unwrap();
    }

    #[test]
    fn epoch_id_is_authenticated() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let (mut sender, mut receiver, pkey, _) = partition_pair();
        let s1 = SecretKey::from_seed(777);
        sender.keys.install_partition_epoch(pkey, KeyEpoch(1), s1);
        receiver.keys.install_partition_epoch(pkey, KeyEpoch(1), s1);
        let mut pkt = ud_packet(pkey, QKey(7), Qpn(3), 3, b"swap my epoch");
        sender.tag_packet(&mut pkt).unwrap();
        // In-flight epoch downgrade: both versions are live at the
        // receiver, so the lookup succeeds — but the MAC covered the
        // original epoch id, so verification still fails.
        pkt.bth.key_epoch = 0;
        pkt.vcrc = pkt.compute_vcrc();
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::BadTag));
    }

    #[test]
    fn connection_scope_epochs_rotate_too() {
        use ib_mgmt::keymgmt::KeyEpoch;
        let s0 = SecretKey::from_seed(8);
        let s1 = SecretKey::from_seed(9);
        let mut sender = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        let mut receiver = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        sender.keys.install_connection_secret(Qpn(9), s0);
        receiver.keys.install_connection_secret(Qpn(9), s0);
        sender
            .keys
            .install_connection_epoch(Qpn(9), KeyEpoch(1), s1);
        let mut pkt = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(PKey(0x8001))
            .dest_qp(Qpn(9))
            .psn(Psn(33))
            .payload(b"connected rotation".to_vec())
            .build();
        sender.tag_packet(&mut pkt).unwrap();
        assert_eq!(pkt.bth.key_epoch, 1);
        assert_eq!(receiver.verify_packet(&pkt), Err(AuthError::FutureEpoch(1)));
        receiver
            .keys
            .install_connection_epoch(Qpn(9), KeyEpoch(1), s1);
        receiver.verify_packet(&pkt).unwrap();
        receiver.keys.retire_connection_below(Qpn(9), KeyEpoch(1));
        let mut old = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(PKey(0x8001))
            .dest_qp(Qpn(9))
            .psn(Psn(34))
            .payload(b"stale".to_vec())
            .build();
        let mut old_sender = Authenticator::new(AuthAlgorithm::Umac32, KeyScope::QpLevel);
        old_sender.keys.install_connection_secret(Qpn(9), s0);
        old_sender.tag_packet(&mut old).unwrap();
        assert_eq!(receiver.verify_packet(&old), Err(AuthError::StaleEpoch(0)));
    }
}
