//! On-demand authentication policy (§5.1): "let us assume that in some
//! partition a very important job is running. The administrator can enable
//! authentication only for that partition. Since the authentication can be
//! disabled and enabled anytime, our mechanism provides very flexible
//! authentication service."

use std::collections::HashSet;

use ib_packet::types::{PKey, Qpn};
use ib_packet::Packet;

/// Which packets must arrive authenticated. A packet is *required* to be
/// authenticated if its partition or its destination QP is enrolled (or
/// `default_required` is on). Unauthenticated packets for enrolled scopes
/// are policy violations even when their plain ICRC is fine.
#[derive(Debug, Clone, Default)]
pub struct OnDemandPolicy {
    partitions: HashSet<PKey>,
    qps: HashSet<Qpn>,
    /// Require authentication for everything (subnet-wide lockdown).
    pub default_required: bool,
}

impl OnDemandPolicy {
    /// A policy requiring nothing (stock IBA behaviour).
    pub fn allow_all() -> Self {
        Self::default()
    }

    /// Enable authentication for a partition ("only for that partition").
    pub fn require_partition(&mut self, pkey: PKey) -> &mut Self {
        self.partitions.insert(pkey);
        self
    }

    /// Disable authentication for a partition (can happen "anytime").
    pub fn release_partition(&mut self, pkey: PKey) -> &mut Self {
        self.partitions.remove(&pkey);
        self
    }

    /// Enable authentication for one destination QP.
    pub fn require_qp(&mut self, qp: Qpn) -> &mut Self {
        self.qps.insert(qp);
        self
    }

    /// Disable authentication for one destination QP.
    pub fn release_qp(&mut self, qp: Qpn) -> &mut Self {
        self.qps.remove(&qp);
        self
    }

    /// Does policy demand that this packet carry an authentication tag?
    pub fn requires_auth(&self, packet: &Packet) -> bool {
        self.default_required
            || self.partitions.contains(&packet.bth.pkey)
            || self.qps.contains(&packet.bth.dest_qp)
    }

    /// Is this packet acceptable? (Either policy doesn't care, or the
    /// packet carries a non-zero selector — tag *validity* is the
    /// authenticator's job, separation of concerns.)
    pub fn admits(&self, packet: &Packet) -> bool {
        !self.requires_auth(packet) || packet.bth.resv8a != 0
    }

    /// Number of enrolled scopes (metrics).
    pub fn enrolled(&self) -> usize {
        self.partitions.len() + self.qps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_packet::{Lid, OpCode, PacketBuilder, Psn};

    fn packet(pkey: PKey, dest_qp: Qpn, selector: u8) -> Packet {
        let mut p = PacketBuilder::new(OpCode::RC_SEND_ONLY)
            .slid(Lid(1))
            .dlid(Lid(2))
            .pkey(pkey)
            .dest_qp(dest_qp)
            .psn(Psn(1))
            .payload(vec![1, 2, 3])
            .build();
        if selector != 0 {
            p.set_auth_tag(selector, 0xDEAD_BEEF);
        }
        p
    }

    #[test]
    fn allow_all_admits_everything() {
        let policy = OnDemandPolicy::allow_all();
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(1), 0)));
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(1), 1)));
        assert_eq!(policy.enrolled(), 0);
    }

    #[test]
    fn partition_enrollment() {
        let mut policy = OnDemandPolicy::allow_all();
        policy.require_partition(PKey(0x8001));
        assert!(
            !policy.admits(&packet(PKey(0x8001), Qpn(1), 0)),
            "needs a tag"
        );
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(1), 1)), "tagged ok");
        assert!(
            policy.admits(&packet(PKey(0x8002), Qpn(1), 0)),
            "other partition free"
        );
    }

    #[test]
    fn enable_disable_anytime() {
        let mut policy = OnDemandPolicy::allow_all();
        policy.require_partition(PKey(0x8001));
        assert!(!policy.admits(&packet(PKey(0x8001), Qpn(1), 0)));
        policy.release_partition(PKey(0x8001));
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(1), 0)));
    }

    #[test]
    fn qp_enrollment() {
        let mut policy = OnDemandPolicy::allow_all();
        policy.require_qp(Qpn(42));
        assert!(!policy.admits(&packet(PKey(0x8001), Qpn(42), 0)));
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(43), 0)));
        policy.release_qp(Qpn(42));
        assert!(policy.admits(&packet(PKey(0x8001), Qpn(42), 0)));
    }

    #[test]
    fn default_required_lockdown() {
        let mut policy = OnDemandPolicy::allow_all();
        policy.default_required = true;
        assert!(!policy.admits(&packet(PKey(0x8009), Qpn(9), 0)));
        assert!(policy.admits(&packet(PKey(0x8009), Qpn(9), 1)));
    }
}
