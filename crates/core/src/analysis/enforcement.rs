//! Table 2 — partition-enforcement overhead model.
//!
//! Parameters (paper §3.3): the network has `n` nodes and `s` switches;
//! every node joins `p` partitions; `f(i)` is the lookup cost over a table
//! of `i` entries; `Pr(n)` is the probability a node participates in a
//! P_Key attack; `Avg(p̄)` the average Invalid_P_Key_Table population.
//!
//! | — | DPT | IF | SIF |
//! |---|-----|----|----|
//! | memory, one switch | n·p | p | p + Pr(n)·min(Avg, p) |
//! | memory, all switches | n·p·s | p·n | p·n + Pr(n)·min(Avg, p)·n |
//! | lookups/packet | f(n·p) | f(p) | Pr(n)·f(min(Avg, p)) |

use ib_mgmt::enforcement::EnforcementKind;

/// Model inputs.
#[derive(Debug, Clone, Copy)]
pub struct EnforcementModel {
    /// n — number of end nodes.
    pub nodes: usize,
    /// s — number of switches.
    pub switches: usize,
    /// p — partitions each node joins.
    pub partitions_per_node: usize,
    /// Pr(n) — probability a node joins a P_Key attack.
    pub attack_probability: f64,
    /// Avg(p̄) — average number of Invalid_P_Key_Table entries.
    pub avg_invalid_entries: f64,
}

/// One evaluated Table 2 column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadRow {
    pub kind: EnforcementKind,
    /// Table entries held by one switch.
    pub memory_per_switch: f64,
    /// Table entries across the whole fabric.
    pub memory_total: f64,
    /// Expected table lookups per data packet (with f(i) supplied by the
    /// caller — the paper's own instantiation is f ≡ 1 cycle).
    pub lookups_per_packet: f64,
}

impl EnforcementModel {
    /// The paper's testbed instantiation: 16 nodes, 16 switches, p
    /// partitions each, 1 % attack probability.
    pub fn paper_testbed(partitions_per_node: usize) -> Self {
        EnforcementModel {
            nodes: 16,
            switches: 16,
            partitions_per_node,
            attack_probability: 0.01,
            avg_invalid_entries: 1.0,
        }
    }

    fn min_avg_p(&self) -> f64 {
        self.avg_invalid_entries
            .min(self.partitions_per_node as f64)
    }

    /// Memory (table entries) in one switch.
    pub fn memory_per_switch(&self, kind: EnforcementKind) -> f64 {
        let n = self.nodes as f64;
        let p = self.partitions_per_node as f64;
        match kind {
            EnforcementKind::NoFiltering => 0.0,
            EnforcementKind::Dpt => n * p,
            EnforcementKind::If => p,
            EnforcementKind::Sif => p + self.attack_probability * self.min_avg_p(),
        }
    }

    /// Memory (table entries) across all switches.
    pub fn memory_total(&self, kind: EnforcementKind) -> f64 {
        let n = self.nodes as f64;
        let p = self.partitions_per_node as f64;
        let s = self.switches as f64;
        match kind {
            EnforcementKind::NoFiltering => 0.0,
            EnforcementKind::Dpt => n * p * s,
            EnforcementKind::If => p * n,
            EnforcementKind::Sif => p * n + self.attack_probability * self.min_avg_p() * n,
        }
    }

    /// Expected lookups per packet, with the caller's lookup-cost function
    /// `f(table_entries) → cost`.
    pub fn lookups_per_packet(&self, kind: EnforcementKind, f: impl Fn(f64) -> f64) -> f64 {
        let n = self.nodes as f64;
        let p = self.partitions_per_node as f64;
        match kind {
            EnforcementKind::NoFiltering => 0.0,
            EnforcementKind::Dpt => f(n * p),
            EnforcementKind::If => f(p),
            EnforcementKind::Sif => self.attack_probability * f(self.min_avg_p()),
        }
    }

    /// Evaluate the whole Table 2 with the paper's f ≡ 1-cycle lookup (so
    /// "lookups per packet" counts table probes).
    pub fn table2(&self) -> Vec<OverheadRow> {
        [
            EnforcementKind::Dpt,
            EnforcementKind::If,
            EnforcementKind::Sif,
        ]
        .into_iter()
        .map(|kind| OverheadRow {
            kind,
            memory_per_switch: self.memory_per_switch(kind),
            memory_total: self.memory_total(kind),
            lookups_per_packet: self.lookups_per_packet(kind, |i| if i > 0.0 { 1.0 } else { 0.0 }),
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnforcementModel {
        EnforcementModel {
            nodes: 16,
            switches: 16,
            partitions_per_node: 4,
            attack_probability: 0.01,
            avg_invalid_entries: 2.0,
        }
    }

    #[test]
    fn dpt_memory_dominates() {
        let m = model();
        assert_eq!(m.memory_per_switch(EnforcementKind::Dpt), 64.0); // n·p
        assert_eq!(m.memory_total(EnforcementKind::Dpt), 1024.0); // n·p·s
        assert!(m.memory_total(EnforcementKind::Dpt) > m.memory_total(EnforcementKind::If));
        assert!(m.memory_total(EnforcementKind::If) <= m.memory_total(EnforcementKind::Sif));
    }

    #[test]
    fn if_memory_is_p_per_switch() {
        let m = model();
        assert_eq!(m.memory_per_switch(EnforcementKind::If), 4.0);
        assert_eq!(m.memory_total(EnforcementKind::If), 64.0); // p·n
    }

    #[test]
    fn sif_memory_close_to_if() {
        let m = model();
        let sif = m.memory_per_switch(EnforcementKind::Sif);
        let ifm = m.memory_per_switch(EnforcementKind::If);
        // p + Pr·min(Avg,p) = 4 + 0.01·2 = 4.02
        assert!((sif - 4.02).abs() < 1e-12);
        assert!(sif - ifm < 0.1, "SIF ≈ IF in memory (paper's point)");
    }

    #[test]
    fn sif_lookups_practically_zero() {
        let m = model();
        let unit = |i: f64| if i > 0.0 { 1.0 } else { 0.0 };
        assert_eq!(m.lookups_per_packet(EnforcementKind::Dpt, unit), 1.0);
        assert_eq!(m.lookups_per_packet(EnforcementKind::If, unit), 1.0);
        let sif = m.lookups_per_packet(EnforcementKind::Sif, unit);
        assert!((sif - 0.01).abs() < 1e-12, "Pr(n)·f(...) = 0.01");
        assert!(sif < 0.05, "SIF incurs practically no lookup overhead");
    }

    #[test]
    fn min_clamps_avg_to_p() {
        let mut m = model();
        m.avg_invalid_entries = 100.0; // attacker sprayed many keys
                                       // min(Avg, p) = p = 4 ⇒ SIF never worse than IF per lookup table.
        let sif_mem = m.memory_per_switch(EnforcementKind::Sif);
        assert!((sif_mem - (4.0 + 0.01 * 4.0)).abs() < 1e-12);
    }

    #[test]
    fn table2_rows_complete() {
        let rows = model().table2();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].kind, EnforcementKind::Dpt);
        assert!(rows[0].lookups_per_packet > rows[2].lookups_per_packet);
    }

    #[test]
    fn lookup_cost_function_is_pluggable() {
        // With a linear-scan f(i) = i, DPT costs n·p comparisons.
        let m = model();
        assert_eq!(m.lookups_per_packet(EnforcementKind::Dpt, |i| i), 64.0);
        assert_eq!(m.lookups_per_packet(EnforcementKind::If, |i| i), 4.0);
    }
}
