//! Table 4 — time & forgery complexity of the authentication candidates,
//! and the §5.2/§6 link-speed feasibility arithmetic.
//!
//! The paper normalizes literature cycle counts to a 350 MHz clock and
//! derives Gb/s as `clock / (cycles/byte) × 8`. The same conversion is
//! applied to *measured* throughput of this repo's implementations by the
//! `table4` bench, so paper and reproduction rows are directly comparable.

use ib_crypto::mac::AuthAlgorithm;

/// The paper's normalization clock for Table 4.
pub const TABLE4_CLOCK_MHZ: f64 = 350.0;
/// The link speed UMAC must keep up with (Table 1).
pub const LINK_GBPS: f64 = 2.5;
/// The CA clock the paper assumes for the §6 feasibility claim.
pub const CA_CLOCK_MHZ: f64 = 200.0;

/// Convert cycles/byte at a clock (MHz) into Gb/s of MAC throughput.
pub fn gbps_from_cycles_per_byte(cycles_per_byte: f64, clock_mhz: f64) -> f64 {
    // bytes/s = clock_hz / cpb; ×8 → bit/s; ÷1e9 → Gb/s.
    clock_mhz * 1e6 / cycles_per_byte * 8.0 / 1e9
}

/// Convert a measured throughput into cycles/byte at the given clock.
pub fn cycles_per_byte_from_throughput(bytes_per_sec: f64, clock_hz: f64) -> f64 {
    clock_hz / bytes_per_sec
}

/// One Table 4 row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Algorithm name as the paper prints it.
    pub algorithm: &'static str,
    /// Cycles/byte (paper's 350 MHz-normalized reference value).
    pub cycles_per_byte: f64,
    /// Gb/s at 350 MHz.
    pub gbps: f64,
    /// Forgery probability as log2 (0 ⇒ probability 1).
    pub forgery_log2: i32,
}

/// The paper's Table 4, derived from the registry constants. The Gb/s
/// column is *recomputed* from cycles/byte so the internal consistency of
/// the paper's numbers is checked by tests rather than transcribed.
pub fn paper_table4() -> Vec<Table4Row> {
    [
        AuthAlgorithm::Icrc,
        AuthAlgorithm::HmacSha1,
        AuthAlgorithm::HmacMd5,
        AuthAlgorithm::Umac32,
    ]
    .into_iter()
    .map(|alg| {
        let cpb = alg.paper_cycles_per_byte().expect("tabulated algorithm");
        Table4Row {
            algorithm: alg.name(),
            cycles_per_byte: cpb,
            gbps: gbps_from_cycles_per_byte(cpb, TABLE4_CLOCK_MHZ),
            forgery_log2: alg.forgery_log2(),
        }
    })
    .collect()
}

/// §6's feasibility claim: "UMAC can generate 1.4 bytes per cycle, which
/// means that if we use 200 MHz, UMAC can authenticate messages at the
/// similar speed with IBA." Returns (umac_gbps_at_200mhz, link_gbps,
/// feasible-within-25 %).
pub fn umac_link_speed_check() -> (f64, f64, bool) {
    let cpb = AuthAlgorithm::Umac32
        .paper_cycles_per_byte()
        .expect("UMAC is tabulated");
    let gbps = gbps_from_cycles_per_byte(cpb, CA_CLOCK_MHZ);
    (gbps, LINK_GBPS, gbps >= LINK_GBPS * 0.75)
}

/// Expected forgery attempts before success for a forgery probability of
/// 2^log2p (how the paper's "up to 2⁻³⁰" should be read).
pub fn expected_forgery_attempts(forgery_log2: i32) -> f64 {
    2f64.powi(-forgery_log2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_gbps_column_is_consistent() {
        // The Gb/s column of Table 4 follows from cycles/byte at 350 MHz —
        // the registry cross-check.
        for row in paper_table4() {
            let expected = match row.algorithm {
                "CRC" => 11.2,
                "HMAC-SHA1" => 0.22,
                "HMAC-MD5" => 0.53,
                "UMAC-2/4" => 4.0,
                other => panic!("unexpected row {other}"),
            };
            assert!(
                (row.gbps - expected).abs() / expected < 0.05,
                "{}: derived {} vs paper {}",
                row.algorithm,
                row.gbps,
                expected
            );
        }
    }

    #[test]
    fn ordering_crc_umac_md5_sha1() {
        let rows = paper_table4();
        let gbps: std::collections::HashMap<&str, f64> =
            rows.iter().map(|r| (r.algorithm, r.gbps)).collect();
        assert!(gbps["CRC"] > gbps["UMAC-2/4"]);
        assert!(gbps["UMAC-2/4"] > gbps["HMAC-MD5"]);
        assert!(gbps["HMAC-MD5"] > gbps["HMAC-SHA1"]);
    }

    #[test]
    fn umac_keeps_up_with_the_link() {
        let (umac, link, feasible) = umac_link_speed_check();
        assert!(feasible, "UMAC {umac} Gb/s vs link {link} Gb/s");
        // 200 MHz × 1.4286 B/cycle × 8 = 2.2857 Gb/s.
        assert!((umac - 2.2857).abs() < 0.01);
    }

    #[test]
    fn conversions_invert() {
        let cpb = 0.7;
        let clock_hz = 350.0e6;
        let gbps = gbps_from_cycles_per_byte(cpb, 350.0);
        let bytes_per_sec = gbps * 1e9 / 8.0;
        let back = cycles_per_byte_from_throughput(bytes_per_sec, clock_hz);
        assert!((back - cpb).abs() < 1e-9);
    }

    #[test]
    fn forgery_attempts() {
        assert_eq!(expected_forgery_attempts(0), 1.0);
        assert_eq!(expected_forgery_attempts(-30), 2f64.powi(30));
        assert!(expected_forgery_attempts(-32) > 4e9);
    }

    #[test]
    fn crc_has_no_authenticity() {
        let rows = paper_table4();
        let crc = rows.iter().find(|r| r.algorithm == "CRC").unwrap();
        assert_eq!(crc.forgery_log2, 0, "forgery probability 1");
    }
}
