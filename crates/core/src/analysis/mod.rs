//! Closed-form models from the paper's evaluation:
//!
//! * [`enforcement`] — Table 2, the memory/lookup overhead of DPT vs IF vs
//!   SIF.
//! * [`macs`] — Table 4, time & forgery complexity of the candidate
//!   authentication functions, plus the §5.2/§6 link-speed feasibility
//!   arithmetic.

pub mod enforcement;
pub mod macs;
