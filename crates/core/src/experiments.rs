//! Experiment runners: configured parameter sweeps that regenerate the
//! paper's Figures 1, 5 and 6 on the `ib-sim` testbed.
//!
//! Each `figN_*` function returns row structs the bench binaries print;
//! sweeps run one simulator instance per configuration on scoped threads
//! (`ib_runtime::par`; instances are independent and deterministic, so the
//! sweep is embarrassingly parallel — see the HPC guides' "parallelize
//! across independent work items" idiom).

use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::{Json, ToJson};
use ib_sim::config::{AuthMode, SimConfig, TrafficConfig};
use ib_sim::engine::{SimReport, Simulator};
use ib_sim::time::{MS, US};

/// How many seeds each experiment point is averaged over (random
/// partition grouping and attacker placement change per seed, exactly the
/// "random groups / random nodes" methodology of §3.1).
pub const DEFAULT_SEEDS: u64 = 5;

/// Point estimates averaged over seeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct AveragedPoint {
    pub rt_queuing_us: f64,
    pub rt_network_us: f64,
    pub be_queuing_us: f64,
    pub be_network_us: f64,
    pub legit_queuing_us: f64,
    pub legit_network_us: f64,
    pub legit_queuing_stddev_us: f64,
    pub filter_drops: u64,
    pub hca_blocked: u64,
    pub traps: u64,
    pub lookup_cycles: u64,
    pub generated: u64,
}

/// Average one point's per-seed reports, strictly in seed order. Shared
/// by the single-point and grid runners so the two produce bit-identical
/// floating-point results (same values, same summation order).
fn average_reports(reports: &[SimReport]) -> AveragedPoint {
    let n = reports.len() as f64;
    let mut p = AveragedPoint::default();
    for r in reports {
        p.rt_queuing_us += r.realtime.queuing.mean() / n;
        p.rt_network_us += r.realtime.network.mean() / n;
        p.be_queuing_us += r.best_effort.queuing.mean() / n;
        p.be_network_us += r.best_effort.network.mean() / n;
        p.legit_queuing_us += r.legit_queuing_mean() / n;
        p.legit_network_us += r.legit_network_mean() / n;
        p.legit_queuing_stddev_us += r.legit_queuing_stddev() / n;
        p.filter_drops += r.filter_drops;
        p.hca_blocked += r.hca_blocked;
        p.traps += r.traps;
        p.lookup_cycles += r.lookup_cycles;
        p.generated += r.generated;
    }
    p
}

/// Run `base` under `seeds` different seeds (in parallel) and average the
/// per-run statistics.
pub fn run_seed_averaged(base: &SimConfig, seeds: u64) -> AveragedPoint {
    run_grid_seed_averaged(std::slice::from_ref(base), seeds)
        .pop()
        .expect("one base produces one point")
}

/// Run a whole sweep — every `(grid point × seed)` pair — as **one**
/// flattened parallel work list, then fold each point's shard back down
/// in seed order.
///
/// Sweeping point-by-point wastes a thread-pool barrier per point: the
/// last seed of point *k* gates the first seed of point *k+1* even
/// though every simulation is independent. Flattening keeps all cores
/// busy across the entire grid. Because each run's seed is
/// `base.seed.stream(s)` regardless of where it sits in the work list,
/// and [`average_reports`] folds shards in seed order, the result is
/// bit-identical to calling [`run_seed_averaged`] per point.
pub fn run_grid_seed_averaged(bases: &[SimConfig], seeds: u64) -> Vec<AveragedPoint> {
    let seeds = seeds.max(1);
    let configs: Vec<SimConfig> = bases
        .iter()
        .flat_map(|base| {
            (0..seeds).map(move |s| {
                let mut cfg = base.clone();
                // SplitMix-mixed stream derivation: repeat seeds share no
                // state structure even for adjacent indices.
                cfg.seed = base.seed.stream(s);
                cfg
            })
        })
        .collect();
    let reports = run_many(configs);
    reports
        .chunks(seeds as usize)
        .map(average_reports)
        .collect()
}

/// Run every configuration, in parallel, preserving order.
///
/// Dynamically scheduled: workers pull the next grid×seed cell from an
/// atomic cursor, because cell costs are wildly skewed — an attack-active
/// cell generates many times the events of an idle one, so a static chunk
/// assignment (or one OS thread per cell) straggles. Results land in
/// slots indexed by input position, so the output — and every
/// order-sensitive fold over it, like [`average_reports`] — stays
/// bit-identical no matter which worker ran which cell. Worker count
/// follows [`ib_runtime::par::default_threads`] (overridable via
/// `IB_THREADS`).
///
/// `IB_ENGINE=par` flips the parallelism axis: cells run sequentially,
/// each *inside* the sharded windowed engine
/// ([`ib_sim::ParSimulator`]) at `IB_THREADS` workers. Reports are
/// bit-identical either way (the engines' determinism contract), which
/// is exactly what the ci.sh byte-diff gates check.
pub fn run_many(configs: Vec<SimConfig>) -> Vec<SimReport> {
    let threads = ib_runtime::par::default_threads();
    if std::env::var("IB_ENGINE").as_deref() == Ok("par") {
        return configs
            .into_iter()
            .map(|cfg| ib_sim::ParSimulator::with_threads(cfg, threads).run())
            .collect();
    }
    ib_runtime::par::scope_map_dynamic(configs, threads, |cfg| Simulator::new(cfg).run())
}

// ------------------------------------------------------------------ Figure 1

/// One x-axis point of Figure 1 (a) and (b): delays vs number of attackers.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    pub attackers: usize,
    /// Realtime traffic (Figure 1a), µs.
    pub rt_queuing_us: f64,
    pub rt_network_us: f64,
    /// Best-effort traffic (Figure 1b), µs.
    pub be_queuing_us: f64,
    pub be_network_us: f64,
}

impl Fig1Row {
    /// JSON object form (one BENCH_fig1.json point).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("attackers", (self.attackers as u64).to_json()),
            ("rt_queuing_us", self.rt_queuing_us.to_json()),
            ("rt_network_us", self.rt_network_us.to_json()),
            ("be_queuing_us", self.be_queuing_us.to_json()),
            ("be_network_us", self.be_network_us.to_json()),
        ])
    }
}

/// The Figure 1 configuration: 16-node mesh, four random partitions,
/// victims at a fixed predefined rate, attackers at full 2.5 Gb/s with
/// random destinations, swept over 0–4 attackers.
pub fn fig1_config(attackers: usize) -> SimConfig {
    SimConfig {
        num_attackers: attackers,
        attack_probability: 1.0, // Figure 1 attack runs continuously
        traffic: TrafficConfig {
            // Operating point calibrated so the no-attack baseline sits at
            // the paper's ~2-5 µs queuing / ~20 µs latency, close enough to
            // the fabric's knee that a flood visibly bends the curve.
            realtime_load: 0.25,
            best_effort_load: 0.30,
            realtime_backoff_queue: 8,
        },
        duration: 10 * MS,
        warmup: MS,
        ..SimConfig::default()
    }
}

/// Regenerate Figure 1: one row per attacker count 0..=max, each averaged
/// over `seeds` random partition/attacker placements. The whole
/// (attackers × seed) grid runs as one flattened parallel work list.
pub fn fig1_with_seeds(max_attackers: usize, seeds: u64) -> Vec<Fig1Row> {
    let bases: Vec<SimConfig> = (0..=max_attackers).map(fig1_config).collect();
    run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .enumerate()
        .map(|(attackers, p)| Fig1Row {
            attackers,
            rt_queuing_us: p.rt_queuing_us,
            rt_network_us: p.rt_network_us,
            be_queuing_us: p.be_queuing_us,
            be_network_us: p.be_network_us,
        })
        .collect()
}

/// Regenerate Figure 1 with the default seed count.
pub fn fig1(max_attackers: usize) -> Vec<Fig1Row> {
    fig1_with_seeds(max_attackers, DEFAULT_SEEDS)
}

// ------------------------------------------------------------------ Figure 5

/// One bar of Figure 5: an (input load, enforcement) cell.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    pub input_load: f64,
    pub enforcement: EnforcementKind,
    /// Mean network delay of non-attacking traffic, µs.
    pub network_us: f64,
    /// Mean queuing delay of non-attacking traffic, µs.
    pub queuing_us: f64,
    /// Standard deviation of queuing delay (the §6 variance discussion).
    pub stddev_us: f64,
    /// Attack packets stopped in the fabric vs at HCAs.
    pub filter_drops: u64,
    pub hca_blocked: u64,
}

impl Fig5Row {
    /// JSON object form (one BENCH_fig5.json cell).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("input_load", self.input_load.to_json()),
            ("enforcement", self.enforcement.label().to_json()),
            ("network_us", self.network_us.to_json()),
            ("queuing_us", self.queuing_us.to_json()),
            ("stddev_us", self.stddev_us.to_json()),
            ("filter_drops", self.filter_drops.to_json()),
            ("hca_blocked", self.hca_blocked.to_json()),
        ])
    }
}

/// Figure 5's configuration: four attackers, attack probability 1 % per
/// epoch, swept over input load × enforcement method.
pub fn fig5_config(load: f64, enforcement: EnforcementKind) -> SimConfig {
    SimConfig {
        num_attackers: 4,
        attack_probability: 0.01,
        attack_epoch: 100 * US,
        // Every seed sees exactly one 1 %-of-runtime attack burst — the
        // duty-cycle reading of §6's "probability of DoS attack [set] to
        // 1 %" (a memoryless 1 % would leave most 10 ms runs attack-free).
        attack_schedule: ib_sim::config::AttackSchedule::DutyCycle,
        enforcement,
        traffic: TrafficConfig {
            realtime_load: load / 2.0,
            best_effort_load: load / 2.0,
            realtime_backoff_queue: 4,
        },
        duration: 10 * MS,
        warmup: MS,
        ..SimConfig::default()
    }
}

/// The four input loads of Figure 5/6.
pub const FIG5_LOADS: [f64; 4] = [0.4, 0.5, 0.6, 0.7];
/// Figure 5's bar order.
pub const FIG5_KINDS: [EnforcementKind; 4] = [
    EnforcementKind::NoFiltering,
    EnforcementKind::Dpt,
    EnforcementKind::If,
    EnforcementKind::Sif,
];

/// Regenerate Figure 5 (optionally with a non-default attack probability
/// for the sensitivity ablation in DESIGN.md), each cell averaged over
/// `seeds` placements.
pub fn fig5_with_attack_probability(attack_probability: f64, seeds: u64) -> Vec<Fig5Row> {
    let mut cells = Vec::new();
    let mut bases = Vec::new();
    for &load in &FIG5_LOADS {
        for &kind in &FIG5_KINDS {
            let mut cfg = fig5_config(load, kind);
            cfg.attack_probability = attack_probability;
            cells.push((load, kind));
            bases.push(cfg);
        }
    }
    run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .zip(cells)
        .map(|(p, (load, kind))| Fig5Row {
            input_load: load,
            enforcement: kind,
            network_us: p.legit_network_us,
            queuing_us: p.legit_queuing_us,
            stddev_us: p.legit_queuing_stddev_us,
            filter_drops: p.filter_drops,
            hca_blocked: p.hca_blocked,
        })
        .collect()
}

/// Regenerate Figure 5 with the paper's 1 % attack probability.
pub fn fig5() -> Vec<Fig5Row> {
    fig5_with_attack_probability(0.01, DEFAULT_SEEDS)
}

// ------------------------------------------------------------------ Figure 6

/// One bar pair of Figure 6: queuing and network delay with and without
/// key management + authentication.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    pub input_load: f64,
    pub mode: AuthMode,
    pub queuing_us: f64,
    pub network_us: f64,
    pub queuing_stddev_us: f64,
}

impl Fig6Row {
    /// JSON object form (one BENCH_fig6.json cell).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("input_load", self.input_load.to_json()),
            ("mode", self.mode.label().to_json()),
            ("queuing_us", self.queuing_us.to_json()),
            ("network_us", self.network_us.to_json()),
            ("queuing_stddev_us", self.queuing_stddev_us.to_json()),
        ])
    }
}

/// Figure 6's configuration: no attackers, input load sweep, QP-level key
/// management charged one RTT per new pair plus one cycle per message.
pub fn fig6_config(load: f64, mode: AuthMode) -> SimConfig {
    SimConfig {
        auth: mode,
        traffic: TrafficConfig {
            realtime_load: load / 2.0,
            best_effort_load: load / 2.0,
            realtime_backoff_queue: 4,
        },
        duration: 10 * MS,
        warmup: MS,
        ..SimConfig::default()
    }
}

/// Regenerate Figure 6. `modes` defaults in the bench to
/// `[None, QpLevel]` (the paper's No Key / With Key bars); partition-level
/// is included by the ablation. Each cell averages `seeds` placements.
pub fn fig6_with_seeds(modes: &[AuthMode], seeds: u64) -> Vec<Fig6Row> {
    let mut cells = Vec::new();
    let mut bases = Vec::new();
    for &load in &FIG5_LOADS {
        for &mode in modes {
            cells.push((load, mode));
            bases.push(fig6_config(load, mode));
        }
    }
    run_grid_seed_averaged(&bases, seeds)
        .into_iter()
        .zip(cells)
        .map(|(p, (load, mode))| Fig6Row {
            input_load: load,
            mode,
            queuing_us: p.legit_queuing_us,
            network_us: p.legit_network_us,
            queuing_stddev_us: p.legit_queuing_stddev_us,
        })
        .collect()
}

/// Regenerate Figure 6 with the default seed count.
pub fn fig6(modes: &[AuthMode]) -> Vec<Fig6Row> {
    fig6_with_seeds(modes, DEFAULT_SEEDS)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut cfg: SimConfig) -> SimConfig {
        cfg.duration = 2 * MS;
        cfg.warmup = 200 * US;
        cfg
    }

    #[test]
    fn run_many_preserves_order_and_determinism() {
        let configs = vec![quick(fig1_config(0)), quick(fig1_config(2))];
        let a = run_many(configs.clone());
        let b = run_many(configs);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].generated, b[0].generated);
        assert_eq!(a[1].generated, b[1].generated);
        // The two configs genuinely differ (second has attackers).
        assert_eq!(a[0].hca_blocked, 0);
        assert!(a[1].hca_blocked > 0);
    }

    /// The flattened grid runner must be *bit-identical* to running each
    /// point serially — same seeds, same fold order, same f64 results —
    /// or sharded sweeps would not reproduce published numbers.
    #[test]
    fn grid_runner_bit_identical_to_per_point() {
        let bases = vec![quick(fig1_config(0)), quick(fig1_config(3))];
        let grid = run_grid_seed_averaged(&bases, 3);
        assert_eq!(grid.len(), 2);
        for (base, got) in bases.iter().zip(&grid) {
            let solo = run_seed_averaged(base, 3);
            assert_eq!(solo.rt_queuing_us.to_bits(), got.rt_queuing_us.to_bits());
            assert_eq!(solo.be_queuing_us.to_bits(), got.be_queuing_us.to_bits());
            assert_eq!(solo.be_network_us.to_bits(), got.be_network_us.to_bits());
            assert_eq!(
                solo.legit_queuing_stddev_us.to_bits(),
                got.legit_queuing_stddev_us.to_bits()
            );
            assert_eq!(solo.filter_drops, got.filter_drops);
            assert_eq!(solo.generated, got.generated);
        }
    }

    #[test]
    fn fig1_shape_queuing_grows_latency_flatter() {
        // Scaled-down fig1: 0 vs 4 attackers. The operating point sits at
        // the fabric's knee, so short runs need several seeds before the
        // attack signal clears placement variance.
        let longer = |mut cfg: SimConfig| {
            cfg.duration = 4 * MS;
            cfg.warmup = 400 * US;
            cfg
        };
        let base = run_seed_averaged(&longer(fig1_config(0)), 6);
        let attacked = run_seed_averaged(&longer(fig1_config(4)), 6);
        assert!(
            attacked.be_queuing_us > base.be_queuing_us * 1.5,
            "BE queuing must grow: {} -> {}",
            base.be_queuing_us,
            attacked.be_queuing_us
        );
        // Network latency grows far less than queuing in relative terms.
        let q_growth = attacked.be_queuing_us / base.be_queuing_us.max(1e-9);
        let n_growth = attacked.be_network_us / base.be_network_us.max(1e-9);
        assert!(
            q_growth > n_growth,
            "queuing amplification {q_growth} should beat latency amplification {n_growth}"
        );
    }

    #[test]
    fn fig5_filtering_beats_no_filtering_under_attack() {
        // Full-probability attack at one load to keep the test fast.
        let mut no_f = fig5_config(0.5, EnforcementKind::NoFiltering);
        no_f.attack_probability = 1.0;
        let mut with_if = fig5_config(0.5, EnforcementKind::If);
        with_if.attack_probability = 1.0;
        let reports = run_many(vec![quick(no_f), quick(with_if)]);
        assert!(
            reports[1].legit_queuing_mean() < reports[0].legit_queuing_mean(),
            "IF {} must beat No-Filtering {}",
            reports[1].legit_queuing_mean(),
            reports[0].legit_queuing_mean()
        );
    }

    #[test]
    fn fig6_overhead_is_marginal() {
        let reports = run_many(vec![
            quick(fig6_config(0.4, AuthMode::None)),
            quick(fig6_config(0.4, AuthMode::QpLevel)),
        ]);
        let no_key = reports[0].legit_queuing_mean();
        let with_key = reports[1].legit_queuing_mean();
        assert!(with_key >= no_key, "{with_key} vs {no_key}");
        assert!(
            with_key - no_key < 5.0,
            "overhead must be marginal: {with_key} vs {no_key}"
        );
    }
}
