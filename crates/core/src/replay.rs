//! Replay defense (§7 "More DoS Attacks … Replay attack"): "This can be
//! avoided by using timestamps or sequence numbers, referred to as nonce.
//! Consecutive packets use different nonce, so the replayed packets will be
//! found illegal."
//!
//! The PSN already serves as the MAC nonce, so a replayed packet carries a
//! *valid* tag for an *old* PSN. [`ReplayWindow`] is the receiver-side
//! anti-replay bookkeeping — an IPSec-style sliding bitmap window (RFC
//! 2401 appendix C style), sized for out-of-order arrival in a multipath
//! fabric.

/// Sliding-window replay tracker over 24-bit PSNs (tracked internally as
/// monotonically increasing u64 to sidestep wrap ambiguity; callers feed
/// [`ReplayWindow::accept`] the unwrapped sequence — see
/// [`ReplayWindow::accept_psn`] for the wrap-aware convenience).
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    /// Highest sequence accepted so far (None until the first packet).
    top: Option<u64>,
    /// Bitmap of the `window` sequences at and below `top`:
    /// bit k set ⇒ (top - k) seen.
    bitmap: u64,
    window: u32,
    /// Count of rejected (replayed or too-old) packets.
    pub rejected: u64,
}

/// 24-bit PSN modulus.
const PSN_MOD: u64 = 1 << 24;

/// What the window knows about an offered sequence number.
///
/// The three-way split is what lets a *reliable* transport coexist with
/// the replay defense: a retransmitted packet is byte-identical to an
/// attacker's replay, so content can never distinguish them — delivery
/// state can. [`Fresh`](ReplayVerdict::Fresh) means the PSN was never
/// delivered (genuine first arrival **or** a retransmit of a lost packet —
/// deliver it). [`Duplicate`](ReplayVerdict::Duplicate) means the PSN was
/// already delivered (an attacker replay **or** a retransmit whose ACK was
/// lost — never deliver again, but the transport may safely re-ACK).
/// [`Stale`](ReplayVerdict::Stale) means the PSN fell off the window and
/// the receiver can no longer judge it — reject outright; transports must
/// keep their in-flight window within the replay window so genuine
/// retransmits never age out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayVerdict {
    /// Never seen: record and deliver.
    Fresh,
    /// Within the window and already seen: do not deliver (re-ACK is safe).
    Duplicate,
    /// Older than the window: unjudgeable, reject.
    Stale,
}

impl ReplayWindow {
    /// A window accepting up to `window` (≤ 64) out-of-order sequences.
    pub fn new(window: u32) -> Self {
        ReplayWindow {
            top: None,
            bitmap: 0,
            window: window.clamp(1, 64),
            rejected: 0,
        }
    }

    /// Offer an unwrapped sequence number and learn its delivery status:
    /// [`ReplayVerdict::Fresh`] records it, the other verdicts count a
    /// rejection.
    pub fn offer(&mut self, seq: u64) -> ReplayVerdict {
        match self.top {
            None => {
                self.top = Some(seq);
                self.bitmap = 1;
                ReplayVerdict::Fresh
            }
            Some(top) if seq > top => {
                let shift = seq - top;
                self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
                self.bitmap |= 1;
                self.top = Some(seq);
                ReplayVerdict::Fresh
            }
            Some(top) => {
                let age = top - seq;
                if age >= self.window as u64 {
                    self.rejected += 1;
                    return ReplayVerdict::Stale; // too old to judge
                }
                let bit = 1u64 << age;
                if self.bitmap & bit != 0 {
                    self.rejected += 1;
                    ReplayVerdict::Duplicate
                } else {
                    self.bitmap |= bit;
                    ReplayVerdict::Fresh
                }
            }
        }
    }

    /// Offer an unwrapped sequence number. Returns true if fresh (and
    /// records it); false if a replay or older than the window.
    pub fn accept(&mut self, seq: u64) -> bool {
        self.offer(seq) == ReplayVerdict::Fresh
    }

    /// Wrap-aware [`offer`](Self::offer) over a raw 24-bit PSN: the window
    /// unwraps it against the current top using shortest-distance logic (a
    /// PSN less than half the space ahead counts as forward progress,
    /// otherwise as a late/replayed packet from just behind).
    pub fn offer_psn(&mut self, psn: u32) -> ReplayVerdict {
        let psn = psn as u64 & (PSN_MOD - 1);
        let seq = match self.top {
            None => psn,
            Some(top) => {
                let top_phase = top % PSN_MOD;
                // Forward distance from top's phase to this PSN, 0..2^24.
                let d = (psn + PSN_MOD - top_phase) % PSN_MOD;
                if d == 0 {
                    top // same phase as top: a replay of top itself
                } else if d <= PSN_MOD / 2 {
                    top + d // forward progress (possibly across a wrap)
                } else {
                    // Nearer behind top: back off by the complement; if the
                    // unwrapped sequence would precede 0, treat as forward.
                    top.checked_sub(PSN_MOD - d).unwrap_or(top + d)
                }
            }
        };
        self.offer(seq)
    }

    /// Boolean form of [`offer_psn`](Self::offer_psn).
    pub fn accept_psn(&mut self, psn: u32) -> bool {
        self.offer_psn(psn) == ReplayVerdict::Fresh
    }

    /// The out-of-order depth this window tolerates.
    pub fn window(&self) -> u32 {
        self.window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_accepted_once() {
        let mut w = ReplayWindow::new(64);
        for s in 0..100 {
            assert!(w.accept(s), "fresh {s}");
        }
        for s in 90..100 {
            assert!(!w.accept(s), "replay {s}");
        }
        assert_eq!(w.rejected, 10);
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReplayWindow::new(16);
        assert!(w.accept(10));
        assert!(w.accept(12));
        assert!(w.accept(11), "late but fresh");
        assert!(!w.accept(11), "now a replay");
        assert!(!w.accept(12));
        assert!(!w.accept(10));
    }

    #[test]
    fn too_old_rejected() {
        let mut w = ReplayWindow::new(8);
        assert!(w.accept(100));
        assert!(!w.accept(92), "exactly window-old is out");
        assert!(w.accept(93), "window-1 old is in");
    }

    #[test]
    fn large_jump_clears_bitmap() {
        let mut w = ReplayWindow::new(64);
        assert!(w.accept(5));
        assert!(w.accept(5 + 100));
        assert!(!w.accept(5 + 100));
        // 5 is far below the window now.
        assert!(!w.accept(5));
    }

    #[test]
    fn first_packet_any_sequence() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept(123_456));
        assert!(!w.accept(123_456));
    }

    #[test]
    fn psn_wrap_forward() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept_psn(0xFF_FFFE));
        assert!(w.accept_psn(0xFF_FFFF));
        assert!(w.accept_psn(0x00_0000), "wraps forward");
        assert!(w.accept_psn(0x00_0001));
        assert!(!w.accept_psn(0x00_0000), "replay after wrap");
        assert!(!w.accept_psn(0xFF_FFFF), "pre-wrap replay still caught");
    }

    #[test]
    fn psn_slightly_behind_is_late_not_wrap() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept_psn(100));
        assert!(w.accept_psn(102));
        assert!(w.accept_psn(101), "late delivery");
        assert!(!w.accept_psn(101));
    }

    #[test]
    fn rejected_counter() {
        let mut w = ReplayWindow::new(8);
        w.accept(1);
        w.accept(1);
        w.accept(1);
        assert_eq!(w.rejected, 2);
    }

    #[test]
    fn verdicts_distinguish_duplicate_from_stale() {
        let mut w = ReplayWindow::new(8);
        assert_eq!(w.offer(100), ReplayVerdict::Fresh);
        assert_eq!(w.offer(100), ReplayVerdict::Duplicate);
        // Window-old (age ≥ 8) is unjudgeable regardless of history.
        assert_eq!(w.offer(92), ReplayVerdict::Stale);
        // Inside the window but never delivered: fresh.
        assert_eq!(w.offer(95), ReplayVerdict::Fresh);
        assert_eq!(w.rejected, 2);
    }

    /// The §7 subtlety: a retransmit of a *lost* (never-delivered) PSN and
    /// an attacker replay of a *delivered* one are byte-identical — the
    /// window tells them apart by delivery state alone.
    #[test]
    fn retransmit_of_lost_fresh_replay_of_delivered_duplicate() {
        let mut w = ReplayWindow::new(64);
        // PSNs 0,1,3,4 delivered; 2 was lost on the wire.
        for s in [0u64, 1, 3, 4] {
            assert_eq!(w.offer(s), ReplayVerdict::Fresh);
        }
        // Sender times out and goes back: retransmits of 2,3,4 arrive.
        assert_eq!(w.offer(2), ReplayVerdict::Fresh, "retransmit of lost PSN");
        assert_eq!(w.offer(3), ReplayVerdict::Duplicate, "already delivered");
        assert_eq!(w.offer(4), ReplayVerdict::Duplicate);
        // An attacker replaying a delivered PSN gets the same duplicate
        // verdict — not delivered twice.
        assert_eq!(w.offer(1), ReplayVerdict::Duplicate);
    }

    /// A window-straddling arrival: top advances far enough that an
    /// in-flight PSN lands exactly on the trailing edge.
    #[test]
    fn window_straddling_psn() {
        let mut w = ReplayWindow::new(16);
        assert_eq!(w.offer(50), ReplayVerdict::Fresh);
        assert_eq!(w.offer(65), ReplayVerdict::Fresh); // top = 65
                                                       // Age 15 = window-1: still judgeable.
        assert_eq!(w.offer(50), ReplayVerdict::Duplicate);
        assert_eq!(w.offer(51), ReplayVerdict::Fresh, "straddles, inside");
        // One more step of top pushes 50 past the edge while 51 sits
        // exactly on it.
        assert_eq!(w.offer(66), ReplayVerdict::Fresh);
        assert_eq!(w.offer(50), ReplayVerdict::Stale);
        assert_eq!(w.offer(51), ReplayVerdict::Duplicate, "trailing edge");
        // And another step ages 51 out too — delivered or not.
        assert_eq!(w.offer(67), ReplayVerdict::Fresh);
        assert_eq!(w.offer(51), ReplayVerdict::Stale, "even though delivered");
    }

    /// Full wraparound at 2^24 with the verdict API: retransmits across
    /// the wrap keep their delivery state.
    #[test]
    fn psn_wraparound_preserves_verdicts() {
        let mut w = ReplayWindow::new(32);
        assert_eq!(w.offer_psn(0xFF_FFFC), ReplayVerdict::Fresh);
        assert_eq!(w.offer_psn(0xFF_FFFD), ReplayVerdict::Fresh);
        // 0xFF_FFFE lost; delivery continues across the wrap.
        assert_eq!(w.offer_psn(0xFF_FFFF), ReplayVerdict::Fresh);
        assert_eq!(w.offer_psn(0x00_0000), ReplayVerdict::Fresh);
        assert_eq!(w.offer_psn(0x00_0001), ReplayVerdict::Fresh);
        // Retransmit of the lost pre-wrap PSN: fresh.
        assert_eq!(
            w.offer_psn(0xFF_FFFE),
            ReplayVerdict::Fresh,
            "lost PSN behind the wrap still deliverable"
        );
        // Replays of delivered PSNs on both sides of the wrap: duplicates.
        assert_eq!(w.offer_psn(0xFF_FFFF), ReplayVerdict::Duplicate);
        assert_eq!(w.offer_psn(0x00_0000), ReplayVerdict::Duplicate);
        // Far behind the window after the wrap: stale.
        let mut w2 = ReplayWindow::new(16);
        assert_eq!(w2.offer_psn(0xFF_FFF0), ReplayVerdict::Fresh);
        assert_eq!(w2.offer_psn(0x00_0010), ReplayVerdict::Fresh);
        assert_eq!(w2.offer_psn(0xFF_FFF0), ReplayVerdict::Stale);
    }

    #[test]
    fn window_accessor_reports_clamped_size() {
        assert_eq!(ReplayWindow::new(16).window(), 16);
        assert_eq!(ReplayWindow::new(0).window(), 1);
        assert_eq!(ReplayWindow::new(1000).window(), 64);
    }
}
