//! Replay defense (§7 "More DoS Attacks … Replay attack"): "This can be
//! avoided by using timestamps or sequence numbers, referred to as nonce.
//! Consecutive packets use different nonce, so the replayed packets will be
//! found illegal."
//!
//! The PSN already serves as the MAC nonce, so a replayed packet carries a
//! *valid* tag for an *old* PSN. [`ReplayWindow`] is the receiver-side
//! anti-replay bookkeeping — an IPSec-style sliding bitmap window (RFC
//! 2401 appendix C style), sized for out-of-order arrival in a multipath
//! fabric.

/// Sliding-window replay tracker over 24-bit PSNs (tracked internally as
/// monotonically increasing u64 to sidestep wrap ambiguity; callers feed
/// [`ReplayWindow::accept`] the unwrapped sequence — see
/// [`ReplayWindow::accept_psn`] for the wrap-aware convenience).
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    /// Highest sequence accepted so far (None until the first packet).
    top: Option<u64>,
    /// Bitmap of the `window` sequences at and below `top`:
    /// bit k set ⇒ (top - k) seen.
    bitmap: u64,
    window: u32,
    /// Count of rejected (replayed or too-old) packets.
    pub rejected: u64,
}

/// 24-bit PSN modulus.
const PSN_MOD: u64 = 1 << 24;

impl ReplayWindow {
    /// A window accepting up to `window` (≤ 64) out-of-order sequences.
    pub fn new(window: u32) -> Self {
        ReplayWindow {
            top: None,
            bitmap: 0,
            window: window.clamp(1, 64),
            rejected: 0,
        }
    }

    /// Offer an unwrapped sequence number. Returns true if fresh (and
    /// records it); false if a replay or older than the window.
    pub fn accept(&mut self, seq: u64) -> bool {
        match self.top {
            None => {
                self.top = Some(seq);
                self.bitmap = 1;
                true
            }
            Some(top) if seq > top => {
                let shift = seq - top;
                self.bitmap = if shift >= 64 { 0 } else { self.bitmap << shift };
                self.bitmap |= 1;
                self.top = Some(seq);
                true
            }
            Some(top) => {
                let age = top - seq;
                if age >= self.window as u64 {
                    self.rejected += 1;
                    return false; // too old to judge: reject conservatively
                }
                let bit = 1u64 << age;
                if self.bitmap & bit != 0 {
                    self.rejected += 1;
                    false
                } else {
                    self.bitmap |= bit;
                    true
                }
            }
        }
    }

    /// Offer a raw 24-bit PSN; the window unwraps it against the current
    /// top using shortest-distance logic (a PSN less than half the space
    /// ahead counts as forward progress, otherwise as a late/replayed
    /// packet from just behind).
    pub fn accept_psn(&mut self, psn: u32) -> bool {
        let psn = psn as u64 & (PSN_MOD - 1);
        let seq = match self.top {
            None => psn,
            Some(top) => {
                let top_phase = top % PSN_MOD;
                // Forward distance from top's phase to this PSN, 0..2^24.
                let d = (psn + PSN_MOD - top_phase) % PSN_MOD;
                if d == 0 {
                    top // same phase as top: a replay of top itself
                } else if d <= PSN_MOD / 2 {
                    top + d // forward progress (possibly across a wrap)
                } else {
                    // Nearer behind top: back off by the complement; if the
                    // unwrapped sequence would precede 0, treat as forward.
                    top.checked_sub(PSN_MOD - d).unwrap_or(top + d)
                }
            }
        };
        self.accept(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_accepted_once() {
        let mut w = ReplayWindow::new(64);
        for s in 0..100 {
            assert!(w.accept(s), "fresh {s}");
        }
        for s in 90..100 {
            assert!(!w.accept(s), "replay {s}");
        }
        assert_eq!(w.rejected, 10);
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReplayWindow::new(16);
        assert!(w.accept(10));
        assert!(w.accept(12));
        assert!(w.accept(11), "late but fresh");
        assert!(!w.accept(11), "now a replay");
        assert!(!w.accept(12));
        assert!(!w.accept(10));
    }

    #[test]
    fn too_old_rejected() {
        let mut w = ReplayWindow::new(8);
        assert!(w.accept(100));
        assert!(!w.accept(92), "exactly window-old is out");
        assert!(w.accept(93), "window-1 old is in");
    }

    #[test]
    fn large_jump_clears_bitmap() {
        let mut w = ReplayWindow::new(64);
        assert!(w.accept(5));
        assert!(w.accept(5 + 100));
        assert!(!w.accept(5 + 100));
        // 5 is far below the window now.
        assert!(!w.accept(5));
    }

    #[test]
    fn first_packet_any_sequence() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept(123_456));
        assert!(!w.accept(123_456));
    }

    #[test]
    fn psn_wrap_forward() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept_psn(0xFF_FFFE));
        assert!(w.accept_psn(0xFF_FFFF));
        assert!(w.accept_psn(0x00_0000), "wraps forward");
        assert!(w.accept_psn(0x00_0001));
        assert!(!w.accept_psn(0x00_0000), "replay after wrap");
        assert!(!w.accept_psn(0xFF_FFFF), "pre-wrap replay still caught");
    }

    #[test]
    fn psn_slightly_behind_is_late_not_wrap() {
        let mut w = ReplayWindow::new(32);
        assert!(w.accept_psn(100));
        assert!(w.accept_psn(102));
        assert!(w.accept_psn(101), "late delivery");
        assert!(!w.accept_psn(101));
    }

    #[test]
    fn rejected_counter() {
        let mut w = ReplayWindow::new(8);
        w.accept(1);
        w.accept(1);
        w.accept(1);
        assert_eq!(w.rejected, 2);
    }
}
