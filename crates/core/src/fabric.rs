//! An in-memory secure fabric: the whole stack wired together.
//!
//! [`SecureFabric`] owns a Subnet Manager and N nodes. Partitions are
//! created through the SM, which mints partition secrets and distributes
//! them under each member's (toy-RSA) public key — §4.2's flow, for real,
//! over real envelopes. Datagram sends build genuine IBA wire packets
//! (`ib-packet`), tag them through the ICRC-as-MAC path, and delivery
//! parses the raw bytes, applies on-demand policy, verifies the tag, and
//! enforces replay freshness.
//!
//! This is the crate's quickstart API; the examples and the cross-crate
//! integration tests drive it.

use std::collections::HashMap;

use ib_crypto::mac::AuthAlgorithm;
use ib_crypto::toyrsa::{self, PrivateKey, PublicKey};
use ib_mgmt::keymgmt::QpKeyManager;
use ib_mgmt::partition::{PartitionConfig, PartitionTable};
use ib_mgmt::sm::SubnetManager;
use ib_packet::{Lid, OpCode, PKey, Packet, PacketBuilder, ParseError, Psn, QKey, Qpn};

use crate::auth::{AuthError, Authenticator, KeyScope};
use crate::ondemand::OnDemandPolicy;
use crate::replay::ReplayWindow;

/// Why a delivery was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The raw bytes are not a valid IBA packet.
    Parse(ParseError),
    /// The on-demand policy demands authentication and the packet has none.
    PolicyViolation,
    /// Tag/ICRC verification failed.
    Auth(AuthError),
    /// Valid tag but stale nonce — a replay.
    Replay,
    /// The destination's partition table rejects the P_Key.
    PKeyViolation,
    /// Unknown destination node.
    NoSuchNode,
}

impl From<ParseError> for FabricError {
    fn from(e: ParseError) -> Self {
        FabricError::Parse(e)
    }
}

impl From<AuthError> for FabricError {
    fn from(e: AuthError) -> Self {
        FabricError::Auth(e)
    }
}

struct FabricNode {
    lid: Lid,
    public: PublicKey,
    private: PrivateKey,
    auth: Authenticator,
    qp_mgr: QpKeyManager,
    policy: OnDemandPolicy,
    table: PartitionTable,
    /// Per-source replay windows ((slid, src_qp) → window).
    replay: HashMap<(Lid, Qpn), ReplayWindow>,
    /// Next PSN per destination.
    psn: HashMap<usize, u32>,
    /// This node's datagram QP number.
    dg_qp: Qpn,
}

/// The assembled fabric.
pub struct SecureFabric {
    sm: SubnetManager,
    nodes: Vec<FabricNode>,
    algorithm: AuthAlgorithm,
    scope: KeyScope,
}

impl SecureFabric {
    /// Build a fabric of `n` nodes using `algorithm`/`scope` for
    /// authentication. Node `i` gets LID `i+1` and datagram QP `10·i + 1`.
    pub fn new(n: usize, algorithm: AuthAlgorithm, scope: KeyScope, seed: u64) -> Self {
        let mut sm = SubnetManager::new(n, seed);
        let nodes = (0..n)
            .map(|i| {
                let (public, private) = toyrsa::generate_keypair(seed ^ (i as u64 + 1) << 8);
                let lid = Lid(i as u16 + 1);
                sm.register_public_key(lid, public);
                FabricNode {
                    lid,
                    public,
                    private,
                    auth: Authenticator::new(algorithm, scope),
                    qp_mgr: QpKeyManager::new(seed ^ qp_seed(i)),
                    policy: OnDemandPolicy::allow_all(),
                    table: PartitionTable::new(),
                    replay: HashMap::new(),
                    psn: HashMap::new(),
                    dg_qp: Qpn(10 * i as u32 + 1),
                }
            })
            .collect();
        SecureFabric {
            sm,
            nodes,
            algorithm,
            scope,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fabric has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The configured algorithm.
    pub fn algorithm(&self) -> AuthAlgorithm {
        self.algorithm
    }

    /// The configured key-management scope.
    pub fn scope(&self) -> KeyScope {
        self.scope
    }

    /// Create a partition: the SM mints the secret and each member opens
    /// its envelope with its own private key and installs the result —
    /// the full Figure 2 flow.
    pub fn create_partition(&mut self, pkey: PKey, members: &[usize]) {
        let (_, envelopes) = self.sm.create_partition(PartitionConfig {
            pkey,
            members: members.to_vec(),
        });
        for (member, envelope) in envelopes {
            let node = &mut self.nodes[member];
            let secret = envelope
                .open(&node.private)
                .expect("member decrypts its own envelope");
            node.auth.keys.install_partition_secret(pkey, secret);
            node.table.insert(pkey);
        }
    }

    /// §4.3 datagram key exchange: `requester` asks `responder` for its
    /// Q_Key; the responder mints a fresh secret sealed to the requester's
    /// public key. Both sides install under (Q_Key, requester's QP).
    pub fn request_qkey(&mut self, requester: usize, responder: usize) -> QKey {
        let requester_qp = self.nodes[requester].dg_qp;
        let requester_pub = self.nodes[requester].public;
        let responder_qp = self.nodes[responder].dg_qp;
        let (qkey, secret, envelope) = self.nodes[responder]
            .qp_mgr
            .issue_qkey(responder_qp, &requester_pub);
        self.nodes[responder]
            .auth
            .keys
            .install_datagram_secret(qkey, requester_qp, secret);
        let opened = envelope
            .open(&self.nodes[requester].private)
            .expect("requester decrypts its own envelope");
        self.nodes[requester]
            .auth
            .keys
            .install_datagram_secret(qkey, requester_qp, opened);
        qkey
    }

    /// Require authentication for a partition on every node (§5.1
    /// on-demand enablement, administrator action).
    pub fn require_auth_for_partition(&mut self, pkey: PKey) {
        for node in &mut self.nodes {
            node.policy.require_partition(pkey);
        }
    }

    /// Drop the requirement again ("disabled and enabled anytime").
    pub fn release_auth_for_partition(&mut self, pkey: PKey) {
        for node in &mut self.nodes {
            node.policy.release_partition(pkey);
        }
    }

    fn next_psn(&mut self, src: usize, dst: usize) -> Psn {
        let counter = self.nodes[src].psn.entry(dst).or_insert(0);
        let psn = Psn::new(*counter);
        *counter = (*counter + 1) & 0x00FF_FFFF;
        psn
    }

    /// Build, tag, and serialize a datagram from `src` to `dst` in
    /// partition `pkey` carrying `qkey` (from [`SecureFabric::request_qkey`]
    /// under QP scope; any agreed value under partition scope).
    pub fn send_datagram(
        &mut self,
        src: usize,
        dst: usize,
        pkey: PKey,
        qkey: QKey,
        payload: &[u8],
    ) -> Result<Vec<u8>, FabricError> {
        if src >= self.nodes.len() || dst >= self.nodes.len() {
            return Err(FabricError::NoSuchNode);
        }
        let psn = self.next_psn(src, dst);
        let src_node = &self.nodes[src];
        let mut packet = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(src_node.lid)
            .dlid(self.nodes[dst].lid)
            .pkey(pkey)
            .psn(psn)
            .dest_qp(self.nodes[dst].dg_qp)
            .qkey(qkey, src_node.dg_qp)
            .payload(payload.to_vec())
            .build();
        self.nodes[src].auth.tag_packet(&mut packet)?;
        Ok(packet.to_bytes())
    }

    /// Send *without* authentication (plain ICRC) — what a legacy or
    /// malicious sender produces.
    pub fn send_unauthenticated(
        &mut self,
        src: usize,
        dst: usize,
        pkey: PKey,
        qkey: QKey,
        payload: &[u8],
    ) -> Result<Vec<u8>, FabricError> {
        if src >= self.nodes.len() || dst >= self.nodes.len() {
            return Err(FabricError::NoSuchNode);
        }
        let psn = self.next_psn(src, dst);
        let src_node = &self.nodes[src];
        let packet = PacketBuilder::new(OpCode::UD_SEND_ONLY)
            .slid(src_node.lid)
            .dlid(self.nodes[dst].lid)
            .pkey(pkey)
            .psn(psn)
            .dest_qp(self.nodes[dst].dg_qp)
            .qkey(qkey, src_node.dg_qp)
            .payload(payload.to_vec())
            .build();
        Ok(packet.to_bytes())
    }

    /// Receive raw wire bytes at node `dst`: parse, partition check,
    /// policy check, authentication, replay check. Returns the payload.
    pub fn deliver(&mut self, dst: usize, bytes: &[u8]) -> Result<Vec<u8>, FabricError> {
        let node = self.nodes.get_mut(dst).ok_or(FabricError::NoSuchNode)?;
        let packet = Packet::parse(bytes)?;
        // Stock-IBA receive checks first: P_Key table.
        let (pkey_ok, _) = node.table.check(packet.bth.pkey);
        if !pkey_ok {
            return Err(FabricError::PKeyViolation);
        }
        // On-demand policy.
        if !node.policy.admits(&packet) {
            return Err(FabricError::PolicyViolation);
        }
        // Authentication (or legacy ICRC for selector 0).
        node.auth.verify_packet(&packet)?;
        // Replay freshness per (sender LID, sender QP) flow.
        if packet.bth.resv8a != 0 {
            let flow = (
                packet.lrh.slid,
                packet.deth.as_ref().map_or(Qpn(0), |d| d.src_qp),
            );
            let window = node
                .replay
                .entry(flow)
                .or_insert_with(|| ReplayWindow::new(64));
            if !window.accept_psn(packet.bth.psn.0) {
                return Err(FabricError::Replay);
            }
        }
        Ok(packet.payload)
    }

    /// Batched [`Self::deliver`]: parse every buffer, run the stock
    /// P_Key/policy checks, verify all surviving tags through the
    /// authenticator's multi-buffer MAC kernels in one dispatch, then
    /// apply replay freshness in arrival order. Verdict `i` is exactly
    /// what `deliver(dst, bufs[i])` would have returned if called in
    /// sequence.
    pub fn deliver_many(
        &mut self,
        dst: usize,
        bufs: &[&[u8]],
    ) -> Vec<Result<Vec<u8>, FabricError>> {
        let Some(node) = self.nodes.get_mut(dst) else {
            return bufs.iter().map(|_| Err(FabricError::NoSuchNode)).collect();
        };
        // Stage 1: parse + stock receive checks. Only packets that pass
        // reach the MAC batch, mirroring `deliver`'s early returns.
        let staged: Vec<Result<Packet, FabricError>> = bufs
            .iter()
            .map(|bytes| {
                let packet = Packet::parse(bytes)?;
                let (pkey_ok, _) = node.table.check(packet.bth.pkey);
                if !pkey_ok {
                    return Err(FabricError::PKeyViolation);
                }
                if !node.policy.admits(&packet) {
                    return Err(FabricError::PolicyViolation);
                }
                Ok(packet)
            })
            .collect();
        // Stage 2: whole-batch tag verification (multi-buffer where the
        // algorithm allows). Verification is stateless, so order within
        // the batch cannot change any verdict.
        let mut verdicts = Vec::new();
        {
            let batch: Vec<&Packet> = staged.iter().filter_map(|r| r.as_ref().ok()).collect();
            node.auth.verify_batch(&batch, &mut verdicts);
        }
        // Stage 3: replay windows advance strictly in arrival order.
        let mut verdicts = verdicts.into_iter();
        staged
            .into_iter()
            .map(|r| {
                let packet = r?;
                verdicts.next().expect("one verdict per staged packet")?;
                if packet.bth.resv8a != 0 {
                    let flow = (
                        packet.lrh.slid,
                        packet.deth.as_ref().map_or(Qpn(0), |d| d.src_qp),
                    );
                    let window = node
                        .replay
                        .entry(flow)
                        .or_insert_with(|| ReplayWindow::new(64));
                    if !window.accept_psn(packet.bth.psn.0) {
                        return Err(FabricError::Replay);
                    }
                }
                Ok(packet.payload)
            })
            .collect()
    }

    /// The number of secrets node `i` holds (observability for examples).
    pub fn key_count(&self, node: usize) -> usize {
        self.nodes[node].auth.keys.len()
    }
}

// Helper giving each node's QP manager a distinct seed without colliding
// with the RSA seed-space.
fn qp_seed(i: usize) -> u64 {
    0x5EED_0000_0000 + i as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: PKey = PKey(0x8001);
    const P2: PKey = PKey(0x8002);

    fn fabric() -> SecureFabric {
        let mut f = SecureFabric::new(4, AuthAlgorithm::Umac32, KeyScope::Partition, 77);
        f.create_partition(P1, &[0, 1]);
        f.create_partition(P2, &[0, 2]);
        f
    }

    #[test]
    fn partition_members_communicate() {
        let mut f = fabric();
        let wire = f
            .send_datagram(0, 1, P1, QKey(1), b"hello from node 0")
            .unwrap();
        let payload = f.deliver(1, &wire).unwrap();
        assert_eq!(payload, b"hello from node 0");
    }

    #[test]
    fn cross_partition_rejected_at_pkey_check() {
        let mut f = fabric();
        // Node 2 is not in partition I: its table lacks P1.
        let wire = f.send_datagram(0, 1, P1, QKey(1), b"secret").unwrap();
        assert_eq!(f.deliver(2, &wire), Err(FabricError::PKeyViolation));
    }

    #[test]
    fn non_member_cannot_forge_even_with_stolen_pkey() {
        let mut f = fabric();
        // Node 3 is in no partition; it "captures" P1 off the wire and
        // tries to inject. It has no secret, so tagging fails...
        assert_eq!(
            f.send_datagram(3, 1, P1, QKey(1), b"forged"),
            Err(FabricError::Auth(AuthError::NoKey))
        );
        // ...and an unauthenticated packet bounces off on-demand policy.
        f.require_auth_for_partition(P1);
        let wire = f
            .send_unauthenticated(3, 1, P1, QKey(1), b"forged")
            .unwrap();
        assert_eq!(f.deliver(1, &wire), Err(FabricError::PolicyViolation));
    }

    #[test]
    fn policy_toggles_at_runtime() {
        let mut f = fabric();
        let wire = f.send_unauthenticated(0, 1, P1, QKey(1), b"plain").unwrap();
        assert!(
            f.deliver(1, &wire).is_ok(),
            "no policy: legacy packets fine"
        );
        f.require_auth_for_partition(P1);
        let wire = f.send_unauthenticated(0, 1, P1, QKey(1), b"plain").unwrap();
        assert_eq!(f.deliver(1, &wire), Err(FabricError::PolicyViolation));
        f.release_auth_for_partition(P1);
        let wire = f.send_unauthenticated(0, 1, P1, QKey(1), b"plain").unwrap();
        assert!(f.deliver(1, &wire).is_ok());
    }

    #[test]
    fn bitflip_on_the_wire_detected() {
        let mut f = fabric();
        let mut wire = f
            .send_datagram(0, 1, P1, QKey(1), b"integrity matters")
            .unwrap();
        // Flip a payload bit and repair the VCRC like an in-path attacker.
        let payload_off = 8 + 12 + 8; // LRH + BTH + DETH
        wire[payload_off] ^= 0x01;
        let n = wire.len();
        let mut c = ib_crypto::crc::Crc16::new();
        c.update(&wire[..n - 2]);
        let v = c.finalize();
        wire[n - 2..].copy_from_slice(&v.to_be_bytes());
        assert_eq!(
            f.deliver(1, &wire),
            Err(FabricError::Auth(AuthError::BadTag))
        );
    }

    #[test]
    fn replay_rejected() {
        let mut f = fabric();
        let wire = f.send_datagram(0, 1, P1, QKey(1), b"pay me once").unwrap();
        assert!(f.deliver(1, &wire).is_ok());
        assert_eq!(f.deliver(1, &wire), Err(FabricError::Replay));
    }

    #[test]
    fn multiple_messages_flow() {
        let mut f = fabric();
        for i in 0..50u32 {
            let msg = format!("message {i}");
            let wire = f.send_datagram(0, 1, P1, QKey(1), msg.as_bytes()).unwrap();
            assert_eq!(f.deliver(1, &wire).unwrap(), msg.as_bytes());
        }
    }

    #[test]
    fn qp_scope_end_to_end() {
        let mut f = SecureFabric::new(3, AuthAlgorithm::Umac32, KeyScope::QpLevel, 99);
        f.create_partition(P1, &[0, 1, 2]);
        let qkey = f.request_qkey(0, 1);
        let wire = f
            .send_datagram(0, 1, P1, qkey, b"qp-scoped payload")
            .unwrap();
        assert_eq!(f.deliver(1, &wire).unwrap(), b"qp-scoped payload");
        // Node 2 shares the partition but not the QP secret: the packet is
        // not forgeable by it (NoKey on send) — the paper's argument that
        // QP-level closes the shared-partition-secret hole.
        assert_eq!(
            f.send_datagram(2, 1, P1, qkey, b"forged"),
            Err(FabricError::Auth(AuthError::NoKey))
        );
    }

    #[test]
    fn distinct_partitions_distinct_secrets() {
        let f = fabric();
        // Node 0 belongs to both partitions: it holds 2 secrets.
        assert_eq!(f.key_count(0), 2);
        assert_eq!(f.key_count(1), 1);
        assert_eq!(f.key_count(3), 0);
    }

    /// `deliver_many` is verdict-for-verdict identical to sequential
    /// `deliver` across a batch mixing good traffic, a replay, a forgery,
    /// a cross-partition packet, a policy violation, and garbage bytes.
    #[test]
    fn deliver_many_matches_sequential_deliver() {
        for alg in [
            AuthAlgorithm::Umac32,
            AuthAlgorithm::Pmac,
            AuthAlgorithm::HmacSha1,
        ] {
            let mk = || {
                let mut f = SecureFabric::new(4, alg, KeyScope::Partition, 77);
                f.create_partition(P1, &[0, 1]);
                f.create_partition(P2, &[0, 2]);
                f.require_auth_for_partition(P2);
                f
            };
            let (mut f_seq, mut f_bat) = (mk(), mk());
            let mut bufs: Vec<Vec<u8>> = Vec::new();
            for i in 0..6u32 {
                let msg = format!("batch message {i}");
                bufs.push(
                    f_seq
                        .send_datagram(0, 1, P1, QKey(1), msg.as_bytes())
                        .unwrap(),
                );
            }
            bufs.push(bufs[2].clone()); // replay of an earlier PSN
            let mut forged = bufs[0].clone();
            forged[30] ^= 0x40; // payload bit-flip, VCRC now also stale
            bufs.push(forged);
            bufs.push(
                f_seq
                    .send_datagram(0, 1, P2, QKey(1), b"wrong table")
                    .unwrap(),
            );
            bufs.push(
                f_seq
                    .send_unauthenticated(0, 1, P1, QKey(1), b"legacy ok")
                    .unwrap(),
            );
            bufs.push(vec![0xFF; 7]); // unparseable
                                      // Mirror the sender-side PSN state on the batch twin.
            for _ in 0..8 {
                f_bat.next_psn(0, 1);
            }
            let expected: Vec<_> = bufs.iter().map(|b| f_seq.deliver(1, b)).collect();
            let refs: Vec<&[u8]> = bufs.iter().map(|b| &b[..]).collect();
            assert_eq!(f_bat.deliver_many(1, &refs), expected, "{alg:?}");
            assert_eq!(
                f_bat.deliver_many(9, &refs),
                vec![Err(FabricError::NoSuchNode); refs.len()],
                "{alg:?}: bad destination"
            );
        }
    }

    #[test]
    fn algorithms_other_than_umac_work_end_to_end() {
        for alg in [
            AuthAlgorithm::HmacMd5,
            AuthAlgorithm::HmacSha1,
            AuthAlgorithm::Pmac,
        ] {
            let mut f = SecureFabric::new(2, alg, KeyScope::Partition, 123);
            f.create_partition(P1, &[0, 1]);
            let wire = f.send_datagram(0, 1, P1, QKey(5), b"alg matrix").unwrap();
            assert_eq!(f.deliver(1, &wire).unwrap(), b"alg matrix", "{alg:?}");
        }
    }
}
