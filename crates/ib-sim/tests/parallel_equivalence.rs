//! Randomized cross-engine equivalence and partition-shape properties,
//! driven by `ib_runtime::check` (failing cases persist to
//! `tests/corpus/` and replay before the random phase).
//!
//! The equivalence property is the parallel engine's whole contract:
//! for ANY config — topology, attackers, enforcement, trap transport,
//! faults — and ANY thread count, [`ib_sim::ParSimulator`] must produce
//! a report byte-identical to the serial oracle [`ib_sim::Simulator`].

use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::check::{self, Gen};
use ib_runtime::Seed;
use ib_sim::config::{AttackSchedule, TrapTransport};
use ib_sim::time::{MS, US};
use ib_sim::{AttackKeys, ParSimulator, Partition, SimConfig, Simulator, TopoSpec};

#[derive(Debug, Clone)]
struct Case {
    seed: u64,
    topo: TopoSpec,
    mesh_dim: usize,
    attackers: usize,
    keys: AttackKeys,
    enforcement: EnforcementKind,
    transport: TrapTransport,
    schedule: AttackSchedule,
    faults: bool,
    threads: usize,
}

fn gen_topo(g: &mut Gen) -> TopoSpec {
    match g.usize_in(0..4) {
        0 => TopoSpec::Mesh,
        1 => TopoSpec::FatTree { k: 4 },
        2 => TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: false,
        },
        _ => TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: true,
        },
    }
}

fn gen_case(g: &mut Gen) -> Case {
    Case {
        seed: g.u64(),
        topo: gen_topo(g),
        mesh_dim: g.usize_in(3..5),
        attackers: g.usize_in(0..3),
        keys: match g.usize_in(0..3) {
            0 => AttackKeys::RandomInvalid,
            1 => AttackKeys::Valid,
            _ => AttackKeys::SmFlood,
        },
        enforcement: match g.usize_in(0..4) {
            0 => EnforcementKind::NoFiltering,
            1 => EnforcementKind::Dpt,
            2 => EnforcementKind::If,
            _ => EnforcementKind::Sif,
        },
        transport: if g.bool() {
            TrapTransport::OutOfBand
        } else {
            TrapTransport::InBand
        },
        schedule: if g.bool() {
            AttackSchedule::Probabilistic
        } else {
            AttackSchedule::DutyCycle
        },
        faults: g.bool(),
        threads: g.usize_in(2..7),
    }
}

/// Simpler variants: no attack machinery, no faults, fewer threads.
fn shrink_case(case: &Case) -> Vec<Case> {
    let mut out = Vec::new();
    if case.attackers > 0 {
        out.push(Case {
            attackers: 0,
            ..case.clone()
        });
    }
    if case.faults {
        out.push(Case {
            faults: false,
            ..case.clone()
        });
    }
    if case.threads > 2 {
        out.push(Case {
            threads: 2,
            ..case.clone()
        });
    }
    out
}

fn build_cfg(case: &Case) -> SimConfig {
    let mut cfg = SimConfig {
        seed: Seed(case.seed),
        topology: case.topo,
        mesh_dim: case.mesh_dim,
        num_attackers: case.attackers,
        attack_keys: case.keys,
        attack_schedule: case.schedule,
        attack_probability: 1.0,
        enforcement: case.enforcement,
        trap_transport: case.transport,
        duration: MS,
        warmup: 100 * US,
        ..SimConfig::default()
    };
    if case.faults {
        cfg.fault.drop_prob = 0.02;
        cfg.fault.corrupt_prob = 0.01;
        cfg.fault.reorder_prob = 0.01;
        cfg.fault.reorder_delay_ps = 20 * US;
    }
    cfg
}

#[test]
fn parallel_report_matches_serial_on_random_configs() {
    check::run("parallel_equivalence", 12, gen_case, shrink_case, |case| {
        let cfg = build_cfg(case);
        let (serial, serial_events) = Simulator::new(cfg.clone()).run_counted();
        let mut par = ParSimulator::with_threads(cfg, case.threads);
        let preport = par.run();
        assert_eq!(
            serial.to_json().to_string(),
            preport.to_json().to_string(),
            "report diverged for {case:?}"
        );
        assert_eq!(
            serial_events,
            par.events_processed(),
            "event count diverged for {case:?}"
        );
    });
}

/// The co-simulation figures (fig_rdma, fig_rekey) run their fabrics on
/// the default mesh with one attacker; pin that engine config to the
/// serial oracle explicitly (shortened duration — the contract is
/// per-event, not per-length).
#[test]
fn cosim_figure_base_config_matches_serial() {
    let cfg = SimConfig {
        num_attackers: 1,
        duration: 3 * MS,
        warmup: 300 * US,
        ..SimConfig::default()
    };
    let (serial, serial_events) = Simulator::new(cfg.clone()).run_counted();
    for threads in [1, 4] {
        let mut par = ParSimulator::with_threads(cfg.clone(), threads);
        let preport = par.run();
        assert_eq!(
            serial.to_json().to_string(),
            preport.to_json().to_string(),
            "cosim base config diverged at {threads} threads"
        );
        assert_eq!(serial_events, par.events_processed());
    }
}

#[derive(Debug, Clone)]
struct PartCase {
    topo: TopoSpec,
    mesh_dim: usize,
    cap: usize,
}

#[test]
fn partition_covers_switches_and_reports_true_cross_delay() {
    check::run(
        "topology_partition",
        64,
        |g| PartCase {
            topo: gen_topo(g),
            mesh_dim: g.usize_in(2..7),
            cap: if g.bool() {
                usize::MAX
            } else {
                g.usize_in(1..9)
            },
        },
        check::no_shrink,
        |case| {
            let cfg = SimConfig {
                topology: case.topo,
                mesh_dim: case.mesh_dim,
                ..SimConfig::default()
            };
            let topo = cfg.build_topology();
            let part = Partition::of(&*topo, case.cap);

            // Every switch assigned exactly once, ids dense in
            // 0..num_domains, and the cap respected.
            assert_eq!(part.domain_of.len(), topo.num_switches());
            assert!(part.num_domains >= 1);
            assert!(part.num_domains <= case.cap.max(1));
            assert!(part.num_domains <= topo.num_switches());
            let mut seen = vec![false; part.num_domains];
            for &d in &part.domain_of {
                assert!(d < part.num_domains, "domain id out of range");
                seen[d] = true;
            }
            assert!(seen.iter().all(|&s| s), "domain ids must be dense");

            // Natural (uncapped) partitions keep locality cuts internal:
            // fat-tree pods keep edge<->agg links, dragonfly groups keep
            // every intra-group link.
            if case.cap == usize::MAX {
                match case.topo {
                    TopoSpec::FatTree { k } => {
                        assert_eq!(part.num_domains, k);
                        let (internal, _) = part.link_census(&*topo);
                        // k pods x (k/2 edge x k/2 agg) bidirectional.
                        assert!(internal >= k * (k / 2) * (k / 2) * 2 / 2);
                    }
                    TopoSpec::Dragonfly { a, h, .. } => {
                        let groups = a * h + 1;
                        assert_eq!(part.num_domains, groups);
                        // All cross links are global: a*h per group,
                        // counted once per direction.
                        let (_, cross) = part.link_census(&*topo);
                        assert_eq!(cross, groups * a * h);
                    }
                    TopoSpec::Mesh => {}
                }
            }

            // min_cross_delay reports the true minimum over crossing
            // links: None iff no link crosses, else the constant delay.
            let delay = cfg.propagation_delay;
            let reported = part.min_cross_delay(&*topo, &|_, _| delay);
            let (_, cross) = part.link_census(&*topo);
            if cross == 0 {
                assert_eq!(reported, None);
            } else {
                assert_eq!(reported, Some(delay));
            }
        },
    );
}
