//! The discrete-event core: event kinds and a deterministic time-ordered
//! queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ib_mgmt::trap::Trap;
use ib_packet::types::PKey;

use crate::time::SimTime;
use crate::traffic::TrafficClass;

/// A packet moving through the simulation. Header fields mirror the real
/// wire format (`ib-packet` builds/parses the bytes in the functional
/// tests); the simulator carries them unserialized for speed.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Unique id (monotonic).
    pub id: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Traffic class (selects VL and priority).
    pub class: TrafficClass,
    /// P_Key carried in the BTH.
    pub pkey: PKey,
    /// Virtual lane the packet travels on. Legitimate traffic uses its
    /// class's VL; attackers spray across data VLs to hit both classes.
    pub vl: u8,
    /// Wire size in bytes (headers + payload + CRCs).
    pub bytes: usize,
    /// Generation timestamp (enqueue at the source HCA).
    pub gen_time: SimTime,
    /// First-byte-on-wire timestamp (set at injection).
    pub inject_time: SimTime,
    /// For in-band management packets: the trap notice carried in the MAD.
    pub trap: Option<Trap>,
    /// CRC-32 over the packet's deterministic wire image, computed at
    /// emission. The destination HCA re-renders the image and recomputes;
    /// a transit bit flip (below) makes the check fail.
    pub icrc: u32,
    /// Set when the fault layer flipped bits in transit; the re-rendered
    /// image at the destination carries the flip, so the CRC check above
    /// discards the packet on arrival.
    pub corrupted: bool,
}

/// Events the engine processes.
#[derive(Debug, Clone)]
pub enum Event {
    /// A traffic source at `node` fires (class decides what happens next).
    Generate { node: usize, class: TrafficClass },
    /// The HCA at `node` re-evaluates its injection opportunity.
    TryInject { node: usize },
    /// A packet finishes arriving at `switch` input `port`.
    SwitchArrive {
        switch: usize,
        port: usize,
        packet: SimPacket,
    },
    /// Output `port` of `switch` re-evaluates its arbitration.
    TryForward { switch: usize, port: usize },
    /// A packet finishes arriving at its destination HCA.
    HcaReceive { node: usize, packet: SimPacket },
    /// A credit returns to `switch`'s output `port` for `vl`.
    SwitchCredit { switch: usize, port: usize, vl: u8 },
    /// A credit returns to the HCA at `node` for `vl`.
    HcaCredit { node: usize, vl: u8 },
    /// A trap MAD reaches the SM.
    TrapDeliver { trap: Trap },
    /// The SM's filter programming lands on `switch`.
    FilterProgram {
        switch: usize,
        port: usize,
        pkey: PKey,
    },
    /// Toggle the attackers between active and idle epochs.
    AttackEpoch,
}

/// Deterministic priority queue: ties in time break by insertion sequence,
/// so runs with the same seed replay identically.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<(SimTime, u64, EventBox)>>,
    seq: u64,
}

/// Wrapper giving `Event` the `Ord` the heap needs without imposing a
/// semantic order on events themselves (sequence number decides).
#[derive(Debug)]
struct EventBox(Event);

impl PartialEq for EventBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for EventBox {}
impl PartialOrd for EventBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl EventQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: Event) {
        self.seq += 1;
        self.heap.push(Reverse((at, self.seq, EventBox(event))));
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse((t, _, b))| (t, b.0))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::AttackEpoch);
        q.push(10, Event::TryInject { node: 1 });
        q.push(20, Event::TryInject { node: 2 });
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert_eq!((t1, t2, t3), (10, 20, 30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::TryInject { node: 1 });
        q.push(5, Event::TryInject { node: 2 });
        q.push(5, Event::TryInject { node: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::TryInject { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::AttackEpoch);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
