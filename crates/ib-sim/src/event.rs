//! The discrete-event core: event kinds, a free-listed event arena, and a
//! calendar-queue scheduler ordering compact `(time, seq, idx)` keys.
//!
//! ## Why not a plain `BinaryHeap<(SimTime, u64, Event)>`
//!
//! The original queue carried every `Event` — including a full inline
//! [`SimPacket`] with its `Option<Trap>` — *inside* the heap, so each
//! sift-up/sift-down memcpy'd ~100 bytes per level. Under the paper's
//! P_Key-flooding regime (the event-count maximum of every figure), the
//! scheduler was the simulator's single hottest path. The rebuilt queue
//! splits storage from ordering:
//!
//! * events live once in [`EventArena`], a free-listed slab that recycles
//!   slots, and
//! * the priority structure orders only 20-byte [`EventKey`]s — a
//!   calendar queue (Brown, CACM 1988): a bucketed timing wheel for the
//!   near future plus a binary-heap overflow for far-future events
//!   (attack-window starts, key-exchange RTTs, end-of-run timers).
//!
//! With event inter-arrival times well under a bucket width, push is O(1)
//! and pop scans one small bucket — amortized O(1) against the heap's
//! O(log n) with far smaller constants and no event copies.
//!
//! ## Determinism contract
//!
//! Ties in time break by `seq`, so runs with the same seed replay
//! identically — the hard correctness contract behind every
//! `BENCH_fig*.json` byte-identity gate. [`EventKey`] derives its
//! lexicographic `(time, seq, idx)` order (`seq` is unique, so `idx`
//! never decides), and both schedulers — the calendar [`EventQueue`] and
//! the reference [`HeapQueue`] oracle — pop the exact same key stream for
//! the same pushes, a property enforced by `tests/event_scheduler.rs`.
//!
//! `seq` comes in two flavours. The legacy [`EventQueue::push`] assigns a
//! per-queue insertion counter — fine for a single global queue. The
//! sharded engine instead composes an *intrinsic* key via
//! [`EventQueue::push_keyed`]: `seq = origin_entity_id << 32 | oseq`,
//! where `oseq` is a per-origin counter. Intrinsic keys are independent
//! of which queue an event lands in and of arrival order, so the serial
//! engine (one merged queue) and the parallel engine (one queue per event
//! domain) pop identical per-domain `(time, seq)` streams — the
//! foundation of the bit-identical-at-any-thread-count guarantee.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ib_mgmt::trap::Trap;
use ib_packet::types::PKey;

use crate::arena::PacketRef;
use crate::time::SimTime;
use crate::traffic::TrafficClass;

/// A packet moving through the simulation. Header fields mirror the real
/// wire format (`ib-packet` builds/parses the bytes in the functional
/// tests); the simulator carries them unserialized for speed. In-flight
/// packets live in the engine's [`crate::arena::PacketArena`]; events and
/// queues pass 4-byte [`PacketRef`] indices instead of this ~100-byte
/// struct.
#[derive(Debug, Clone)]
pub struct SimPacket {
    /// Unique id (monotonic).
    pub id: u64,
    /// Source node index.
    pub src: usize,
    /// Destination node index.
    pub dst: usize,
    /// Traffic class (selects VL and priority).
    pub class: TrafficClass,
    /// P_Key carried in the BTH.
    pub pkey: PKey,
    /// Virtual lane the packet travels on. Legitimate traffic uses its
    /// class's VL; attackers spray across data VLs to hit both classes.
    pub vl: u8,
    /// Wire size in bytes (headers + payload + CRCs).
    pub bytes: usize,
    /// Generation timestamp (enqueue at the source HCA).
    pub gen_time: SimTime,
    /// First-byte-on-wire timestamp (set at injection).
    pub inject_time: SimTime,
    /// For in-band management packets: the trap notice carried in the MAD.
    pub trap: Option<Trap>,
    /// CRC-32 over the packet's deterministic wire image, computed at
    /// emission (only when the fault layer is active — fault-free runs
    /// never consult it). The destination HCA re-renders and recomputes
    /// *only* for packets the fault layer touched; untouched packets
    /// re-render bit-identically by construction, so the cached tag is
    /// authoritative.
    pub icrc: u32,
    /// Set when the fault layer flipped bits in transit; the re-rendered
    /// image at the destination carries the flip, so the CRC check above
    /// discards the packet on arrival.
    pub corrupted: bool,
    /// Host-injected real wire image ([`crate::Simulator::post_host`]).
    /// `None` for the simulator's own abstract traffic. When present, the
    /// fabric carries the bytes opaquely — the destination HCA hands them
    /// back to the host instead of running the abstract receive path, so
    /// an external transport's own CRC/MAC machinery judges them.
    pub wire: Option<Vec<u8>>,
    /// Index of the [`crate::Simulator::post_flow`] transfer this packet
    /// belongs to; the flow completes when its last packet is delivered.
    pub flow: Option<u32>,
}

/// Events the engine processes. Packet-carrying variants hold an arena
/// index, keeping the enum small enough that arena slots and the (rare)
/// overflow-heap sifts stay cheap.
#[derive(Debug, Clone)]
pub enum Event {
    /// A traffic source at `node` fires (class decides what happens next).
    Generate { node: usize, class: TrafficClass },
    /// The HCA at `node` re-evaluates its injection opportunity.
    TryInject { node: usize },
    /// A packet finishes arriving at `switch` input `port`.
    SwitchArrive {
        switch: usize,
        port: usize,
        packet: PacketRef,
    },
    /// Output `port` of `switch` re-evaluates its arbitration.
    TryForward { switch: usize, port: usize },
    /// A packet finishes arriving at its destination HCA.
    HcaReceive { node: usize, packet: PacketRef },
    /// A credit returns to `switch`'s output `port` for `vl`.
    SwitchCredit { switch: usize, port: usize, vl: u8 },
    /// A credit returns to the HCA at `node` for `vl`.
    HcaCredit { node: usize, vl: u8 },
    /// A trap MAD reaches the SM.
    TrapDeliver { trap: Trap },
    /// The SM's filter programming lands on `switch`.
    FilterProgram {
        switch: usize,
        port: usize,
        pkey: PKey,
    },
    /// [`SwitchArrive`](Event::SwitchArrive) crossing an event-domain
    /// boundary: the packet left the source domain's arena at emission and
    /// rides in the event itself; the target domain inserts it into *its*
    /// arena when the event is handled. Both engines use this path for
    /// every cross-domain hop, so per-domain arena high-water marks are
    /// identical serial vs parallel.
    SwitchArriveRemote {
        switch: usize,
        port: usize,
        packet: Box<SimPacket>,
    },
    /// [`HcaReceive`](Event::HcaReceive) crossing an event-domain
    /// boundary (see [`SwitchArriveRemote`](Event::SwitchArriveRemote)).
    HcaReceiveRemote { node: usize, packet: Box<SimPacket> },
}

/// Compact scheduling key: the only thing the priority structures move.
/// The derived lexicographic order *is* the scheduling order — time
/// first, then insertion sequence (the determinism tie-break); `seq` is
/// unique per queue so `idx` never participates in a real comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// Absolute due time.
    pub time: SimTime,
    /// Insertion sequence number (1-based, unique).
    pub seq: u64,
    /// Arena slot holding the event payload.
    pub idx: u32,
}

/// Free-listed slab: events are stored exactly once and slots recycle, so
/// steady-state scheduling allocates nothing.
#[derive(Debug)]
struct EventArena<T> {
    slots: Vec<Slot<T>>,
    free_head: u32,
}

#[derive(Debug)]
enum Slot<T> {
    Full(T),
    Free { next: u32 },
}

/// Free-list terminator.
const NIL: u32 = u32::MAX;

impl<T> EventArena<T> {
    fn new() -> Self {
        EventArena {
            slots: Vec::new(),
            free_head: NIL,
        }
    }

    fn insert(&mut self, value: T) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            match std::mem::replace(&mut self.slots[idx as usize], Slot::Full(value)) {
                Slot::Free { next } => self.free_head = next,
                Slot::Full(_) => unreachable!("free list points at an occupied slot"),
            }
            idx
        } else {
            self.slots.push(Slot::Full(value));
            (self.slots.len() - 1) as u32
        }
    }

    fn take(&mut self, idx: u32) -> T {
        let slot = std::mem::replace(
            &mut self.slots[idx as usize],
            Slot::Free {
                next: self.free_head,
            },
        );
        self.free_head = idx;
        match slot {
            Slot::Full(value) => value,
            Slot::Free { .. } => unreachable!("scheduled key points at a free slot"),
        }
    }

    /// High-water slot count (capacity the arena ever grew to).
    fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// Width of one wheel bucket, ps (2^14 ps ≈ 16.4 ns — several byte times
/// at 2.5 Gb/s, so adjacent wire events usually share a bucket).
pub const BUCKET_WIDTH_PS: SimTime = 1 << BUCKET_BITS;
const BUCKET_BITS: u32 = 14;
/// Buckets on the wheel (one rotation covers [`HORIZON_PS`]).
pub const WHEEL_BUCKETS: usize = 1 << WHEEL_BITS;
const WHEEL_BITS: u32 = 10;
/// The wheel's horizon, ps (≈ 16.8 µs): events due further out than this
/// from the cursor wait in the overflow heap.
pub const HORIZON_PS: SimTime = (WHEEL_BUCKETS as SimTime) << BUCKET_BITS;

/// Deterministic priority queue: ties in time break by insertion
/// sequence, so runs with the same seed replay identically.
///
/// Implemented as a calendar queue: a [`WHEEL_BUCKETS`]-bucket timing
/// wheel of unsorted [`EventKey`] vectors covering the next
/// [`HORIZON_PS`] picoseconds, with a binary-heap fallback for far-future
/// events that migrate onto the wheel as the cursor advances. Event
/// payloads live in the internal arena; only keys move.
#[derive(Debug)]
pub struct EventQueue<T = Event> {
    arena: EventArena<T>,
    wheel: Vec<Vec<EventKey>>,
    /// Keys currently on the wheel (so empty-wheel runs can jump the
    /// cursor straight to the overflow minimum).
    in_wheel: usize,
    /// Start of the cursor bucket's window (multiple of the bucket width;
    /// never decreases).
    wheel_start: SimTime,
    /// Far-future keys (due at or past `wheel_start + HORIZON_PS`).
    overflow: BinaryHeap<Reverse<EventKey>>,
    seq: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        EventQueue {
            arena: EventArena::new(),
            wheel: (0..WHEEL_BUCKETS).map(|_| Vec::new()).collect(),
            in_wheel: 0,
            wheel_start: 0,
            overflow: BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: T) {
        self.seq += 1;
        let seq = self.seq;
        self.push_keyed(at, seq, event);
    }

    /// Schedule `event` at `at` under a caller-composed tie-break `seq`
    /// (the sharded engine's `origin << 32 | oseq` intrinsic keys). The
    /// caller owns uniqueness of `(at, seq)` pairs; the internal
    /// auto-sequence counter is untouched, so mixing `push` and
    /// `push_keyed` on one queue is only sound if the key spaces are
    /// disjoint.
    pub fn push_keyed(&mut self, at: SimTime, seq: u64, event: T) {
        let key = EventKey {
            time: at,
            seq,
            idx: self.arena.insert(event),
        };
        self.len += 1;
        self.place(key);
    }

    /// File a key on the wheel or in the overflow heap. Keys due before
    /// `wheel_start` (possible only for callers scheduling into the past)
    /// land in the cursor bucket, where the next pop's min-scan finds
    /// them first — ordering still holds because the scan compares full
    /// keys.
    fn place(&mut self, key: EventKey) {
        if key.time >= self.wheel_start + HORIZON_PS {
            self.overflow.push(Reverse(key));
        } else {
            let slot = key.time.max(self.wheel_start);
            let bucket = ((slot >> BUCKET_BITS) as usize) & (WHEEL_BUCKETS - 1);
            self.wheel[bucket].push(key);
            self.in_wheel += 1;
        }
    }

    /// Pop the earliest event (ties by key order).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(key, ev)| (key.time, ev))
    }

    /// Pop the earliest event with its full scheduling key — the sharded
    /// engine needs `(time, seq)` to merge and compare streams across
    /// domain queues.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, T)> {
        let (cursor, i) = self.locate_min()?;
        let key = self.wheel[cursor].swap_remove(i);
        self.in_wheel -= 1;
        self.len -= 1;
        let ev = self.arena.take(key.idx);
        Some((key, ev))
    }

    /// The earliest pending key without removing it (`&mut` because the
    /// scan may advance the wheel cursor past empty windows — a
    /// time-monotonic, order-preserving operation). The parallel engine's
    /// coordinator uses this to compute the global horizon each window.
    pub fn peek_key(&mut self) -> Option<EventKey> {
        let (cursor, i) = self.locate_min()?;
        Some(self.wheel[cursor][i])
    }

    /// Advance the wheel until the minimum pending key is in the cursor
    /// bucket; return its `(bucket, position)`.
    fn locate_min(&mut self) -> Option<(usize, usize)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let bucket_end = self.wheel_start + BUCKET_WIDTH_PS;
            let cursor = ((self.wheel_start >> BUCKET_BITS) as usize) & (WHEEL_BUCKETS - 1);
            let bucket = &self.wheel[cursor];
            // Min-scan the cursor bucket, skipping keys filed here for
            // future rotations (their time is past this window's end).
            let mut best: Option<usize> = None;
            for (i, key) in bucket.iter().enumerate() {
                if key.time < bucket_end && best.is_none_or(|b| *key < bucket[b]) {
                    best = Some(i);
                }
            }
            if let Some(i) = best {
                return Some((cursor, i));
            }
            // Nothing due in this window: advance the wheel — bucket by
            // bucket while keys remain on it, else jump the cursor
            // straight to the earliest overflow key's bucket.
            if self.in_wheel == 0 {
                let Reverse(next) = *self
                    .overflow
                    .peek()
                    .expect("len > 0 with an empty wheel implies overflow keys");
                self.wheel_start = (next.time >> BUCKET_BITS) << BUCKET_BITS;
            } else {
                self.wheel_start = bucket_end;
            }
            // Keys now inside the horizon migrate onto the wheel.
            while let Some(&Reverse(key)) = self.overflow.peek() {
                if key.time >= self.wheel_start + HORIZON_PS {
                    break;
                }
                self.overflow.pop();
                let bucket = ((key.time >> BUCKET_BITS) as usize) & (WHEEL_BUCKETS - 1);
                self.wheel[bucket].push(key);
                self.in_wheel += 1;
            }
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// High-water arena capacity (slots ever allocated) — the recycling
    /// witness: steady-state scheduling reuses freed slots instead of
    /// growing.
    pub fn arena_capacity(&self) -> usize {
        self.arena.capacity()
    }
}

/// Reference scheduler: a binary heap over the same compact [`EventKey`]s
/// and the same arena. Kept as the oracle for the scheduler-equivalence
/// property test (`tests/event_scheduler.rs`) and as the baseline arm of
/// the `sim_engine` bench gate — the calendar queue must pop the exact
/// same `(time, seq)` stream and must not be slower.
#[derive(Debug)]
pub struct HeapQueue<T = Event> {
    heap: BinaryHeap<Reverse<EventKey>>,
    arena: EventArena<T>,
    seq: u64,
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> HeapQueue<T> {
    /// Empty queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
            arena: EventArena::new(),
            seq: 0,
        }
    }

    /// Schedule `event` at absolute time `at`.
    pub fn push(&mut self, at: SimTime, event: T) {
        self.seq += 1;
        let seq = self.seq;
        self.push_keyed(at, seq, event);
    }

    /// Schedule `event` under a caller-composed tie-break `seq` (see
    /// [`EventQueue::push_keyed`]).
    pub fn push_keyed(&mut self, at: SimTime, seq: u64, event: T) {
        let key = EventKey {
            time: at,
            seq,
            idx: self.arena.insert(event),
        };
        self.heap.push(Reverse(key));
    }

    /// Pop the earliest event (ties by key order).
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_keyed().map(|(key, ev)| (key.time, ev))
    }

    /// Pop the earliest event with its full scheduling key.
    pub fn pop_keyed(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|Reverse(key)| {
            let ev = self.arena.take(key.idx);
            (key, ev)
        })
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, Event::TryInject { node: 3 });
        q.push(10, Event::TryInject { node: 1 });
        q.push(20, Event::TryInject { node: 2 });
        let (t1, _) = q.pop().unwrap();
        let (t2, _) = q.pop().unwrap();
        let (t3, _) = q.pop().unwrap();
        assert_eq!((t1, t2, t3), (10, 20, 30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(5, Event::TryInject { node: 1 });
        q.push(5, Event::TryInject { node: 2 });
        q.push(5, Event::TryInject { node: 3 });
        let order: Vec<usize> = (0..3)
            .map(|_| match q.pop().unwrap().1 {
                Event::TryInject { node } => node,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(1, Event::TryInject { node: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn event_key_orders_lexicographically() {
        // The satellite fix for the old degenerate `EventBox` shims: the
        // compact key's derived orderings are *real* — time first, then
        // insertion sequence, then slot index.
        let k = |time, seq, idx| EventKey { time, seq, idx };
        assert!(k(1, 9, 9) < k(2, 0, 0), "time dominates");
        assert!(k(5, 1, 9) < k(5, 2, 0), "seq breaks time ties");
        assert!(k(5, 1, 0) < k(5, 1, 1), "idx is a total-order backstop");
        assert_eq!(k(5, 1, 2), k(5, 1, 2));
        assert_eq!(k(5, 1, 2).cmp(&k(5, 1, 2)), std::cmp::Ordering::Equal);
        let mut v = [k(3, 1, 0), k(1, 2, 1), k(1, 1, 2), k(2, 5, 3)];
        v.sort();
        assert_eq!(
            v.iter().map(|key| (key.time, key.seq)).collect::<Vec<_>>(),
            vec![(1, 1), (1, 2), (2, 5), (3, 1)]
        );
    }

    /// The regression the rewrite must not introduce: equal-time events
    /// pop in insertion order even when the burst times straddle bucket
    /// and horizon boundaries (so some keys sit on the wheel while their
    /// time-twins arrive via the overflow heap).
    #[test]
    fn equal_time_bursts_pop_in_insertion_order_across_bucket_boundaries() {
        let times = [
            0,
            BUCKET_WIDTH_PS - 1,
            BUCKET_WIDTH_PS,
            BUCKET_WIDTH_PS + 1,
            7 * BUCKET_WIDTH_PS,
            HORIZON_PS - 1,
            HORIZON_PS, // first overflow key
            HORIZON_PS + BUCKET_WIDTH_PS,
            3 * HORIZON_PS + 17,
        ];
        let mut q: EventQueue<u64> = EventQueue::new();
        // Interleave insertion across times so each time's burst gets
        // non-adjacent sequence numbers.
        let mut expected: Vec<(SimTime, u64)> = Vec::new();
        let mut payload = 0u64;
        for round in 0..3u64 {
            for &t in &times {
                q.push(t, payload);
                expected.push((t, payload));
                payload += 1;
            }
            // Payloads were pushed in round-robin order; the expected pop
            // order is by (time, insertion order), which `expected`
            // acquires by a stable sort on time.
            let _ = round;
        }
        expected.sort_by_key(|&(t, _)| t);
        let mut popped = Vec::new();
        while let Some(item) = q.pop() {
            popped.push(item);
        }
        assert_eq!(popped, expected);
    }

    #[test]
    fn far_future_events_migrate_through_overflow() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.push(5 * HORIZON_PS, "far");
        q.push(2, "near");
        q.push(5 * HORIZON_PS, "far-too");
        q.push(HORIZON_PS + 3, "middle");
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((2, "near")));
        assert_eq!(q.pop(), Some((HORIZON_PS + 3, "middle")));
        assert_eq!(q.pop(), Some((5 * HORIZON_PS, "far")));
        assert_eq!(q.pop(), Some((5 * HORIZON_PS, "far-too")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn arena_slots_recycle() {
        let mut q: EventQueue<u64> = EventQueue::new();
        // A push/pop churn an order of magnitude past the live set: the
        // arena must stop growing once the steady-state size is reached.
        for i in 0..8u64 {
            q.push(i, i);
        }
        for round in 0..100u64 {
            let (t, _) = q.pop().unwrap();
            q.push(t + 100 + round, round);
        }
        assert_eq!(q.len(), 8);
        assert_eq!(q.arena_capacity(), 8, "free-listed slots must recycle");
    }

    #[test]
    fn heap_reference_matches_basic_ordering() {
        let mut q: HeapQueue<u32> = HeapQueue::new();
        q.push(30, 0);
        q.push(10, 1);
        q.push(10, 2);
        q.push(20, 3);
        let order: Vec<(SimTime, u32)> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        // Pops interleaved with pushes at earlier-but-still-future times:
        // the cursor must not run past events pushed behind it.
        let mut q: EventQueue<u32> = EventQueue::new();
        q.push(10 * BUCKET_WIDTH_PS, 0);
        assert_eq!(q.pop(), Some((10 * BUCKET_WIDTH_PS, 0)));
        // Cursor now sits at bucket 10; push into the same window and at
        // the window edge.
        q.push(10 * BUCKET_WIDTH_PS + 1, 1);
        q.push(11 * BUCKET_WIDTH_PS, 2);
        q.push(10 * BUCKET_WIDTH_PS + 2, 3);
        assert_eq!(q.pop(), Some((10 * BUCKET_WIDTH_PS + 1, 1)));
        assert_eq!(q.pop(), Some((10 * BUCKET_WIDTH_PS + 2, 3)));
        assert_eq!(q.pop(), Some((11 * BUCKET_WIDTH_PS, 2)));
    }

    /// Intrinsic keys pop by `(time, seq)` regardless of insertion order
    /// — the property that makes serial and sharded queues agree.
    #[test]
    fn keyed_pushes_pop_by_key_not_insertion_order() {
        let compose = |origin: u64, oseq: u64| (origin << 32) | oseq;
        let mut cal: EventQueue<u32> = EventQueue::new();
        let mut heap: HeapQueue<u32> = HeapQueue::new();
        // Insert in scrambled order, including a time tie decided by the
        // composed origin/oseq key.
        let items = [
            (50, compose(7, 1), 0u32),
            (10, compose(9, 4), 1),
            (50, compose(2, 8), 2),
            (30, compose(0, 1), 3),
            (50, compose(7, 0), 4),
        ];
        for &(t, s, v) in &items {
            cal.push_keyed(t, s, v);
            heap.push_keyed(t, s, v);
        }
        let expect = [
            (10, compose(9, 4), 1u32),
            (30, compose(0, 1), 3),
            (50, compose(2, 8), 2),
            (50, compose(7, 0), 4),
            (50, compose(7, 1), 0),
        ];
        for &(t, s, v) in &expect {
            assert_eq!(cal.peek_key().map(|k| (k.time, k.seq)), Some((t, s)));
            let (ck, cv) = cal.pop_keyed().unwrap();
            let (hk, hv) = heap.pop_keyed().unwrap();
            assert_eq!((ck.time, ck.seq, cv), (t, s, v));
            assert_eq!((hk.time, hk.seq, hv), (t, s, v));
        }
        assert!(cal.pop_keyed().is_none() && heap.pop_keyed().is_none());
    }
}
