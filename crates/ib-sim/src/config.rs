//! Simulation configuration — Table 1 plus the knobs each experiment
//! sweeps.

use ib_mgmt::enforcement::EnforcementKind;
use ib_runtime::{Json, Seed, ToJson};

use crate::dragonfly::Dragonfly;
use crate::fattree::FatTree;
use crate::fault::FaultConfig;
use crate::time::{SimTime, MS, NS, US};
use crate::topology::{MeshTopology, Topology};

/// Which fabric the simulation builds (see [`crate::topology`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// The paper's §3.1 mesh; side length comes from
    /// [`SimConfig::mesh_dim`].
    Mesh,
    /// k-ary fat-tree ([`crate::fattree::FatTree`]).
    FatTree { k: usize },
    /// Balanced dragonfly ([`crate::dragonfly::Dragonfly`]); `valiant`
    /// selects non-minimal routing.
    Dragonfly {
        a: usize,
        p: usize,
        h: usize,
        valiant: bool,
    },
}

impl TopoSpec {
    /// JSON form: `"mesh"`, `{"fat-tree": k}`, or
    /// `{"dragonfly": {"a":…,"p":…,"h":…,"valiant":…}}`.
    pub fn to_json(self) -> Json {
        match self {
            TopoSpec::Mesh => Json::Str("mesh".into()),
            TopoSpec::FatTree { k } => Json::obj([("fat-tree", k.to_json())]),
            TopoSpec::Dragonfly { a, p, h, valiant } => Json::obj([(
                "dragonfly",
                Json::obj([
                    ("a", a.to_json()),
                    ("p", p.to_json()),
                    ("h", h.to_json()),
                    ("valiant", valiant.to_json()),
                ]),
            )]),
        }
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<TopoSpec> {
        if v.as_str() == Some("mesh") {
            return Some(TopoSpec::Mesh);
        }
        if let Some(k) = v.get("fat-tree") {
            return Some(TopoSpec::FatTree {
                k: k.as_u64()? as usize,
            });
        }
        let d = v.get("dragonfly")?;
        Some(TopoSpec::Dragonfly {
            a: d.get("a")?.as_u64()? as usize,
            p: d.get("p")?.as_u64()? as usize,
            h: d.get("h")?.as_u64()? as usize,
            valiant: d.get("valiant")?.as_bool()?,
        })
    }
}

/// Which P_Keys the attackers stamp on their flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKeys {
    /// Random invalid P_Keys (the §3 attack SIF defeats).
    RandomInvalid,
    /// The attacker's own *valid* partition key — §7's residual attack:
    /// "Dumping traffic only with a valid P_Key. Since this attack uses a
    /// valid P_Key, any ingress filtering is useless."
    Valid,
    /// §7's third residual attack: "DoS attack on the SM by dumping
    /// management messages and trap messages. Since a management packet
    /// can reach SM regardless of its partition…" — the flood rides VL15
    /// straight at the SM node.
    SmFlood,
}

impl AttackKeys {
    const ALL: [AttackKeys; 3] = [
        AttackKeys::RandomInvalid,
        AttackKeys::Valid,
        AttackKeys::SmFlood,
    ];

    /// Stable string form used in JSON configs and reports.
    pub fn label(self) -> &'static str {
        match self {
            AttackKeys::RandomInvalid => "random-invalid",
            AttackKeys::Valid => "valid",
            AttackKeys::SmFlood => "sm-flood",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<AttackKeys> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// How trap MADs travel from a detecting port to the Subnet Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapTransport {
    /// Fixed-latency side channel (`trap_latency`), the common simulator
    /// simplification.
    OutOfBand,
    /// Real 256-byte MADs routed through the fabric on VL15 to the SM's
    /// node — trap delivery then contends with (and can be delayed by)
    /// data traffic, and the SM can itself be flooded (§7).
    InBand,
}

impl TrapTransport {
    const ALL: [TrapTransport; 2] = [TrapTransport::OutOfBand, TrapTransport::InBand];

    /// Stable string form used in JSON configs and reports.
    pub fn label(self) -> &'static str {
        match self {
            TrapTransport::OutOfBand => "out-of-band",
            TrapTransport::InBand => "in-band",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<TrapTransport> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// How attack activity is scheduled over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackSchedule {
    /// Each `attack_epoch`, attackers are active with
    /// `attack_probability` (memoryless on/off).
    Probabilistic,
    /// Exactly one active window of `attack_probability × duration`,
    /// placed after warmup — every seed sees the same attack duty cycle,
    /// which is how §6's "probability of DoS attack [set] to 1 %" enters
    /// the time-averaged delays.
    DutyCycle,
}

impl AttackSchedule {
    const ALL: [AttackSchedule; 2] = [AttackSchedule::Probabilistic, AttackSchedule::DutyCycle];

    /// Stable string form used in JSON configs and reports.
    pub fn label(self) -> &'static str {
        match self {
            AttackSchedule::Probabilistic => "probabilistic",
            AttackSchedule::DutyCycle => "duty-cycle",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<AttackSchedule> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// How output-port arbitration weighs the data VLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbitrationPolicy {
    /// Realtime VL always wins (the isolation upper bound).
    StrictPriority,
    /// IBA-style weighted tables: up to `high_limit` consecutive
    /// high-priority grants before a pending low-priority packet is served.
    Weighted { high_limit: u32 },
}

impl ArbitrationPolicy {
    /// JSON form: `"strict-priority"` or `{"weighted": high_limit}`.
    pub fn to_json(self) -> Json {
        match self {
            ArbitrationPolicy::StrictPriority => Json::Str("strict-priority".into()),
            ArbitrationPolicy::Weighted { high_limit } => {
                Json::obj([("weighted", high_limit.to_json())])
            }
        }
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<ArbitrationPolicy> {
        if v.as_str() == Some("strict-priority") {
            return Some(ArbitrationPolicy::StrictPriority);
        }
        let high_limit = v.get("weighted")?.as_u64()?;
        Some(ArbitrationPolicy::Weighted {
            high_limit: u32::try_from(high_limit).ok()?,
        })
    }
}

/// Which authentication cost model the end nodes run (§6, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuthMode {
    /// No authentication ("No Key").
    None,
    /// Partition-level key management: secrets pre-distributed by the SM,
    /// so only the per-message MAC cycles are charged.
    PartitionLevel,
    /// QP-level key management: additionally one round-trip key exchange
    /// the first time a (source, destination) pair communicates.
    QpLevel,
}

impl AuthMode {
    const ALL: [AuthMode; 3] = [AuthMode::None, AuthMode::PartitionLevel, AuthMode::QpLevel];

    /// Label for result tables (also the JSON form).
    pub fn label(self) -> &'static str {
        match self {
            AuthMode::None => "No Key",
            AuthMode::PartitionLevel => "With Key (partition)",
            AuthMode::QpLevel => "With Key (QP)",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(label: &str) -> Option<AuthMode> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Traffic generation parameters (§3.1 workloads).
#[derive(Debug, Clone)]
pub struct TrafficConfig {
    /// Realtime (CBR, higher-priority VL) offered load as a fraction of
    /// link bandwidth per node.
    pub realtime_load: f64,
    /// Best-effort (Poisson) offered load as a fraction of link bandwidth
    /// per node.
    pub best_effort_load: f64,
    /// Realtime back-off threshold: a realtime source skips its slot when
    /// its HCA send queue is at least this deep ("does not send any packet
    /// when the current network status cannot support the application's
    /// bandwidth requirement").
    pub realtime_backoff_queue: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            realtime_load: 0.20,
            best_effort_load: 0.20,
            realtime_backoff_queue: 4,
        }
    }
}

impl TrafficConfig {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("realtime_load", self.realtime_load.to_json()),
            ("best_effort_load", self.best_effort_load.to_json()),
            (
                "realtime_backoff_queue",
                self.realtime_backoff_queue.to_json(),
            ),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<TrafficConfig> {
        Some(TrafficConfig {
            realtime_load: v.get("realtime_load")?.as_f64()?,
            best_effort_load: v.get("best_effort_load")?.as_f64()?,
            realtime_backoff_queue: v.get("realtime_backoff_queue")?.as_u64()? as usize,
        })
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    // ---- Table 1 ----
    /// Physical link bandwidth in Gb/s.
    pub link_gbps: f64,
    /// Ports per switch (4 mesh + 1 host).
    pub ports_per_switch: usize,
    /// Virtual lanes per physical link.
    pub num_vls: usize,
    /// MTU in bytes for both traffic classes.
    pub mtu_bytes: usize,

    // ---- fabric ----
    /// Which fabric to build (mesh / fat-tree / dragonfly).
    pub topology: TopoSpec,
    /// Mesh side length (mesh_dim² switches and nodes; 4 ⇒ the paper's 16).
    /// Only read when `topology` is [`TopoSpec::Mesh`].
    pub mesh_dim: usize,
    /// Input-buffer capacity per (port, VL), in packets; the credit pool.
    pub vl_buffer_packets: u32,
    /// Fixed switch pipeline latency per hop.
    pub switch_latency: SimTime,
    /// Wire propagation delay per link.
    pub propagation_delay: SimTime,
    /// One table-lookup pipeline cycle (the paper's CACTI-derived cost;
    /// charged per `lookup_cycles` the enforcer reports).
    pub cycle_time: SimTime,

    // ---- partitioning / attack ----
    /// Number of partitions nodes are randomly grouped into (§3.1: four).
    pub num_partitions: usize,
    /// Number of attacker nodes (flooding at full speed, random
    /// destinations).
    pub num_attackers: usize,
    /// Which P_Keys the flood carries (invalid vs the §7 valid-key attack).
    pub attack_keys: AttackKeys,
    /// Probabilistic epochs or a deterministic duty-cycle window.
    pub attack_schedule: AttackSchedule,
    /// Output-port VL arbitration policy.
    pub arbitration: ArbitrationPolicy,
    /// Probability that any given attack epoch is active (§6: 1 %).
    pub attack_probability: f64,
    /// Length of one attack on/off epoch.
    pub attack_epoch: SimTime,
    /// Which switch-side enforcement runs.
    pub enforcement: EnforcementKind,
    /// HCA → SM trap delivery latency (MAD through the fabric + SM wakeup)
    /// when `trap_transport` is out-of-band.
    pub trap_latency: SimTime,
    /// Whether traps ride a fixed-latency side channel or real VL15 MADs.
    pub trap_transport: TrapTransport,
    /// Which node hosts the Subnet Manager (in-band trap destination).
    pub sm_node: usize,
    /// SM → switch filter-programming latency.
    pub program_latency: SimTime,
    /// SIF idle timeout before a port disables its own filtering.
    pub sif_idle_timeout: SimTime,

    // ---- authentication cost model ----
    /// Authentication mode for Figure 6.
    pub auth: AuthMode,
    /// Per-message MAC cycles charged at each end node (§6: one cycle).
    pub auth_cycles_per_message: u64,
    /// Round-trip estimate charged for a QP-level key exchange.
    pub key_exchange_rtt: SimTime,

    // ---- faults ----
    /// Per-link drop/corrupt/reorder probabilities (all-zero default keeps
    /// the fault layer fully disabled).
    pub fault: FaultConfig,

    // ---- run control ----
    /// Traffic profile.
    pub traffic: TrafficConfig,
    /// Simulated duration.
    pub duration: SimTime,
    /// Warm-up prefix excluded from statistics.
    pub warmup: SimTime,
    /// RNG seed (simulations are deterministic given a seed; printed in
    /// every experiment binary's header).
    pub seed: Seed,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_gbps: 2.5,
            ports_per_switch: 5,
            num_vls: 16,
            mtu_bytes: 1024,
            topology: TopoSpec::Mesh,
            mesh_dim: 4,
            vl_buffer_packets: 4,
            switch_latency: 100 * NS,
            propagation_delay: 10 * NS,
            cycle_time: 5 * NS,
            num_partitions: 4,
            num_attackers: 0,
            attack_keys: AttackKeys::RandomInvalid,
            attack_schedule: AttackSchedule::Probabilistic,
            arbitration: ArbitrationPolicy::StrictPriority,
            attack_probability: 1.0,
            attack_epoch: 100 * US,
            enforcement: EnforcementKind::NoFiltering,
            trap_latency: 5 * US,
            trap_transport: TrapTransport::OutOfBand,
            sm_node: 0,
            program_latency: 5 * US,
            sif_idle_timeout: 200 * US,
            auth: AuthMode::None,
            auth_cycles_per_message: 1,
            key_exchange_rtt: 40 * US,
            fault: FaultConfig::default(),
            traffic: TrafficConfig::default(),
            duration: 10 * MS,
            warmup: MS,
            seed: Seed(0x1BAD_5EED),
        }
    }
}

impl SimConfig {
    /// Build the configured fabric.
    pub fn build_topology(&self) -> Box<dyn Topology> {
        match self.topology {
            TopoSpec::Mesh => Box::new(MeshTopology::new(self.mesh_dim)),
            TopoSpec::FatTree { k } => Box::new(FatTree::new(k)),
            TopoSpec::Dragonfly { a, p, h, valiant } => Box::new(Dragonfly::new(a, p, h, valiant)),
        }
    }

    /// Number of end nodes (HCAs) in the configured fabric.
    pub fn num_nodes(&self) -> usize {
        match self.topology {
            TopoSpec::Mesh => self.mesh_dim * self.mesh_dim,
            TopoSpec::FatTree { k } => k * k * k / 4,
            TopoSpec::Dragonfly { a, p, h, .. } => (a * h + 1) * a * p,
        }
    }

    /// Mean packet inter-generation time for a given offered load fraction,
    /// in ps (MTU-sized packets).
    pub fn interarrival_ps(&self, load: f64) -> f64 {
        let tx = crate::time::tx_time_ps(self.mtu_bytes, self.link_gbps) as f64;
        tx / load.max(1e-9)
    }

    /// Serialize every field to a JSON object (stored alongside results so
    /// a report is reproducible from its own file). The `topology` key is
    /// omitted for the default mesh, keeping mesh result files (and their
    /// byte-identity gates) identical to the pre-topology-subsystem form;
    /// [`from_json`](Self::from_json) treats the missing key as mesh.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj([
            ("link_gbps", self.link_gbps.to_json()),
            ("ports_per_switch", self.ports_per_switch.to_json()),
            ("num_vls", self.num_vls.to_json()),
            ("mtu_bytes", self.mtu_bytes.to_json()),
            ("topology", self.topology.to_json()),
            ("mesh_dim", self.mesh_dim.to_json()),
            ("vl_buffer_packets", self.vl_buffer_packets.to_json()),
            ("switch_latency", self.switch_latency.to_json()),
            ("propagation_delay", self.propagation_delay.to_json()),
            ("cycle_time", self.cycle_time.to_json()),
            ("num_partitions", self.num_partitions.to_json()),
            ("num_attackers", self.num_attackers.to_json()),
            ("attack_keys", self.attack_keys.label().to_json()),
            ("attack_schedule", self.attack_schedule.label().to_json()),
            ("arbitration", self.arbitration.to_json()),
            ("attack_probability", self.attack_probability.to_json()),
            ("attack_epoch", self.attack_epoch.to_json()),
            ("enforcement", self.enforcement.label().to_json()),
            ("trap_latency", self.trap_latency.to_json()),
            ("trap_transport", self.trap_transport.label().to_json()),
            ("sm_node", self.sm_node.to_json()),
            ("program_latency", self.program_latency.to_json()),
            ("sif_idle_timeout", self.sif_idle_timeout.to_json()),
            ("auth", self.auth.label().to_json()),
            (
                "auth_cycles_per_message",
                self.auth_cycles_per_message.to_json(),
            ),
            ("key_exchange_rtt", self.key_exchange_rtt.to_json()),
            ("fault", self.fault.to_json()),
            ("traffic", self.traffic.to_json()),
            ("duration", self.duration.to_json()),
            ("warmup", self.warmup.to_json()),
            ("seed", self.seed.0.to_json()),
        ]);
        if self.topology == TopoSpec::Mesh {
            if let Json::Obj(pairs) = &mut obj {
                pairs.retain(|(k, _)| k != "topology");
            }
        }
        obj
    }

    /// Inverse of [`to_json`](Self::to_json); `None` on any missing or
    /// ill-typed field.
    pub fn from_json(v: &Json) -> Option<SimConfig> {
        Some(SimConfig {
            link_gbps: v.get("link_gbps")?.as_f64()?,
            ports_per_switch: v.get("ports_per_switch")?.as_u64()? as usize,
            num_vls: v.get("num_vls")?.as_u64()? as usize,
            mtu_bytes: v.get("mtu_bytes")?.as_u64()? as usize,
            // Absent in configs serialized before the topology subsystem;
            // those were all meshes.
            topology: match v.get("topology") {
                Some(t) => TopoSpec::from_json(t)?,
                None => TopoSpec::Mesh,
            },
            mesh_dim: v.get("mesh_dim")?.as_u64()? as usize,
            vl_buffer_packets: u32::try_from(v.get("vl_buffer_packets")?.as_u64()?).ok()?,
            switch_latency: v.get("switch_latency")?.as_u64()?,
            propagation_delay: v.get("propagation_delay")?.as_u64()?,
            cycle_time: v.get("cycle_time")?.as_u64()?,
            num_partitions: v.get("num_partitions")?.as_u64()? as usize,
            num_attackers: v.get("num_attackers")?.as_u64()? as usize,
            attack_keys: AttackKeys::from_label(v.get("attack_keys")?.as_str()?)?,
            attack_schedule: AttackSchedule::from_label(v.get("attack_schedule")?.as_str()?)?,
            arbitration: ArbitrationPolicy::from_json(v.get("arbitration")?)?,
            attack_probability: v.get("attack_probability")?.as_f64()?,
            attack_epoch: v.get("attack_epoch")?.as_u64()?,
            enforcement: EnforcementKind::from_label(v.get("enforcement")?.as_str()?)?,
            trap_latency: v.get("trap_latency")?.as_u64()?,
            trap_transport: TrapTransport::from_label(v.get("trap_transport")?.as_str()?)?,
            sm_node: v.get("sm_node")?.as_u64()? as usize,
            program_latency: v.get("program_latency")?.as_u64()?,
            sif_idle_timeout: v.get("sif_idle_timeout")?.as_u64()?,
            auth: AuthMode::from_label(v.get("auth")?.as_str()?)?,
            auth_cycles_per_message: v.get("auth_cycles_per_message")?.as_u64()?,
            key_exchange_rtt: v.get("key_exchange_rtt")?.as_u64()?,
            fault: FaultConfig::from_json(v.get("fault")?)?,
            traffic: TrafficConfig::from_json(v.get("traffic")?)?,
            duration: v.get("duration")?.as_u64()?,
            warmup: v.get("warmup")?.as_u64()?,
            seed: Seed(v.get("seed")?.as_u64()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.link_gbps, 2.5);
        assert_eq!(c.ports_per_switch, 5);
        assert_eq!(c.num_vls, 16);
        assert_eq!(c.mtu_bytes, 1024);
        assert_eq!(c.num_nodes(), 16);
        assert_eq!(c.num_partitions, 4);
    }

    #[test]
    fn interarrival_scales_inversely_with_load() {
        let c = SimConfig::default();
        let at_half = c.interarrival_ps(0.5);
        let at_full = c.interarrival_ps(1.0);
        assert!((at_half / at_full - 2.0).abs() < 1e-9);
        // Full load = back-to-back MTUs.
        assert!((at_full - 1024.0 * 3200.0).abs() < 1.0);
    }

    #[test]
    fn auth_labels() {
        assert_eq!(AuthMode::None.label(), "No Key");
        assert!(AuthMode::QpLevel.label().contains("QP"));
    }

    #[test]
    fn default_seed_is_fixed() {
        // Reproducibility: two default configs must be identical.
        assert_eq!(SimConfig::default().seed, SimConfig::default().seed);
    }

    #[test]
    fn enum_labels_round_trip() {
        for k in AttackKeys::ALL {
            assert_eq!(AttackKeys::from_label(k.label()), Some(k));
        }
        for t in TrapTransport::ALL {
            assert_eq!(TrapTransport::from_label(t.label()), Some(t));
        }
        for s in AttackSchedule::ALL {
            assert_eq!(AttackSchedule::from_label(s.label()), Some(s));
        }
        for a in AuthMode::ALL {
            assert_eq!(AuthMode::from_label(a.label()), Some(a));
        }
        assert_eq!(AttackKeys::from_label("bogus"), None);
    }

    #[test]
    fn arbitration_json_round_trip() {
        for p in [
            ArbitrationPolicy::StrictPriority,
            ArbitrationPolicy::Weighted { high_limit: 7 },
        ] {
            let text = p.to_json().to_string();
            let back = ArbitrationPolicy::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, p);
        }
    }

    /// The satellite round-trip: serialize a non-default config to JSON
    /// text, parse it back, and compare field-for-field — including a seed
    /// above 2⁵³ that would corrupt under f64-only JSON numbers.
    #[test]
    fn sim_config_json_round_trip() {
        let mut cfg = SimConfig {
            num_attackers: 4,
            attack_keys: AttackKeys::Valid,
            attack_schedule: AttackSchedule::DutyCycle,
            arbitration: ArbitrationPolicy::Weighted { high_limit: 10 },
            enforcement: EnforcementKind::Sif,
            trap_transport: TrapTransport::InBand,
            auth: AuthMode::QpLevel,
            fault: FaultConfig::lossy(0.02, 50_000),
            seed: Seed(0xDEAD_BEEF_CAFE_F00D),
            ..SimConfig::default()
        };
        cfg.traffic.realtime_load = 0.55;

        let text = cfg.to_json().to_string();
        let back = SimConfig::from_json(&Json::parse(&text).unwrap()).expect("parse back");

        assert_eq!(back.num_attackers, cfg.num_attackers);
        assert_eq!(back.attack_keys, cfg.attack_keys);
        assert_eq!(back.attack_schedule, cfg.attack_schedule);
        assert_eq!(back.arbitration, cfg.arbitration);
        assert_eq!(back.enforcement, cfg.enforcement);
        assert_eq!(back.trap_transport, cfg.trap_transport);
        assert_eq!(back.auth, cfg.auth);
        assert_eq!(back.traffic.realtime_load, cfg.traffic.realtime_load);
        assert_eq!(
            back.traffic.realtime_backoff_queue,
            cfg.traffic.realtime_backoff_queue
        );
        assert_eq!(back.fault, cfg.fault);
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.link_gbps, cfg.link_gbps);
        assert_eq!(back.duration, cfg.duration);
        assert_eq!(back.warmup, cfg.warmup);
    }

    #[test]
    fn topo_spec_json_round_trip() {
        for spec in [
            TopoSpec::Mesh,
            TopoSpec::FatTree { k: 8 },
            TopoSpec::Dragonfly {
                a: 4,
                p: 2,
                h: 2,
                valiant: true,
            },
        ] {
            let text = spec.to_json().to_string();
            assert_eq!(
                TopoSpec::from_json(&Json::parse(&text).unwrap()),
                Some(spec)
            );
        }

        // Full-config round trip through a non-mesh topology; node count
        // follows the spec, not mesh_dim.
        let cfg = SimConfig {
            topology: TopoSpec::FatTree { k: 4 },
            ..SimConfig::default()
        };
        assert_eq!(cfg.num_nodes(), 16);
        assert_eq!(cfg.build_topology().name(), "fat-tree");
        let back = SimConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back.topology, cfg.topology);

        // Pre-subsystem configs (no "topology" key) parse as meshes.
        let mut old = SimConfig::default().to_json();
        if let Json::Obj(pairs) = &mut old {
            pairs.retain(|(k, _)| k != "topology");
        }
        assert_eq!(SimConfig::from_json(&old).unwrap().topology, TopoSpec::Mesh);
    }

    #[test]
    fn sim_config_from_json_rejects_missing_field() {
        let mut cfg_json = SimConfig::default().to_json();
        if let Json::Obj(pairs) = &mut cfg_json {
            pairs.retain(|(k, _)| k != "seed");
        }
        assert!(SimConfig::from_json(&cfg_json).is_none());
    }
}
