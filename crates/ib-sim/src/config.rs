//! Simulation configuration — Table 1 plus the knobs each experiment
//! sweeps.

use ib_mgmt::enforcement::EnforcementKind;
use serde::{Deserialize, Serialize};

use crate::time::{SimTime, MS, NS, US};

/// Which P_Keys the attackers stamp on their flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackKeys {
    /// Random invalid P_Keys (the §3 attack SIF defeats).
    RandomInvalid,
    /// The attacker's own *valid* partition key — §7's residual attack:
    /// "Dumping traffic only with a valid P_Key. Since this attack uses a
    /// valid P_Key, any ingress filtering is useless."
    Valid,
    /// §7's third residual attack: "DoS attack on the SM by dumping
    /// management messages and trap messages. Since a management packet
    /// can reach SM regardless of its partition…" — the flood rides VL15
    /// straight at the SM node.
    SmFlood,
}

/// How trap MADs travel from a detecting port to the Subnet Manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapTransport {
    /// Fixed-latency side channel (`trap_latency`), the common simulator
    /// simplification.
    OutOfBand,
    /// Real 256-byte MADs routed through the fabric on VL15 to the SM's
    /// node — trap delivery then contends with (and can be delayed by)
    /// data traffic, and the SM can itself be flooded (§7).
    InBand,
}

/// How attack activity is scheduled over the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttackSchedule {
    /// Each `attack_epoch`, attackers are active with
    /// `attack_probability` (memoryless on/off).
    Probabilistic,
    /// Exactly one active window of `attack_probability × duration`,
    /// placed after warmup — every seed sees the same attack duty cycle,
    /// which is how §6's "probability of DoS attack [set] to 1 %" enters
    /// the time-averaged delays.
    DutyCycle,
}

/// How output-port arbitration weighs the data VLs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArbitrationPolicy {
    /// Realtime VL always wins (the isolation upper bound).
    StrictPriority,
    /// IBA-style weighted tables: up to `high_limit` consecutive
    /// high-priority grants before a pending low-priority packet is served.
    Weighted { high_limit: u32 },
}

/// Which authentication cost model the end nodes run (§6, Figure 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuthMode {
    /// No authentication ("No Key").
    None,
    /// Partition-level key management: secrets pre-distributed by the SM,
    /// so only the per-message MAC cycles are charged.
    PartitionLevel,
    /// QP-level key management: additionally one round-trip key exchange
    /// the first time a (source, destination) pair communicates.
    QpLevel,
}

impl AuthMode {
    /// Label for result tables.
    pub fn label(self) -> &'static str {
        match self {
            AuthMode::None => "No Key",
            AuthMode::PartitionLevel => "With Key (partition)",
            AuthMode::QpLevel => "With Key (QP)",
        }
    }
}

/// Traffic generation parameters (§3.1 workloads).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficConfig {
    /// Realtime (CBR, higher-priority VL) offered load as a fraction of
    /// link bandwidth per node.
    pub realtime_load: f64,
    /// Best-effort (Poisson) offered load as a fraction of link bandwidth
    /// per node.
    pub best_effort_load: f64,
    /// Realtime back-off threshold: a realtime source skips its slot when
    /// its HCA send queue is at least this deep ("does not send any packet
    /// when the current network status cannot support the application's
    /// bandwidth requirement").
    pub realtime_backoff_queue: usize,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            realtime_load: 0.20,
            best_effort_load: 0.20,
            realtime_backoff_queue: 4,
        }
    }
}

/// Full simulation configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    // ---- Table 1 ----
    /// Physical link bandwidth in Gb/s.
    pub link_gbps: f64,
    /// Ports per switch (4 mesh + 1 host).
    pub ports_per_switch: usize,
    /// Virtual lanes per physical link.
    pub num_vls: usize,
    /// MTU in bytes for both traffic classes.
    pub mtu_bytes: usize,

    // ---- fabric ----
    /// Mesh side length (mesh_dim² switches and nodes; 4 ⇒ the paper's 16).
    pub mesh_dim: usize,
    /// Input-buffer capacity per (port, VL), in packets; the credit pool.
    pub vl_buffer_packets: u32,
    /// Fixed switch pipeline latency per hop.
    pub switch_latency: SimTime,
    /// Wire propagation delay per link.
    pub propagation_delay: SimTime,
    /// One table-lookup pipeline cycle (the paper's CACTI-derived cost;
    /// charged per `lookup_cycles` the enforcer reports).
    pub cycle_time: SimTime,

    // ---- partitioning / attack ----
    /// Number of partitions nodes are randomly grouped into (§3.1: four).
    pub num_partitions: usize,
    /// Number of attacker nodes (flooding at full speed, random
    /// destinations).
    pub num_attackers: usize,
    /// Which P_Keys the flood carries (invalid vs the §7 valid-key attack).
    pub attack_keys: AttackKeys,
    /// Probabilistic epochs or a deterministic duty-cycle window.
    pub attack_schedule: AttackSchedule,
    /// Output-port VL arbitration policy.
    pub arbitration: ArbitrationPolicy,
    /// Probability that any given attack epoch is active (§6: 1 %).
    pub attack_probability: f64,
    /// Length of one attack on/off epoch.
    pub attack_epoch: SimTime,
    /// Which switch-side enforcement runs.
    pub enforcement: EnforcementKind,
    /// HCA → SM trap delivery latency (MAD through the fabric + SM wakeup)
    /// when `trap_transport` is out-of-band.
    pub trap_latency: SimTime,
    /// Whether traps ride a fixed-latency side channel or real VL15 MADs.
    pub trap_transport: TrapTransport,
    /// Which node hosts the Subnet Manager (in-band trap destination).
    pub sm_node: usize,
    /// SM → switch filter-programming latency.
    pub program_latency: SimTime,
    /// SIF idle timeout before a port disables its own filtering.
    pub sif_idle_timeout: SimTime,

    // ---- authentication cost model ----
    /// Authentication mode for Figure 6.
    pub auth: AuthMode,
    /// Per-message MAC cycles charged at each end node (§6: one cycle).
    pub auth_cycles_per_message: u64,
    /// Round-trip estimate charged for a QP-level key exchange.
    pub key_exchange_rtt: SimTime,

    // ---- run control ----
    /// Traffic profile.
    pub traffic: TrafficConfig,
    /// Simulated duration.
    pub duration: SimTime,
    /// Warm-up prefix excluded from statistics.
    pub warmup: SimTime,
    /// RNG seed (simulations are deterministic given a seed).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            link_gbps: 2.5,
            ports_per_switch: 5,
            num_vls: 16,
            mtu_bytes: 1024,
            mesh_dim: 4,
            vl_buffer_packets: 4,
            switch_latency: 100 * NS,
            propagation_delay: 10 * NS,
            cycle_time: 5 * NS,
            num_partitions: 4,
            num_attackers: 0,
            attack_keys: AttackKeys::RandomInvalid,
            attack_schedule: AttackSchedule::Probabilistic,
            arbitration: ArbitrationPolicy::StrictPriority,
            attack_probability: 1.0,
            attack_epoch: 100 * US,
            enforcement: EnforcementKind::NoFiltering,
            trap_latency: 5 * US,
            trap_transport: TrapTransport::OutOfBand,
            sm_node: 0,
            program_latency: 5 * US,
            sif_idle_timeout: 200 * US,
            auth: AuthMode::None,
            auth_cycles_per_message: 1,
            key_exchange_rtt: 40 * US,
            traffic: TrafficConfig::default(),
            duration: 10 * MS,
            warmup: MS,
            seed: 0x1BAD_5EED,
        }
    }
}

impl SimConfig {
    /// Number of switches (== number of nodes) in the mesh.
    pub fn num_nodes(&self) -> usize {
        self.mesh_dim * self.mesh_dim
    }

    /// Mean packet inter-generation time for a given offered load fraction,
    /// in ps (MTU-sized packets).
    pub fn interarrival_ps(&self, load: f64) -> f64 {
        let tx = crate::time::tx_time_ps(self.mtu_bytes, self.link_gbps) as f64;
        tx / load.max(1e-9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = SimConfig::default();
        assert_eq!(c.link_gbps, 2.5);
        assert_eq!(c.ports_per_switch, 5);
        assert_eq!(c.num_vls, 16);
        assert_eq!(c.mtu_bytes, 1024);
        assert_eq!(c.num_nodes(), 16);
        assert_eq!(c.num_partitions, 4);
    }

    #[test]
    fn interarrival_scales_inversely_with_load() {
        let c = SimConfig::default();
        let at_half = c.interarrival_ps(0.5);
        let at_full = c.interarrival_ps(1.0);
        assert!((at_half / at_full - 2.0).abs() < 1e-9);
        // Full load = back-to-back MTUs.
        assert!((at_full - 1024.0 * 3200.0).abs() < 1.0);
    }

    #[test]
    fn auth_labels() {
        assert_eq!(AuthMode::None.label(), "No Key");
        assert!(AuthMode::QpLevel.label().contains("QP"));
    }

    #[test]
    fn default_seed_is_fixed() {
        // Reproducibility: two default configs must be identical.
        assert_eq!(SimConfig::default().seed, SimConfig::default().seed);
    }
}
