//! Dragonfly generator (Kim, Dally, Scott, Abts, ISCA'08): `G` groups of
//! `a` routers, each router carrying `p` hosts and `h` global links, with
//! every pair of routers in a group directly connected and every pair of
//! groups joined by exactly one global link (the balanced `G = a·h + 1`
//! configuration).
//!
//! Two routing modes share the generator:
//!
//! * **minimal** — host → local hop to the gateway router → global link →
//!   local hop to the destination router → host (≤ 4 routers);
//! * **Valiant** — a waypoint group is drawn from the flow hash and the
//!   packet routes minimally to the waypoint group, then minimally to the
//!   destination (≤ 6 routers). The rule is stateless per-switch: a
//!   router in neither the waypoint nor the destination group forwards
//!   toward the waypoint; once the packet is in either, it forwards
//!   toward the destination. The group sequence `src → waypoint → dst`
//!   strictly progresses, so routes stay loop-free with no in-packet
//!   state.

use crate::topology::{Peer, Topology};

/// A balanced dragonfly. Router `r` sits in group `r/a` with local index
/// `l = r%a`; its ports are `0..p` hosts, `p..p+a-1` local links (to the
/// other routers of the group in local-index order), then `h` global
/// links. Router `l`'s global link `gp` is the group's global index
/// `q = l·h + gp`, wired to group `(g + q + 1) mod G` — and the matching
/// reverse index is `a·h − 1 − q`, which is what makes the global wiring
/// symmetric.
#[derive(Debug, Clone)]
pub struct Dragonfly {
    a: usize,
    p: usize,
    h: usize,
    valiant: bool,
}

impl Dragonfly {
    /// A balanced dragonfly with `a` routers per group, `p` hosts per
    /// router, `h` global links per router: `G = a·h + 1` groups,
    /// `G·a·p` hosts. `valiant` selects non-minimal routing.
    pub fn new(a: usize, p: usize, h: usize, valiant: bool) -> Self {
        assert!(a >= 1 && p >= 1 && h >= 1);
        let g = a * h + 1;
        assert!(g * a * p <= 0xFFFE, "LIDs are 16-bit");
        Dragonfly { a, p, h, valiant }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.a * self.h + 1
    }

    /// Whether Valiant (non-minimal) routing is active.
    pub fn is_valiant(&self) -> bool {
        self.valiant
    }

    /// The local port on router-local-index `l` that reaches local index
    /// `m` of the same group (`l != m`).
    fn local_port(&self, l: usize, m: usize) -> usize {
        debug_assert_ne!(l, m);
        self.p + if m < l { m } else { m - 1 }
    }

    /// The `(local index, global port)` owning the group's global index
    /// `q`.
    fn global_owner(&self, q: usize) -> (usize, usize) {
        (q / self.h, self.p + (self.a - 1) + q % self.h)
    }

    /// The group's global index that reaches group `to` from group `from`.
    fn global_index_toward(&self, from: usize, to: usize) -> usize {
        debug_assert_ne!(from, to);
        let g = self.groups();
        (to + g - from - 1) % g
    }

    /// One minimal-routing step from router `(g, l)` toward group `dg`
    /// (`dg != g`): the output port, either the global port if this router
    /// owns the link or the local port toward the owner.
    fn step_toward_group(&self, g: usize, l: usize, dg: usize) -> usize {
        let q = self.global_index_toward(g, dg);
        let (owner, gport) = self.global_owner(q);
        if l == owner {
            gport
        } else {
            self.local_port(l, owner)
        }
    }
}

impl Topology for Dragonfly {
    fn name(&self) -> &'static str {
        if self.valiant {
            "dragonfly-valiant"
        } else {
            "dragonfly"
        }
    }

    fn num_switches(&self) -> usize {
        self.groups() * self.a
    }

    fn num_nodes(&self) -> usize {
        self.groups() * self.a * self.p
    }

    fn radix(&self) -> usize {
        self.p + (self.a - 1) + self.h
    }

    fn host_attachment(&self, node: usize) -> (usize, usize) {
        (node / self.p, node % self.p)
    }

    fn peer(&self, switch: usize, port: usize) -> Peer {
        let (g, l) = (switch / self.a, switch % self.a);
        if port < self.p {
            Peer::Hca {
                node: switch * self.p + port,
            }
        } else if port < self.p + self.a - 1 {
            // Local link j reaches local index j (skipping self).
            let j = port - self.p;
            let m = if j < l { j } else { j + 1 };
            Peer::Switch {
                switch: g * self.a + m,
                port: self.local_port(m, l),
            }
        } else {
            // Global link: group index q = l·h + gp lands in group
            // (g + q + 1) mod G on the owner of the reverse index.
            let q = l * self.h + (port - self.p - (self.a - 1));
            let t = (g + q + 1) % self.groups();
            let (owner, gport) = self.global_owner(self.a * self.h - 1 - q);
            Peer::Switch {
                switch: t * self.a + owner,
                port: gport,
            }
        }
    }

    fn route_flow(&self, switch: usize, dst: usize, flow_hash: u64) -> usize {
        let (g, l) = (switch / self.a, switch % self.a);
        let dr = dst / self.p;
        let (dg, dl) = (dr / self.a, dr % self.a);

        if self.valiant {
            // Waypoint group from the hash; outside the waypoint and
            // destination groups, detour toward the waypoint first.
            let wg = (flow_hash % self.groups() as u64) as usize;
            if g != dg && g != wg {
                return self.step_toward_group(g, l, wg);
            }
        }
        if switch == dr {
            dst % self.p
        } else if g == dg {
            self.local_port(l, dl)
        } else {
            self.step_toward_group(g, l, dg)
        }
    }

    /// Global links close a cycle over the group graph, so they are the
    /// dateline: crossing one escalates the packet's VL, giving minimal
    /// routing its 2 virtual channels and Valiant its 3 (Kim & Dally's
    /// dragonfly deadlock-avoidance scheme).
    fn is_dateline(&self, _switch: usize, port: usize) -> bool {
        port >= self.p + (self.a - 1)
    }

    fn diameter(&self) -> usize {
        // Minimal: router-gateway-entry-router. Valiant adds the waypoint
        // group's entry and gateway.
        if self.valiant {
            6
        } else {
            4
        }
    }

    /// One domain per group: all `a·(a−1)` local links stay internal;
    /// only the global (dateline) links cross domains.
    fn partition(&self, max_domains: usize) -> Vec<usize> {
        let cap = max_domains.max(1);
        (0..self.num_switches())
            .map(|s| (s / self.a) % cap)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{conformance, flow_hash};

    #[test]
    fn size_formulas() {
        for (a, p, h) in [(1usize, 1usize, 1usize), (2, 2, 1), (4, 2, 2), (8, 4, 4)] {
            let t = Dragonfly::new(a, p, h, false);
            assert_eq!(t.groups(), a * h + 1);
            assert_eq!(t.num_switches(), (a * h + 1) * a);
            assert_eq!(t.num_nodes(), (a * h + 1) * a * p);
            assert_eq!(t.radix(), p + a - 1 + h);
        }
        // The fig_scale top arm: 33 groups, 264 routers, 1056 hosts.
        assert_eq!(Dragonfly::new(8, 4, 4, false).num_nodes(), 1056);
    }

    #[test]
    fn passes_trait_conformance_minimal_and_valiant() {
        for valiant in [false, true] {
            for (a, p, h) in [(1usize, 1usize, 1usize), (2, 2, 1), (4, 2, 2)] {
                let t = Dragonfly::new(a, p, h, valiant);
                conformance::check_all(&t, &[0, 1, 0xFFFF_FFFF, flow_hash(0, 5)]);
            }
        }
    }

    #[test]
    fn big_instance_spot_checks() {
        for valiant in [false, true] {
            let t = Dragonfly::new(8, 4, 4, valiant);
            conformance::peers_are_symmetric(&t);
            conformance::hosts_attach_uniquely(&t);
            for (src, dst) in [(0, 1055), (513, 2), (1000, 999), (7, 7)] {
                for h in [0u64, 3, flow_hash(src, dst)] {
                    conformance::route_is_sound(&t, src, dst, h);
                }
            }
        }
    }

    #[test]
    fn partition_is_per_group() {
        use crate::topology::Partition;
        let t = Dragonfly::new(4, 2, 2, false);
        let p = Partition::of(&t, usize::MAX);
        assert_eq!(p.num_domains, t.groups());
        // Routers of one group share a domain; the next group differs.
        assert_eq!(p.domain_of[0], p.domain_of[3]);
        assert_ne!(p.domain_of[3], p.domain_of[4]);
        let (internal, cross) = p.link_census(&t);
        // All local links internal (a·(a−1) directed per group); every
        // global link crosses (h directed per router).
        assert_eq!(internal, t.groups() * 4 * 3);
        assert_eq!(cross, t.num_switches() * 2);
        // Cross-domain links are exactly the dateline links.
        for s in 0..t.num_switches() {
            for port in 0..t.radix() {
                if let Peer::Switch { switch, .. } = t.peer(s, port) {
                    assert_eq!(
                        p.domain_of[s] != p.domain_of[switch],
                        t.is_dateline(s, port)
                    );
                }
            }
        }
    }

    #[test]
    fn minimal_hops_by_locality() {
        let t = Dragonfly::new(4, 2, 2, false);
        // Same router: hosts 0 and 1.
        assert_eq!(t.hops_on_path(0, 1, 9), 1);
        // Same group, different router.
        assert_eq!(t.hops_on_path(0, 2, 9), 2);
        // Different group: at most 4 routers, at least 2.
        let hops = t.hops_on_path(0, t.num_nodes() - 1, 9);
        assert!((2..=4).contains(&hops), "cross-group hops {hops}");
    }

    #[test]
    fn valiant_detours_but_stays_bounded() {
        let t = Dragonfly::new(4, 2, 2, true);
        let min = Dragonfly::new(4, 2, 2, false);
        let (src, dst) = (0, t.num_nodes() - 1);
        let mut detoured = false;
        for hash in 0..32u64 {
            let v = t.hops_on_path(src, dst, hash);
            assert!(v <= 6);
            if v > min.hops_on_path(src, dst, hash) {
                detoured = true;
            }
        }
        assert!(detoured, "no hash ever took a non-minimal path");
    }

    #[test]
    fn valiant_spreads_across_groups() {
        // The waypoint group varies with the hash: count distinct first
        // exit groups from the source.
        let t = Dragonfly::new(4, 2, 2, true);
        let groups: std::collections::BTreeSet<usize> = (0..64u64)
            .map(|hash| {
                let (mut s, _) = t.host_attachment(0);
                let dst = t.num_nodes() - 1;
                loop {
                    let port = t.route_flow(s, dst, hash);
                    match t.peer(s, port) {
                        Peer::Switch { switch, .. } => {
                            s = switch;
                            if s / 4 != 0 {
                                return s / 4; // first group after leaving g0
                            }
                        }
                        other => panic!("fell off: {other:?}"),
                    }
                }
            })
            .collect();
        assert!(groups.len() > 3, "Valiant too narrow: {groups:?}");
    }
}
