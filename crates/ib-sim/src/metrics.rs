//! Online statistics for the quantities the paper reports: mean and
//! standard deviation of queuing time and network latency, per traffic
//! class (Welford's algorithm, numerically stable, O(1) memory).

use ib_runtime::{Json, ToJson};

use crate::time::{ps_to_us, SimTime};

/// Streaming mean/variance accumulator.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population standard deviation (0 with < 2 samples).
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator (parallel sweeps combine shards).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.max = self.max.max(other.max);
    }

    /// JSON object form (raw accumulator state, so deserialized stats can
    /// still be merged).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("count", self.count.to_json()),
            ("mean", self.mean.to_json()),
            ("m2", self.m2.to_json()),
            ("max", self.max.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<OnlineStats> {
        Some(OnlineStats {
            count: v.get("count")?.as_u64()?,
            mean: v.get("mean")?.as_f64()?,
            m2: v.get("m2")?.as_f64()?,
            max: v.get("max")?.as_f64()?,
        })
    }
}

/// Queuing-time and network-latency stats for one traffic class, sampled
/// in µs (the paper's unit).
#[derive(Debug, Clone, Default)]
pub struct ClassStats {
    /// Wait at the source HCA from generation to first byte on the wire.
    pub queuing: OnlineStats,
    /// Wire entry to delivery at the destination HCA.
    pub network: OnlineStats,
    /// Packets delivered.
    pub delivered: u64,
    /// Packets dropped in the fabric (invalid P_Key filtering).
    pub dropped: u64,
}

impl ClassStats {
    /// Record a delivered packet's two delays (given in ps).
    pub fn record(&mut self, queuing_ps: SimTime, network_ps: SimTime) {
        self.queuing.push(ps_to_us(queuing_ps));
        self.network.push(ps_to_us(network_ps));
        self.delivered += 1;
    }

    /// Merge another class's accumulators (the sharded engine combines
    /// per-domain stats in domain order; [`OnlineStats::merge`] is a
    /// closed-form Welford combine, so merging in a fixed order is
    /// deterministic).
    pub fn merge(&mut self, other: &ClassStats) {
        self.queuing.merge(&other.queuing);
        self.network.merge(&other.network);
        self.delivered += other.delivered;
        self.dropped += other.dropped;
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("queuing", self.queuing.to_json()),
            ("network", self.network.to_json()),
            ("delivered", self.delivered.to_json()),
            ("dropped", self.dropped.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<ClassStats> {
        Some(ClassStats {
            queuing: OnlineStats::from_json(v.get("queuing")?)?,
            network: OnlineStats::from_json(v.get("network")?)?,
            delivered: v.get("delivered")?.as_u64()?,
            dropped: v.get("dropped")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_stddev() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.count(), 8);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.stddev(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn single_sample_no_variance() {
        let mut s = OnlineStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.stddev(), 0.0);
    }

    #[test]
    fn merge_matches_sequential() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0)
            .collect();
        let mut whole = OnlineStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &data[..33] {
            a.push(x);
        }
        for &x in &data[33..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.stddev() - whole.stddev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 1.0);
    }

    #[test]
    fn stats_json_round_trip() {
        let mut cs = ClassStats::default();
        cs.record(5_000_000, 20_000_000);
        cs.record(7_000_000, 22_000_000);
        cs.dropped = 3;
        let text = cs.to_json().to_string();
        let back = ClassStats::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.delivered, 2);
        assert_eq!(back.dropped, 3);
        assert_eq!(back.queuing.count(), cs.queuing.count());
        assert_eq!(back.queuing.mean(), cs.queuing.mean());
        assert_eq!(back.network.stddev(), cs.network.stddev());
        // Deserialized stats still merge (raw m2 survives the trip).
        let mut merged = back.clone();
        merged.queuing.merge(&cs.queuing);
        assert_eq!(merged.queuing.count(), 4);
    }

    #[test]
    fn class_stats_record_in_us() {
        let mut cs = ClassStats::default();
        cs.record(5_000_000, 20_000_000); // 5 µs queuing, 20 µs network
        assert_eq!(cs.delivered, 1);
        assert!((cs.queuing.mean() - 5.0).abs() < 1e-12);
        assert!((cs.network.mean() - 20.0).abs() < 1e-12);
    }
}
