//! k-ary fat-tree (folded Clos) generator — the canonical scale-out
//! datacenter fabric (Al-Fares et al., SIGCOMM'08 layout): `k` pods, each
//! with `k/2` edge and `k/2` aggregation switches, `(k/2)²` core switches,
//! `k³/4` hosts, every switch radix `k`.
//!
//! Routing is up/down (deadlock-free by construction: a packet climbs
//! toward a core, then only descends): the up-path choice at the edge and
//! aggregation layers is ECMP, selected deterministically from the flow
//! hash so one flow stays on one path while distinct flows spread over
//! all `(k/2)²` cores.

use crate::topology::{Peer, Topology};

/// A k-ary fat-tree. Switch ids: edge `pod·(k/2) + e` for `e` in
/// `0..k/2`, then aggregation at offset `k²/2`, then core at offset `k²`
/// (core `c` sits in "row" `c/(k/2)` — reachable from aggregation index
/// `a = c/(k/2)` of every pod). Host `n` lives in pod `n/(k²/4)` on edge
/// switch `(n/(k/2)) % (k/2)`, port `n % (k/2)`.
#[derive(Debug, Clone)]
pub struct FatTree {
    k: usize,
}

impl FatTree {
    /// A k-ary fat-tree (`k` even, ≥ 2): `k³/4` hosts on `5k²/4` switches.
    pub fn new(k: usize) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even");
        assert!(k * k * k / 4 <= 0xFFFE, "LIDs are 16-bit");
        FatTree { k }
    }

    /// Arity `k`.
    pub fn arity(&self) -> usize {
        self.k
    }

    fn half(&self) -> usize {
        self.k / 2
    }

    fn edge(&self, pod: usize, e: usize) -> usize {
        pod * self.half() + e
    }

    fn agg(&self, pod: usize, a: usize) -> usize {
        self.k * self.half() + pod * self.half() + a
    }

    fn core(&self, c: usize) -> usize {
        self.k * self.k + c
    }

    /// `(pod, edge index, host port)` of a node.
    fn locate(&self, node: usize) -> (usize, usize, usize) {
        let half = self.half();
        (node / (half * half), (node / half) % half, node % half)
    }

    /// Which layer a switch id belongs to.
    fn layer(&self, s: usize) -> Layer {
        let half = self.half();
        if s < self.k * half {
            Layer::Edge {
                pod: s / half,
                e: s % half,
            }
        } else if s < self.k * self.k {
            let s = s - self.k * half;
            Layer::Agg {
                pod: s / half,
                a: s % half,
            }
        } else {
            Layer::Core {
                c: s - self.k * self.k,
            }
        }
    }
}

enum Layer {
    Edge { pod: usize, e: usize },
    Agg { pod: usize, a: usize },
    Core { c: usize },
}

impl Topology for FatTree {
    fn name(&self) -> &'static str {
        "fat-tree"
    }

    fn num_switches(&self) -> usize {
        // k²/2 edge + k²/2 agg + (k/2)² core.
        self.k * self.k + self.half() * self.half()
    }

    fn num_nodes(&self) -> usize {
        self.k * self.k * self.k / 4
    }

    fn radix(&self) -> usize {
        self.k
    }

    fn host_attachment(&self, node: usize) -> (usize, usize) {
        let (pod, e, port) = self.locate(node);
        (self.edge(pod, e), port)
    }

    fn peer(&self, switch: usize, port: usize) -> Peer {
        let half = self.half();
        match self.layer(switch) {
            Layer::Edge { pod, e } => {
                if port < half {
                    Peer::Hca {
                        node: (pod * half + e) * half + port,
                    }
                } else {
                    // Up-link `u` to aggregation switch `u`, whose down
                    // port toward us is our edge index.
                    Peer::Switch {
                        switch: self.agg(pod, port - half),
                        port: e,
                    }
                }
            }
            Layer::Agg { pod, a } => {
                if port < half {
                    // Down port `q` to edge `q`; its up port toward us is
                    // `k/2 + a`.
                    Peer::Switch {
                        switch: self.edge(pod, port),
                        port: half + a,
                    }
                } else {
                    // Up-link `u` to core `a·(k/2) + u`, whose port toward
                    // this pod is the pod index.
                    Peer::Switch {
                        switch: self.core(a * half + (port - half)),
                        port: pod,
                    }
                }
            }
            Layer::Core { c } => {
                // Core `c` port `pod` reaches aggregation `c/(k/2)` of
                // that pod on its up port `k/2 + c%(k/2)`.
                Peer::Switch {
                    switch: self.agg(port, c / half),
                    port: half + c % half,
                }
            }
        }
    }

    fn route_flow(&self, switch: usize, dst: usize, flow_hash: u64) -> usize {
        let half = self.half();
        let (dpod, de, dport) = self.locate(dst);
        match self.layer(switch) {
            Layer::Edge { pod, e } => {
                if pod == dpod && e == de {
                    dport
                } else {
                    // ECMP up: the hash picks which aggregation switch.
                    half + (flow_hash as usize % half)
                }
            }
            Layer::Agg { pod, .. } => {
                if pod == dpod {
                    de
                } else {
                    // ECMP up: an independent hash window picks the core.
                    half + ((flow_hash >> 8) as usize % half)
                }
            }
            Layer::Core { .. } => dpod,
        }
    }

    fn diameter(&self) -> usize {
        // edge → agg → core → agg → edge.
        5
    }

    /// One domain per pod; core switch `c` joins pod `c % k`, spreading
    /// the core layer evenly. Every edge↔agg link is internal; only the
    /// agg↔core links cross (and even a core's link to "its" pod stays
    /// internal).
    fn partition(&self, max_domains: usize) -> Vec<usize> {
        let cap = max_domains.max(1);
        (0..self.num_switches())
            .map(|s| {
                let d = match self.layer(s) {
                    Layer::Edge { pod, .. } | Layer::Agg { pod, .. } => pod,
                    Layer::Core { c } => c % self.k,
                };
                d % cap
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{conformance, flow_hash};

    #[test]
    fn size_formulas() {
        for k in [2usize, 4, 8, 16] {
            let t = FatTree::new(k);
            assert_eq!(t.num_nodes(), k * k * k / 4);
            assert_eq!(t.num_switches(), 5 * k * k / 4);
            assert_eq!(t.radix(), k);
        }
        // The ≥1024-HCA acceptance point.
        assert_eq!(FatTree::new(16).num_nodes(), 1024);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_arity_rejected() {
        FatTree::new(3);
    }

    #[test]
    fn passes_trait_conformance() {
        for k in [2usize, 4] {
            conformance::check_all(&FatTree::new(k), &[0, 0x5555_5555, flow_hash(1, 2)]);
        }
        // k = 8 (128 hosts): symmetry + attachments everywhere, routing on
        // a hash sample.
        let t = FatTree::new(8);
        conformance::peers_are_symmetric(&t);
        conformance::hosts_attach_uniquely(&t);
        for (src, dst) in [(0, 127), (17, 99), (64, 63), (5, 5)] {
            conformance::route_is_sound(&t, src, dst, flow_hash(src, dst));
        }
    }

    #[test]
    fn hop_counts_by_locality() {
        let t = FatTree::new(4);
        // Same edge switch: 1 switch.
        assert_eq!(t.hops_on_path(0, 1, 7), 1);
        // Same pod, different edge: edge-agg-edge.
        assert_eq!(t.hops_on_path(0, 2, 7), 3);
        // Different pod: edge-agg-core-agg-edge.
        assert_eq!(t.hops_on_path(0, 15, 7), 5);
    }

    #[test]
    fn ecmp_spreads_across_cores() {
        // Distinct hashes must reach more than one core switch for the
        // same src/dst pair (k=8 ⇒ 16 cores).
        let t = FatTree::new(8);
        let cores: std::collections::BTreeSet<usize> = (0..64)
            .map(|i| flow_hash(i, i + 64))
            .map(|h| {
                let (mut s, _) = t.host_attachment(0);
                // Walk up until we land on a core switch.
                loop {
                    let port = t.route_flow(s, 127, h);
                    match t.peer(s, port) {
                        Peer::Switch { switch, .. } => {
                            s = switch;
                            if s >= 64 {
                                return s; // core layer offset k² = 64
                            }
                        }
                        other => panic!("fell off: {other:?}"),
                    }
                }
            })
            .collect();
        assert!(cores.len() > 8, "ECMP too narrow: {cores:?}");
    }

    #[test]
    fn partition_is_per_pod() {
        use crate::topology::Partition;
        let t = FatTree::new(4);
        let p = Partition::of(&t, usize::MAX);
        assert_eq!(p.num_domains, 4);
        // Edge and agg switches of one pod share a domain; pods differ.
        assert_eq!(p.domain_of[t.edge(2, 0)], p.domain_of[t.agg(2, 1)]);
        assert_ne!(p.domain_of[t.edge(0, 0)], p.domain_of[t.edge(1, 0)]);
        // Core c joins pod c % k, so its home-pod link stays internal.
        assert_eq!(p.domain_of[t.core(1)], p.domain_of[t.edge(1, 0)]);
        let (internal, cross) = p.link_census(&t);
        // All 32 directed edge↔agg links are internal; of the 32 directed
        // agg↔core links each core keeps its home pod's pair.
        assert_eq!(internal, 32 + 8);
        assert_eq!(cross, 24);
        assert_eq!(p.min_cross_delay(&t, &|_, _| 7), Some(7));
    }

    #[test]
    fn same_flow_same_path() {
        let t = FatTree::new(4);
        let h = flow_hash(3, 14);
        let a = conformance::route_is_sound(&t, 3, 14, h);
        let b = conformance::route_is_sound(&t, 3, 14, h);
        assert_eq!(a, b);
    }
}
