//! The discrete-event simulation engine.
//!
//! One [`Simulator`] instance is single-threaded and deterministic for a
//! given [`SimConfig`] (including the seed); parameter sweeps parallelize
//! by running independent instances (see the bench crate).
//!
//! ## Model summary
//!
//! * **HCA injection** — packets wait in per-VL send queues until the host
//!   link is idle *and* a credit for their VL is available at the switch's
//!   host port. The wait is the paper's *queuing time*.
//! * **Switches** — input-queued, per-(port, VL) buffers backed by credits;
//!   output ports arbitrate by VL priority (realtime over best-effort),
//!   round-robin across input ports; store-and-forward with a fixed
//!   pipeline latency plus any enforcement lookup cycles charged to the
//!   packet (this is how DPT's per-hop lookups show up as extra delay).
//! * **Enforcement** — each switch owns a [`PartitionEnforcer`]; drops
//!   release the buffer credit immediately.
//! * **Trap loop** — a destination HCA seeing an invalid P_Key bumps its
//!   violation counter and (rate-limited) raises a trap; after
//!   `trap_latency` the SM maps the violator to its edge switch and after
//!   `program_latency` the switch's SIF registers the key.
//! * **Authentication cost model** — `auth_cycles_per_message` is charged
//!   at both end nodes; QP-level mode additionally holds the *first* packet
//!   of each (src, dst) pair for `key_exchange_rtt` (the Q_Key/secret
//!   request round trip of §4.3).

use std::collections::VecDeque;

use ib_crypto::Crc32;
use ib_runtime::{Json, Rng, ToJson};

use ib_mgmt::enforcement::{
    DptEnforcer, EnforcementKind, FilterDecision, IfEnforcer, NoEnforcer, PartitionEnforcer,
    SifEnforcer,
};
use ib_mgmt::partition::{PartitionConfig, PartitionTable};
use ib_mgmt::sm::SubnetManager;
use ib_mgmt::trap::TrapThrottle;
use ib_packet::types::PKey;

use crate::arena::{PacketArena, PacketRef};
use crate::config::{ArbitrationPolicy, AttackKeys, AuthMode, SimConfig};
use crate::event::{Event, EventQueue, SimPacket};
use crate::fault::{FaultInjector, FaultOutcome};
use crate::metrics::ClassStats;
use crate::time::{tx_time_ps, SimTime};
use crate::topology::{flow_hash, Peer, Topology};
use crate::traffic::{exp_gap, TrafficClass};

/// Per-switch runtime state.
struct SwitchState {
    /// Input buffers: `in_q[port][vl]`.
    in_q: Vec<Vec<VecDeque<QueuedPacket>>>,
    /// When each output port finishes its current transmission.
    out_busy_until: Vec<SimTime>,
    /// Credits available toward the downstream peer: `out_credits[port][vl]`.
    out_credits: Vec<Vec<u32>>,
    /// Whether a TryForward event is already pending per output port.
    forward_pending: Vec<bool>,
    /// Round-robin cursor over input ports, per output port.
    rr: Vec<usize>,
    /// Consecutive high-priority grants per output port (weighted
    /// arbitration state).
    high_grants: Vec<u32>,
    /// The partition-enforcement engine this switch runs.
    enforcement: Box<dyn PartitionEnforcer>,
}

/// A packet in an input buffer plus the lookup cycles its admission cost
/// (charged when the output port serves it).
struct QueuedPacket {
    packet: PacketRef,
    lookup_cycles: u64,
}

/// Per-HCA runtime state.
struct HcaState {
    /// Per-VL send queues (paired with each packet's earliest-ready time,
    /// which models the QP-level key-exchange hold).
    send_q: Vec<VecDeque<(PacketRef, SimTime)>>,
    tx_busy_until: SimTime,
    inject_pending: bool,
    /// Credits toward the attached switch's host port, per VL.
    credits: Vec<u32>,
    /// Receive-side partition table (always enforced, per spec).
    table: PartitionTable,
    throttle: TrapThrottle,
    /// (src → dst) pairs that have completed a QP-level key exchange.
    keyed_peers: Vec<bool>,
    /// Realtime generations skipped due to back-off.
    backoff_skips: u64,
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub realtime: ClassStats,
    pub best_effort: ClassStats,
    pub attack: ClassStats,
    /// Management (VL15) MADs delivered, including traps and SM floods.
    pub mgmt_delivered: u64,
    /// Attack packets dropped by switch-side enforcement.
    pub filter_drops: u64,
    /// Attack packets that crossed the fabric and were blocked at the
    /// destination HCA (the stock-IBA outcome the paper criticizes).
    pub hca_blocked: u64,
    /// Traps delivered to the SM.
    pub traps: u64,
    /// Realtime generations suppressed by back-off.
    pub backoff_skips: u64,
    /// Total packets generated (all classes).
    pub generated: u64,
    /// Total enforcement lookup cycles spent (Table 2 cross-check).
    pub lookup_cycles: u64,
    /// Fraction of simulated time the attack was active.
    pub attack_active_fraction: f64,
    /// Packets the fault layer dropped on the wire.
    pub link_drops: u64,
    /// Packets the fault layer corrupted (discarded by the receiver's CRC).
    pub corrupt_drops: u64,
}

impl SimReport {
    /// Mean queuing time over both legitimate classes, µs.
    pub fn legit_queuing_mean(&self) -> f64 {
        let mut s = self.realtime.queuing.clone();
        s.merge(&self.best_effort.queuing);
        s.mean()
    }

    /// Mean network latency over both legitimate classes, µs.
    pub fn legit_network_mean(&self) -> f64 {
        let mut s = self.realtime.network.clone();
        s.merge(&self.best_effort.network);
        s.mean()
    }

    /// Std-dev of total (queuing is the dominant term) delay proxy: merged
    /// queuing standard deviation, µs (what the paper's §6 discussion of
    /// SIF variance refers to).
    pub fn legit_queuing_stddev(&self) -> f64 {
        let mut s = self.realtime.queuing.clone();
        s.merge(&self.best_effort.queuing);
        s.stddev()
    }

    /// JSON object form (for `BENCH_*.json`-style result files).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("realtime", self.realtime.to_json()),
            ("best_effort", self.best_effort.to_json()),
            ("attack", self.attack.to_json()),
            ("mgmt_delivered", self.mgmt_delivered.to_json()),
            ("filter_drops", self.filter_drops.to_json()),
            ("hca_blocked", self.hca_blocked.to_json()),
            ("traps", self.traps.to_json()),
            ("backoff_skips", self.backoff_skips.to_json()),
            ("generated", self.generated.to_json()),
            ("lookup_cycles", self.lookup_cycles.to_json()),
            (
                "attack_active_fraction",
                self.attack_active_fraction.to_json(),
            ),
            ("link_drops", self.link_drops.to_json()),
            ("corrupt_drops", self.corrupt_drops.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<SimReport> {
        Some(SimReport {
            realtime: ClassStats::from_json(v.get("realtime")?)?,
            best_effort: ClassStats::from_json(v.get("best_effort")?)?,
            attack: ClassStats::from_json(v.get("attack")?)?,
            mgmt_delivered: v.get("mgmt_delivered")?.as_u64()?,
            filter_drops: v.get("filter_drops")?.as_u64()?,
            hca_blocked: v.get("hca_blocked")?.as_u64()?,
            traps: v.get("traps")?.as_u64()?,
            backoff_skips: v.get("backoff_skips")?.as_u64()?,
            generated: v.get("generated")?.as_u64()?,
            lookup_cycles: v.get("lookup_cycles")?.as_u64()?,
            attack_active_fraction: v.get("attack_active_fraction")?.as_f64()?,
            link_drops: v.get("link_drops")?.as_u64()?,
            corrupt_drops: v.get("corrupt_drops")?.as_u64()?,
        })
    }
}

/// The simulator. Construct with [`Simulator::new`], run with
/// [`Simulator::run`].
pub struct Simulator {
    cfg: SimConfig,
    topo: Box<dyn Topology>,
    /// End-node count (`topo.num_nodes()`, cached off the vtable).
    n_nodes: usize,
    /// Uniform switch radix (`topo.radix()`, cached off the vtable).
    radix: usize,
    /// node → its `(switch, port)` attachment.
    attach: Vec<(usize, usize)>,
    /// Flattened `[switch * radix + port]` — true where an HCA hangs off
    /// the port (the enforcement layer's edge/ingress distinction).
    is_host_port: Vec<bool>,
    /// Flattened `[switch * radix + port]` — true where the output link
    /// crosses the topology's deadlock dateline (packets escalate to the
    /// next VL as they cross; see [`Topology::is_dateline`]).
    is_dateline: Vec<bool>,
    queue: EventQueue,
    switches: Vec<SwitchState>,
    hcas: Vec<HcaState>,
    sm: SubnetManager,
    rng: Rng,
    now: SimTime,
    attack_active: bool,
    attack_active_since: SimTime,
    attack_active_total: SimTime,
    attackers: Vec<usize>,
    /// Per-attacker invalid P_Key(s).
    attacker_pkey: Vec<PKey>,
    /// partition id → member nodes.
    partitions: Vec<Vec<usize>>,
    /// node → partition id.
    node_partition: Vec<usize>,
    stats: SimReport,
    next_packet_id: u64,
    mtu_tx: SimTime,
    auth_delay: SimTime,
    /// Per-directed-link fault injectors (`None` when the fault config is
    /// all-zero, so fault-free runs never touch these RNG streams). Index
    /// layout: `node` for the HCA → switch uplink, then
    /// `n + switch * ports_per_switch + port` for each switch output.
    faults: Option<Vec<FaultInjector>>,
    /// Reusable scratch for [`render_wire_image`]: emit and receive both
    /// render into this one buffer, so per-hop CRC checks never allocate
    /// after the first MTU-sized packet.
    wire_scratch: Vec<u8>,
    /// In-flight packet storage: queues and events carry [`PacketRef`]
    /// indices; each packet is inserted once at emission and released
    /// once at its terminal point (delivery or drop).
    packets: PacketArena,
    /// Events popped so far (the `sim_engine` bench's events/sec
    /// numerator).
    events_processed: u64,
    /// Events popped past a [`run_hosts_until`](Self::run_hosts_until)
    /// limit, stashed in scheduling order for later calls (the calendar
    /// queue has no peek, so the limit check happens after the pop).
    held: VecDeque<(SimTime, Event)>,
    /// Host-injected packets that reached their destination HCA, awaiting
    /// [`take_host_delivery`](Self::take_host_delivery).
    host_inbox: VecDeque<HostDelivery>,
    /// Flows posted via [`post_flow`](Self::post_flow), in posting order.
    flows: Vec<FlowRecord>,
}

/// One finite transfer posted via [`Simulator::post_flow`]: segmented
/// into MTU packets that ride the best-effort VL through the full
/// packet-level machinery (credits, arbitration, enforcement). The flow
/// completes when its last packet is delivered — the packet engine's
/// ground-truth counterpart to `ib-flow`'s analytic completion times.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Transfer size in bytes (segmented into MTU-sized packets).
    pub bytes: u64,
    /// When the flow was posted at the source HCA.
    pub posted_at: SimTime,
    /// Delivery time of the flow's last packet; `None` while in flight
    /// (or forever, if a fault dropped one of its packets).
    pub completed_at: Option<SimTime>,
    /// Packets not yet delivered.
    remaining: usize,
}

/// A host-injected packet delivered at its destination HCA: the wire
/// image posted via [`Simulator::post_host`], after per-hop delays, VL
/// arbitration, credit stalls and fault exposure. Corruption in transit
/// flips a byte in `bytes` rather than dropping the packet — the host
/// transport's own CRC/MAC verification is the judge, exactly as on a
/// real fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostDelivery {
    /// Fabric delivery time at the destination HCA.
    pub at: SimTime,
    /// Destination node index.
    pub node: usize,
    /// The (possibly fault-corrupted) wire image.
    pub bytes: Vec<u8>,
}

/// Deterministic stand-in wire image for a [`SimPacket`]: the covered
/// header fields, then an id-derived fill byte out to the wire size. The
/// abstract packet carries no real payload, so a reproducible image is
/// what lets the emitting HCA and the receiving HCA agree on the bytes
/// the ICRC protects without hauling `mtu_bytes` of state through the
/// event queue.
fn render_wire_image(out: &mut Vec<u8>, packet: &SimPacket) {
    out.clear();
    out.extend_from_slice(&packet.id.to_be_bytes());
    out.extend_from_slice(&(packet.src as u32).to_be_bytes());
    out.extend_from_slice(&(packet.dst as u32).to_be_bytes());
    out.extend_from_slice(&packet.pkey.0.to_be_bytes());
    out.push(packet.vl);
    let fill = (packet.id as u8) ^ (packet.id >> 8) as u8;
    let len = packet.bytes.max(out.len());
    out.resize(len, fill);
}

/// CRC-32 over the packet's rendered wire image (slicing-by-8 — the
/// emission cost the simulator actually pays, not an abstraction of it).
/// Computed once per packet at emission; the receive side trusts the
/// cached tag unless the fault layer touched the packet in transit, since
/// an untouched packet re-renders bit-identically by construction.
fn wire_icrc(scratch: &mut Vec<u8>, packet: &SimPacket) -> u32 {
    render_wire_image(scratch, packet);
    let mut crc = Crc32::new();
    crc.update_slice8(scratch);
    crc.finalize()
}

impl Simulator {
    /// Build a simulator: lays out the configured fabric (mesh, fat-tree
    /// or dragonfly), randomly groups nodes into partitions (§3.1), picks
    /// attacker nodes, installs enforcement, and primes the traffic
    /// sources.
    pub fn new(cfg: SimConfig) -> Self {
        let topo = cfg.build_topology();
        let n = topo.num_nodes();
        let n_sw = topo.num_switches();
        let radix = topo.radix();
        let attach: Vec<(usize, usize)> = (0..n).map(|node| topo.host_attachment(node)).collect();
        let mut is_host_port = vec![false; n_sw * radix];
        for &(s, p) in &attach {
            is_host_port[s * radix + p] = true;
        }
        let mut is_dateline = vec![false; n_sw * radix];
        for s in 0..n_sw {
            for p in 0..radix {
                is_dateline[s * radix + p] = topo.is_dateline(s, p);
            }
        }
        let mut rng = cfg.seed.rng();

        // ---- random partitioning into num_partitions groups ----
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let per = n.div_ceil(cfg.num_partitions.max(1));
        let mut partitions: Vec<Vec<usize>> = Vec::new();
        let mut node_partition = vec![0usize; n];
        for (pid, chunk) in order.chunks(per).enumerate() {
            for &node in chunk {
                node_partition[node] = pid;
            }
            partitions.push(chunk.to_vec());
        }
        let pkey_of = |pid: usize| PKey(0x8000 | (pid as u16 + 1));

        // ---- subnet manager ----
        let mut sm = SubnetManager::new(n, (cfg.seed ^ 0x5151).0);
        for (node, &(s, p)) in attach.iter().enumerate() {
            sm.attach(topo.lid_of(node), s, p);
        }
        for (pid, members) in partitions.iter().enumerate() {
            // Key distribution itself is exercised in ib-mgmt; the sim only
            // needs membership, so no public keys are registered here.
            let _ = sm.create_partition(PartitionConfig {
                pkey: pkey_of(pid),
                members: members.clone(),
            });
        }

        // ---- attackers: random distinct nodes ----
        let mut pool: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut pool);
        let attackers: Vec<usize> = pool.into_iter().take(cfg.num_attackers).collect();
        // Each attacker floods with one invalid key — invalid means no
        // legitimate partition uses it (base outside 1..=num_partitions).
        let attacker_pkey: Vec<PKey> = attackers
            .iter()
            .map(|_| PKey(0x8000 | rng.gen_range(0x100..0x7FFF)))
            .collect();

        // ---- switches ----
        let all_pkeys: Vec<PKey> = (0..partitions.len()).map(pkey_of).collect();
        // Ingress filtering is configured per host port: each attachment
        // admits only its node's partition key.
        let mut if_ports: Vec<Vec<Option<Vec<PKey>>>> = vec![vec![None; radix]; n_sw];
        for (node, &(s, p)) in attach.iter().enumerate() {
            if_ports[s][p] = Some(vec![pkey_of(node_partition[node])]);
        }
        let mut switches = Vec::with_capacity(n_sw);
        for ports in if_ports {
            let enforcement: Box<dyn PartitionEnforcer> = match cfg.enforcement {
                EnforcementKind::NoFiltering => Box::new(NoEnforcer),
                EnforcementKind::Dpt => Box::new(DptEnforcer::new(all_pkeys.iter().copied())),
                EnforcementKind::If => Box::new(IfEnforcer::new(ports)),
                EnforcementKind::Sif => Box::new(SifEnforcer::new(
                    radix,
                    cfg.sif_idle_timeout,
                    // Cap the invalid table at a small multiple of the host
                    // partition table (paper: stop growing once it would
                    // exceed the partition table; with 1 membership we allow
                    // a few entries so multi-key attackers are still caught).
                    8,
                )),
            };
            switches.push(SwitchState {
                in_q: (0..radix)
                    .map(|_| (0..cfg.num_vls).map(|_| VecDeque::new()).collect())
                    .collect(),
                out_busy_until: vec![0; radix],
                out_credits: (0..radix)
                    .map(|_| vec![cfg.vl_buffer_packets; cfg.num_vls])
                    .collect(),
                forward_pending: vec![false; radix],
                rr: vec![0; radix],
                high_grants: vec![0; radix],
                enforcement,
            });
        }

        // ---- HCAs ----
        let hcas = (0..n)
            .map(|node| HcaState {
                send_q: (0..cfg.num_vls).map(|_| VecDeque::new()).collect(),
                tx_busy_until: 0,
                inject_pending: false,
                credits: vec![cfg.vl_buffer_packets; cfg.num_vls],
                table: PartitionTable::from_keys([pkey_of(node_partition[node])]),
                throttle: TrapThrottle::new(50 * crate::time::US),
                keyed_peers: vec![false; n],
                backoff_skips: 0,
            })
            .collect();

        let mtu_tx = tx_time_ps(cfg.mtu_bytes, cfg.link_gbps);
        let auth_delay = match cfg.auth {
            AuthMode::None => 0,
            _ => cfg.auth_cycles_per_message * cfg.cycle_time,
        };
        // Each directed link gets its own seed stream so one link's
        // decisions never perturb another's.
        let faults = if cfg.fault.is_active() {
            let fseed = cfg.seed ^ 0xFA17_FA17;
            let links = n + n_sw * radix;
            Some(
                (0..links)
                    .map(|i| FaultInjector::new(cfg.fault, fseed.stream(i as u64)))
                    .collect(),
            )
        } else {
            None
        };

        let mut sim = Simulator {
            cfg,
            topo,
            n_nodes: n,
            radix,
            attach,
            is_host_port,
            is_dateline,
            queue: EventQueue::new(),
            switches,
            hcas,
            sm,
            rng,
            now: 0,
            attack_active: false,
            attack_active_since: 0,
            attack_active_total: 0,
            attackers,
            attacker_pkey,
            partitions,
            node_partition,
            stats: SimReport::default(),
            next_packet_id: 0,
            mtu_tx,
            auth_delay,
            faults,
            wire_scratch: Vec::new(),
            packets: PacketArena::new(),
            events_processed: 0,
            held: VecDeque::new(),
            host_inbox: VecDeque::new(),
            flows: Vec::new(),
        };
        sim.prime();
        sim
    }

    /// Fate of one packet crossing directed link `link` (clean delivery
    /// when the fault layer is disabled).
    fn link_fault(&mut self, link: usize) -> FaultOutcome {
        match &mut self.faults {
            Some(inj) => inj[link].decide(),
            None => FaultOutcome::Deliver {
                corrupt: false,
                extra_delay_ps: 0,
            },
        }
    }

    /// Injector index for the output `port` of `switch` (HCA uplinks own
    /// indices `0..n_nodes`).
    fn switch_link(&self, switch: usize, port: usize) -> usize {
        self.n_nodes + switch * self.radix + port
    }

    /// The output port `switch` forwards the referenced packet on — the
    /// topology's flow-hash-steered route, so every packet of a (src, dst)
    /// flow takes the same path while distinct flows spread across the
    /// fabric's path diversity.
    fn route_of(&self, switch: usize, pref: PacketRef) -> usize {
        let p = self.packets.get(pref);
        self.topo.route_flow(switch, p.dst, flow_hash(p.src, p.dst))
    }

    /// Schedule the initial traffic and attack-epoch events.
    fn prime(&mut self) {
        let n = self.n_nodes;
        for node in 0..n {
            if self.attackers.contains(&node) {
                continue; // attacker nodes send only attack traffic (§3.1)
            }
            if self.cfg.traffic.realtime_load > 0.0 {
                let gap = self.cfg.interarrival_ps(self.cfg.traffic.realtime_load) as SimTime;
                let jitter = self.rng.gen_range(0..gap.max(1));
                self.queue.push(
                    jitter,
                    Event::Generate {
                        node,
                        class: TrafficClass::Realtime,
                    },
                );
            }
            if self.cfg.traffic.best_effort_load > 0.0 {
                let mean = self.cfg.interarrival_ps(self.cfg.traffic.best_effort_load);
                let gap = exp_gap(&mut self.rng, mean);
                self.queue.push(
                    gap,
                    Event::Generate {
                        node,
                        class: TrafficClass::BestEffort,
                    },
                );
            }
        }
        if !self.attackers.is_empty() {
            self.queue.push(0, Event::AttackEpoch);
        }
    }

    /// Run to completion and return the report.
    pub fn run(self) -> SimReport {
        self.run_counted().0
    }

    /// Run to completion, also returning the number of events processed
    /// (the `sim_engine` bench divides by wall-clock for events/sec).
    pub fn run_counted(mut self) -> (SimReport, u64) {
        while let Some((t, ev)) = self.pop_next() {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            self.handle(ev);
        }
        if self.attack_active {
            self.attack_active_total += self.now - self.attack_active_since;
        }
        self.stats.backoff_skips = self.hcas.iter().map(|h| h.backoff_skips).sum();
        self.stats.attack_active_fraction = if self.now > 0 {
            self.attack_active_total as f64 / self.now.min(self.cfg.duration) as f64
        } else {
            0.0
        };
        (self.stats, self.events_processed)
    }

    /// Next event in time order, merging the queue with the held buffer
    /// (events popped past a previous `run_hosts_until` limit). At equal
    /// times a held event wins over a freshly popped one: it left the
    /// queue first, so it carries the earlier sequence number.
    fn pop_next(&mut self) -> Option<(SimTime, Event)> {
        let popped = self.queue.pop();
        let held_first = match (self.held.front(), &popped) {
            (Some((ht, _)), Some((pt, _))) => ht <= pt,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if !held_first {
            return popped;
        }
        if let Some((pt, pev)) = popped {
            // The fresh pop is newer than every held entry, so at equal
            // times it files after them.
            let pos = self
                .held
                .iter()
                .position(|(ht, _)| *ht > pt)
                .unwrap_or(self.held.len());
            self.held.insert(pos, (pt, pev));
        }
        self.held.pop_front()
    }

    // ------------------------------------------------------------- host hook

    /// Inject a real wire image at the HCA of `src`, addressed to `dst`'s
    /// HCA on virtual lane `vl`. The packet competes with the simulator's
    /// own traffic for the host link, credits and VL arbitration, crosses
    /// the mesh hop by hop, and is exposed to the fault layer like any
    /// other packet: a link drop counts in `link_drops` (and the
    /// best-effort class drops), corruption flips a byte and the delivery
    /// still happens — the host transport's CRC/MAC decides its fate.
    /// No abstract-path ICRC is rendered and no receive-side P_Key check
    /// runs; the bytes themselves carry those protections.
    ///
    /// Posting on VL 15 marks the packet [`TrafficClass::Management`] —
    /// the subnet-management lane MADs ride on. VL arbitration scans
    /// lanes highest-first, so management datagrams (heartbeats, election
    /// claims, key updates) preempt data traffic at every hop instead of
    /// queueing behind it — the property that keeps failover and
    /// re-keying latency bounded under load.
    pub fn post_host(&mut self, src: usize, dst: usize, vl: u8, bytes: Vec<u8>) {
        self.next_packet_id += 1;
        self.stats.generated += 1;
        let pkey = PKey(0x8000 | (self.node_partition[src] as u16 + 1));
        let class = if vl == 15 {
            TrafficClass::Management
        } else {
            TrafficClass::BestEffort
        };
        let packet = SimPacket {
            id: self.next_packet_id,
            src,
            dst,
            class,
            pkey,
            vl,
            bytes: bytes.len(),
            gen_time: self.now,
            inject_time: 0,
            trap: None,
            icrc: 0,
            corrupted: false,
            wire: Some(bytes),
            flow: None,
        };
        let qvl = vl as usize;
        let pref = self.packets.insert(packet);
        self.hcas[src].send_q[qvl].push_back((pref, self.now));
        self.schedule_inject(src, self.now);
    }

    /// Advance the simulation until a host delivery is ready, the event
    /// horizon `limit` is reached, or the queue drains — whichever comes
    /// first. Returns the new simulation time, which never exceeds the
    /// first pending delivery's time and never regresses. An event popped
    /// past `limit` is held (the calendar queue has no peek) and re-merged
    /// by [`pop_next`](Self::pop_next) on the next call.
    pub fn run_hosts_until(&mut self, limit: SimTime) -> SimTime {
        while self.host_inbox.is_empty() {
            let Some((t, ev)) = self.pop_next() else {
                self.now = self.now.max(limit);
                break;
            };
            if t > limit {
                // `(t, ev)` is the global minimum right now, so it
                // precedes everything already held.
                self.held.push_front((t, ev));
                self.now = self.now.max(limit);
                break;
            }
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            self.handle(ev);
        }
        self.now
    }

    /// Pop the oldest pending host delivery, if any.
    pub fn take_host_delivery(&mut self) -> Option<HostDelivery> {
        self.host_inbox.pop_front()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled so far (the scale experiments' cost denominator).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The report accumulated so far (final numbers come from
    /// [`run`](Self::run); this view serves co-simulation drivers).
    pub fn stats(&self) -> &SimReport {
        &self.stats
    }

    /// The attacker node indices this seed selected.
    pub fn attacker_nodes(&self) -> &[usize] {
        &self.attackers
    }

    /// The fabric this simulator runs on.
    pub fn topology(&self) -> &dyn Topology {
        &*self.topo
    }

    /// High-water mark of in-flight packets — a deterministic peak-memory
    /// proxy (multiply by `size_of::<SimPacket>()` for bytes; same number
    /// on every same-seed run, unlike RSS).
    pub fn peak_packets(&self) -> usize {
        self.packets.capacity()
    }

    /// Post a finite `bytes`-sized transfer from `src` to `dst`: the flow
    /// is segmented into MTU packets on the best-effort VL, stamped with
    /// `src`'s partition key, and queued immediately — contending with
    /// everything else for credits, arbitration and link capacity. Returns
    /// the flow's index into [`flows`](Self::flows). The flow completes
    /// (its record gains `completed_at`) when the last packet is delivered
    /// at `dst`'s HCA; cross-partition flows never complete (the receive
    /// P_Key check blocks them), so scale experiments run one partition.
    pub fn post_flow(&mut self, src: usize, dst: usize, bytes: u64) -> usize {
        assert!(src < self.n_nodes && dst < self.n_nodes && src != dst);
        let flow = self.flows.len() as u32;
        let mtu = self.cfg.mtu_bytes as u64;
        let npkts = bytes.div_ceil(mtu).max(1) as usize;
        let pkey = PKey(0x8000 | (self.node_partition[src] as u16 + 1));
        let mut left = bytes;
        for _ in 0..npkts {
            let size = left.min(mtu).max(1) as usize;
            left = left.saturating_sub(mtu);
            self.next_packet_id += 1;
            self.stats.generated += 1;
            let mut packet = SimPacket {
                id: self.next_packet_id,
                src,
                dst,
                class: TrafficClass::BestEffort,
                pkey,
                vl: TrafficClass::BestEffort.vl(),
                bytes: size,
                gen_time: self.now,
                inject_time: 0,
                trap: None,
                icrc: 0,
                corrupted: false,
                wire: None,
                flow: Some(flow),
            };
            if self.faults.is_some() {
                packet.icrc = wire_icrc(&mut self.wire_scratch, &packet);
            }
            let vl = packet.vl as usize;
            let pref = self.packets.insert(packet);
            self.hcas[src].send_q[vl].push_back((pref, self.now));
        }
        self.schedule_inject(src, self.now);
        self.flows.push(FlowRecord {
            src,
            dst,
            bytes,
            posted_at: self.now,
            completed_at: None,
            remaining: npkts,
        });
        flow as usize
    }

    /// Flow records in posting order (see [`post_flow`](Self::post_flow)).
    pub fn flows(&self) -> &[FlowRecord] {
        &self.flows
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Generate { node, class } => self.on_generate(node, class),
            Event::TryInject { node } => self.on_try_inject(node),
            Event::SwitchArrive {
                switch,
                port,
                packet,
            } => self.on_switch_arrive(switch, port, packet),
            Event::TryForward { switch, port } => self.on_try_forward(switch, port),
            Event::HcaReceive { node, packet } => self.on_hca_receive(node, packet),
            Event::SwitchCredit { switch, port, vl } => {
                self.switches[switch].out_credits[port][vl as usize] += 1;
                self.schedule_forward(switch, port, self.now);
            }
            Event::HcaCredit { node, vl } => {
                self.hcas[node].credits[vl as usize] += 1;
                self.schedule_inject(node, self.now);
            }
            Event::TrapDeliver { trap } => {
                self.stats.traps += 1;
                if let Some(action) = self.sm.handle_trap(&trap) {
                    self.queue.push(
                        self.now + self.cfg.program_latency,
                        Event::FilterProgram {
                            switch: action.switch,
                            port: action.port,
                            pkey: action.pkey,
                        },
                    );
                }
            }
            Event::FilterProgram { switch, port, pkey } => {
                self.switches[switch]
                    .enforcement
                    .register_invalid(self.now, port, pkey);
            }
            Event::AttackEpoch => self.on_attack_epoch(),
        }
    }

    // ---------------------------------------------------------------- traffic

    fn on_generate(&mut self, node: usize, class: TrafficClass) {
        match class {
            // Management traffic is event-driven (traps), never a source.
            TrafficClass::Management => {}
            TrafficClass::Realtime => {
                let gap = self.cfg.interarrival_ps(self.cfg.traffic.realtime_load) as SimTime;
                if self.now + gap <= self.cfg.duration {
                    self.queue
                        .push(self.now + gap, Event::Generate { node, class });
                }
                // Back-off: a realtime source checks network headroom via
                // its local queue depth before emitting.
                let vl = class.vl() as usize;
                if self.hcas[node].send_q[vl].len() >= self.cfg.traffic.realtime_backoff_queue {
                    self.hcas[node].backoff_skips += 1;
                    return;
                }
                if let Some(dst) = self.pick_partition_peer(node) {
                    self.emit(node, dst, class);
                }
            }
            TrafficClass::BestEffort => {
                let mean = self.cfg.interarrival_ps(self.cfg.traffic.best_effort_load);
                let gap = exp_gap(&mut self.rng, mean);
                if self.now + gap <= self.cfg.duration {
                    self.queue
                        .push(self.now + gap, Event::Generate { node, class });
                }
                if let Some(dst) = self.pick_partition_peer(node) {
                    self.emit(node, dst, class);
                }
            }
            TrafficClass::Attack => {
                if !self.attack_active || self.now > self.cfg.duration {
                    return; // epoch ended: the chain stops
                }
                // Full speed: next generation exactly one MTU time later.
                self.queue
                    .push(self.now + self.mtu_tx, Event::Generate { node, class });
                // Bound the attacker's own backlog so an over-driven source
                // doesn't consume unbounded memory (its queue depth is not a
                // measured quantity).
                let backlog: usize = self.hcas[node].send_q.iter().map(VecDeque::len).sum();
                if backlog >= 32 {
                    return;
                }
                match self.cfg.attack_keys {
                    AttackKeys::RandomInvalid => {
                        let n = self.n_nodes;
                        let mut dst = self.rng.gen_range(0..n);
                        if dst == node {
                            dst = (dst + 1) % n;
                        }
                        let idx = self.attackers.iter().position(|a| *a == node).unwrap_or(0);
                        let pkey = self.attacker_pkey[idx];
                        self.emit_with_pkey(node, dst, class, pkey);
                    }
                    // §7's residual attack: flood *within the attacker's own
                    // partition* with its valid key — every check passes, so
                    // "any ingress filtering is useless".
                    AttackKeys::Valid => {
                        if let Some(dst) = self.pick_partition_peer(node) {
                            let pkey = PKey(0x8000 | (self.node_partition[node] as u16 + 1));
                            self.emit_with_pkey(node, dst, class, pkey);
                        }
                    }
                    // §7's SM DoS: dump MAD-sized management packets at the
                    // SM node on VL15 — they cross every partition check.
                    AttackKeys::SmFlood => {
                        let dst = self.cfg.sm_node;
                        if dst != node {
                            self.emit_management(node, dst, TrafficClass::Attack, None);
                        }
                    }
                }
            }
        }
    }

    fn pick_partition_peer(&mut self, node: usize) -> Option<usize> {
        let members = &self.partitions[self.node_partition[node]];
        // Peers exclude only self: victims don't know which partition
        // members are compromised, so attacker nodes still *receive*
        // legitimate traffic (they just don't send any, per §3.1).
        let candidates: Vec<usize> = members.iter().copied().filter(|m| *m != node).collect();
        if candidates.is_empty() {
            None
        } else {
            Some(candidates[self.rng.gen_range(0..candidates.len())])
        }
    }

    fn emit(&mut self, src: usize, dst: usize, class: TrafficClass) {
        let pkey = PKey(0x8000 | (self.node_partition[src] as u16 + 1));
        self.emit_with_pkey(src, dst, class, pkey);
    }

    fn emit_with_pkey(&mut self, src: usize, dst: usize, class: TrafficClass, pkey: PKey) {
        self.next_packet_id += 1;
        self.stats.generated += 1;
        // Attackers spray across both data VLs ("dump tremendous traffic")
        // so realtime and best-effort both feel the flood; legitimate
        // traffic stays on its class VL.
        let vl = if class == TrafficClass::Attack {
            self.rng.gen_range(0..2)
        } else {
            class.vl()
        };
        let mut packet = SimPacket {
            id: self.next_packet_id,
            src,
            dst,
            class,
            pkey,
            vl,
            bytes: self.cfg.mtu_bytes,
            gen_time: self.now,
            inject_time: 0,
            trap: None,
            icrc: 0,
            corrupted: false,
            wire: None,
            flow: None,
        };
        // Emission-time ICRC — only consulted when the fault layer can
        // corrupt packets in transit, so fault-free runs skip it.
        if self.faults.is_some() {
            packet.icrc = wire_icrc(&mut self.wire_scratch, &packet);
        }
        // QP-level key management: first contact with a peer pays one RTT
        // before the packet may leave (§4.3 / Figure 6).
        let ready = if self.cfg.auth == AuthMode::QpLevel
            && class != TrafficClass::Attack
            && !self.hcas[src].keyed_peers[dst]
        {
            self.hcas[src].keyed_peers[dst] = true;
            self.now + self.cfg.key_exchange_rtt
        } else {
            self.now
        };
        let vl = packet.vl as usize;
        let pref = self.packets.insert(packet);
        self.hcas[src].send_q[vl].push_back((pref, ready));
        self.schedule_inject(src, ready);
    }

    /// Emit a 256-byte MAD (+ headers) on VL15. `class` distinguishes
    /// legitimate management traffic from an SM flood; `trap` carries the
    /// notice for in-band trap delivery.
    fn emit_management(
        &mut self,
        src: usize,
        dst: usize,
        class: TrafficClass,
        trap: Option<ib_mgmt::trap::Trap>,
    ) {
        self.next_packet_id += 1;
        self.stats.generated += 1;
        let mut packet = SimPacket {
            id: self.next_packet_id,
            src,
            dst,
            class,
            pkey: PKey::DEFAULT,
            vl: 15,
            // MAD payload + LRH/BTH/DETH + ICRC/VCRC.
            bytes: ib_packet::mad::MAD_LEN + 8 + 12 + 8 + 6,
            gen_time: self.now,
            inject_time: 0,
            trap,
            icrc: 0,
            corrupted: false,
            wire: None,
            flow: None,
        };
        if self.faults.is_some() {
            packet.icrc = wire_icrc(&mut self.wire_scratch, &packet);
        }
        let pref = self.packets.insert(packet);
        self.hcas[src].send_q[15].push_back((pref, self.now));
        self.schedule_inject(src, self.now);
    }

    // ---------------------------------------------------------------- HCA TX

    fn schedule_inject(&mut self, node: usize, at: SimTime) {
        if !self.hcas[node].inject_pending {
            self.hcas[node].inject_pending = true;
            self.queue.push(at.max(self.now), Event::TryInject { node });
        }
    }

    fn on_try_inject(&mut self, node: usize) {
        self.hcas[node].inject_pending = false;
        let hca = &mut self.hcas[node];
        if self.now < hca.tx_busy_until {
            let at = hca.tx_busy_until;
            self.schedule_inject(node, at);
            return;
        }
        // VL priority: scan data VLs from highest to lowest.
        let mut chosen: Option<usize> = None;
        let mut earliest_block: Option<SimTime> = None;
        for vl in (0..self.cfg.num_vls).rev() {
            let Some(&(_, ready)) = self.hcas[node].send_q[vl].front() else {
                continue;
            };
            if ready > self.now {
                earliest_block = Some(earliest_block.map_or(ready, |e: SimTime| e.min(ready)));
                continue;
            }
            if self.hcas[node].credits[vl] == 0 {
                continue; // blocked on credits; a credit event will retry
            }
            chosen = Some(vl);
            break;
        }
        let Some(vl) = chosen else {
            if let Some(at) = earliest_block {
                self.schedule_inject(node, at);
            }
            return;
        };
        let (pref, _) = self.hcas[node].send_q[vl].pop_front().unwrap();
        self.hcas[node].credits[vl] -= 1;
        // MAC generation occupies the sender before the first byte (§6:
        // "one additional stage at each end node per message").
        let start = self.now + self.auth_delay;
        let (bytes, class, pvl) = {
            let packet = self.packets.get_mut(pref);
            packet.inject_time = start;
            (packet.bytes, packet.class, packet.vl)
        };
        let tx_end = start + tx_time_ps(bytes, self.cfg.link_gbps);
        self.hcas[node].tx_busy_until = tx_end;
        let arrival = tx_end + self.cfg.propagation_delay;
        match self.link_fault(node) {
            FaultOutcome::Drop => {
                // The switch never sees the packet, so it can't return the
                // buffer credit — model the slot as freeing on arrival.
                self.stats.link_drops += 1;
                self.class_stats(class).dropped += 1;
                self.packets.release(pref);
                self.queue.push(arrival, Event::HcaCredit { node, vl: pvl });
            }
            FaultOutcome::Deliver {
                corrupt,
                extra_delay_ps,
            } => {
                self.packets.get_mut(pref).corrupted |= corrupt;
                let (att_sw, att_port) = self.attach[node];
                self.queue.push(
                    arrival + extra_delay_ps,
                    Event::SwitchArrive {
                        switch: att_sw,
                        port: att_port,
                        packet: pref,
                    },
                );
            }
        }
        // Re-evaluate once the link frees.
        self.schedule_inject(node, tx_end);
    }

    // ------------------------------------------------------------- switching

    fn on_switch_arrive(&mut self, switch: usize, port: usize, pref: PacketRef) {
        let (pvl, src, dst, pkey, class) = {
            let packet = self.packets.get(pref);
            (packet.vl, packet.src, packet.dst, packet.pkey, packet.class)
        };
        let is_edge = self.is_host_port[switch * self.radix + port];
        // Management packets cross partition enforcement unchecked — "a
        // management packet can reach SM regardless of its partition" (§7),
        // which is precisely what makes the SM-flood attack possible.
        let check = if pvl == 15 {
            ib_mgmt::enforcement::FilterCheck {
                decision: FilterDecision::Pass,
                lookup_cycles: 0,
            }
        } else {
            self.switches[switch].enforcement.check(
                self.now,
                port,
                is_edge,
                self.topo.lid_of(src),
                pkey,
            )
        };
        self.stats.lookup_cycles += check.lookup_cycles;
        if check.decision == FilterDecision::Drop {
            self.stats.filter_drops += 1;
            self.class_stats(class).dropped += 1;
            self.packets.release(pref);
            self.return_credit(switch, port, pvl);
            return;
        }
        let vl = pvl as usize;
        let out_port = self.topo.route_flow(switch, dst, flow_hash(src, dst));
        self.switches[switch].in_q[port][vl].push_back(QueuedPacket {
            packet: pref,
            lookup_cycles: check.lookup_cycles,
        });
        self.schedule_forward(switch, out_port, self.now + self.cfg.switch_latency);
    }

    fn schedule_forward(&mut self, switch: usize, port: usize, at: SimTime) {
        if !self.switches[switch].forward_pending[port] {
            self.switches[switch].forward_pending[port] = true;
            self.queue
                .push(at.max(self.now), Event::TryForward { switch, port });
        }
    }

    fn on_try_forward(&mut self, switch: usize, out_port: usize) {
        self.switches[switch].forward_pending[out_port] = false;
        if self.now < self.switches[switch].out_busy_until[out_port] {
            let at = self.switches[switch].out_busy_until[out_port];
            self.schedule_forward(switch, out_port, at);
            return;
        }
        let peer = self.topo.peer(switch, out_port);
        // Crossing the topology's dateline escalates data packets to the
        // next VL — the per-(port, VL) buffers double as the virtual
        // channels that break credit-deadlock cycles (dragonfly global
        // links; a no-op on mesh and fat-tree). VL15 management never
        // escalates.
        let dateline = self.is_dateline[switch * self.radix + out_port];
        let out_vl = move |vl: usize| if dateline && vl < 8 { vl + 1 } else { vl };
        // Arbitrate: find the best candidate per VL (round-robin over input
        // ports within a VL), then apply the VL arbitration policy.
        let nports = self.radix;
        let mut best_high: Option<(usize, usize)> = None; // highest VL > 0
        let mut best_low: Option<(usize, usize)> = None; // VL 0
        for vl in (0..self.cfg.num_vls).rev() {
            if vl > 0 && best_high.is_some() {
                continue;
            }
            if vl == 0 && best_low.is_some() {
                continue;
            }
            // Credit check applies to switch-to-switch hops; HCA receive
            // buffers are modeled as ample (the HCA drains at line rate).
            if let Peer::Switch { .. } = peer {
                if self.switches[switch].out_credits[out_port][out_vl(vl)] == 0 {
                    continue;
                }
            }
            let start = self.switches[switch].rr[out_port];
            for k in 0..nports {
                let in_port = (start + k) % nports;
                if let Some(head) = self.switches[switch].in_q[in_port][vl].front() {
                    if self.route_of(switch, head.packet) == out_port {
                        if vl > 0 {
                            best_high = Some((in_port, vl));
                        } else {
                            best_low = Some((in_port, vl));
                        }
                        break;
                    }
                }
            }
        }
        let selected = match (self.cfg.arbitration, best_high, best_low) {
            (_, None, low) => low,
            (ArbitrationPolicy::StrictPriority, high, _) => high,
            (ArbitrationPolicy::Weighted { high_limit }, high, low) => {
                // IBA-style weighted tables: after `high_limit` consecutive
                // high-priority grants, a pending low-priority packet gets
                // one slot (prevents total starvation of VL0).
                if self.switches[switch].high_grants[out_port] >= high_limit && low.is_some() {
                    low
                } else {
                    high
                }
            }
        };
        let Some((in_port, vl)) = selected else {
            return;
        };
        if vl > 0 {
            self.switches[switch].high_grants[out_port] += 1;
        } else {
            self.switches[switch].high_grants[out_port] = 0;
        }
        self.switches[switch].rr[out_port] = (in_port + 1) % nports;
        let qp = self.switches[switch].in_q[in_port][vl].pop_front().unwrap();
        let pref = qp.packet;
        let (bytes, class) = {
            let packet = self.packets.get(pref);
            (packet.bytes, packet.class)
        };
        // Service time: enforcement lookups + store-and-forward transmit.
        let service =
            qp.lookup_cycles * self.cfg.cycle_time + tx_time_ps(bytes, self.cfg.link_gbps);
        let tx_end = self.now + service;
        self.switches[switch].out_busy_until[out_port] = tx_end;
        match peer {
            Peer::Switch {
                switch: next,
                port: next_port,
            } => {
                // The downstream buffer class is the (possibly escalated)
                // VL: credits, the arrival queue, and the credit-return on
                // a wire drop must all agree on it.
                let fvl = out_vl(vl);
                self.switches[switch].out_credits[out_port][fvl] -= 1;
                let arrival = tx_end + self.cfg.propagation_delay;
                match self.link_fault(self.switch_link(switch, out_port)) {
                    FaultOutcome::Drop => {
                        // Downstream never sees the packet; its buffer slot
                        // credit comes back as if freed on arrival.
                        self.stats.link_drops += 1;
                        self.class_stats(class).dropped += 1;
                        self.packets.release(pref);
                        self.queue.push(
                            arrival,
                            Event::SwitchCredit {
                                switch,
                                port: out_port,
                                vl: fvl as u8,
                            },
                        );
                    }
                    FaultOutcome::Deliver {
                        corrupt,
                        extra_delay_ps,
                    } => {
                        let packet = self.packets.get_mut(pref);
                        packet.corrupted |= corrupt;
                        packet.vl = fvl as u8;
                        self.queue.push(
                            arrival + extra_delay_ps,
                            Event::SwitchArrive {
                                switch: next,
                                port: next_port,
                                packet: pref,
                            },
                        );
                    }
                }
            }
            Peer::Hca { node } => {
                let arrival = tx_end + self.cfg.propagation_delay;
                match self.link_fault(self.switch_link(switch, out_port)) {
                    FaultOutcome::Drop => {
                        self.stats.link_drops += 1;
                        self.class_stats(class).dropped += 1;
                        self.packets.release(pref);
                    }
                    FaultOutcome::Deliver {
                        corrupt,
                        extra_delay_ps,
                    } => {
                        self.packets.get_mut(pref).corrupted |= corrupt;
                        self.queue.push(
                            arrival + extra_delay_ps,
                            Event::HcaReceive { node, packet: pref },
                        );
                    }
                }
            }
            Peer::None => unreachable!("routing never selects an edge port"),
        }
        // The input buffer slot frees now: return a credit upstream.
        self.return_credit(switch, in_port, vl as u8);
        // The queue we popped from has a new head that may want a
        // *different* output port — wake that port, or packets behind a
        // departed head would wait for an unrelated arrival (HOL stall).
        let next_out = self.switches[switch].in_q[in_port][vl]
            .front()
            .map(|next| self.route_of(switch, next.packet));
        if let Some(next_out) = next_out {
            if next_out != out_port {
                self.schedule_forward(switch, next_out, self.now);
            }
        }
        // The port may have more work the instant it frees.
        self.schedule_forward(switch, out_port, tx_end);
    }

    /// Return one credit to whatever feeds `(switch, in_port)`.
    fn return_credit(&mut self, switch: usize, in_port: usize, vl: u8) {
        let at = self.now + self.cfg.propagation_delay;
        match self.topo.peer(switch, in_port) {
            Peer::Hca { node } => self.queue.push(at, Event::HcaCredit { node, vl }),
            Peer::Switch {
                switch: up,
                port: up_port,
            } => self.queue.push(
                at,
                Event::SwitchCredit {
                    switch: up,
                    port: up_port,
                    vl,
                },
            ),
            Peer::None => {}
        }
    }

    // ------------------------------------------------------------- receiving

    fn on_hca_receive(&mut self, node: usize, pref: PacketRef) {
        // Host-injected packets skip the abstract receive path entirely:
        // the wire image goes back to the host, with transit corruption
        // applied as a byte flip (mirroring the point-to-point harness),
        // for the host transport's own VCRC/MAC verification to judge.
        if self.packets.get(pref).wire.is_some() {
            let packet = self.packets.release(pref);
            let mut bytes = packet.wire.unwrap();
            if packet.corrupted && !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
            }
            if packet.vl == 15 {
                self.stats.mgmt_delivered += 1;
            }
            self.host_inbox.push_back(HostDelivery {
                at: self.now,
                node,
                bytes,
            });
            return;
        }
        // CRC check before anything else looks at the packet (VCRC/ICRC
        // precede all header processing). Untouched packets re-render
        // bit-identically by construction, so their cached emission-time
        // ICRC is authoritative and verification is skipped; only packets
        // the fault layer flipped in transit get the full re-render —
        // with the transit bit flip — recompute, and compare against the
        // CRC stamped at emission.
        if self.packets.get(pref).corrupted {
            render_wire_image(&mut self.wire_scratch, self.packets.get(pref));
            let mid = self.wire_scratch.len() / 2;
            self.wire_scratch[mid] ^= 0xFF;
            let mut crc = Crc32::new();
            crc.update_slice8(&self.wire_scratch);
            if crc.finalize() != self.packets.get(pref).icrc {
                self.stats.corrupt_drops += 1;
                let class = self.packets.release(pref).class;
                self.class_stats(class).dropped += 1;
                return;
            }
        }
        // The HCA is the packet's terminal point on every path below:
        // take it out of the arena and recycle the slot.
        let packet = self.packets.release(pref);
        // Management datagrams: no partition check, no data statistics.
        if packet.vl == 15 {
            self.stats.mgmt_delivered += 1;
            if node == self.cfg.sm_node {
                if let Some(trap) = packet.trap {
                    // In-band trap reached the SM: same handling as the
                    // out-of-band TrapDeliver path.
                    self.handle(Event::TrapDeliver { trap });
                }
                // Trap-less VL15 packets at the SM are the §7 flood: they
                // consumed fabric + SM capacity and are dropped here.
            }
            return;
        }
        // MAC verification stage at the receiver.
        let delivered_at = self.now + self.auth_delay;
        let (ok, _) = self.hcas[node].table.check(packet.pkey);
        if !ok {
            self.stats.hca_blocked += 1;
            // Receive-side P_Key violation: maybe raise a trap (§3.3).
            let reporter = self.topo.lid_of(node);
            let violator = self.topo.lid_of(packet.src);
            if let Some(trap) =
                self.hcas[node]
                    .throttle
                    .offer(self.now, reporter, packet.pkey, violator)
            {
                match self.cfg.trap_transport {
                    crate::config::TrapTransport::OutOfBand => {
                        self.queue.push(
                            self.now + self.cfg.trap_latency,
                            Event::TrapDeliver { trap },
                        );
                    }
                    crate::config::TrapTransport::InBand => {
                        let sm = self.cfg.sm_node;
                        if sm == node {
                            self.handle(Event::TrapDeliver { trap });
                        } else {
                            self.emit_management(node, sm, TrafficClass::Management, Some(trap));
                        }
                    }
                }
            }
            return;
        }
        if packet.class == TrafficClass::Attack {
            // Valid-key floods land here; count them, keep them out of the
            // legitimate-traffic statistics.
            self.stats.attack.delivered += 1;
            return;
        }
        if let Some(flow) = packet.flow {
            let rec = &mut self.flows[flow as usize];
            rec.remaining -= 1;
            if rec.remaining == 0 {
                rec.completed_at = Some(delivered_at);
            }
        }
        if packet.gen_time >= self.cfg.warmup {
            let queuing = packet.inject_time - packet.gen_time;
            let network = delivered_at - packet.inject_time;
            self.class_stats(packet.class).record(queuing, network);
        }
    }

    fn class_stats(&mut self, class: TrafficClass) -> &mut ClassStats {
        match class {
            TrafficClass::Realtime => &mut self.stats.realtime,
            // Management shares the attack bucket for drop accounting; its
            // deliveries are tracked separately in `mgmt_delivered`.
            TrafficClass::BestEffort => &mut self.stats.best_effort,
            TrafficClass::Attack | TrafficClass::Management => &mut self.stats.attack,
        }
    }

    // ---------------------------------------------------------------- attack

    /// The deterministic duty-cycle window: starts one warmup past warmup,
    /// lasts `attack_probability × duration`.
    fn duty_window(&self) -> (SimTime, SimTime) {
        let len =
            (self.cfg.attack_probability.clamp(0.0, 1.0) * self.cfg.duration as f64) as SimTime;
        let start = (self.cfg.warmup * 2).min(self.cfg.duration.saturating_sub(len));
        (start, start + len)
    }

    fn set_attack_active(&mut self, active: bool) {
        match (self.attack_active, active) {
            (false, true) => {
                self.attack_active = true;
                self.attack_active_since = self.now;
                let attackers = self.attackers.clone();
                for a in attackers {
                    self.queue.push(
                        self.now,
                        Event::Generate {
                            node: a,
                            class: TrafficClass::Attack,
                        },
                    );
                }
            }
            (true, false) => {
                self.attack_active = false;
                self.attack_active_total += self.now - self.attack_active_since;
            }
            _ => {}
        }
    }

    fn on_attack_epoch(&mut self) {
        match self.cfg.attack_schedule {
            crate::config::AttackSchedule::Probabilistic => {
                if self.now > self.cfg.duration {
                    self.set_attack_active(false);
                    return;
                }
                let roll = self
                    .rng
                    .gen_bool(self.cfg.attack_probability.clamp(0.0, 1.0));
                self.set_attack_active(roll);
                self.queue
                    .push(self.now + self.cfg.attack_epoch, Event::AttackEpoch);
            }
            crate::config::AttackSchedule::DutyCycle => {
                let (start, end) = self.duty_window();
                let active = self.now >= start && self.now < end;
                self.set_attack_active(active);
                // Next transition: the window edge still ahead of us.
                let next = if self.now < start {
                    Some(start)
                } else if self.now < end {
                    Some(end)
                } else {
                    None
                };
                if let Some(at) = next {
                    self.queue.push(at, Event::AttackEpoch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, US};

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 2 * MS,
            warmup: 200 * US,
            ..SimConfig::default()
        }
    }

    #[test]
    fn baseline_delivers_traffic() {
        let report = Simulator::new(quick_cfg()).run();
        assert!(
            report.realtime.delivered > 100,
            "rt delivered {}",
            report.realtime.delivered
        );
        assert!(report.best_effort.delivered > 100);
        assert_eq!(report.filter_drops, 0);
        assert_eq!(report.hca_blocked, 0);
        assert_eq!(report.traps, 0);
        // Sanity on magnitudes: queuing under light load is microseconds,
        // network latency tens of microseconds (store-and-forward mesh).
        assert!(report.legit_queuing_mean() < 50.0);
        assert!(report.legit_network_mean() > 3.0);
        assert!(report.legit_network_mean() < 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulator::new(quick_cfg()).run();
        let b = Simulator::new(quick_cfg()).run();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.realtime.delivered, b.realtime.delivered);
        assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn host_packets_cross_the_mesh_intact() {
        // No background traffic: the host packet is the only load, so it
        // must arrive exactly once, byte-identical, after a positive
        // fabric delay.
        let mut cfg = quick_cfg();
        cfg.traffic.realtime_load = 0.0;
        cfg.traffic.best_effort_load = 0.0;
        let mut sim = Simulator::new(cfg);
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let dst = sim.topo.num_switches() - 1;
        sim.post_host(0, dst, 1, payload.clone());
        let t = sim.run_hosts_until(SimTime::MAX);
        let d = sim.take_host_delivery().expect("delivery");
        assert_eq!(d.node, dst);
        assert_eq!(d.bytes, payload);
        assert_eq!(d.at, t);
        assert!(t > 0, "fabric transit takes time");
        assert!(sim.take_host_delivery().is_none());
        // Nothing left: the horizon call parks time at the limit.
        assert_eq!(sim.run_hosts_until(t + 1000), t + 1000);
    }

    #[test]
    fn host_hook_interleaves_with_background_traffic() {
        // With sources active, run_hosts_until must keep the background
        // simulation bit-identical to an uninterrupted run of the same
        // seed (the held-event slot preserves global event order).
        let base = Simulator::new(quick_cfg()).run();
        let mut sim = Simulator::new(quick_cfg());
        let mut t = 0;
        while t < 3 * MS {
            t = sim.run_hosts_until(t + 100 * US);
            while sim.take_host_delivery().is_some() {}
            if sim.now() >= 3 * MS {
                break;
            }
        }
        let (report, _) = sim.run_counted();
        assert_eq!(report.generated, base.generated);
        assert_eq!(report.realtime.delivered, base.realtime.delivered);
        assert_eq!(report.best_effort.delivered, base.best_effort.delivered);
        assert!((report.legit_queuing_mean() - base.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulator::new(quick_cfg()).run();
        let mut cfg = quick_cfg();
        cfg.seed ^= 0xFFFF;
        let b = Simulator::new(cfg).run();
        assert_ne!(a.generated, b.generated);
    }

    #[test]
    fn attack_raises_queuing_time() {
        // Run near the fabric's knee (where the paper's Figure 1 operates)
        // and average two placements so a single lucky attacker position
        // can't mask the effect.
        let loaded = |attackers: usize, seed_bump: u64| {
            let mut cfg = quick_cfg();
            // Queue buildup under attack needs some simulated time to
            // dominate the warmup transient.
            cfg.duration = 5 * MS;
            cfg.warmup = 500 * US;
            cfg.traffic.realtime_load = 0.25;
            cfg.traffic.best_effort_load = 0.30;
            cfg.num_attackers = attackers;
            cfg.attack_probability = 1.0;
            cfg.seed ^= seed_bump;
            Simulator::new(cfg).run()
        };
        let base: f64 = (0..2)
            .map(|s| loaded(0, s * 0xABCD).best_effort.queuing.mean())
            .sum::<f64>()
            / 2.0;
        let attacked_reports: Vec<SimReport> = (0..2).map(|s| loaded(4, s * 0xABCD)).collect();
        assert!(
            attacked_reports.iter().all(|r| r.hca_blocked > 0),
            "attack packets must reach victims"
        );
        let attacked: f64 = attacked_reports
            .iter()
            .map(|r| r.best_effort.queuing.mean())
            .sum::<f64>()
            / 2.0;
        assert!(attacked > base, "attack {attacked} vs base {base}");
    }

    #[test]
    fn ingress_filtering_blocks_attack() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::If;
        let report = Simulator::new(cfg).run();
        assert!(report.filter_drops > 0, "IF must drop attack packets");
        assert_eq!(
            report.hca_blocked, 0,
            "nothing invalid reaches HCAs under IF"
        );
    }

    #[test]
    fn dpt_blocks_attack_too() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Dpt;
        let report = Simulator::new(cfg).run();
        assert!(report.filter_drops > 0);
        assert_eq!(report.hca_blocked, 0);
        assert!(report.lookup_cycles > 0, "DPT pays lookups");
    }

    #[test]
    fn sif_engages_after_traps() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert!(report.traps > 0, "victims must trap");
        assert!(report.hca_blocked > 0, "attack leaks until SIF engages");
        assert!(report.filter_drops > 0, "then SIF drops at the edge");
        // Once engaged, the vast majority of attack packets die at ingress.
        assert!(
            report.filter_drops > report.hca_blocked,
            "drops {} blocked {}",
            report.filter_drops,
            report.hca_blocked
        );
    }

    #[test]
    fn dpt_costs_more_lookups_than_if() {
        let mut cfg_d = quick_cfg();
        cfg_d.enforcement = EnforcementKind::Dpt;
        let d = Simulator::new(cfg_d).run();
        let mut cfg_i = quick_cfg();
        cfg_i.enforcement = EnforcementKind::If;
        let i = Simulator::new(cfg_i).run();
        assert!(
            d.lookup_cycles > i.lookup_cycles * 2,
            "DPT per-hop lookups {} should dwarf IF ingress-only {}",
            d.lookup_cycles,
            i.lookup_cycles
        );
    }

    #[test]
    fn sif_costs_nothing_without_attack() {
        let mut cfg = quick_cfg();
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert_eq!(report.lookup_cycles, 0, "idle SIF is free");
    }

    #[test]
    fn qp_level_auth_adds_modest_queuing() {
        let base = Simulator::new(quick_cfg()).run();
        let mut cfg = quick_cfg();
        cfg.auth = AuthMode::QpLevel;
        let with = Simulator::new(cfg).run();
        let b = base.legit_queuing_mean();
        let w = with.legit_queuing_mean();
        assert!(w >= b, "auth can't reduce delay: {w} vs {b}");
        assert!(w < b + 10.0, "overhead must stay marginal: {w} vs {b}");
    }

    #[test]
    fn realtime_priority_beats_best_effort_under_attack() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 3;
        cfg.attack_probability = 1.0;
        let r = Simulator::new(cfg).run();
        assert!(
            r.best_effort.queuing.mean() >= r.realtime.queuing.mean(),
            "BE {} must suffer at least as much as RT {}",
            r.best_effort.queuing.mean(),
            r.realtime.queuing.mean()
        );
    }

    #[test]
    fn valid_pkey_attack_defeats_ingress_filtering() {
        // §7: "Dumping traffic only with a valid P_Key. Since this attack
        // uses a valid P_Key, any ingress filtering is useless."
        let mut cfg = quick_cfg();
        cfg.duration = 4 * MS;
        cfg.traffic.realtime_load = 0.25;
        cfg.traffic.best_effort_load = 0.30;
        cfg.num_attackers = 4;
        cfg.attack_probability = 1.0;
        cfg.attack_keys = AttackKeys::Valid;
        cfg.enforcement = EnforcementKind::Sif;
        let r = Simulator::new(cfg).run();
        assert_eq!(r.filter_drops, 0, "SIF never sees an invalid key");
        assert_eq!(r.traps, 0, "in-partition receivers raise no P_Key traps");
        // The flood still happened (attack packets were delivered to
        // same-partition receivers or blocked at cross-partition ones).
        assert!(r.attack.delivered + r.hca_blocked > 500);
    }

    #[test]
    fn weighted_arbitration_trades_priority_for_fairness() {
        // Under heavy realtime pressure, weighted arbitration serves VL0
        // sooner than strict priority does.
        let run = |arb: crate::config::ArbitrationPolicy| {
            let mut cfg = quick_cfg();
            cfg.duration = 4 * MS;
            cfg.traffic.realtime_load = 0.60;
            cfg.traffic.best_effort_load = 0.25;
            cfg.arbitration = arb;
            Simulator::new(cfg).run()
        };
        let strict = run(crate::config::ArbitrationPolicy::StrictPriority);
        let weighted = run(crate::config::ArbitrationPolicy::Weighted { high_limit: 1 });
        // Both deliver traffic.
        assert!(strict.best_effort.delivered > 100);
        assert!(weighted.best_effort.delivered > 100);
        // Weighted must not *hurt* best-effort relative to strict, and RT
        // must not collapse either (it still gets most slots).
        assert!(
            weighted.best_effort.network.mean() <= strict.best_effort.network.mean() + 1.0,
            "weighted BE {} vs strict BE {}",
            weighted.best_effort.network.mean(),
            strict.best_effort.network.mean()
        );
        assert!(weighted.realtime.delivered > 100);
    }

    #[test]
    fn inband_traps_activate_sif() {
        // Same scenario as sif_engages_after_traps, but traps travel as
        // real VL15 MADs through the fabric instead of a side channel.
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        cfg.trap_transport = crate::config::TrapTransport::InBand;
        let report = Simulator::new(cfg).run();
        assert!(report.mgmt_delivered > 0, "trap MADs must reach the SM");
        assert!(report.traps > 0, "SM must process in-band traps");
        assert!(report.filter_drops > 0, "SIF engages off in-band traps");
        assert!(report.filter_drops > report.hca_blocked);
    }

    #[test]
    fn sm_flood_reaches_sm_through_every_partition_check() {
        // §7: management packets cross partition boundaries unchecked.
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.attack_keys = AttackKeys::SmFlood;
        cfg.enforcement = EnforcementKind::Dpt; // strongest data filtering
        let report = Simulator::new(cfg).run();
        assert!(
            report.mgmt_delivered > 200,
            "flood MADs delivered: {}",
            report.mgmt_delivered
        );
        assert_eq!(report.filter_drops, 0, "DPT cannot filter VL15 packets");
        assert_eq!(report.hca_blocked, 0, "no P_Key check applies");
        // VL15 isolation: data traffic keeps flowing.
        assert!(report.best_effort.delivered > 100);
    }

    #[test]
    fn fault_free_runs_report_no_fault_drops() {
        let r = Simulator::new(quick_cfg()).run();
        assert_eq!(r.link_drops, 0);
        assert_eq!(r.corrupt_drops, 0);
    }

    #[test]
    fn fault_injection_drops_and_corrupts_deterministically() {
        let run = || {
            let mut cfg = quick_cfg();
            cfg.fault = crate::fault::FaultConfig {
                drop_prob: 0.05,
                corrupt_prob: 0.02,
                reorder_prob: 0.02,
                reorder_delay_ps: 20 * US,
            };
            Simulator::new(cfg).run()
        };
        let a = run();
        assert!(a.link_drops > 0, "5% drop must fire: {}", a.link_drops);
        assert!(a.corrupt_drops > 0, "2% corrupt must fire");
        // Traffic still flows around the losses.
        assert!(a.realtime.delivered > 100);
        assert!(a.best_effort.delivered > 100);
        // Lossy runs replay bit-identically.
        let b = run();
        assert_eq!(a.link_drops, b.link_drops);
        assert_eq!(a.corrupt_drops, b.corrupt_drops);
        assert_eq!(a.realtime.delivered, b.realtime.delivered);
        assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn wire_drops_do_not_leak_credits() {
        // Heavy loss + long run: if a drop ate a credit, injection would
        // eventually wedge and deliveries would collapse. Compare against
        // the loss-free run: deliveries must stay the same order of
        // magnitude (only the dropped fraction is missing).
        let mut cfg = quick_cfg();
        cfg.fault.drop_prob = 0.10;
        let lossy = Simulator::new(cfg).run();
        let clean = Simulator::new(quick_cfg()).run();
        let lossy_total = lossy.realtime.delivered + lossy.best_effort.delivered;
        let clean_total = clean.realtime.delivered + clean.best_effort.delivered;
        assert!(
            lossy_total as f64 > clean_total as f64 * 0.5,
            "lossy {lossy_total} vs clean {clean_total}: credits leaked?"
        );
    }

    #[test]
    fn no_attackers_means_no_attack_class_traffic() {
        let r = Simulator::new(quick_cfg()).run();
        assert_eq!(r.attack.delivered, 0);
        assert_eq!(r.attack.dropped, 0);
        assert_eq!(r.attack_active_fraction, 0.0);
    }

    #[test]
    fn fat_tree_fabric_delivers_traffic() {
        let mut cfg = quick_cfg();
        cfg.topology = crate::config::TopoSpec::FatTree { k: 4 };
        let report = Simulator::new(cfg).run();
        assert!(report.realtime.delivered > 100);
        assert!(report.best_effort.delivered > 100);
        assert_eq!(report.filter_drops, 0);
        assert_eq!(report.hca_blocked, 0);
    }

    #[test]
    fn sif_engages_on_a_dragonfly() {
        // The trap → SM → program-filter loop must work when the violator's
        // edge switch is a dragonfly router, not a mesh switch.
        let mut cfg = quick_cfg();
        cfg.topology = crate::config::TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: false,
        };
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert!(report.traps > 0, "victims must trap");
        assert!(
            report.filter_drops > 0,
            "SIF drops at the attacker's router"
        );
        assert!(report.filter_drops > report.hca_blocked);
    }

    #[test]
    fn non_mesh_fabrics_are_deterministic() {
        for topology in [
            crate::config::TopoSpec::FatTree { k: 4 },
            crate::config::TopoSpec::Dragonfly {
                a: 2,
                p: 2,
                h: 1,
                valiant: true,
            },
        ] {
            let run = || {
                let mut cfg = quick_cfg();
                cfg.topology = topology;
                Simulator::new(cfg).run()
            };
            let (a, b) = (run(), run());
            assert_eq!(a.generated, b.generated);
            assert_eq!(a.realtime.delivered, b.realtime.delivered);
            assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn flows_complete_on_every_topology() {
        for topology in [
            crate::config::TopoSpec::Mesh,
            crate::config::TopoSpec::FatTree { k: 4 },
            crate::config::TopoSpec::Dragonfly {
                a: 2,
                p: 2,
                h: 1,
                valiant: false,
            },
        ] {
            let mut cfg = quick_cfg();
            cfg.topology = topology;
            cfg.num_partitions = 1; // flows must pass the receive P_Key check
            cfg.traffic.realtime_load = 0.0;
            cfg.traffic.best_effort_load = 0.0;
            let mut sim = Simulator::new(cfg);
            let n = sim.topology().num_nodes();
            for src in 0..n {
                sim.post_flow(src, (src + 1) % n, 10 * 1024);
            }
            assert!(sim.peak_packets() > 0);
            // Drain the event queue in place so the flow records stay
            // readable afterwards.
            sim.run_hosts_until(SimTime::MAX);
            assert!(
                sim.flows().iter().all(|f| f.completed_at.is_some()),
                "every flow must complete on {topology:?}"
            );
            assert!(sim
                .flows()
                .iter()
                .all(|f| f.completed_at.unwrap() > f.posted_at));
        }
    }

    #[test]
    fn flow_completion_times_are_recorded_and_ordered() {
        let mut cfg = quick_cfg();
        cfg.num_partitions = 1;
        cfg.traffic.realtime_load = 0.0;
        cfg.traffic.best_effort_load = 0.0;
        let mut sim = Simulator::new(cfg);
        let small = sim.post_flow(0, 5, 2 * 1024);
        let large = sim.post_flow(3, 9, 64 * 1024);
        sim.run_hosts_until(SimTime::MAX);
        let flows = sim.flows();
        let small_done = flows[small].completed_at.expect("small flow completes");
        let large_done = flows[large].completed_at.expect("large flow completes");
        assert!(small_done > 0);
        // 64 KiB takes longer than 2 KiB from the same start time.
        assert!(large_done > small_done);
        // 32 MTU packets were in flight at peak ≥ the largest single queue.
        assert!(sim.peak_packets() >= 2);
        assert_eq!(sim.flows().len(), 2);
    }

    /// The satellite round-trip: a real report survives JSON text and back
    /// with its derived statistics intact.
    #[test]
    fn sim_report_json_round_trip() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        let report = Simulator::new(cfg).run();
        let text = report.to_json().to_string();
        let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("parse back");
        assert_eq!(back.generated, report.generated);
        assert_eq!(back.hca_blocked, report.hca_blocked);
        assert_eq!(back.traps, report.traps);
        assert_eq!(back.realtime.delivered, report.realtime.delivered);
        assert_eq!(
            back.best_effort.queuing.count(),
            report.best_effort.queuing.count()
        );
        assert!((back.legit_queuing_mean() - report.legit_queuing_mean()).abs() < 1e-12);
        assert!((back.legit_queuing_stddev() - report.legit_queuing_stddev()).abs() < 1e-12);
        assert_eq!(back.attack_active_fraction, report.attack_active_fraction);
    }
}
