//! The discrete-event simulation engine.
//!
//! The simulation state is sharded into **event domains** — one calendar
//! queue's worth of switches and HCAs per topology partition (fat-tree
//! pod, dragonfly group, mesh 2×2 tile; see [`Topology::partition`]).
//! Handlers ([`Ctx`]) mutate exactly one [`Domain`] and stage every
//! scheduled event into `Domain::out`; a *driver* routes those messages.
//! Two drivers share the core:
//!
//! * [`Simulator`] — the serial oracle: one merged event queue, events
//!   popped in global `(time, seq)` key order.
//! * [`crate::ParSimulator`] — conservative parallel execution: one queue
//!   per domain, synchronized in lookahead windows `[T, T+W)` where `W`
//!   is the minimum cross-domain latency (propagation delay, trap
//!   latency, filter-program latency) and `T` is the global minimum
//!   pending-event time. Any event a domain emits at `now` lands at
//!   `≥ now + W` when it crosses a domain boundary, so processing each
//!   window independently per domain is exact, not approximate.
//!
//! Determinism is engine-independent: every event carries an *intrinsic*
//! key `(time, origin_entity_id << 32 | per-origin seq)` and every RNG
//! draw comes from a per-node stream, so the two drivers produce
//! bit-identical reports at any thread count — the contract the
//! `ci.sh` byte-diff gates and `tests/parallel_equivalence.rs` enforce.
//!
//! ## Model summary
//!
//! * **HCA injection** — packets wait in per-VL send queues until the host
//!   link is idle *and* a credit for their VL is available at the switch's
//!   host port. The wait is the paper's *queuing time*.
//! * **Switches** — input-queued, per-(port, VL) buffers backed by credits;
//!   output ports arbitrate by VL priority (realtime over best-effort),
//!   round-robin across input ports; store-and-forward with a fixed
//!   pipeline latency plus any enforcement lookup cycles charged to the
//!   packet (this is how DPT's per-hop lookups show up as extra delay).
//! * **Enforcement** — each switch owns a [`PartitionEnforcer`]; drops
//!   release the buffer credit immediately.
//! * **Trap loop** — a destination HCA seeing an invalid P_Key bumps its
//!   violation counter and (rate-limited) raises a trap; after
//!   `trap_latency` the SM maps the violator to its edge switch and after
//!   `program_latency` the switch's SIF registers the key.
//! * **Authentication cost model** — `auth_cycles_per_message` is charged
//!   at both end nodes; QP-level mode additionally holds the *first* packet
//!   of each (src, dst) pair for `key_exchange_rtt` (the Q_Key/secret
//!   request round trip of §4.3).
//! * **Attack schedule** — precomputed at construction into half-open
//!   `[start, end)` windows from a dedicated seed stream; attacker
//!   `Generate` chains start at each window's opening and die at its
//!   close. No global toggle event exists, so domains never need to
//!   agree on shared mutable attack state.

use std::collections::{HashMap, VecDeque};

use ib_crypto::Crc32;
use ib_runtime::{Json, Rng, ToJson};

use ib_mgmt::enforcement::{
    DptEnforcer, EnforcementKind, FilterCheck, FilterDecision, IfEnforcer, NoEnforcer,
    PartitionEnforcer, SifEnforcer,
};
use ib_mgmt::partition::{PartitionConfig, PartitionTable};
use ib_mgmt::sm::SubnetManager;
use ib_mgmt::trap::{Trap, TrapThrottle};
use ib_packet::types::PKey;

use crate::arena::{PacketArena, PacketRef};
use crate::config::{
    ArbitrationPolicy, AttackKeys, AttackSchedule, AuthMode, SimConfig, TrapTransport,
};
use crate::event::{Event, EventKey, EventQueue, SimPacket};
use crate::fault::{FaultInjector, FaultOutcome};
use crate::metrics::ClassStats;
use crate::time::{tx_time_ps, SimTime};
use crate::topology::{flow_hash, Partition, Peer, Topology};
use crate::traffic::{exp_gap, TrafficClass};

/// Seed-stream index for the attack-window schedule. Node streams use
/// indices `0..n` and `n ≤ 0xFFFE` (16-bit LIDs), so this never collides.
const ATTACK_WINDOW_STREAM: u64 = 0x0002_0000;

/// Per-switch runtime state.
pub(crate) struct SwitchState {
    /// Input buffers: `in_q[port][vl]`.
    in_q: Vec<Vec<VecDeque<QueuedPacket>>>,
    /// When each output port finishes its current transmission.
    out_busy_until: Vec<SimTime>,
    /// Credits available toward the downstream peer: `out_credits[port][vl]`.
    out_credits: Vec<Vec<u32>>,
    /// Whether a TryForward event is already pending per output port.
    forward_pending: Vec<bool>,
    /// Round-robin cursor over input ports, per output port.
    rr: Vec<usize>,
    /// Consecutive high-priority grants per output port (weighted
    /// arbitration state).
    high_grants: Vec<u32>,
    /// The partition-enforcement engine this switch runs (`Send` so whole
    /// domains can migrate onto worker threads).
    enforcement: Box<dyn PartitionEnforcer + Send>,
    /// Per-origin event sequence counter (intrinsic-key tie-break).
    oseq: u32,
}

/// A packet in an input buffer plus the lookup cycles its admission cost
/// (charged when the output port serves it).
struct QueuedPacket {
    packet: PacketRef,
    lookup_cycles: u64,
}

/// Per-HCA runtime state.
pub(crate) struct HcaState {
    /// Per-VL send queues (paired with each packet's earliest-ready time,
    /// which models the QP-level key-exchange hold).
    send_q: Vec<VecDeque<(PacketRef, SimTime)>>,
    tx_busy_until: SimTime,
    inject_pending: bool,
    /// Credits toward the attached switch's host port, per VL.
    credits: Vec<u32>,
    /// Receive-side partition table (always enforced, per spec).
    table: PartitionTable,
    throttle: TrapThrottle,
    /// (src → dst) pairs that have completed a QP-level key exchange.
    keyed_peers: Vec<bool>,
    /// Realtime generations skipped due to back-off.
    backoff_skips: u64,
    /// This node's private RNG stream (`seed.stream(node)`): jitter,
    /// inter-arrival gaps, peer choice, attack targeting. Node-local
    /// streams make every draw independent of cross-domain event order.
    rng: Rng,
    /// Per-origin event sequence counter (intrinsic-key tie-break).
    oseq: u32,
    /// Per-node packet-id counter; ids are `src << 32 | counter` so they
    /// are globally unique without any cross-domain coordination.
    next_pkt: u32,
}

/// Results of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimReport {
    pub realtime: ClassStats,
    pub best_effort: ClassStats,
    pub attack: ClassStats,
    /// Management (VL15) MADs delivered, including traps and SM floods.
    pub mgmt_delivered: u64,
    /// Attack packets dropped by switch-side enforcement.
    pub filter_drops: u64,
    /// Attack packets that crossed the fabric and were blocked at the
    /// destination HCA (the stock-IBA outcome the paper criticizes).
    pub hca_blocked: u64,
    /// Traps delivered to the SM.
    pub traps: u64,
    /// Realtime generations suppressed by back-off.
    pub backoff_skips: u64,
    /// Total packets generated (all classes).
    pub generated: u64,
    /// Total enforcement lookup cycles spent (Table 2 cross-check).
    pub lookup_cycles: u64,
    /// Fraction of the configured duration the attack schedule was active.
    pub attack_active_fraction: f64,
    /// Packets the fault layer dropped on the wire.
    pub link_drops: u64,
    /// Packets the fault layer corrupted (discarded by the receiver's CRC).
    pub corrupt_drops: u64,
}

impl SimReport {
    /// Mean queuing time over both legitimate classes, µs.
    pub fn legit_queuing_mean(&self) -> f64 {
        let mut s = self.realtime.queuing.clone();
        s.merge(&self.best_effort.queuing);
        s.mean()
    }

    /// Mean network latency over both legitimate classes, µs.
    pub fn legit_network_mean(&self) -> f64 {
        let mut s = self.realtime.network.clone();
        s.merge(&self.best_effort.network);
        s.mean()
    }

    /// Std-dev of total (queuing is the dominant term) delay proxy: merged
    /// queuing standard deviation, µs (what the paper's §6 discussion of
    /// SIF variance refers to).
    pub fn legit_queuing_stddev(&self) -> f64 {
        let mut s = self.realtime.queuing.clone();
        s.merge(&self.best_effort.queuing);
        s.stddev()
    }

    /// Merge another report's accumulators into this one (domain-order
    /// merge of per-domain stats; `attack_active_fraction` is derived by
    /// the caller, not summed).
    pub fn merge(&mut self, other: &SimReport) {
        self.realtime.merge(&other.realtime);
        self.best_effort.merge(&other.best_effort);
        self.attack.merge(&other.attack);
        self.mgmt_delivered += other.mgmt_delivered;
        self.filter_drops += other.filter_drops;
        self.hca_blocked += other.hca_blocked;
        self.traps += other.traps;
        self.backoff_skips += other.backoff_skips;
        self.generated += other.generated;
        self.lookup_cycles += other.lookup_cycles;
        self.link_drops += other.link_drops;
        self.corrupt_drops += other.corrupt_drops;
    }

    /// JSON object form (for `BENCH_*.json`-style result files).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("realtime", self.realtime.to_json()),
            ("best_effort", self.best_effort.to_json()),
            ("attack", self.attack.to_json()),
            ("mgmt_delivered", self.mgmt_delivered.to_json()),
            ("filter_drops", self.filter_drops.to_json()),
            ("hca_blocked", self.hca_blocked.to_json()),
            ("traps", self.traps.to_json()),
            ("backoff_skips", self.backoff_skips.to_json()),
            ("generated", self.generated.to_json()),
            ("lookup_cycles", self.lookup_cycles.to_json()),
            (
                "attack_active_fraction",
                self.attack_active_fraction.to_json(),
            ),
            ("link_drops", self.link_drops.to_json()),
            ("corrupt_drops", self.corrupt_drops.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<SimReport> {
        Some(SimReport {
            realtime: ClassStats::from_json(v.get("realtime")?)?,
            best_effort: ClassStats::from_json(v.get("best_effort")?)?,
            attack: ClassStats::from_json(v.get("attack")?)?,
            mgmt_delivered: v.get("mgmt_delivered")?.as_u64()?,
            filter_drops: v.get("filter_drops")?.as_u64()?,
            hca_blocked: v.get("hca_blocked")?.as_u64()?,
            traps: v.get("traps")?.as_u64()?,
            backoff_skips: v.get("backoff_skips")?.as_u64()?,
            generated: v.get("generated")?.as_u64()?,
            lookup_cycles: v.get("lookup_cycles")?.as_u64()?,
            attack_active_fraction: v.get("attack_active_fraction")?.as_f64()?,
            link_drops: v.get("link_drops")?.as_u64()?,
            corrupt_drops: v.get("corrupt_drops")?.as_u64()?,
        })
    }
}

/// One finite transfer posted via [`Simulator::post_flow`]: segmented
/// into MTU packets that ride the best-effort VL through the full
/// packet-level machinery (credits, arbitration, enforcement). The flow
/// completes when its last packet is delivered — the packet engine's
/// ground-truth counterpart to `ib-flow`'s analytic completion times.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// Source node.
    pub src: usize,
    /// Destination node.
    pub dst: usize,
    /// Transfer size in bytes (segmented into MTU-sized packets).
    pub bytes: u64,
    /// When the flow was posted at the source HCA.
    pub posted_at: SimTime,
    /// Delivery time of the flow's last packet; `None` while in flight
    /// (or forever, if a fault dropped one of its packets).
    pub completed_at: Option<SimTime>,
}

/// A host-injected packet delivered at its destination HCA: the wire
/// image posted via [`Simulator::post_host`], after per-hop delays, VL
/// arbitration, credit stalls and fault exposure. Corruption in transit
/// flips a byte in `bytes` rather than dropping the packet — the host
/// transport's own CRC/MAC verification is the judge, exactly as on a
/// real fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostDelivery {
    /// Fabric delivery time at the destination HCA.
    pub at: SimTime,
    /// Destination node index.
    pub node: usize,
    /// The (possibly fault-corrupted) wire image.
    pub bytes: Vec<u8>,
}

/// Deterministic stand-in wire image for a [`SimPacket`]: the covered
/// header fields, then an id-derived fill byte out to the wire size. The
/// abstract packet carries no real payload, so a reproducible image is
/// what lets the emitting HCA and the receiving HCA agree on the bytes
/// the ICRC protects without hauling `mtu_bytes` of state through the
/// event queue.
fn render_wire_image(out: &mut Vec<u8>, packet: &SimPacket) {
    out.clear();
    out.extend_from_slice(&packet.id.to_be_bytes());
    out.extend_from_slice(&(packet.src as u32).to_be_bytes());
    out.extend_from_slice(&(packet.dst as u32).to_be_bytes());
    out.extend_from_slice(&packet.pkey.0.to_be_bytes());
    out.push(packet.vl);
    let fill = (packet.id as u8) ^ (packet.id >> 8) as u8;
    let len = packet.bytes.max(out.len());
    out.resize(len, fill);
}

/// CRC-32 over the packet's rendered wire image (slicing-by-8 — the
/// emission cost the simulator actually pays, not an abstraction of it).
/// Computed once per packet at emission; the receive side trusts the
/// cached tag unless the fault layer touched the packet in transit, since
/// an untouched packet re-renders bit-identically by construction.
fn wire_icrc(scratch: &mut Vec<u8>, packet: &SimPacket) -> u32 {
    render_wire_image(scratch, packet);
    let mut crc = Crc32::new();
    crc.update_auto(scratch);
    crc.finalize()
}

// --------------------------------------------------------------- sharded core

/// Immutable state every domain reads: config, topology, layout tables,
/// the partition/attacker assignment, the domain decomposition and the
/// precomputed attack schedule. Shared by reference across worker threads.
pub(crate) struct Shared {
    pub(crate) cfg: SimConfig,
    pub(crate) topo: Box<dyn Topology>,
    pub(crate) n_nodes: usize,
    pub(crate) n_switches: usize,
    pub(crate) radix: usize,
    /// node → its `(switch, port)` attachment.
    pub(crate) attach: Vec<(usize, usize)>,
    /// Flattened `[switch * radix + port]` — true where an HCA hangs off
    /// the port (the enforcement layer's edge/ingress distinction).
    pub(crate) is_host_port: Vec<bool>,
    /// Flattened `[switch * radix + port]` — true where the output link
    /// crosses the topology's deadlock dateline.
    pub(crate) is_dateline: Vec<bool>,
    pub(crate) attackers: Vec<usize>,
    /// Per-attacker invalid P_Key(s).
    pub(crate) attacker_pkey: Vec<PKey>,
    /// partition id → member nodes.
    pub(crate) partitions: Vec<Vec<usize>>,
    /// node → partition id.
    pub(crate) node_partition: Vec<usize>,
    pub(crate) mtu_tx: SimTime,
    pub(crate) auth_delay: SimTime,
    /// Number of event domains (the topology's *natural* partition —
    /// both engines always use it, so thread count never changes the
    /// decomposition or any result derived from it).
    pub(crate) num_domains: usize,
    pub(crate) dom_of_switch: Vec<usize>,
    pub(crate) dom_of_node: Vec<usize>,
    /// switch → index within its domain's `switches`.
    pub(crate) local_switch: Vec<u32>,
    /// node → index within its domain's `hcas`.
    pub(crate) local_node: Vec<u32>,
    /// The domain hosting the SM (the `sm_node`'s domain).
    pub(crate) sm_domain: usize,
    /// Conservative lookahead window `W`: every cross-domain emission is
    /// due at least `W` after the emitting domain's clock. `None` when a
    /// single domain exists (or `W` would be zero) — drivers then run a
    /// plain merge.
    pub(crate) lookahead: Option<SimTime>,
    /// Precomputed half-open attack windows, sorted and disjoint.
    pub(crate) attack_windows: Vec<(SimTime, SimTime)>,
    /// Directed-link index → index into its owning domain's fault
    /// injectors (empty when the fault layer is off). Global stream
    /// indices are preserved, so fault decisions are partition-invariant.
    pub(crate) fault_local: Vec<u32>,
}

impl Shared {
    /// Injector index for the output `port` of `switch` (HCA uplinks own
    /// indices `0..n_nodes`).
    fn switch_link(&self, switch: usize, port: usize) -> usize {
        self.n_nodes + switch * self.radix + port
    }
}

/// One event domain's mutable state: its switches and HCAs (dense local
/// indexing), its own packet arena, stats shard, and the staging buffer
/// handlers push scheduled events into.
pub(crate) struct Domain {
    pub(crate) idx: usize,
    /// This domain's clock: the time of the event currently being handled.
    pub(crate) now: SimTime,
    pub(crate) switches: Vec<SwitchState>,
    pub(crate) hcas: Vec<HcaState>,
    /// The subnet manager lives in exactly one domain (`sm_domain`).
    pub(crate) sm: Option<SubnetManager>,
    pub(crate) arena: PacketArena,
    /// Fault injectors owned by this domain (`None` ⇔ fault layer off).
    pub(crate) faults: Option<Vec<FaultInjector>>,
    pub(crate) stats: SimReport,
    wire_scratch: Vec<u8>,
    /// Events staged by handlers; the driver routes them (serial: one
    /// merged queue; parallel: own queue or a peer domain's mailbox).
    pub(crate) out: Vec<OutMsg>,
    /// Events handled in this domain.
    pub(crate) events: u64,
    /// SM-origin event sequence counter.
    sm_oseq: u32,
    /// flow id → packets still undelivered (registered at the
    /// *destination's* domain, where every packet of the flow terminates).
    flow_progress: HashMap<u32, usize>,
    /// Flows that completed here, with their delivery times; drivers
    /// drain this into [`FlowRecord::completed_at`].
    pub(crate) flow_done: Vec<(u32, SimTime)>,
    /// Host deliveries landed in this domain; the serial driver drains
    /// them into its global inbox.
    pub(crate) host_inbox: VecDeque<HostDelivery>,
}

/// A staged event: absolute due time, intrinsic tie-break key, target
/// domain. `ev` is already in cross-domain form (packet payload inlined)
/// when `target` differs from the staging domain.
pub(crate) struct OutMsg {
    pub(crate) target: usize,
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) ev: Event,
}

/// Who schedules an event — determines the intrinsic key's origin id
/// (`node`, `n_nodes + switch`, or `n_nodes + n_switches` for the SM).
#[derive(Clone, Copy)]
pub(crate) enum Origin {
    Node(usize),
    Switch(usize),
    Sm,
}

/// The domain an event must be handled in (the domain owning the entity
/// it mutates).
pub(crate) fn target_domain(sh: &Shared, ev: &Event) -> usize {
    match *ev {
        Event::Generate { node, .. }
        | Event::TryInject { node }
        | Event::HcaReceive { node, .. }
        | Event::HcaReceiveRemote { node, .. }
        | Event::HcaCredit { node, .. } => sh.dom_of_node[node],
        Event::SwitchArrive { switch, .. }
        | Event::SwitchArriveRemote { switch, .. }
        | Event::TryForward { switch, .. }
        | Event::SwitchCredit { switch, .. }
        | Event::FilterProgram { switch, .. } => sh.dom_of_switch[switch],
        Event::TrapDeliver { .. } => sh.sm_domain,
    }
}

/// Stage one event: compose its intrinsic key from the origin's counter,
/// convert packet-carrying events to their `*Remote` form when they cross
/// a domain boundary (releasing the packet from the source arena — the
/// target inserts it into *its* arena at handling time, keeping per-domain
/// arena high-water marks engine-independent), and push onto `dom.out`.
pub(crate) fn push_ev(sh: &Shared, dom: &mut Domain, origin: Origin, at: SimTime, ev: Event) {
    let seq = match origin {
        Origin::Node(node) => {
            let h = &mut dom.hcas[sh.local_node[node] as usize];
            h.oseq += 1;
            ((node as u64) << 32) | h.oseq as u64
        }
        Origin::Switch(s) => {
            let sw = &mut dom.switches[sh.local_switch[s] as usize];
            sw.oseq += 1;
            (((sh.n_nodes + s) as u64) << 32) | sw.oseq as u64
        }
        Origin::Sm => {
            dom.sm_oseq += 1;
            (((sh.n_nodes + sh.n_switches) as u64) << 32) | dom.sm_oseq as u64
        }
    };
    let target = target_domain(sh, &ev);
    let ev = if target == dom.idx {
        ev
    } else {
        debug_assert!(
            sh.lookahead.is_none_or(|w| at >= dom.now + w),
            "cross-domain event due inside the lookahead window"
        );
        match ev {
            Event::SwitchArrive {
                switch,
                port,
                packet,
            } => Event::SwitchArriveRemote {
                switch,
                port,
                packet: Box::new(dom.arena.release(packet)),
            },
            Event::HcaReceive { node, packet } => Event::HcaReceiveRemote {
                node,
                packet: Box::new(dom.arena.release(packet)),
            },
            other => other,
        }
    };
    dom.out.push(OutMsg {
        target,
        at,
        seq,
        ev,
    });
}

/// Whether the attack schedule is active at `t` (binary search over the
/// sorted, disjoint half-open windows).
pub(crate) fn attack_active(sh: &Shared, t: SimTime) -> bool {
    match sh.attack_windows.binary_search_by(|w| w.0.cmp(&t)) {
        Ok(_) => true,
        Err(i) => i > 0 && t < sh.attack_windows[i - 1].1,
    }
}

/// Precompute the attack schedule as sorted disjoint half-open windows.
/// `DutyCycle` is one closed-form window; `Probabilistic` rolls each
/// epoch on a dedicated seed stream and merges consecutive hits.
fn compute_attack_windows(cfg: &SimConfig) -> Vec<(SimTime, SimTime)> {
    match cfg.attack_schedule {
        AttackSchedule::DutyCycle => {
            let len = (cfg.attack_probability.clamp(0.0, 1.0) * cfg.duration as f64) as SimTime;
            if len == 0 {
                return Vec::new();
            }
            let start = (cfg.warmup * 2).min(cfg.duration.saturating_sub(len));
            vec![(start, start + len)]
        }
        AttackSchedule::Probabilistic => {
            let mut rng = cfg.seed.stream(ATTACK_WINDOW_STREAM).rng();
            let p = cfg.attack_probability.clamp(0.0, 1.0);
            let epoch = cfg.attack_epoch.max(1);
            let mut windows: Vec<(SimTime, SimTime)> = Vec::new();
            let mut t: SimTime = 0;
            while t <= cfg.duration {
                if rng.gen_bool(p) {
                    match windows.last_mut() {
                        Some(w) if w.1 == t => w.1 = t + epoch,
                        _ => windows.push((t, t + epoch)),
                    }
                }
                t += epoch;
            }
            windows
        }
    }
}

/// The engine-agnostic simulation core: immutable [`Shared`] state plus
/// one [`Domain`] per topology partition. Both drivers are thin loops
/// over this — the serial one merges every domain into a single queue,
/// the parallel one gives each domain its own and synchronizes on
/// lookahead windows.
pub(crate) struct SimCore {
    pub(crate) shared: Shared,
    pub(crate) domains: Vec<Domain>,
    pub(crate) flows: Vec<FlowRecord>,
}

impl SimCore {
    pub(crate) fn new(cfg: SimConfig) -> SimCore {
        let topo = cfg.build_topology();
        let n = topo.num_nodes();
        let n_sw = topo.num_switches();
        let radix = topo.radix();
        let attach: Vec<(usize, usize)> = (0..n).map(|node| topo.host_attachment(node)).collect();
        let mut is_host_port = vec![false; n_sw * radix];
        for &(s, p) in &attach {
            is_host_port[s * radix + p] = true;
        }
        let mut is_dateline = vec![false; n_sw * radix];
        for s in 0..n_sw {
            for p in 0..radix {
                is_dateline[s * radix + p] = topo.is_dateline(s, p);
            }
        }
        // The master RNG is construction-only (partition layout, attacker
        // placement, attacker keys); every runtime draw comes from a
        // per-node stream so results can't depend on event order.
        let mut rng = cfg.seed.rng();

        // ---- random partitioning into num_partitions groups ----
        let mut order: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut order);
        let per = n.div_ceil(cfg.num_partitions.max(1));
        let mut partitions: Vec<Vec<usize>> = Vec::new();
        let mut node_partition = vec![0usize; n];
        for (pid, chunk) in order.chunks(per).enumerate() {
            for &node in chunk {
                node_partition[node] = pid;
            }
            partitions.push(chunk.to_vec());
        }
        let pkey_of = |pid: usize| PKey(0x8000 | (pid as u16 + 1));

        // ---- subnet manager ----
        let mut sm = SubnetManager::new(n, (cfg.seed ^ 0x5151).0);
        for (node, &(s, p)) in attach.iter().enumerate() {
            sm.attach(topo.lid_of(node), s, p);
        }
        for (pid, members) in partitions.iter().enumerate() {
            // Key distribution itself is exercised in ib-mgmt; the sim only
            // needs membership, so no public keys are registered here.
            let _ = sm.create_partition(PartitionConfig {
                pkey: pkey_of(pid),
                members: members.clone(),
            });
        }

        // ---- attackers: random distinct nodes ----
        let mut pool: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut pool);
        let attackers: Vec<usize> = pool.into_iter().take(cfg.num_attackers).collect();
        // Each attacker floods with one invalid key — invalid means no
        // legitimate partition uses it (base outside 1..=num_partitions).
        let attacker_pkey: Vec<PKey> = attackers
            .iter()
            .map(|_| PKey(0x8000 | rng.gen_range(0x100..0x7FFF)))
            .collect();

        // ---- event domains: the topology's NATURAL partition, always ----
        // Thread count only chooses how domains map onto workers; the
        // decomposition itself is fixed, so every derived quantity (event
        // keys, arena high-waters, stat merge order) is identical at any
        // parallelism — including 1.
        let part = Partition::of(&*topo, usize::MAX);
        let nd = part.num_domains;
        let dom_of_switch = part.domain_of;
        let mut local_switch = vec![0u32; n_sw];
        let mut sw_count = vec![0u32; nd];
        for s in 0..n_sw {
            let d = dom_of_switch[s];
            local_switch[s] = sw_count[d];
            sw_count[d] += 1;
        }
        let dom_of_node: Vec<usize> = (0..n).map(|node| dom_of_switch[attach[node].0]).collect();
        let mut local_node = vec![0u32; n];
        let mut node_count = vec![0u32; nd];
        for node in 0..n {
            let d = dom_of_node[node];
            local_node[node] = node_count[d];
            node_count[d] += 1;
        }
        let sm_domain = dom_of_node[cfg.sm_node];
        // Conservative lookahead: the smallest latency any cross-domain
        // event class can carry. Propagation bounds SwitchArrive and the
        // credit returns; the trap and program latencies bound the SM loop.
        let w = cfg
            .propagation_delay
            .min(cfg.trap_latency)
            .min(cfg.program_latency);
        let lookahead = if nd <= 1 || w == 0 { None } else { Some(w) };

        // ---- switches, grouped into their domains ----
        let all_pkeys: Vec<PKey> = (0..partitions.len()).map(pkey_of).collect();
        // Ingress filtering is configured per host port: each attachment
        // admits only its node's partition key.
        let mut if_ports: Vec<Vec<Option<Vec<PKey>>>> = vec![vec![None; radix]; n_sw];
        for (node, &(s, p)) in attach.iter().enumerate() {
            if_ports[s][p] = Some(vec![pkey_of(node_partition[node])]);
        }
        let mut dom_switches: Vec<Vec<SwitchState>> = (0..nd).map(|_| Vec::new()).collect();
        for (s, ports) in if_ports.iter_mut().enumerate() {
            let ports = std::mem::take(ports);
            let enforcement: Box<dyn PartitionEnforcer + Send> = match cfg.enforcement {
                EnforcementKind::NoFiltering => Box::new(NoEnforcer),
                EnforcementKind::Dpt => Box::new(DptEnforcer::new(all_pkeys.iter().copied())),
                EnforcementKind::If => Box::new(IfEnforcer::new(ports)),
                EnforcementKind::Sif => Box::new(SifEnforcer::new(
                    radix,
                    cfg.sif_idle_timeout,
                    // Cap the invalid table at a small multiple of the host
                    // partition table (paper: stop growing once it would
                    // exceed the partition table; with 1 membership we allow
                    // a few entries so multi-key attackers are still caught).
                    8,
                )),
            };
            dom_switches[dom_of_switch[s]].push(SwitchState {
                in_q: (0..radix)
                    .map(|_| (0..cfg.num_vls).map(|_| VecDeque::new()).collect())
                    .collect(),
                out_busy_until: vec![0; radix],
                out_credits: (0..radix)
                    .map(|_| vec![cfg.vl_buffer_packets; cfg.num_vls])
                    .collect(),
                forward_pending: vec![false; radix],
                rr: vec![0; radix],
                high_grants: vec![0; radix],
                enforcement,
                oseq: 0,
            });
        }

        // ---- HCAs, grouped into their attachment switch's domain ----
        let mut dom_hcas: Vec<Vec<HcaState>> = (0..nd).map(|_| Vec::new()).collect();
        for node in 0..n {
            dom_hcas[dom_of_node[node]].push(HcaState {
                send_q: (0..cfg.num_vls).map(|_| VecDeque::new()).collect(),
                tx_busy_until: 0,
                inject_pending: false,
                credits: vec![cfg.vl_buffer_packets; cfg.num_vls],
                table: PartitionTable::from_keys([pkey_of(node_partition[node])]),
                throttle: TrapThrottle::new(50 * crate::time::US),
                keyed_peers: vec![false; n],
                backoff_skips: 0,
                rng: cfg.seed.stream(node as u64).rng(),
                oseq: 0,
                next_pkt: 0,
            });
        }

        let mtu_tx = tx_time_ps(cfg.mtu_bytes, cfg.link_gbps);
        let auth_delay = match cfg.auth {
            AuthMode::None => 0,
            _ => cfg.auth_cycles_per_message * cfg.cycle_time,
        };
        // Each directed link keeps its *global* seed stream regardless of
        // which domain owns it, so fault decisions are partition-invariant.
        let mut fault_local = Vec::new();
        let mut dom_faults: Vec<Vec<FaultInjector>> = (0..nd).map(|_| Vec::new()).collect();
        let faults_active = cfg.fault.is_active();
        if faults_active {
            let fseed = cfg.seed ^ 0xFA17_FA17;
            let links = n + n_sw * radix;
            fault_local = vec![0u32; links];
            for i in 0..links {
                let d = if i < n {
                    dom_of_node[i]
                } else {
                    dom_of_switch[(i - n) / radix]
                };
                fault_local[i] = dom_faults[d].len() as u32;
                dom_faults[d].push(FaultInjector::new(cfg.fault, fseed.stream(i as u64)));
            }
        }

        let attack_windows = if attackers.is_empty() {
            Vec::new()
        } else {
            compute_attack_windows(&cfg)
        };

        let shared = Shared {
            topo,
            n_nodes: n,
            n_switches: n_sw,
            radix,
            attach,
            is_host_port,
            is_dateline,
            attackers,
            attacker_pkey,
            partitions,
            node_partition,
            mtu_tx,
            auth_delay,
            num_domains: nd,
            dom_of_switch,
            dom_of_node,
            local_switch,
            local_node,
            sm_domain,
            lookahead,
            attack_windows,
            fault_local,
            cfg,
        };
        let mut sm_opt = Some(sm);
        let domains: Vec<Domain> = dom_switches
            .into_iter()
            .zip(dom_hcas)
            .zip(dom_faults)
            .enumerate()
            .map(|(d, ((switches, hcas), faults))| Domain {
                idx: d,
                now: 0,
                switches,
                hcas,
                sm: if d == sm_domain { sm_opt.take() } else { None },
                arena: PacketArena::new(),
                faults: faults_active.then_some(faults),
                stats: SimReport::default(),
                wire_scratch: Vec::new(),
                out: Vec::new(),
                events: 0,
                sm_oseq: 0,
                flow_progress: HashMap::new(),
                flow_done: Vec::new(),
                host_inbox: VecDeque::new(),
            })
            .collect();
        let mut core = SimCore {
            shared,
            domains,
            flows: Vec::new(),
        };
        core.prime();
        core
    }

    /// Schedule the initial traffic and the attack-window openers. The
    /// staged events stay in each domain's `out` buffer for the driver to
    /// route into its queue structure.
    fn prime(&mut self) {
        let sh = &self.shared;
        for node in 0..sh.n_nodes {
            if sh.attackers.contains(&node) {
                continue; // attacker nodes send only attack traffic (§3.1)
            }
            let dom = &mut self.domains[sh.dom_of_node[node]];
            let ln = sh.local_node[node] as usize;
            if sh.cfg.traffic.realtime_load > 0.0 {
                let gap = sh.cfg.interarrival_ps(sh.cfg.traffic.realtime_load) as SimTime;
                let jitter = dom.hcas[ln].rng.gen_range(0..gap.max(1));
                push_ev(
                    sh,
                    dom,
                    Origin::Node(node),
                    jitter,
                    Event::Generate {
                        node,
                        class: TrafficClass::Realtime,
                    },
                );
            }
            if sh.cfg.traffic.best_effort_load > 0.0 {
                let mean = sh.cfg.interarrival_ps(sh.cfg.traffic.best_effort_load);
                let gap = exp_gap(&mut dom.hcas[ln].rng, mean);
                push_ev(
                    sh,
                    dom,
                    Origin::Node(node),
                    gap,
                    Event::Generate {
                        node,
                        class: TrafficClass::BestEffort,
                    },
                );
            }
        }
        // One opener per attacker per window; the per-MTU Generate chain
        // each opener starts dies at the window's close.
        for &(start, _) in &sh.attack_windows {
            for &a in &sh.attackers {
                let dom = &mut self.domains[sh.dom_of_node[a]];
                push_ev(
                    sh,
                    dom,
                    Origin::Node(a),
                    start,
                    Event::Generate {
                        node: a,
                        class: TrafficClass::Attack,
                    },
                );
            }
        }
    }

    /// Merge every domain's report shard (fixed domain order, so the
    /// closed-form Welford combines are deterministic) and fill in the
    /// derived whole-run fields.
    pub(crate) fn merged_report(&self) -> SimReport {
        let mut report = SimReport::default();
        for dom in &self.domains {
            report.merge(&dom.stats);
        }
        report.backoff_skips = self
            .domains
            .iter()
            .flat_map(|d| d.hcas.iter())
            .map(|h| h.backoff_skips)
            .sum();
        report.attack_active_fraction = if self.shared.cfg.duration > 0 {
            let active: SimTime = self
                .shared
                .attack_windows
                .iter()
                .map(|&(s, e)| e.min(self.shared.cfg.duration).saturating_sub(s))
                .sum();
            active as f64 / self.shared.cfg.duration as f64
        } else {
            0.0
        };
        report
    }

    /// Events handled across all domains.
    pub(crate) fn events_processed(&self) -> u64 {
        self.domains.iter().map(|d| d.events).sum()
    }

    /// Sum of the per-domain arena high-water marks (deterministic: the
    /// deferred-insertion rule keeps every domain's arena history
    /// identical under both drivers).
    pub(crate) fn peak_packets(&self) -> usize {
        self.domains.iter().map(|d| d.arena.capacity()).sum()
    }

    /// Queue a host wire image at `src`'s HCA (see [`Simulator::post_host`]).
    pub(crate) fn post_host_at(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        vl: u8,
        bytes: Vec<u8>,
    ) {
        let sh = &self.shared;
        let dom = &mut self.domains[sh.dom_of_node[src]];
        let ln = sh.local_node[src] as usize;
        let hca = &mut dom.hcas[ln];
        hca.next_pkt += 1;
        let id = ((src as u64) << 32) | hca.next_pkt as u64;
        dom.stats.generated += 1;
        let pkey = PKey(0x8000 | (sh.node_partition[src] as u16 + 1));
        let class = if vl == 15 {
            TrafficClass::Management
        } else {
            TrafficClass::BestEffort
        };
        let packet = SimPacket {
            id,
            src,
            dst,
            class,
            pkey,
            vl,
            bytes: bytes.len(),
            gen_time: now,
            inject_time: 0,
            trap: None,
            icrc: 0,
            corrupted: false,
            wire: Some(bytes),
            flow: None,
        };
        let qvl = vl as usize;
        let pref = dom.arena.insert(packet);
        dom.hcas[ln].send_q[qvl].push_back((pref, now));
        Ctx { sh, dom }.schedule_inject(src, now);
    }

    /// Queue a finite transfer (see [`Simulator::post_flow`]). The flow's
    /// outstanding-packet count registers in the *destination's* domain —
    /// where every packet of the flow terminates — before any packet is
    /// created, so same-domain flows can't race their own completion.
    pub(crate) fn post_flow_at(
        &mut self,
        now: SimTime,
        src: usize,
        dst: usize,
        bytes: u64,
    ) -> usize {
        let sh = &self.shared;
        assert!(src < sh.n_nodes && dst < sh.n_nodes && src != dst);
        let flow = self.flows.len() as u32;
        let mtu = sh.cfg.mtu_bytes as u64;
        let npkts = bytes.div_ceil(mtu).max(1) as usize;
        let pkey = PKey(0x8000 | (sh.node_partition[src] as u16 + 1));
        self.domains[sh.dom_of_node[dst]]
            .flow_progress
            .insert(flow, npkts);
        let dom = &mut self.domains[sh.dom_of_node[src]];
        let ln = sh.local_node[src] as usize;
        let qvl = TrafficClass::BestEffort.vl() as usize;
        let mut left = bytes;
        for _ in 0..npkts {
            let size = left.min(mtu).max(1) as usize;
            left = left.saturating_sub(mtu);
            let hca = &mut dom.hcas[ln];
            hca.next_pkt += 1;
            let id = ((src as u64) << 32) | hca.next_pkt as u64;
            dom.stats.generated += 1;
            let mut packet = SimPacket {
                id,
                src,
                dst,
                class: TrafficClass::BestEffort,
                pkey,
                vl: TrafficClass::BestEffort.vl(),
                bytes: size,
                gen_time: now,
                inject_time: 0,
                trap: None,
                icrc: 0,
                corrupted: false,
                wire: None,
                flow: Some(flow),
            };
            if dom.faults.is_some() {
                packet.icrc = wire_icrc(&mut dom.wire_scratch, &packet);
            }
            let pref = dom.arena.insert(packet);
            dom.hcas[ln].send_q[qvl].push_back((pref, now));
        }
        Ctx { sh, dom }.schedule_inject(src, now);
        self.flows.push(FlowRecord {
            src,
            dst,
            bytes,
            posted_at: now,
            completed_at: None,
        });
        flow as usize
    }

    /// Drain every domain's completion log into the flow records (the
    /// parallel driver calls this once after the run; the serial driver
    /// drains incrementally and finds nothing left here).
    pub(crate) fn finalize_flows(&mut self) {
        let flows = &mut self.flows;
        for dom in &mut self.domains {
            for (f, at) in dom.flow_done.drain(..) {
                flows[f as usize].completed_at = Some(at);
            }
        }
    }
}

/// A handler's view: the shared tables plus exactly one domain. Every
/// event mutates only its target domain; anything bound for another
/// domain goes through [`push_ev`] and stays staged until the driver
/// routes it.
pub(crate) struct Ctx<'a> {
    pub(crate) sh: &'a Shared,
    pub(crate) dom: &'a mut Domain,
}

impl Ctx<'_> {
    fn push(&mut self, origin: Origin, at: SimTime, ev: Event) {
        push_ev(self.sh, self.dom, origin, at, ev);
    }

    /// Fate of one packet crossing directed link `link` (clean delivery
    /// when the fault layer is disabled).
    fn link_fault(&mut self, link: usize) -> FaultOutcome {
        match &mut self.dom.faults {
            Some(inj) => inj[self.sh.fault_local[link] as usize].decide(),
            None => FaultOutcome::Deliver {
                corrupt: false,
                extra_delay_ps: 0,
            },
        }
    }

    /// The output port `switch` forwards the referenced packet on — the
    /// topology's flow-hash-steered route, so every packet of a (src, dst)
    /// flow takes the same path while distinct flows spread across the
    /// fabric's path diversity.
    fn route_of(&self, switch: usize, pref: PacketRef) -> usize {
        let p = self.dom.arena.get(pref);
        self.sh
            .topo
            .route_flow(switch, p.dst, flow_hash(p.src, p.dst))
    }

    fn class_stats(&mut self, class: TrafficClass) -> &mut ClassStats {
        match class {
            TrafficClass::Realtime => &mut self.dom.stats.realtime,
            // Management shares the attack bucket for drop accounting; its
            // deliveries are tracked separately in `mgmt_delivered`.
            TrafficClass::BestEffort => &mut self.dom.stats.best_effort,
            TrafficClass::Attack | TrafficClass::Management => &mut self.dom.stats.attack,
        }
    }

    pub(crate) fn handle(&mut self, ev: Event) {
        match ev {
            Event::Generate { node, class } => self.on_generate(node, class),
            Event::TryInject { node } => self.on_try_inject(node),
            Event::SwitchArrive {
                switch,
                port,
                packet,
            } => self.on_switch_arrive(switch, port, packet),
            Event::SwitchArriveRemote {
                switch,
                port,
                packet,
            } => {
                // A packet handed over from another domain: it enters this
                // domain's arena at the same instant it would have entered
                // a global one, so high-water marks stay engine-independent.
                let pref = self.dom.arena.insert(*packet);
                self.on_switch_arrive(switch, port, pref);
            }
            Event::TryForward { switch, port } => self.on_try_forward(switch, port),
            Event::HcaReceive { node, packet } => self.on_hca_receive(node, packet),
            Event::HcaReceiveRemote { node, packet } => {
                let pref = self.dom.arena.insert(*packet);
                self.on_hca_receive(node, pref);
            }
            Event::SwitchCredit { switch, port, vl } => {
                let ls = self.sh.local_switch[switch] as usize;
                self.dom.switches[ls].out_credits[port][vl as usize] += 1;
                let now = self.dom.now;
                self.schedule_forward(switch, port, now);
            }
            Event::HcaCredit { node, vl } => {
                let ln = self.sh.local_node[node] as usize;
                self.dom.hcas[ln].credits[vl as usize] += 1;
                let now = self.dom.now;
                self.schedule_inject(node, now);
            }
            Event::TrapDeliver { trap } => self.on_trap_deliver(trap),
            Event::FilterProgram { switch, port, pkey } => {
                let ls = self.sh.local_switch[switch] as usize;
                let now = self.dom.now;
                self.dom.switches[ls]
                    .enforcement
                    .register_invalid(now, port, pkey);
            }
        }
    }

    fn on_trap_deliver(&mut self, trap: Trap) {
        self.dom.stats.traps += 1;
        let sm = self
            .dom
            .sm
            .as_mut()
            .expect("TrapDeliver routed to the SM's domain");
        if let Some(action) = sm.handle_trap(&trap) {
            let at = self.dom.now + self.sh.cfg.program_latency;
            self.push(
                Origin::Sm,
                at,
                Event::FilterProgram {
                    switch: action.switch,
                    port: action.port,
                    pkey: action.pkey,
                },
            );
        }
    }

    // ---------------------------------------------------------------- traffic

    fn on_generate(&mut self, node: usize, class: TrafficClass) {
        let sh = self.sh;
        let now = self.dom.now;
        let ln = sh.local_node[node] as usize;
        match class {
            // Management traffic is event-driven (traps), never a source.
            TrafficClass::Management => {}
            TrafficClass::Realtime => {
                let gap = sh.cfg.interarrival_ps(sh.cfg.traffic.realtime_load) as SimTime;
                if now + gap <= sh.cfg.duration {
                    self.push(
                        Origin::Node(node),
                        now + gap,
                        Event::Generate { node, class },
                    );
                }
                // Back-off: a realtime source checks network headroom via
                // its local queue depth before emitting.
                let vl = class.vl() as usize;
                if self.dom.hcas[ln].send_q[vl].len() >= sh.cfg.traffic.realtime_backoff_queue {
                    self.dom.hcas[ln].backoff_skips += 1;
                    return;
                }
                if let Some(dst) = self.pick_partition_peer(node) {
                    self.emit(node, dst, class);
                }
            }
            TrafficClass::BestEffort => {
                let mean = sh.cfg.interarrival_ps(sh.cfg.traffic.best_effort_load);
                let gap = exp_gap(&mut self.dom.hcas[ln].rng, mean);
                if now + gap <= sh.cfg.duration {
                    self.push(
                        Origin::Node(node),
                        now + gap,
                        Event::Generate { node, class },
                    );
                }
                if let Some(dst) = self.pick_partition_peer(node) {
                    self.emit(node, dst, class);
                }
            }
            TrafficClass::Attack => {
                if !attack_active(sh, now) || now > sh.cfg.duration {
                    return; // the window closed: the chain stops
                }
                // Full speed: next generation exactly one MTU time later.
                self.push(
                    Origin::Node(node),
                    now + sh.mtu_tx,
                    Event::Generate { node, class },
                );
                // Bound the attacker's own backlog so an over-driven source
                // doesn't consume unbounded memory (its queue depth is not a
                // measured quantity).
                let backlog: usize = self.dom.hcas[ln].send_q.iter().map(VecDeque::len).sum();
                if backlog >= 32 {
                    return;
                }
                match sh.cfg.attack_keys {
                    AttackKeys::RandomInvalid => {
                        let n = sh.n_nodes;
                        let mut dst = self.dom.hcas[ln].rng.gen_range(0..n);
                        if dst == node {
                            dst = (dst + 1) % n;
                        }
                        let idx = sh.attackers.iter().position(|a| *a == node).unwrap_or(0);
                        let pkey = sh.attacker_pkey[idx];
                        self.emit_with_pkey(node, dst, class, pkey);
                    }
                    // §7's residual attack: flood *within the attacker's own
                    // partition* with its valid key — every check passes, so
                    // "any ingress filtering is useless".
                    AttackKeys::Valid => {
                        if let Some(dst) = self.pick_partition_peer(node) {
                            let pkey = PKey(0x8000 | (sh.node_partition[node] as u16 + 1));
                            self.emit_with_pkey(node, dst, class, pkey);
                        }
                    }
                    // §7's SM DoS: dump MAD-sized management packets at the
                    // SM node on VL15 — they cross every partition check.
                    AttackKeys::SmFlood => {
                        let dst = sh.cfg.sm_node;
                        if dst != node {
                            self.emit_management(node, dst, TrafficClass::Attack, None);
                        }
                    }
                }
            }
        }
    }

    fn pick_partition_peer(&mut self, node: usize) -> Option<usize> {
        let sh = self.sh;
        let members = &sh.partitions[sh.node_partition[node]];
        // Peers exclude only self: victims don't know which partition
        // members are compromised, so attacker nodes still *receive*
        // legitimate traffic (they just don't send any, per §3.1).
        let candidates: Vec<usize> = members.iter().copied().filter(|m| *m != node).collect();
        if candidates.is_empty() {
            None
        } else {
            let rng = &mut self.dom.hcas[sh.local_node[node] as usize].rng;
            Some(candidates[rng.gen_range(0..candidates.len())])
        }
    }

    fn emit(&mut self, src: usize, dst: usize, class: TrafficClass) {
        let pkey = PKey(0x8000 | (self.sh.node_partition[src] as u16 + 1));
        self.emit_with_pkey(src, dst, class, pkey);
    }

    fn emit_with_pkey(&mut self, src: usize, dst: usize, class: TrafficClass, pkey: PKey) {
        let sh = self.sh;
        let now = self.dom.now;
        let ln = sh.local_node[src] as usize;
        let hca = &mut self.dom.hcas[ln];
        hca.next_pkt += 1;
        let id = ((src as u64) << 32) | hca.next_pkt as u64;
        // Attackers spray across both data VLs ("dump tremendous traffic")
        // so realtime and best-effort both feel the flood; legitimate
        // traffic stays on its class VL.
        let vl = if class == TrafficClass::Attack {
            hca.rng.gen_range(0..2)
        } else {
            class.vl()
        };
        self.dom.stats.generated += 1;
        let mut packet = SimPacket {
            id,
            src,
            dst,
            class,
            pkey,
            vl,
            bytes: sh.cfg.mtu_bytes,
            gen_time: now,
            inject_time: 0,
            trap: None,
            icrc: 0,
            corrupted: false,
            wire: None,
            flow: None,
        };
        // Emission-time ICRC — only consulted when the fault layer can
        // corrupt packets in transit, so fault-free runs skip it.
        if self.dom.faults.is_some() {
            packet.icrc = wire_icrc(&mut self.dom.wire_scratch, &packet);
        }
        // QP-level key management: first contact with a peer pays one RTT
        // before the packet may leave (§4.3 / Figure 6).
        let keyed = &mut self.dom.hcas[ln].keyed_peers;
        let ready =
            if sh.cfg.auth == AuthMode::QpLevel && class != TrafficClass::Attack && !keyed[dst] {
                keyed[dst] = true;
                now + sh.cfg.key_exchange_rtt
            } else {
                now
            };
        let qvl = packet.vl as usize;
        let pref = self.dom.arena.insert(packet);
        self.dom.hcas[ln].send_q[qvl].push_back((pref, ready));
        self.schedule_inject(src, ready);
    }

    /// Emit a 256-byte MAD (+ headers) on VL15. `class` distinguishes
    /// legitimate management traffic from an SM flood; `trap` carries the
    /// notice for in-band trap delivery.
    fn emit_management(&mut self, src: usize, dst: usize, class: TrafficClass, trap: Option<Trap>) {
        let now = self.dom.now;
        let ln = self.sh.local_node[src] as usize;
        let hca = &mut self.dom.hcas[ln];
        hca.next_pkt += 1;
        let id = ((src as u64) << 32) | hca.next_pkt as u64;
        self.dom.stats.generated += 1;
        let mut packet = SimPacket {
            id,
            src,
            dst,
            class,
            pkey: PKey::DEFAULT,
            vl: 15,
            // MAD payload + LRH/BTH/DETH + ICRC/VCRC.
            bytes: ib_packet::mad::MAD_LEN + 8 + 12 + 8 + 6,
            gen_time: now,
            inject_time: 0,
            trap,
            icrc: 0,
            corrupted: false,
            wire: None,
            flow: None,
        };
        if self.dom.faults.is_some() {
            packet.icrc = wire_icrc(&mut self.dom.wire_scratch, &packet);
        }
        let pref = self.dom.arena.insert(packet);
        self.dom.hcas[ln].send_q[15].push_back((pref, now));
        self.schedule_inject(src, now);
    }

    // ---------------------------------------------------------------- HCA TX

    fn schedule_inject(&mut self, node: usize, at: SimTime) {
        let ln = self.sh.local_node[node] as usize;
        if !self.dom.hcas[ln].inject_pending {
            self.dom.hcas[ln].inject_pending = true;
            let at = at.max(self.dom.now);
            self.push(Origin::Node(node), at, Event::TryInject { node });
        }
    }

    fn on_try_inject(&mut self, node: usize) {
        let sh = self.sh;
        let now = self.dom.now;
        let ln = sh.local_node[node] as usize;
        self.dom.hcas[ln].inject_pending = false;
        if now < self.dom.hcas[ln].tx_busy_until {
            let at = self.dom.hcas[ln].tx_busy_until;
            self.schedule_inject(node, at);
            return;
        }
        // VL priority: scan data VLs from highest to lowest.
        let mut chosen: Option<usize> = None;
        let mut earliest_block: Option<SimTime> = None;
        for vl in (0..sh.cfg.num_vls).rev() {
            let Some(&(_, ready)) = self.dom.hcas[ln].send_q[vl].front() else {
                continue;
            };
            if ready > now {
                earliest_block = Some(earliest_block.map_or(ready, |e: SimTime| e.min(ready)));
                continue;
            }
            if self.dom.hcas[ln].credits[vl] == 0 {
                continue; // blocked on credits; a credit event will retry
            }
            chosen = Some(vl);
            break;
        }
        let Some(vl) = chosen else {
            if let Some(at) = earliest_block {
                self.schedule_inject(node, at);
            }
            return;
        };
        let (pref, _) = self.dom.hcas[ln].send_q[vl].pop_front().unwrap();
        self.dom.hcas[ln].credits[vl] -= 1;
        // MAC generation occupies the sender before the first byte (§6:
        // "one additional stage at each end node per message").
        let start = now + sh.auth_delay;
        let (bytes, class, pvl) = {
            let packet = self.dom.arena.get_mut(pref);
            packet.inject_time = start;
            (packet.bytes, packet.class, packet.vl)
        };
        let tx_end = start + tx_time_ps(bytes, sh.cfg.link_gbps);
        self.dom.hcas[ln].tx_busy_until = tx_end;
        let arrival = tx_end + sh.cfg.propagation_delay;
        match self.link_fault(node) {
            FaultOutcome::Drop => {
                // The switch never sees the packet, so it can't return the
                // buffer credit — model the slot as freeing on arrival.
                self.dom.stats.link_drops += 1;
                self.class_stats(class).dropped += 1;
                self.dom.arena.release(pref);
                self.push(
                    Origin::Node(node),
                    arrival,
                    Event::HcaCredit { node, vl: pvl },
                );
            }
            FaultOutcome::Deliver {
                corrupt,
                extra_delay_ps,
            } => {
                self.dom.arena.get_mut(pref).corrupted |= corrupt;
                let (att_sw, att_port) = sh.attach[node];
                self.push(
                    Origin::Node(node),
                    arrival + extra_delay_ps,
                    Event::SwitchArrive {
                        switch: att_sw,
                        port: att_port,
                        packet: pref,
                    },
                );
            }
        }
        // Re-evaluate once the link frees.
        self.schedule_inject(node, tx_end);
    }

    // ------------------------------------------------------------- switching

    fn on_switch_arrive(&mut self, switch: usize, port: usize, pref: PacketRef) {
        let sh = self.sh;
        let now = self.dom.now;
        let ls = sh.local_switch[switch] as usize;
        let (pvl, src, dst, pkey, class) = {
            let packet = self.dom.arena.get(pref);
            (packet.vl, packet.src, packet.dst, packet.pkey, packet.class)
        };
        let is_edge = sh.is_host_port[switch * sh.radix + port];
        // Management packets cross partition enforcement unchecked — "a
        // management packet can reach SM regardless of its partition" (§7),
        // which is precisely what makes the SM-flood attack possible.
        let check = if pvl == 15 {
            FilterCheck {
                decision: FilterDecision::Pass,
                lookup_cycles: 0,
            }
        } else {
            self.dom.switches[ls]
                .enforcement
                .check(now, port, is_edge, sh.topo.lid_of(src), pkey)
        };
        self.dom.stats.lookup_cycles += check.lookup_cycles;
        if check.decision == FilterDecision::Drop {
            self.dom.stats.filter_drops += 1;
            self.class_stats(class).dropped += 1;
            self.dom.arena.release(pref);
            self.return_credit(switch, port, pvl);
            return;
        }
        let vl = pvl as usize;
        let out_port = sh.topo.route_flow(switch, dst, flow_hash(src, dst));
        self.dom.switches[ls].in_q[port][vl].push_back(QueuedPacket {
            packet: pref,
            lookup_cycles: check.lookup_cycles,
        });
        self.schedule_forward(switch, out_port, now + sh.cfg.switch_latency);
    }

    fn schedule_forward(&mut self, switch: usize, port: usize, at: SimTime) {
        let ls = self.sh.local_switch[switch] as usize;
        if !self.dom.switches[ls].forward_pending[port] {
            self.dom.switches[ls].forward_pending[port] = true;
            let at = at.max(self.dom.now);
            self.push(
                Origin::Switch(switch),
                at,
                Event::TryForward { switch, port },
            );
        }
    }

    fn on_try_forward(&mut self, switch: usize, out_port: usize) {
        let sh = self.sh;
        let now = self.dom.now;
        let ls = sh.local_switch[switch] as usize;
        self.dom.switches[ls].forward_pending[out_port] = false;
        if now < self.dom.switches[ls].out_busy_until[out_port] {
            let at = self.dom.switches[ls].out_busy_until[out_port];
            self.schedule_forward(switch, out_port, at);
            return;
        }
        let peer = sh.topo.peer(switch, out_port);
        // Crossing the topology's dateline escalates data packets to the
        // next VL — the per-(port, VL) buffers double as the virtual
        // channels that break credit-deadlock cycles (dragonfly global
        // links; a no-op on mesh and fat-tree). VL15 management never
        // escalates.
        let dateline = sh.is_dateline[switch * sh.radix + out_port];
        let out_vl = move |vl: usize| if dateline && vl < 8 { vl + 1 } else { vl };
        // Arbitrate: find the best candidate per VL (round-robin over input
        // ports within a VL), then apply the VL arbitration policy.
        let nports = sh.radix;
        let mut best_high: Option<(usize, usize)> = None; // highest VL > 0
        let mut best_low: Option<(usize, usize)> = None; // VL 0
        for vl in (0..sh.cfg.num_vls).rev() {
            if vl > 0 && best_high.is_some() {
                continue;
            }
            if vl == 0 && best_low.is_some() {
                continue;
            }
            // Credit check applies to switch-to-switch hops; HCA receive
            // buffers are modeled as ample (the HCA drains at line rate).
            if let Peer::Switch { .. } = peer {
                if self.dom.switches[ls].out_credits[out_port][out_vl(vl)] == 0 {
                    continue;
                }
            }
            let start = self.dom.switches[ls].rr[out_port];
            for k in 0..nports {
                let in_port = (start + k) % nports;
                let head = self.dom.switches[ls].in_q[in_port][vl]
                    .front()
                    .map(|q| q.packet);
                if let Some(head) = head {
                    if self.route_of(switch, head) == out_port {
                        if vl > 0 {
                            best_high = Some((in_port, vl));
                        } else {
                            best_low = Some((in_port, vl));
                        }
                        break;
                    }
                }
            }
        }
        let selected = match (sh.cfg.arbitration, best_high, best_low) {
            (_, None, low) => low,
            (ArbitrationPolicy::StrictPriority, high, _) => high,
            (ArbitrationPolicy::Weighted { high_limit }, high, low) => {
                // IBA-style weighted tables: after `high_limit` consecutive
                // high-priority grants, a pending low-priority packet gets
                // one slot (prevents total starvation of VL0).
                if self.dom.switches[ls].high_grants[out_port] >= high_limit && low.is_some() {
                    low
                } else {
                    high
                }
            }
        };
        let Some((in_port, vl)) = selected else {
            return;
        };
        if vl > 0 {
            self.dom.switches[ls].high_grants[out_port] += 1;
        } else {
            self.dom.switches[ls].high_grants[out_port] = 0;
        }
        self.dom.switches[ls].rr[out_port] = (in_port + 1) % nports;
        let qp = self.dom.switches[ls].in_q[in_port][vl].pop_front().unwrap();
        let pref = qp.packet;
        let (bytes, class) = {
            let packet = self.dom.arena.get(pref);
            (packet.bytes, packet.class)
        };
        // Service time: enforcement lookups + store-and-forward transmit.
        let service = qp.lookup_cycles * sh.cfg.cycle_time + tx_time_ps(bytes, sh.cfg.link_gbps);
        let tx_end = now + service;
        self.dom.switches[ls].out_busy_until[out_port] = tx_end;
        match peer {
            Peer::Switch {
                switch: next,
                port: next_port,
            } => {
                // The downstream buffer class is the (possibly escalated)
                // VL: credits, the arrival queue, and the credit-return on
                // a wire drop must all agree on it.
                let fvl = out_vl(vl);
                self.dom.switches[ls].out_credits[out_port][fvl] -= 1;
                let arrival = tx_end + sh.cfg.propagation_delay;
                match self.link_fault(sh.switch_link(switch, out_port)) {
                    FaultOutcome::Drop => {
                        // Downstream never sees the packet; its buffer slot
                        // credit comes back as if freed on arrival.
                        self.dom.stats.link_drops += 1;
                        self.class_stats(class).dropped += 1;
                        self.dom.arena.release(pref);
                        self.push(
                            Origin::Switch(switch),
                            arrival,
                            Event::SwitchCredit {
                                switch,
                                port: out_port,
                                vl: fvl as u8,
                            },
                        );
                    }
                    FaultOutcome::Deliver {
                        corrupt,
                        extra_delay_ps,
                    } => {
                        let packet = self.dom.arena.get_mut(pref);
                        packet.corrupted |= corrupt;
                        packet.vl = fvl as u8;
                        self.push(
                            Origin::Switch(switch),
                            arrival + extra_delay_ps,
                            Event::SwitchArrive {
                                switch: next,
                                port: next_port,
                                packet: pref,
                            },
                        );
                    }
                }
            }
            Peer::Hca { node } => {
                let arrival = tx_end + sh.cfg.propagation_delay;
                match self.link_fault(sh.switch_link(switch, out_port)) {
                    FaultOutcome::Drop => {
                        self.dom.stats.link_drops += 1;
                        self.class_stats(class).dropped += 1;
                        self.dom.arena.release(pref);
                    }
                    FaultOutcome::Deliver {
                        corrupt,
                        extra_delay_ps,
                    } => {
                        self.dom.arena.get_mut(pref).corrupted |= corrupt;
                        self.push(
                            Origin::Switch(switch),
                            arrival + extra_delay_ps,
                            Event::HcaReceive { node, packet: pref },
                        );
                    }
                }
            }
            Peer::None => unreachable!("routing never selects an edge port"),
        }
        // The input buffer slot frees now: return a credit upstream.
        self.return_credit(switch, in_port, vl as u8);
        // The queue we popped from has a new head that may want a
        // *different* output port — wake that port, or packets behind a
        // departed head would wait for an unrelated arrival (HOL stall).
        let next_out = self.dom.switches[ls].in_q[in_port][vl]
            .front()
            .map(|next| next.packet)
            .map(|p| self.route_of(switch, p));
        if let Some(next_out) = next_out {
            if next_out != out_port {
                self.schedule_forward(switch, next_out, now);
            }
        }
        // The port may have more work the instant it frees.
        self.schedule_forward(switch, out_port, tx_end);
    }

    /// Return one credit to whatever feeds `(switch, in_port)`.
    fn return_credit(&mut self, switch: usize, in_port: usize, vl: u8) {
        let at = self.dom.now + self.sh.cfg.propagation_delay;
        match self.sh.topo.peer(switch, in_port) {
            Peer::Hca { node } => {
                self.push(Origin::Switch(switch), at, Event::HcaCredit { node, vl })
            }
            Peer::Switch {
                switch: up,
                port: up_port,
            } => self.push(
                Origin::Switch(switch),
                at,
                Event::SwitchCredit {
                    switch: up,
                    port: up_port,
                    vl,
                },
            ),
            Peer::None => {}
        }
    }

    // ------------------------------------------------------------- receiving

    fn on_hca_receive(&mut self, node: usize, pref: PacketRef) {
        let sh = self.sh;
        let now = self.dom.now;
        let ln = sh.local_node[node] as usize;
        // Host-injected packets skip the abstract receive path entirely:
        // the wire image goes back to the host, with transit corruption
        // applied as a byte flip (mirroring the point-to-point harness),
        // for the host transport's own VCRC/MAC verification to judge.
        if self.dom.arena.get(pref).wire.is_some() {
            let packet = self.dom.arena.release(pref);
            let mut bytes = packet.wire.unwrap();
            if packet.corrupted && !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0xFF;
            }
            if packet.vl == 15 {
                self.dom.stats.mgmt_delivered += 1;
            }
            self.dom.host_inbox.push_back(HostDelivery {
                at: now,
                node,
                bytes,
            });
            return;
        }
        // CRC check before anything else looks at the packet (VCRC/ICRC
        // precede all header processing). Untouched packets re-render
        // bit-identically by construction, so their cached emission-time
        // ICRC is authoritative and verification is skipped; only packets
        // the fault layer flipped in transit get the full re-render —
        // with the transit bit flip — recompute, and compare against the
        // CRC stamped at emission.
        if self.dom.arena.get(pref).corrupted {
            let dom = &mut *self.dom;
            render_wire_image(&mut dom.wire_scratch, dom.arena.get(pref));
            let mid = dom.wire_scratch.len() / 2;
            dom.wire_scratch[mid] ^= 0xFF;
            let mut crc = Crc32::new();
            crc.update_auto(&dom.wire_scratch);
            if crc.finalize() != dom.arena.get(pref).icrc {
                self.dom.stats.corrupt_drops += 1;
                let class = self.dom.arena.release(pref).class;
                self.class_stats(class).dropped += 1;
                return;
            }
        }
        // The HCA is the packet's terminal point on every path below:
        // take it out of the arena and recycle the slot.
        let packet = self.dom.arena.release(pref);
        // Management datagrams: no partition check, no data statistics.
        if packet.vl == 15 {
            self.dom.stats.mgmt_delivered += 1;
            if node == sh.cfg.sm_node {
                if let Some(trap) = packet.trap {
                    // In-band trap reached the SM: same handling as the
                    // out-of-band TrapDeliver path (the SM node's domain is
                    // the SM's domain, so this stays local).
                    self.on_trap_deliver(trap);
                }
                // Trap-less VL15 packets at the SM are the §7 flood: they
                // consumed fabric + SM capacity and are dropped here.
            }
            return;
        }
        // MAC verification stage at the receiver.
        let delivered_at = now + sh.auth_delay;
        let (ok, _) = self.dom.hcas[ln].table.check(packet.pkey);
        if !ok {
            self.dom.stats.hca_blocked += 1;
            // Receive-side P_Key violation: maybe raise a trap (§3.3).
            let reporter = sh.topo.lid_of(node);
            let violator = sh.topo.lid_of(packet.src);
            if let Some(trap) =
                self.dom.hcas[ln]
                    .throttle
                    .offer(now, reporter, packet.pkey, violator)
            {
                match sh.cfg.trap_transport {
                    TrapTransport::OutOfBand => {
                        self.push(
                            Origin::Node(node),
                            now + sh.cfg.trap_latency,
                            Event::TrapDeliver { trap },
                        );
                    }
                    TrapTransport::InBand => {
                        let sm = sh.cfg.sm_node;
                        if sm == node {
                            self.on_trap_deliver(trap);
                        } else {
                            self.emit_management(node, sm, TrafficClass::Management, Some(trap));
                        }
                    }
                }
            }
            return;
        }
        if packet.class == TrafficClass::Attack {
            // Valid-key floods land here; count them, keep them out of the
            // legitimate-traffic statistics.
            self.dom.stats.attack.delivered += 1;
            return;
        }
        if let Some(flow) = packet.flow {
            let remaining = self
                .dom
                .flow_progress
                .get_mut(&flow)
                .expect("flow registered in the destination's domain");
            *remaining -= 1;
            if *remaining == 0 {
                self.dom.flow_progress.remove(&flow);
                self.dom.flow_done.push((flow, delivered_at));
            }
        }
        if packet.gen_time >= sh.cfg.warmup {
            let queuing = packet.inject_time - packet.gen_time;
            let network = delivered_at - packet.inject_time;
            self.class_stats(packet.class).record(queuing, network);
        }
    }
}

// ------------------------------------------------------------ serial driver

/// The serial driver — the parallel engine's correctness oracle. One
/// merged [`EventQueue`]; events pop in global `(time, seq)` order and
/// dispatch into their target domain's [`Ctx`].
pub struct Simulator {
    core: SimCore,
    queue: EventQueue,
    now: SimTime,
    /// Events popped past a `run_hosts_until` horizon, kept in key order.
    held: VecDeque<(EventKey, Event)>,
    host_inbox: VecDeque<HostDelivery>,
}

impl Simulator {
    /// Build the simulation: topology, partition layout, attackers, SM,
    /// and the initial event population.
    pub fn new(cfg: SimConfig) -> Simulator {
        let core = SimCore::new(cfg);
        let mut sim = Simulator {
            core,
            queue: EventQueue::new(),
            now: 0,
            held: VecDeque::new(),
            host_inbox: VecDeque::new(),
        };
        sim.drain_staged();
        sim
    }

    /// Move every staged event (from construction or a `post_*` call)
    /// into the merged queue.
    fn drain_staged(&mut self) {
        let queue = &mut self.queue;
        for dom in &mut self.core.domains {
            for m in dom.out.drain(..) {
                queue.push_keyed(m.at, m.seq, m.ev);
            }
        }
    }

    /// Handle one event in its target domain, then route whatever it
    /// staged back into the merged queue and surface completions.
    fn dispatch(&mut self, key: EventKey, ev: Event) {
        debug_assert!(key.time >= self.now, "time went backwards");
        self.now = key.time;
        let d = target_domain(&self.core.shared, &ev);
        let core = &mut self.core;
        let dom = &mut core.domains[d];
        dom.now = key.time;
        dom.events += 1;
        Ctx {
            sh: &core.shared,
            dom,
        }
        .handle(ev);
        for m in dom.out.drain(..) {
            self.queue.push_keyed(m.at, m.seq, m.ev);
        }
        for (f, at) in dom.flow_done.drain(..) {
            core.flows[f as usize].completed_at = Some(at);
        }
        self.host_inbox.append(&mut dom.host_inbox);
    }

    /// Next event in global key order, merging the queue with the held
    /// buffer (events popped past a previous `run_hosts_until` limit).
    /// Keys are unique, so the merge is a strict total order.
    fn pop_next(&mut self) -> Option<(EventKey, Event)> {
        let popped = self.queue.pop_keyed();
        let held_first = match (self.held.front(), &popped) {
            (Some((hk, _)), Some((pk, _))) => hk < pk,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if !held_first {
            return popped;
        }
        if let Some((pk, pev)) = popped {
            let pos = self
                .held
                .iter()
                .position(|(hk, _)| *hk > pk)
                .unwrap_or(self.held.len());
            self.held.insert(pos, (pk, pev));
        }
        self.held.pop_front()
    }

    /// Run to completion and return the report.
    pub fn run(self) -> SimReport {
        self.run_counted().0
    }

    /// Run to completion, also returning the number of events processed
    /// (the `sim_engine` bench divides by wall-clock for events/sec).
    pub fn run_counted(mut self) -> (SimReport, u64) {
        while let Some((key, ev)) = self.pop_next() {
            self.dispatch(key, ev);
        }
        (self.core.merged_report(), self.core.events_processed())
    }

    // ------------------------------------------------------------- host hook

    /// Inject a real wire image at the HCA of `src`, addressed to `dst`'s
    /// HCA on virtual lane `vl`. The packet competes with the simulator's
    /// own traffic for the host link, credits and VL arbitration, crosses
    /// the mesh hop by hop, and is exposed to the fault layer like any
    /// other packet: a link drop counts in `link_drops` (and the
    /// best-effort class drops), corruption flips a byte and the delivery
    /// still happens — the host transport's CRC/MAC decides its fate.
    /// No abstract-path ICRC is rendered and no receive-side P_Key check
    /// runs; the bytes themselves carry those protections.
    ///
    /// Posting on VL 15 marks the packet [`TrafficClass::Management`] —
    /// the subnet-management lane MADs ride on. VL arbitration scans
    /// lanes highest-first, so management datagrams (heartbeats, election
    /// claims, key updates) preempt data traffic at every hop instead of
    /// queueing behind it — the property that keeps failover and
    /// re-keying latency bounded under load.
    pub fn post_host(&mut self, src: usize, dst: usize, vl: u8, bytes: Vec<u8>) {
        let now = self.now;
        self.core.post_host_at(now, src, dst, vl, bytes);
        self.drain_staged();
    }

    /// Advance the simulation until a host delivery is ready, the event
    /// horizon `limit` is reached, or the queue drains — whichever comes
    /// first. Returns the new simulation time, which never exceeds the
    /// first pending delivery's time and never regresses. An event popped
    /// past `limit` is held and re-merged by `pop_next` on the next call.
    pub fn run_hosts_until(&mut self, limit: SimTime) -> SimTime {
        while self.host_inbox.is_empty() {
            let Some((key, ev)) = self.pop_next() else {
                self.now = self.now.max(limit);
                break;
            };
            if key.time > limit {
                // This key is the global minimum right now, so it precedes
                // everything already held.
                self.held.push_front((key, ev));
                self.now = self.now.max(limit);
                break;
            }
            self.dispatch(key, ev);
        }
        self.now
    }

    /// Pop the oldest pending host delivery, if any.
    pub fn take_host_delivery(&mut self) -> Option<HostDelivery> {
        self.host_inbox.pop_front()
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Events handled so far (the scale experiments' cost denominator).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// The report accumulated so far (final numbers come from
    /// [`run`](Self::run); this view serves co-simulation drivers).
    pub fn stats(&self) -> SimReport {
        self.core.merged_report()
    }

    /// The attacker node indices this seed selected.
    pub fn attacker_nodes(&self) -> &[usize] {
        &self.core.shared.attackers
    }

    /// The fabric this simulator runs on.
    pub fn topology(&self) -> &dyn Topology {
        &*self.core.shared.topo
    }

    /// High-water mark of in-flight packets — a deterministic peak-memory
    /// proxy (multiply by `size_of::<SimPacket>()` for bytes; same number
    /// on every same-seed run and at every thread count, unlike RSS).
    pub fn peak_packets(&self) -> usize {
        self.core.peak_packets()
    }

    /// Post a finite `bytes`-sized transfer from `src` to `dst`: the flow
    /// is segmented into MTU packets on the best-effort VL, stamped with
    /// `src`'s partition key, and queued immediately — contending with
    /// everything else for credits, arbitration and link capacity. Returns
    /// the flow's index into [`flows`](Self::flows). The flow completes
    /// (its record gains `completed_at`) when the last packet is delivered
    /// at `dst`'s HCA; cross-partition flows never complete (the receive
    /// P_Key check blocks them), so scale experiments run one partition.
    pub fn post_flow(&mut self, src: usize, dst: usize, bytes: u64) -> usize {
        let now = self.now;
        let flow = self.core.post_flow_at(now, src, dst, bytes);
        self.drain_staged();
        flow
    }

    /// Flow records in posting order (see [`post_flow`](Self::post_flow)).
    pub fn flows(&self) -> &[FlowRecord] {
        &self.core.flows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, US};

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 2 * MS,
            warmup: 200 * US,
            ..SimConfig::default()
        }
    }
    #[test]
    fn baseline_delivers_traffic() {
        let report = Simulator::new(quick_cfg()).run();
        assert!(
            report.realtime.delivered > 100,
            "rt delivered {}",
            report.realtime.delivered
        );
        assert!(report.best_effort.delivered > 100);
        assert_eq!(report.filter_drops, 0);
        assert_eq!(report.hca_blocked, 0);
        assert_eq!(report.traps, 0);
        // Sanity on magnitudes: queuing under light load is microseconds,
        // network latency tens of microseconds (store-and-forward mesh).
        assert!(report.legit_queuing_mean() < 50.0);
        assert!(report.legit_network_mean() > 3.0);
        assert!(report.legit_network_mean() < 100.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Simulator::new(quick_cfg()).run();
        let b = Simulator::new(quick_cfg()).run();
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.realtime.delivered, b.realtime.delivered);
        assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn host_packets_cross_the_mesh_intact() {
        // No background traffic: the host packet is the only load, so it
        // must arrive exactly once, byte-identical, after a positive
        // fabric delay.
        let mut cfg = quick_cfg();
        cfg.traffic.realtime_load = 0.0;
        cfg.traffic.best_effort_load = 0.0;
        let mut sim = Simulator::new(cfg);
        let payload: Vec<u8> = (0..300u32).map(|i| (i * 7) as u8).collect();
        let dst = sim.topology().num_nodes() - 1;
        sim.post_host(0, dst, 1, payload.clone());
        let t = sim.run_hosts_until(SimTime::MAX);
        let d = sim.take_host_delivery().expect("delivery");
        assert_eq!(d.node, dst);
        assert_eq!(d.bytes, payload);
        assert_eq!(d.at, t);
        assert!(t > 0, "fabric transit takes time");
        assert!(sim.take_host_delivery().is_none());
        // Nothing left: the horizon call parks time at the limit.
        assert_eq!(sim.run_hosts_until(t + 1000), t + 1000);
    }

    #[test]
    fn host_hook_interleaves_with_background_traffic() {
        // With sources active, run_hosts_until must keep the background
        // simulation bit-identical to an uninterrupted run of the same
        // seed (the held-event slot preserves global event order).
        let base = Simulator::new(quick_cfg()).run();
        let mut sim = Simulator::new(quick_cfg());
        let mut t = 0;
        while t < 3 * MS {
            t = sim.run_hosts_until(t + 100 * US);
            while sim.take_host_delivery().is_some() {}
            if sim.now() >= 3 * MS {
                break;
            }
        }
        let (report, _) = sim.run_counted();
        assert_eq!(report.generated, base.generated);
        assert_eq!(report.realtime.delivered, base.realtime.delivered);
        assert_eq!(report.best_effort.delivered, base.best_effort.delivered);
        assert!((report.legit_queuing_mean() - base.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulator::new(quick_cfg()).run();
        let mut cfg = quick_cfg();
        cfg.seed ^= 0xFFFF;
        let b = Simulator::new(cfg).run();
        assert_ne!(a.generated, b.generated);
    }

    #[test]
    fn attack_raises_queuing_time() {
        // Run near the fabric's knee (where the paper's Figure 1 operates)
        // and average two placements so a single lucky attacker position
        // can't mask the effect.
        let loaded = |attackers: usize, seed_bump: u64| {
            let mut cfg = quick_cfg();
            // Queue buildup under attack needs some simulated time to
            // dominate the warmup transient.
            cfg.duration = 5 * MS;
            cfg.warmup = 500 * US;
            cfg.traffic.realtime_load = 0.25;
            cfg.traffic.best_effort_load = 0.30;
            cfg.num_attackers = attackers;
            cfg.attack_probability = 1.0;
            cfg.seed ^= seed_bump;
            Simulator::new(cfg).run()
        };
        let base: f64 = (0..2)
            .map(|s| loaded(0, s * 0xABCD).best_effort.queuing.mean())
            .sum::<f64>()
            / 2.0;
        let attacked_reports: Vec<SimReport> = (0..2).map(|s| loaded(4, s * 0xABCD)).collect();
        assert!(
            attacked_reports.iter().all(|r| r.hca_blocked > 0),
            "attack packets must reach victims"
        );
        let attacked: f64 = attacked_reports
            .iter()
            .map(|r| r.best_effort.queuing.mean())
            .sum::<f64>()
            / 2.0;
        assert!(attacked > base, "attack {attacked} vs base {base}");
    }

    #[test]
    fn ingress_filtering_blocks_attack() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::If;
        let report = Simulator::new(cfg).run();
        assert!(report.filter_drops > 0, "IF must drop attack packets");
        assert_eq!(
            report.hca_blocked, 0,
            "nothing invalid reaches HCAs under IF"
        );
    }

    #[test]
    fn dpt_blocks_attack_too() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Dpt;
        let report = Simulator::new(cfg).run();
        assert!(report.filter_drops > 0);
        assert_eq!(report.hca_blocked, 0);
        assert!(report.lookup_cycles > 0, "DPT pays lookups");
    }

    #[test]
    fn sif_engages_after_traps() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert!(report.traps > 0, "victims must trap");
        assert!(report.hca_blocked > 0, "attack leaks until SIF engages");
        assert!(report.filter_drops > 0, "then SIF drops at the edge");
        // Once engaged, the vast majority of attack packets die at ingress.
        assert!(
            report.filter_drops > report.hca_blocked,
            "drops {} blocked {}",
            report.filter_drops,
            report.hca_blocked
        );
    }

    #[test]
    fn dpt_costs_more_lookups_than_if() {
        let mut cfg_d = quick_cfg();
        cfg_d.enforcement = EnforcementKind::Dpt;
        let d = Simulator::new(cfg_d).run();
        let mut cfg_i = quick_cfg();
        cfg_i.enforcement = EnforcementKind::If;
        let i = Simulator::new(cfg_i).run();
        assert!(
            d.lookup_cycles > i.lookup_cycles * 2,
            "DPT per-hop lookups {} should dwarf IF ingress-only {}",
            d.lookup_cycles,
            i.lookup_cycles
        );
    }

    #[test]
    fn sif_costs_nothing_without_attack() {
        let mut cfg = quick_cfg();
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert_eq!(report.lookup_cycles, 0, "idle SIF is free");
    }

    #[test]
    fn qp_level_auth_adds_modest_queuing() {
        let base = Simulator::new(quick_cfg()).run();
        let mut cfg = quick_cfg();
        cfg.auth = AuthMode::QpLevel;
        let with = Simulator::new(cfg).run();
        let b = base.legit_queuing_mean();
        let w = with.legit_queuing_mean();
        assert!(w >= b, "auth can't reduce delay: {w} vs {b}");
        assert!(w < b + 10.0, "overhead must stay marginal: {w} vs {b}");
    }

    #[test]
    fn realtime_priority_beats_best_effort_under_attack() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 3;
        cfg.attack_probability = 1.0;
        let r = Simulator::new(cfg).run();
        assert!(
            r.best_effort.queuing.mean() >= r.realtime.queuing.mean(),
            "BE {} must suffer at least as much as RT {}",
            r.best_effort.queuing.mean(),
            r.realtime.queuing.mean()
        );
    }

    #[test]
    fn valid_pkey_attack_defeats_ingress_filtering() {
        // §7: "Dumping traffic only with a valid P_Key. Since this attack
        // uses a valid P_Key, any ingress filtering is useless."
        let mut cfg = quick_cfg();
        cfg.duration = 4 * MS;
        cfg.traffic.realtime_load = 0.25;
        cfg.traffic.best_effort_load = 0.30;
        cfg.num_attackers = 4;
        cfg.attack_probability = 1.0;
        cfg.attack_keys = AttackKeys::Valid;
        cfg.enforcement = EnforcementKind::Sif;
        let r = Simulator::new(cfg).run();
        assert_eq!(r.filter_drops, 0, "SIF never sees an invalid key");
        assert_eq!(r.traps, 0, "in-partition receivers raise no P_Key traps");
        // The flood still happened (attack packets were delivered to
        // same-partition receivers or blocked at cross-partition ones).
        assert!(r.attack.delivered + r.hca_blocked > 500);
    }

    #[test]
    fn weighted_arbitration_trades_priority_for_fairness() {
        // Under heavy realtime pressure, weighted arbitration serves VL0
        // sooner than strict priority does.
        let run = |arb: crate::config::ArbitrationPolicy| {
            let mut cfg = quick_cfg();
            cfg.duration = 4 * MS;
            cfg.traffic.realtime_load = 0.60;
            cfg.traffic.best_effort_load = 0.25;
            cfg.arbitration = arb;
            Simulator::new(cfg).run()
        };
        let strict = run(crate::config::ArbitrationPolicy::StrictPriority);
        let weighted = run(crate::config::ArbitrationPolicy::Weighted { high_limit: 1 });
        // Both deliver traffic.
        assert!(strict.best_effort.delivered > 100);
        assert!(weighted.best_effort.delivered > 100);
        // Weighted must not *hurt* best-effort relative to strict, and RT
        // must not collapse either (it still gets most slots).
        assert!(
            weighted.best_effort.network.mean() <= strict.best_effort.network.mean() + 1.0,
            "weighted BE {} vs strict BE {}",
            weighted.best_effort.network.mean(),
            strict.best_effort.network.mean()
        );
        assert!(weighted.realtime.delivered > 100);
    }

    #[test]
    fn inband_traps_activate_sif() {
        // Same scenario as sif_engages_after_traps, but traps travel as
        // real VL15 MADs through the fabric instead of a side channel.
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        cfg.trap_transport = crate::config::TrapTransport::InBand;
        let report = Simulator::new(cfg).run();
        assert!(report.mgmt_delivered > 0, "trap MADs must reach the SM");
        assert!(report.traps > 0, "SM must process in-band traps");
        assert!(report.filter_drops > 0, "SIF engages off in-band traps");
        assert!(report.filter_drops > report.hca_blocked);
    }

    #[test]
    fn sm_flood_reaches_sm_through_every_partition_check() {
        // §7: management packets cross partition boundaries unchecked.
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.attack_keys = AttackKeys::SmFlood;
        cfg.enforcement = EnforcementKind::Dpt; // strongest data filtering
        let report = Simulator::new(cfg).run();
        assert!(
            report.mgmt_delivered > 200,
            "flood MADs delivered: {}",
            report.mgmt_delivered
        );
        assert_eq!(report.filter_drops, 0, "DPT cannot filter VL15 packets");
        assert_eq!(report.hca_blocked, 0, "no P_Key check applies");
        // VL15 isolation: data traffic keeps flowing.
        assert!(report.best_effort.delivered > 100);
    }

    #[test]
    fn fault_free_runs_report_no_fault_drops() {
        let r = Simulator::new(quick_cfg()).run();
        assert_eq!(r.link_drops, 0);
        assert_eq!(r.corrupt_drops, 0);
    }

    #[test]
    fn fault_injection_drops_and_corrupts_deterministically() {
        let run = || {
            let mut cfg = quick_cfg();
            cfg.fault = crate::fault::FaultConfig {
                drop_prob: 0.05,
                corrupt_prob: 0.02,
                reorder_prob: 0.02,
                reorder_delay_ps: 20 * US,
            };
            Simulator::new(cfg).run()
        };
        let a = run();
        assert!(a.link_drops > 0, "5% drop must fire: {}", a.link_drops);
        assert!(a.corrupt_drops > 0, "2% corrupt must fire");
        // Traffic still flows around the losses.
        assert!(a.realtime.delivered > 100);
        assert!(a.best_effort.delivered > 100);
        // Lossy runs replay bit-identically.
        let b = run();
        assert_eq!(a.link_drops, b.link_drops);
        assert_eq!(a.corrupt_drops, b.corrupt_drops);
        assert_eq!(a.realtime.delivered, b.realtime.delivered);
        assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
    }

    #[test]
    fn wire_drops_do_not_leak_credits() {
        // Heavy loss + long run: if a drop ate a credit, injection would
        // eventually wedge and deliveries would collapse. Compare against
        // the loss-free run: deliveries must stay the same order of
        // magnitude (only the dropped fraction is missing).
        let mut cfg = quick_cfg();
        cfg.fault.drop_prob = 0.10;
        let lossy = Simulator::new(cfg).run();
        let clean = Simulator::new(quick_cfg()).run();
        let lossy_total = lossy.realtime.delivered + lossy.best_effort.delivered;
        let clean_total = clean.realtime.delivered + clean.best_effort.delivered;
        assert!(
            lossy_total as f64 > clean_total as f64 * 0.5,
            "lossy {lossy_total} vs clean {clean_total}: credits leaked?"
        );
    }

    #[test]
    fn no_attackers_means_no_attack_class_traffic() {
        let r = Simulator::new(quick_cfg()).run();
        assert_eq!(r.attack.delivered, 0);
        assert_eq!(r.attack.dropped, 0);
        assert_eq!(r.attack_active_fraction, 0.0);
    }

    #[test]
    fn fat_tree_fabric_delivers_traffic() {
        let mut cfg = quick_cfg();
        cfg.topology = crate::config::TopoSpec::FatTree { k: 4 };
        let report = Simulator::new(cfg).run();
        assert!(report.realtime.delivered > 100);
        assert!(report.best_effort.delivered > 100);
        assert_eq!(report.filter_drops, 0);
        assert_eq!(report.hca_blocked, 0);
    }

    #[test]
    fn sif_engages_on_a_dragonfly() {
        // The trap → SM → program-filter loop must work when the violator's
        // edge switch is a dragonfly router, not a mesh switch.
        let mut cfg = quick_cfg();
        cfg.topology = crate::config::TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: false,
        };
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        let report = Simulator::new(cfg).run();
        assert!(report.traps > 0, "victims must trap");
        assert!(
            report.filter_drops > 0,
            "SIF drops at the attacker's router"
        );
        assert!(report.filter_drops > report.hca_blocked);
    }

    #[test]
    fn non_mesh_fabrics_are_deterministic() {
        for topology in [
            crate::config::TopoSpec::FatTree { k: 4 },
            crate::config::TopoSpec::Dragonfly {
                a: 2,
                p: 2,
                h: 1,
                valiant: true,
            },
        ] {
            let run = || {
                let mut cfg = quick_cfg();
                cfg.topology = topology;
                Simulator::new(cfg).run()
            };
            let (a, b) = (run(), run());
            assert_eq!(a.generated, b.generated);
            assert_eq!(a.realtime.delivered, b.realtime.delivered);
            assert!((a.legit_queuing_mean() - b.legit_queuing_mean()).abs() < 1e-12);
        }
    }

    #[test]
    fn flows_complete_on_every_topology() {
        for topology in [
            crate::config::TopoSpec::Mesh,
            crate::config::TopoSpec::FatTree { k: 4 },
            crate::config::TopoSpec::Dragonfly {
                a: 2,
                p: 2,
                h: 1,
                valiant: false,
            },
        ] {
            let mut cfg = quick_cfg();
            cfg.topology = topology;
            cfg.num_partitions = 1; // flows must pass the receive P_Key check
            cfg.traffic.realtime_load = 0.0;
            cfg.traffic.best_effort_load = 0.0;
            let mut sim = Simulator::new(cfg);
            let n = sim.topology().num_nodes();
            for src in 0..n {
                sim.post_flow(src, (src + 1) % n, 10 * 1024);
            }
            assert!(sim.peak_packets() > 0);
            // Drain the event queue in place so the flow records stay
            // readable afterwards.
            sim.run_hosts_until(SimTime::MAX);
            assert!(
                sim.flows().iter().all(|f| f.completed_at.is_some()),
                "every flow must complete on {topology:?}"
            );
            assert!(sim
                .flows()
                .iter()
                .all(|f| f.completed_at.unwrap() > f.posted_at));
        }
    }

    #[test]
    fn flow_completion_times_are_recorded_and_ordered() {
        let mut cfg = quick_cfg();
        cfg.num_partitions = 1;
        cfg.traffic.realtime_load = 0.0;
        cfg.traffic.best_effort_load = 0.0;
        let mut sim = Simulator::new(cfg);
        let small = sim.post_flow(0, 5, 2 * 1024);
        let large = sim.post_flow(3, 9, 64 * 1024);
        sim.run_hosts_until(SimTime::MAX);
        let flows = sim.flows();
        let small_done = flows[small].completed_at.expect("small flow completes");
        let large_done = flows[large].completed_at.expect("large flow completes");
        assert!(small_done > 0);
        // 64 KiB takes longer than 2 KiB from the same start time.
        assert!(large_done > small_done);
        // 32 MTU packets were in flight at peak ≥ the largest single queue.
        assert!(sim.peak_packets() >= 2);
        assert_eq!(sim.flows().len(), 2);
    }

    /// The satellite round-trip: a real report survives JSON text and back
    /// with its derived statistics intact.
    #[test]
    fn sim_report_json_round_trip() {
        let mut cfg = quick_cfg();
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        let report = Simulator::new(cfg).run();
        let text = report.to_json().to_string();
        let back = SimReport::from_json(&Json::parse(&text).unwrap()).expect("parse back");
        assert_eq!(back.generated, report.generated);
        assert_eq!(back.hca_blocked, report.hca_blocked);
        assert_eq!(back.traps, report.traps);
        assert_eq!(back.realtime.delivered, report.realtime.delivered);
        assert_eq!(
            back.best_effort.queuing.count(),
            report.best_effort.queuing.count()
        );
        assert!((back.legit_queuing_mean() - report.legit_queuing_mean()).abs() < 1e-12);
        assert!((back.legit_queuing_stddev() - report.legit_queuing_stddev()).abs() < 1e-12);
        assert_eq!(back.attack_active_fraction, report.attack_active_fraction);
    }

    #[test]
    fn attack_fraction_reflects_duty_cycle() {
        // The precomputed DutyCycle window covers attack_probability of the
        // configured duration, and the report's fraction says exactly that.
        let mut cfg = quick_cfg();
        cfg.num_attackers = 1;
        cfg.attack_schedule = AttackSchedule::DutyCycle;
        cfg.attack_probability = 0.5;
        let report = Simulator::new(cfg).run();
        assert!(
            (report.attack_active_fraction - 0.5).abs() < 0.01,
            "fraction {}",
            report.attack_active_fraction
        );
    }
}
