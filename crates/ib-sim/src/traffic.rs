//! Traffic classes and generators (§3.1).

use ib_runtime::rng::Rng;

/// The kinds of traffic in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Continuous rate-limited stream on the high-priority VL.
    Realtime,
    /// Poisson-injected scientific-style traffic on the low-priority VL.
    BestEffort,
    /// DoS flood: full link speed, random destinations, random invalid
    /// P_Keys.
    Attack,
    /// Subnet-management MADs (traps and SM programming) on VL15.
    Management,
}

impl TrafficClass {
    /// Virtual lane this class travels on (realtime gets the
    /// higher-priority data VL; attack traffic mimics best-effort;
    /// management rides the dedicated VL15).
    pub fn vl(self) -> u8 {
        match self {
            TrafficClass::Realtime => 1,
            TrafficClass::BestEffort | TrafficClass::Attack => 0,
            TrafficClass::Management => 15,
        }
    }

    /// Arbitration priority (higher wins).
    pub fn priority(self) -> u8 {
        match self {
            TrafficClass::Management => 2,
            TrafficClass::Realtime => 1,
            TrafficClass::BestEffort | TrafficClass::Attack => 0,
        }
    }

    /// Label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Realtime => "realtime",
            TrafficClass::BestEffort => "best-effort",
            TrafficClass::Attack => "attack",
            TrafficClass::Management => "management",
        }
    }
}

/// Sample an exponential inter-arrival gap with the given mean (ps), for
/// Poisson best-effort arrivals. Clamped away from zero so events always
/// advance time.
pub fn exp_gap(rng: &mut Rng, mean_ps: f64) -> u64 {
    rng.exponential(mean_ps).max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_runtime::rng::Seed;

    #[test]
    fn vls_and_priorities() {
        assert_eq!(TrafficClass::Realtime.vl(), 1);
        assert_eq!(TrafficClass::BestEffort.vl(), 0);
        assert_eq!(TrafficClass::Attack.vl(), 0);
        assert!(TrafficClass::Realtime.priority() > TrafficClass::BestEffort.priority());
    }

    #[test]
    fn exp_gap_mean_close() {
        let mut rng = Seed(7).rng();
        let mean = 10_000.0;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| exp_gap(&mut rng, mean)).sum();
        let sample_mean = total as f64 / n as f64;
        assert!(
            (sample_mean - mean).abs() / mean < 0.05,
            "sample mean {sample_mean} too far from {mean}"
        );
    }

    #[test]
    fn exp_gap_always_positive() {
        let mut rng = Seed(8).rng();
        for _ in 0..1000 {
            assert!(exp_gap(&mut rng, 5.0) >= 1);
        }
    }
}
