//! Per-link fault injection: seeded drop / corrupt / reorder decisions.
//!
//! Each directed link owns a [`FaultInjector`] fed by its own
//! `Seed::stream`, so lossy runs stay bit-reproducible and adding a link
//! never perturbs another link's decision sequence. A zeroed
//! [`FaultConfig`] (the default) disables the layer entirely — the engine
//! then never consults an injector, keeping fault-free runs bit-identical
//! to builds that predate this module.
//!
//! Faults model the physical layer, so they sit *below* every security
//! mechanism: a dropped packet forces the RC transport (`ib-transport`)
//! to retransmit with its original PSN, which is exactly the workload the
//! §7 replay window must distinguish from an attacker's replay.

use ib_runtime::{Json, Rng, Seed, ToJson};

use crate::time::SimTime;

/// Per-link fault probabilities. All-zero (the default) means the fault
/// layer is skipped entirely.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultConfig {
    /// Probability a packet vanishes on the wire.
    pub drop_prob: f64,
    /// Probability a packet arrives with flipped bits (dropped at the
    /// receiver's CRC check rather than on the wire).
    pub corrupt_prob: f64,
    /// Probability a packet is delayed past its successors.
    pub reorder_prob: f64,
    /// Maximum extra delay a reordered packet picks up (uniform in
    /// `0..reorder_delay_ps`).
    pub reorder_delay_ps: SimTime,
}

impl FaultConfig {
    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.corrupt_prob > 0.0 || self.reorder_prob > 0.0
    }

    /// A profile where every fault kind scales off one loss rate: drops at
    /// `loss`, corruption and reordering each at a quarter of it (the
    /// fig_replay sweep's x-axis).
    pub fn lossy(loss: f64, reorder_delay_ps: SimTime) -> FaultConfig {
        FaultConfig {
            drop_prob: loss,
            corrupt_prob: loss / 4.0,
            reorder_prob: loss / 4.0,
            reorder_delay_ps,
        }
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("drop_prob", self.drop_prob.to_json()),
            ("corrupt_prob", self.corrupt_prob.to_json()),
            ("reorder_prob", self.reorder_prob.to_json()),
            ("reorder_delay_ps", self.reorder_delay_ps.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<FaultConfig> {
        Some(FaultConfig {
            drop_prob: v.get("drop_prob")?.as_f64()?,
            corrupt_prob: v.get("corrupt_prob")?.as_f64()?,
            reorder_prob: v.get("reorder_prob")?.as_f64()?,
            reorder_delay_ps: v.get("reorder_delay_ps")?.as_u64()?,
        })
    }
}

/// What the fault layer decided for one packet crossing one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// The packet never arrives.
    Drop,
    /// The packet arrives `extra_delay_ps` late, with `corrupt` bit flips.
    Deliver {
        corrupt: bool,
        extra_delay_ps: SimTime,
    },
}

/// One directed link's fault state: the probabilities plus a dedicated RNG
/// stream (decisions on one link never consume another link's draws).
#[derive(Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: Rng,
}

impl FaultInjector {
    /// Build from the link's config and its dedicated seed stream.
    pub fn new(cfg: FaultConfig, seed: Seed) -> Self {
        FaultInjector {
            cfg,
            rng: seed.rng(),
        }
    }

    /// Decide the fate of one packet. Draw order is fixed
    /// (drop → corrupt → reorder) so traces replay exactly.
    pub fn decide(&mut self) -> FaultOutcome {
        if self.rng.gen_bool(self.cfg.drop_prob) {
            return FaultOutcome::Drop;
        }
        let corrupt = self.rng.gen_bool(self.cfg.corrupt_prob);
        let extra_delay_ps =
            if self.rng.gen_bool(self.cfg.reorder_prob) && self.cfg.reorder_delay_ps > 0 {
                self.rng.gen_range(0..self.cfg.reorder_delay_ps)
            } else {
                0
            };
        FaultOutcome::Deliver {
            corrupt,
            extra_delay_ps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_inactive() {
        assert!(!FaultConfig::default().is_active());
        assert!(FaultConfig::lossy(0.02, 1000).is_active());
        assert!(!FaultConfig::lossy(0.0, 1000).is_active());
    }

    #[test]
    fn zero_probabilities_always_deliver_clean() {
        let mut inj = FaultInjector::new(FaultConfig::default(), Seed(1));
        for _ in 0..1000 {
            assert_eq!(
                inj.decide(),
                FaultOutcome::Deliver {
                    corrupt: false,
                    extra_delay_ps: 0
                }
            );
        }
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let cfg = FaultConfig::lossy(0.1, 50_000);
        let trace = |seed: Seed| {
            let mut inj = FaultInjector::new(cfg, seed);
            (0..256).map(|_| inj.decide()).collect::<Vec<_>>()
        };
        assert_eq!(trace(Seed(7)), trace(Seed(7)));
        assert_ne!(trace(Seed(7)), trace(Seed(8)));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let cfg = FaultConfig {
            drop_prob: 0.25,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, Seed(42));
        let drops = (0..10_000)
            .filter(|_| inj.decide() == FaultOutcome::Drop)
            .count();
        let rate = drops as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "observed drop rate {rate}");
    }

    #[test]
    fn reorder_delay_bounded() {
        let cfg = FaultConfig {
            reorder_prob: 1.0,
            reorder_delay_ps: 500,
            ..FaultConfig::default()
        };
        let mut inj = FaultInjector::new(cfg, Seed(3));
        for _ in 0..1000 {
            match inj.decide() {
                FaultOutcome::Deliver { extra_delay_ps, .. } => assert!(extra_delay_ps < 500),
                FaultOutcome::Drop => unreachable!("drop_prob is 0"),
            }
        }
    }

    #[test]
    fn fault_config_json_round_trip() {
        let cfg = FaultConfig::lossy(0.02, 75_000);
        let text = cfg.to_json().to_string();
        let back = FaultConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
        // Missing field rejected.
        let mut j = cfg.to_json();
        if let Json::Obj(pairs) = &mut j {
            pairs.retain(|(k, _)| k != "drop_prob");
        }
        assert!(FaultConfig::from_json(&j).is_none());
    }
}
