//! Conservative parallel driver for the sharded packet engine.
//!
//! [`ParSimulator`] runs the same [`SimCore`] the serial [`Simulator`]
//! does, but gives every event domain its own calendar queue and executes
//! domains on the persistent `ib-runtime` worker pool, synchronized in
//! **lookahead windows** (Chandy–Misra–Bryant-style conservative
//! synchronization, specialized to barrier-synchronous rounds):
//!
//! 1. `T` = the global minimum pending-event time (over every domain
//!    queue and in-flight mailbox) — the horizon jump, so idle stretches
//!    cost one round, not one round per tick.
//! 2. Every domain independently processes its events in `[T, T + W)` in
//!    intrinsic key order, where `W` is [`Shared::lookahead`] — the
//!    minimum latency any cross-domain event carries (link propagation
//!    for packet handoffs and credit returns, trap/program latency for
//!    the SM loop). Events bound for another domain are pushed into that
//!    domain's mailbox under a short lock.
//! 3. A barrier; worker 0 recomputes `T` and opens the next round.
//!
//! Because a cross-domain event emitted at `t` is due no earlier than
//! `t + W ≥ T + W`, nothing a peer does during a window can affect this
//! window — each round is exact, not approximate, and no null messages
//! need to flow: the shared horizon `T` plays that role (and is what
//! makes the scheme deadlock-free; see DESIGN.md).
//!
//! Determinism: thread count selects only the domain→worker assignment.
//! The domain decomposition, every event's intrinsic key, every per-node
//! RNG draw, and the fixed-order report merge are all identical to the
//! serial engine, so `run()` returns bit-identical results at any thread
//! count — a property `tests/parallel_equivalence.rs` and the `ci.sh`
//! byte-diff gates enforce.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::config::SimConfig;
use crate::engine::{Ctx, Domain, SimCore, SimReport};
use crate::engine::{FlowRecord, Simulator};
use crate::event::{Event, EventQueue};
use crate::time::SimTime;

/// Events in flight toward a domain, staged by peers during a window and
/// drained by the owner at the start of its next one. `next` tracks the
/// earliest due time so the coordinator's horizon scan needn't walk
/// `msgs`.
struct Mailbox {
    msgs: Vec<(SimTime, u64, Event)>,
    next: SimTime,
}

/// Sets the shared stop flag and unblocks both spin loops if its worker
/// unwinds, so a handler panic surfaces at the `broadcast` call instead
/// of deadlocking the sibling workers at the barrier.
struct PanicGuard<'a> {
    done: &'a AtomicBool,
    arrived: &'a AtomicUsize,
    round: &'a AtomicU64,
}

impl Drop for PanicGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.done.store(true, Ordering::SeqCst);
            self.arrived.fetch_add(1_000_000, Ordering::SeqCst);
            self.round.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Spin briefly, then yield — barrier waits are usually a few µs, but
/// over-subscribed machines need the scheduler's help.
fn relax(spins: &mut u32) {
    *spins += 1;
    if *spins < 64 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// The parallel driver. Construction, posting and reporting mirror
/// [`Simulator`]; only `run` differs — it executes the domains on the
/// process-wide worker pool (or falls back to an in-place D-way merge
/// when parallelism can't help: one thread, one domain, or zero
/// lookahead).
pub struct ParSimulator {
    core: SimCore,
    /// One calendar queue per domain, index-aligned with `core.domains`.
    queues: Vec<EventQueue>,
    threads: usize,
    finished: bool,
}

impl ParSimulator {
    /// Build with as many threads as the machine offers.
    pub fn new(cfg: SimConfig) -> ParSimulator {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ParSimulator::with_threads(cfg, threads)
    }

    /// Build with an explicit thread-count cap. `threads == 1` is the
    /// serial D-way merge — still the sharded core, just no pool.
    pub fn with_threads(cfg: SimConfig, threads: usize) -> ParSimulator {
        let core = SimCore::new(cfg);
        let queues = (0..core.shared.num_domains)
            .map(|_| EventQueue::new())
            .collect();
        let mut sim = ParSimulator {
            core,
            queues,
            threads: threads.max(1),
            finished: false,
        };
        sim.drain_staged();
        sim
    }

    /// Route staged events (construction, `post_flow`) into their target
    /// domains' queues.
    fn drain_staged(&mut self) {
        for dom in &mut self.core.domains {
            for m in dom.out.drain(..) {
                self.queues[m.target].push_keyed(m.at, m.seq, m.ev);
            }
        }
    }

    /// Post a finite transfer before the run (see [`Simulator::post_flow`]).
    pub fn post_flow(&mut self, src: usize, dst: usize, bytes: u64) -> usize {
        assert!(!self.finished, "post_flow after run");
        let flow = self.core.post_flow_at(0, src, dst, bytes);
        self.drain_staged();
        flow
    }

    /// Number of event domains the topology decomposed into.
    pub fn num_domains(&self) -> usize {
        self.core.shared.num_domains
    }

    /// The thread cap this driver was built with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run to completion and return the report — bit-identical to
    /// [`Simulator::run`] on the same config at any thread count.
    pub fn run(&mut self) -> SimReport {
        assert!(!self.finished, "run called twice");
        self.finished = true;
        let workers = self.threads.min(self.core.shared.num_domains);
        match self.core.shared.lookahead {
            Some(w) if workers > 1 => self.run_windowed(workers, w),
            _ => self.run_merged(),
        }
        self.core.finalize_flows();
        self.core.merged_report()
    }

    /// Events handled across all domains (valid after `run`).
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed()
    }

    /// Sum of per-domain arena high-water marks (valid after `run`).
    pub fn peak_packets(&self) -> usize {
        self.core.peak_packets()
    }

    /// Flow records in posting order (completion times filled by `run`).
    pub fn flows(&self) -> &[FlowRecord] {
        &self.core.flows
    }

    /// Fallback driver: pop the globally minimal key across the per-domain
    /// queues. Exactly the serial engine's order (each event lives in its
    /// target's queue, and per-domain key order is a refinement of the
    /// global one), without threads or windows.
    ///
    /// The per-domain heads are tracked in a lazy min-heap rather than a
    /// linear scan: an entry is pushed whenever a domain's head changes
    /// (after a pop, or when a routed event becomes the new head), and a
    /// popped entry that no longer matches its domain's head is simply
    /// discarded — every current head always has a live entry.
    fn run_merged(&mut self) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heads: BinaryHeap<Reverse<(crate::event::EventKey, usize)>> = self
            .queues
            .iter_mut()
            .enumerate()
            .filter_map(|(d, q)| q.peek_key().map(|k| Reverse((k, d))))
            .collect();
        while let Some(Reverse((key, d))) = heads.pop() {
            match self.queues[d].peek_key() {
                Some(cur) if cur == key => {}
                _ => continue, // stale entry; the real head has its own
            }
            let (key, ev) = self.queues[d].pop_keyed().unwrap();
            let dom = &mut self.core.domains[d];
            dom.now = key.time;
            dom.events += 1;
            Ctx {
                sh: &self.core.shared,
                dom,
            }
            .handle(ev);
            for m in dom.out.drain(..) {
                let t = m.target;
                let prev = self.queues[t].peek_key();
                self.queues[t].push_keyed(m.at, m.seq, m.ev);
                let now_head = self.queues[t].peek_key().unwrap();
                if prev != Some(now_head) {
                    heads.push(Reverse((now_head, t)));
                }
            }
            if let Some(next) = self.queues[d].peek_key() {
                heads.push(Reverse((next, d)));
            }
        }
    }

    /// The windowed parallel protocol described in the module docs.
    fn run_windowed(&mut self, workers: usize, w: SimTime) {
        let nd = self.core.shared.num_domains;
        let mut t0 = SimTime::MAX;
        for q in self.queues.iter_mut() {
            if let Some(k) = q.peek_key() {
                t0 = t0.min(k.time);
            }
        }
        if t0 == SimTime::MAX {
            return; // nothing scheduled
        }
        let pool = ib_runtime::par::global_pool(workers);
        let workers = workers.min(pool.threads());
        if workers <= 1 {
            return self.run_merged();
        }

        let queue_next: Vec<AtomicU64> = self
            .queues
            .iter_mut()
            .map(|q| AtomicU64::new(q.peek_key().map_or(SimTime::MAX, |k| k.time)))
            .collect();
        // Each worker owns a fixed round-robin slice of the domains; the
        // slot Mutex is locked once per run, not per round.
        let slots: Vec<Mutex<Vec<(usize, Domain, EventQueue)>>> =
            (0..workers).map(|_| Mutex::new(Vec::new())).collect();
        for (d, (dom, queue)) in self
            .core
            .domains
            .drain(..)
            .zip(self.queues.drain(..))
            .enumerate()
        {
            let mut slot = slots[d % workers].lock().unwrap_or_else(|p| p.into_inner());
            slot.push((d, dom, queue));
        }
        let mailboxes: Vec<Mutex<Mailbox>> = (0..nd)
            .map(|_| {
                Mutex::new(Mailbox {
                    msgs: Vec::new(),
                    next: SimTime::MAX,
                })
            })
            .collect();
        let round = AtomicU64::new(1);
        let arrived = AtomicUsize::new(0);
        let done = AtomicBool::new(false);
        let window_end = AtomicU64::new(t0.saturating_add(w));
        let sh = &self.core.shared;

        pool.broadcast(&|widx: usize| {
            if widx >= workers {
                return; // pool may be wider than this run needs
            }
            let _guard = PanicGuard {
                done: &done,
                arrived: &arrived,
                round: &round,
            };
            let mut local = slots[widx].lock().unwrap_or_else(|p| p.into_inner());
            let mut my_round = 1u64;
            loop {
                // Wait for the coordinator to open my round.
                let mut spins = 0u32;
                while round.load(Ordering::Acquire) < my_round {
                    if done.load(Ordering::Acquire) {
                        return;
                    }
                    relax(&mut spins);
                }
                if done.load(Ordering::Acquire) {
                    return;
                }
                let wend = window_end.load(Ordering::Acquire);
                for (d, dom, queue) in local.iter_mut() {
                    let d = *d;
                    {
                        // Everything mailed last round is due ≥ this
                        // window's start: merge it before processing.
                        let mut mb = mailboxes[d].lock().unwrap_or_else(|p| p.into_inner());
                        for (at, seq, ev) in mb.msgs.drain(..) {
                            queue.push_keyed(at, seq, ev);
                        }
                        mb.next = SimTime::MAX;
                    }
                    while let Some(key) = queue.peek_key() {
                        if key.time >= wend {
                            break;
                        }
                        let (key, ev) = queue.pop_keyed().unwrap();
                        dom.now = key.time;
                        dom.events += 1;
                        Ctx { sh, dom }.handle(ev);
                        for m in dom.out.drain(..) {
                            if m.target == d {
                                queue.push_keyed(m.at, m.seq, m.ev);
                            } else {
                                let mut mb = mailboxes[m.target]
                                    .lock()
                                    .unwrap_or_else(|p| p.into_inner());
                                mb.next = mb.next.min(m.at);
                                mb.msgs.push((m.at, m.seq, m.ev));
                            }
                        }
                    }
                    queue_next[d].store(
                        queue.peek_key().map_or(SimTime::MAX, |k| k.time),
                        Ordering::Release,
                    );
                }
                arrived.fetch_add(1, Ordering::AcqRel);
                if widx == 0 {
                    // Coordinator: close the barrier, jump the horizon.
                    let mut spins = 0u32;
                    while arrived.load(Ordering::Acquire) < workers {
                        if done.load(Ordering::Acquire) {
                            return;
                        }
                        relax(&mut spins);
                    }
                    let mut t = SimTime::MAX;
                    for d in 0..nd {
                        t = t.min(queue_next[d].load(Ordering::Acquire));
                        let mb = mailboxes[d].lock().unwrap_or_else(|p| p.into_inner());
                        t = t.min(mb.next);
                    }
                    if t == SimTime::MAX {
                        done.store(true, Ordering::Release);
                        round.fetch_add(1, Ordering::Release);
                        return;
                    }
                    window_end.store(t.saturating_add(w), Ordering::Release);
                    arrived.store(0, Ordering::Release);
                    round.fetch_add(1, Ordering::Release);
                }
                my_round += 1;
            }
        });

        // Move every domain (and its queue) back in index order.
        let mut returned: Vec<Option<(Domain, EventQueue)>> = (0..nd).map(|_| None).collect();
        for slot in slots {
            let inner = slot.into_inner().unwrap_or_else(|p| p.into_inner());
            for (d, dom, queue) in inner {
                returned[d] = Some((dom, queue));
            }
        }
        for pair in returned {
            let (dom, queue) = pair.expect("every domain returns from its worker");
            self.core.domains.push(dom);
            self.queues.push(queue);
        }
    }
}

/// Run `cfg` through the serial oracle — a convenience the equivalence
/// tests and benches share.
pub fn serial_report(cfg: SimConfig) -> SimReport {
    Simulator::new(cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{TopoSpec, TrapTransport};
    use crate::time::{MS, US};
    use ib_mgmt::enforcement::EnforcementKind;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 2 * MS,
            warmup: 200 * US,
            ..SimConfig::default()
        }
    }

    /// Byte-level report equality via the JSON form (covers every counter
    /// and the raw Welford accumulators).
    fn assert_identical(cfg: SimConfig, threads: usize) {
        let serial = Simulator::new(cfg.clone());
        let serial_events = {
            let (report, events) = serial.run_counted();
            let mut par = ParSimulator::with_threads(cfg, threads);
            let preport = par.run();
            assert_eq!(
                report.to_json().to_string(),
                preport.to_json().to_string(),
                "parallel report diverged at {threads} threads"
            );
            (events, par.events_processed(), par.peak_packets())
        };
        let (se, pe, _) = serial_events;
        assert_eq!(se, pe, "event counts diverged");
    }

    #[test]
    fn mesh_matches_serial_at_many_thread_counts() {
        for threads in [1, 2, 4, 7] {
            assert_identical(quick_cfg(), threads);
        }
    }

    #[test]
    fn fat_tree_with_attack_matches_serial() {
        let mut cfg = quick_cfg();
        cfg.topology = TopoSpec::FatTree { k: 4 };
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        assert_identical(cfg, 4);
    }

    #[test]
    fn inband_traps_match_serial() {
        let mut cfg = quick_cfg();
        cfg.topology = TopoSpec::FatTree { k: 4 };
        cfg.num_attackers = 2;
        cfg.attack_probability = 1.0;
        cfg.enforcement = EnforcementKind::Sif;
        cfg.trap_transport = TrapTransport::InBand;
        assert_identical(cfg, 4);
    }

    #[test]
    fn dragonfly_with_faults_matches_serial() {
        let mut cfg = quick_cfg();
        cfg.topology = TopoSpec::Dragonfly {
            a: 2,
            p: 2,
            h: 1,
            valiant: true,
        };
        cfg.fault = crate::fault::FaultConfig {
            drop_prob: 0.02,
            corrupt_prob: 0.01,
            reorder_prob: 0.01,
            reorder_delay_ps: 20 * US,
        };
        assert_identical(cfg, 3);
    }

    #[test]
    fn flows_match_serial_end_to_end() {
        let mut cfg = quick_cfg();
        cfg.topology = TopoSpec::FatTree { k: 4 };
        cfg.num_partitions = 1;
        cfg.traffic.realtime_load = 0.05;
        cfg.traffic.best_effort_load = 0.05;
        let post = |sim: &mut dyn FnMut(usize, usize, u64) -> usize| {
            let n = 16;
            for src in 0..n {
                sim(src, (src + 5) % n, 8 * 1024);
            }
        };
        let mut serial = Simulator::new(cfg.clone());
        post(&mut |s, d, b| serial.post_flow(s, d, b));
        serial.run_hosts_until(SimTime::MAX);
        let mut par = ParSimulator::with_threads(cfg, 4);
        post(&mut |s, d, b| par.post_flow(s, d, b));
        par.run();
        let sf: Vec<_> = serial.flows().iter().map(|f| f.completed_at).collect();
        let pf: Vec<_> = par.flows().iter().map(|f| f.completed_at).collect();
        assert_eq!(sf, pf, "flow completion times diverged");
        assert!(sf.iter().all(|c| c.is_some()));
        assert_eq!(serial.peak_packets(), par.peak_packets());
    }

    #[test]
    fn peak_packets_is_thread_invariant() {
        let run = |threads| {
            let mut par = ParSimulator::with_threads(quick_cfg(), threads);
            par.run();
            par.peak_packets()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(5));
    }
}
