//! Recycled storage for in-flight packets.
//!
//! Hop-by-hop forwarding used to clone ~100-byte [`SimPacket`] structs
//! through every switch `VecDeque` and event. The arena stores each
//! packet exactly once for its wire lifetime; queues and events pass
//! 4-byte [`PacketRef`] indices instead. Slots recycle through a free
//! list, so steady-state forwarding allocates nothing — the arena's
//! high-water mark is the peak number of packets simultaneously in
//! flight.
//!
//! ## Recycling rules
//!
//! * [`PacketArena::insert`] on generation (or on fault-layer
//!   duplication) returns the ref that travels with the packet.
//! * Exactly one [`PacketArena::release`] per ref, at the packet's
//!   terminal point: delivery, drop (credit exhaustion, filter, CRC
//!   discard), or end-of-run queue teardown.
//! * A released ref must never be dereferenced again; debug builds catch
//!   stale refs via the free-slot sentinel.

use crate::event::SimPacket;

/// Index of a live packet in a [`PacketArena`]. Plain data — copying the
/// ref does not copy the packet, and does not confer ownership: the
/// engine releases each ref exactly once at its terminal point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketRef(u32);

/// Free-listed slab of in-flight packets.
#[derive(Debug, Default)]
pub struct PacketArena {
    slots: Vec<Option<SimPacket>>,
    free: Vec<u32>,
    live: usize,
}

impl PacketArena {
    /// Empty arena.
    pub fn new() -> Self {
        PacketArena::default()
    }

    /// Store a packet; the returned ref is valid until released.
    pub fn insert(&mut self, packet: SimPacket) -> PacketRef {
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.slots[idx as usize].is_none());
            self.slots[idx as usize] = Some(packet);
            PacketRef(idx)
        } else {
            self.slots.push(Some(packet));
            PacketRef((self.slots.len() - 1) as u32)
        }
    }

    /// Borrow the packet behind `r`.
    pub fn get(&self, r: PacketRef) -> &SimPacket {
        self.slots[r.0 as usize]
            .as_ref()
            .expect("stale PacketRef: slot already released")
    }

    /// Mutably borrow the packet behind `r`.
    pub fn get_mut(&mut self, r: PacketRef) -> &mut SimPacket {
        self.slots[r.0 as usize]
            .as_mut()
            .expect("stale PacketRef: slot already released")
    }

    /// Take the packet out and recycle its slot. Terminal: `r` is dead
    /// after this call.
    pub fn release(&mut self, r: PacketRef) -> SimPacket {
        let packet = self.slots[r.0 as usize]
            .take()
            .expect("double release of PacketRef");
        self.free.push(r.0);
        self.live -= 1;
        packet
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water slot count (peak simultaneous in-flight packets).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::TrafficClass;
    use ib_packet::types::PKey;

    fn packet(id: u64) -> SimPacket {
        SimPacket {
            id,
            src: 0,
            dst: 1,
            class: TrafficClass::BestEffort,
            pkey: PKey(0x8001),
            vl: 0,
            bytes: 256,
            gen_time: 0,
            inject_time: 0,
            trap: None,
            icrc: 0,
            corrupted: false,
            wire: None,
            flow: None,
        }
    }

    #[test]
    fn insert_get_release_roundtrip() {
        let mut arena = PacketArena::new();
        let a = arena.insert(packet(1));
        let b = arena.insert(packet(2));
        assert_eq!(arena.get(a).id, 1);
        assert_eq!(arena.get(b).id, 2);
        assert_eq!(arena.live(), 2);
        arena.get_mut(a).corrupted = true;
        assert!(arena.get(a).corrupted);
        assert_eq!(arena.release(a).id, 1);
        assert_eq!(arena.live(), 1);
    }

    #[test]
    fn slots_recycle() {
        let mut arena = PacketArena::new();
        // Keep at most 3 live across heavy churn: capacity must not grow
        // past the high-water mark.
        let mut live = Vec::new();
        for i in 0..300u64 {
            live.push(arena.insert(packet(i)));
            if live.len() > 3 {
                arena.release(live.remove(0));
            }
        }
        assert_eq!(arena.capacity(), 4, "high-water is 4 (push before pop)");
        assert_eq!(arena.live(), 3);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut arena = PacketArena::new();
        let r = arena.insert(packet(1));
        arena.release(r);
        arena.release(r);
    }
}
