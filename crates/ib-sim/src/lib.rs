//! # ib-sim
//!
//! A packet-level discrete-event simulator of an InfiniBand fabric, built
//! to the paper's testbed description (§3.1, Table 1):
//!
//! * 16-node mesh of 5-port switches (4 mesh directions + 1 host port),
//!   one HCA per switch;
//! * 1x links at 2.5 Gbps, 1024-byte MTU;
//! * 16 virtual lanes per physical link with credit-based flow control —
//!   "the IBA network accepts a new packet only when there is available
//!   buffer", which is why DoS pressure shows up as *queuing time* at the
//!   source HCA rather than in-network latency;
//! * VL arbitration giving realtime traffic priority over best-effort;
//! * dimension-order routing (deadlock-free on the mesh);
//! * pluggable switch-side partition enforcement
//!   ([`ib_mgmt::enforcement`]: No-Filtering / DPT / IF / SIF) with
//!   table-lookup cycles charged to the switch pipeline, and the
//!   trap → SM → program-filter control loop modeled with latencies;
//! * traffic generators (§3.1): rate-limited realtime with back-off,
//!   Poisson best-effort, and full-speed DoS attackers using random
//!   invalid P_Keys;
//! * an authentication cost model (§6, Figure 6): per-message MAC cycles
//!   at the end nodes and a one-RTT key exchange per new QP pair under
//!   QP-level key management.
//!
//! The simulator measures what the paper measures: **queuing time** (HCA
//! wait before first byte hits the wire) and **network latency** (wire
//! entry to delivery), split by traffic class, with mean and standard
//! deviation.

pub mod arena;
pub mod config;
pub mod dragonfly;
pub mod engine;
pub mod event;
pub mod fattree;
pub mod fault;
pub mod metrics;
pub mod parallel;
pub mod time;
pub mod topology;
pub mod traffic;

pub use arena::{PacketArena, PacketRef};
pub use config::{ArbitrationPolicy, AttackKeys, AuthMode, SimConfig, TopoSpec, TrafficConfig};
pub use dragonfly::Dragonfly;
pub use engine::{HostDelivery, SimReport, Simulator};
pub use fattree::FatTree;
pub use fault::{FaultConfig, FaultInjector, FaultOutcome};
pub use metrics::{ClassStats, OnlineStats};
pub use parallel::ParSimulator;
pub use time::{SimTime, BYTE_TIME_PS, NS, PS, US};
pub use topology::{flow_hash, MeshTopology, Partition, Peer, Topology};
pub use traffic::TrafficClass;
