//! Simulation time base: unsigned picoseconds.
//!
//! Picosecond resolution keeps byte times exact: one byte on a 2.5 Gbps 1x
//! link takes 8 bits / 2.5 Gb/s = 3.2 ns = 3200 ps, an integer.

/// Simulation timestamp / duration in picoseconds.
pub type SimTime = u64;

/// One picosecond.
pub const PS: SimTime = 1;
/// One nanosecond in ps.
pub const NS: SimTime = 1_000;
/// One microsecond in ps.
pub const US: SimTime = 1_000_000;
/// One millisecond in ps.
pub const MS: SimTime = 1_000_000_000;

/// Time to put one byte on a 2.5 Gbps link (Table 1), in ps.
pub const BYTE_TIME_PS: SimTime = 3_200;

/// Transmission time of `bytes` at `gbps` (supports the ablation sweeps
/// that vary link speed), in ps.
pub fn tx_time_ps(bytes: usize, gbps: f64) -> SimTime {
    ((bytes as f64 * 8.0 / gbps) * 1_000.0).round() as SimTime
}

/// Convert ps to fractional microseconds (for reporting).
pub fn ps_to_us(ps: SimTime) -> f64 {
    ps as f64 / US as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_time_matches_formula() {
        assert_eq!(tx_time_ps(1, 2.5), BYTE_TIME_PS);
        // A 1024-byte MTU takes 3.2768 µs on a 1x link.
        assert_eq!(tx_time_ps(1024, 2.5), 1024 * BYTE_TIME_PS);
        assert_eq!(ps_to_us(tx_time_ps(1024, 2.5)), 3.2768);
    }

    #[test]
    fn faster_links_are_faster() {
        assert!(tx_time_ps(1024, 10.0) < tx_time_ps(1024, 2.5));
        assert_eq!(tx_time_ps(1024, 10.0), 1024 * BYTE_TIME_PS / 4);
    }

    #[test]
    fn unit_ratios() {
        assert_eq!(NS, 1_000 * PS);
        assert_eq!(US, 1_000 * NS);
        assert_eq!(MS, 1_000 * US);
    }
}
