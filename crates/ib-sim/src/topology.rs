//! The 2-D mesh fabric of §3.1: `dim × dim` switches, each with four mesh
//! ports and one host port feeding an HCA, with deadlock-free
//! dimension-order (X-then-Y) routing.

use ib_packet::types::Lid;

/// Port roles on a 5-port switch.
pub const PORT_EAST: usize = 0;
pub const PORT_WEST: usize = 1;
pub const PORT_NORTH: usize = 2;
pub const PORT_SOUTH: usize = 3;
/// The host port the local HCA hangs off.
pub const PORT_HOST: usize = 4;

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// Another switch's port.
    Switch { switch: usize, port: usize },
    /// The locally attached HCA.
    Hca { node: usize },
    /// Mesh edge — nothing connected.
    None,
}

/// A `dim × dim` mesh. Switch `s` sits at `(x, y) = (s % dim, s / dim)`;
/// node `i` is attached to switch `i`'s host port, with LID `i + 1`.
#[derive(Debug, Clone)]
pub struct MeshTopology {
    dim: usize,
}

impl MeshTopology {
    /// A mesh of `dim × dim` switches (dim ≥ 1).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        MeshTopology { dim }
    }

    /// Side length.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of switches (== nodes).
    pub fn num_switches(&self) -> usize {
        self.dim * self.dim
    }

    /// Coordinates of switch `s`.
    pub fn coords(&self, s: usize) -> (usize, usize) {
        (s % self.dim, s / self.dim)
    }

    /// Switch at coordinates.
    pub fn switch_at(&self, x: usize, y: usize) -> usize {
        y * self.dim + x
    }

    /// LID of node `i` (SM assigns 1-based LIDs).
    pub fn lid_of(&self, node: usize) -> Lid {
        Lid(node as u16 + 1)
    }

    /// Node for a LID.
    pub fn node_of(&self, lid: Lid) -> Option<usize> {
        (lid.0 as usize)
            .checked_sub(1)
            .filter(|n| *n < self.num_switches())
    }

    /// What's connected to `(switch, port)`.
    pub fn peer(&self, switch: usize, port: usize) -> Peer {
        let (x, y) = self.coords(switch);
        match port {
            PORT_HOST => Peer::Hca { node: switch },
            PORT_EAST if x + 1 < self.dim => Peer::Switch {
                switch: self.switch_at(x + 1, y),
                port: PORT_WEST,
            },
            PORT_WEST if x > 0 => Peer::Switch {
                switch: self.switch_at(x - 1, y),
                port: PORT_EAST,
            },
            PORT_NORTH if y + 1 < self.dim => Peer::Switch {
                switch: self.switch_at(x, y + 1),
                port: PORT_SOUTH,
            },
            PORT_SOUTH if y > 0 => Peer::Switch {
                switch: self.switch_at(x, y - 1),
                port: PORT_NORTH,
            },
            _ => Peer::None,
        }
    }

    /// Dimension-order routing: the output port switch `s` uses toward the
    /// node attached to `dest_switch`. X is corrected first, then Y; at the
    /// destination switch the host port is returned.
    pub fn route(&self, s: usize, dest_switch: usize) -> usize {
        let (x, y) = self.coords(s);
        let (dx, dy) = self.coords(dest_switch);
        if x < dx {
            PORT_EAST
        } else if x > dx {
            PORT_WEST
        } else if y < dy {
            PORT_NORTH
        } else if y > dy {
            PORT_SOUTH
        } else {
            PORT_HOST
        }
    }

    /// Hop count (number of switches traversed) from node `a` to node `b`.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by) + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = MeshTopology::new(4);
        for s in 0..16 {
            let (x, y) = t.coords(s);
            assert_eq!(t.switch_at(x, y), s);
        }
    }

    #[test]
    fn peers_are_symmetric() {
        let t = MeshTopology::new(4);
        for s in 0..16 {
            for p in 0..4 {
                if let Peer::Switch { switch, port } = t.peer(s, p) {
                    assert_eq!(
                        t.peer(switch, port),
                        Peer::Switch { switch: s, port: p },
                        "asymmetric link {s}:{p}"
                    );
                }
            }
        }
    }

    #[test]
    fn edges_have_no_peer() {
        let t = MeshTopology::new(4);
        assert_eq!(t.peer(0, PORT_WEST), Peer::None);
        assert_eq!(t.peer(0, PORT_SOUTH), Peer::None);
        assert_eq!(t.peer(15, PORT_EAST), Peer::None);
        assert_eq!(t.peer(15, PORT_NORTH), Peer::None);
    }

    #[test]
    fn host_port_reaches_hca() {
        let t = MeshTopology::new(4);
        assert_eq!(t.peer(7, PORT_HOST), Peer::Hca { node: 7 });
    }

    #[test]
    fn routing_reaches_destination() {
        let t = MeshTopology::new(4);
        for src in 0..16 {
            for dst in 0..16 {
                let mut s = src;
                let mut hops = 0;
                loop {
                    let port = t.route(s, dst);
                    if port == PORT_HOST {
                        break;
                    }
                    match t.peer(s, port) {
                        Peer::Switch { switch, .. } => s = switch,
                        other => panic!("route fell off the mesh: {other:?}"),
                    }
                    hops += 1;
                    assert!(hops <= 6, "route too long {src}->{dst}");
                }
                assert_eq!(s, dst, "route {src}->{dst} ended at {s}");
                assert_eq!(
                    hops + 1,
                    t.hops(src, dst),
                    "hop count mismatch {src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let t = MeshTopology::new(4);
        // From (0,0) to (3,3): first hop must be EAST.
        assert_eq!(t.route(0, 15), PORT_EAST);
        // From (3,0) to (3,3): X equal, go NORTH.
        assert_eq!(t.route(3, 15), PORT_NORTH);
    }

    #[test]
    fn lids_are_one_based() {
        let t = MeshTopology::new(4);
        assert_eq!(t.lid_of(0), Lid(1));
        assert_eq!(t.node_of(Lid(16)), Some(15));
        assert_eq!(t.node_of(Lid(0)), None);
        assert_eq!(t.node_of(Lid(17)), None);
    }

    #[test]
    fn hops_examples() {
        let t = MeshTopology::new(4);
        assert_eq!(t.hops(0, 0), 1, "self traffic still crosses own switch");
        assert_eq!(t.hops(0, 3), 4);
        assert_eq!(t.hops(0, 15), 7);
    }
}
