//! Fabric topologies: the [`Topology`] trait abstracting what the engine
//! needs from a fabric (ports, peers, LID assignment, per-hop routing),
//! plus the concrete generators — the paper's §3.1 2-D mesh here, and the
//! scale-out [`crate::fattree::FatTree`] / [`crate::dragonfly::Dragonfly`]
//! generators in their own modules.
//!
//! Routing is *per-flow deterministic*: [`Topology::route_flow`] takes a
//! flow hash and must return the same output port for the same
//! `(switch, dst, flow_hash)` triple, so a flow's packets stay in order
//! while distinct flows spread across the path diversity (ECMP over
//! fat-tree cores, Valiant spreading over dragonfly groups). Single-path
//! topologies ignore the hash.

use ib_packet::types::Lid;

/// Port roles on a 5-port mesh switch.
pub const PORT_EAST: usize = 0;
pub const PORT_WEST: usize = 1;
pub const PORT_NORTH: usize = 2;
pub const PORT_SOUTH: usize = 3;
/// The host port the local HCA hangs off (mesh layout).
pub const PORT_HOST: usize = 4;

/// What sits on the far side of a switch port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// Another switch's port.
    Switch { switch: usize, port: usize },
    /// An attached HCA.
    Hca { node: usize },
    /// Fabric edge — nothing connected.
    None,
}

/// Deterministic per-flow hash steering multi-path route choices
/// (SplitMix64 finalizer over the packed endpoints). Both the packet
/// engine and the flow-level model derive path choices from this one
/// function, so the two always agree on which path a flow takes.
pub fn flow_hash(src: usize, dst: usize) -> u64 {
    let mut z = ((src as u64) << 32) ^ (dst as u64) ^ 0x9E37_79B9_7F4A_7C15;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What the simulation engine (and the flow-level model) need from a
/// fabric: a set of switches with uniform radix, HCAs attached to host
/// ports, SM-style LID assignment, and deterministic per-hop routing
/// with a flow-hash-steered multi-path variant.
///
/// Invariants every implementation must uphold (checked by
/// [`conformance`]):
///
/// * links are symmetric: `peer(peer(s, p)) == (s, p)` for switch peers;
/// * each node's [`host_attachment`](Topology::host_attachment) port has
///   `peer == Hca { node }`, and no two nodes share an attachment;
/// * from any switch, following `route_flow` toward any node reaches its
///   attachment without revisiting a switch, traversing at most
///   [`diameter`](Topology::diameter) switches — for every flow hash.
pub trait Topology: Send + Sync {
    /// Short label for reports (`"mesh"`, `"fat-tree"`, `"dragonfly"`).
    fn name(&self) -> &'static str;

    /// Number of switches.
    fn num_switches(&self) -> usize;

    /// Number of attached HCAs (end nodes).
    fn num_nodes(&self) -> usize;

    /// Ports per switch (uniform radix).
    fn radix(&self) -> usize;

    /// The `(switch, port)` the HCA of `node` hangs off.
    fn host_attachment(&self, node: usize) -> (usize, usize);

    /// What's connected to `(switch, port)`.
    fn peer(&self, switch: usize, port: usize) -> Peer;

    /// The output port `switch` uses toward the node `dst`, for the flow
    /// identified by `flow_hash` (multi-path topologies pick among equal
    /// candidates by hash; single-path topologies ignore it). At `dst`'s
    /// attachment switch this returns the host port.
    fn route_flow(&self, switch: usize, dst: usize, flow_hash: u64) -> usize;

    /// Upper bound on switches traversed by any route the topology can
    /// produce (the conformance tests' loop-freedom budget).
    fn diameter(&self) -> usize;

    /// True when the directed link out of `(switch, port)` crosses the
    /// fabric's *dateline*: a link whose buffer-dependency cycle would
    /// credit-deadlock the fabric unless packets escalate to the next
    /// virtual lane as they cross (the classic dragonfly global-channel
    /// VC scheme). Tree and dimension-ordered fabrics have acyclic
    /// channel dependencies and keep the default.
    fn is_dateline(&self, _switch: usize, _port: usize) -> bool {
        false
    }

    /// Event-domain assignment for the sharded engine: a domain id per
    /// switch (indexed by switch id), at most `max_domains` distinct
    /// values. Implementations should cut along the fabric's natural
    /// locality seams — per pod (fat-tree), per group (dragonfly), per
    /// switch tile (mesh) — so most links stay domain-internal and only
    /// cross-domain hops pay synchronization. The default is one domain
    /// (the serial special case). Ids need not be dense; [`Partition::of`]
    /// compacts them.
    ///
    /// Both engines derive the partition with `max_domains = usize::MAX`
    /// (the natural cut), so the domain structure — and therefore event
    /// ordering — is independent of thread count.
    fn partition(&self, max_domains: usize) -> Vec<usize> {
        let _ = max_domains;
        vec![0; self.num_switches()]
    }

    /// LID of node `i` (SM assigns 1-based LIDs).
    fn lid_of(&self, node: usize) -> Lid {
        debug_assert!(node < self.num_nodes());
        Lid(node as u16 + 1)
    }

    /// Node for a LID.
    fn node_of(&self, lid: Lid) -> Option<usize> {
        (lid.0 as usize)
            .checked_sub(1)
            .filter(|n| *n < self.num_nodes())
    }

    /// Switches traversed by the flow-hash-selected path from node `a` to
    /// node `b` (own edge switch included, so the minimum is 1).
    fn hops_on_path(&self, a: usize, b: usize, flow_hash: u64) -> usize {
        let (mut s, _) = self.host_attachment(a);
        let (dsw, _) = self.host_attachment(b);
        let mut hops = 1;
        while s != dsw {
            let port = self.route_flow(s, b, flow_hash);
            match self.peer(s, port) {
                Peer::Switch { switch, .. } => s = switch,
                other => panic!("route fell off the fabric at {s}:{port}: {other:?}"),
            }
            hops += 1;
            assert!(hops <= self.diameter(), "route {a}->{b} exceeds diameter");
        }
        hops
    }
}

/// A `dim × dim` mesh. Switch `s` sits at `(x, y) = (s % dim, s / dim)`;
/// node `i` is attached to switch `i`'s host port, with LID `i + 1`.
#[derive(Debug, Clone)]
pub struct MeshTopology {
    dim: usize,
}

impl MeshTopology {
    /// A mesh of `dim × dim` switches (dim ≥ 1).
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 1);
        assert!(dim * dim <= 0xFFFE, "LIDs are 16-bit");
        MeshTopology { dim }
    }

    /// Side length.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of switches (== nodes).
    pub fn num_switches(&self) -> usize {
        self.dim * self.dim
    }

    /// Coordinates of switch `s`.
    pub fn coords(&self, s: usize) -> (usize, usize) {
        (s % self.dim, s / self.dim)
    }

    /// Switch at coordinates.
    pub fn switch_at(&self, x: usize, y: usize) -> usize {
        y * self.dim + x
    }

    /// LID of node `i` (SM assigns 1-based LIDs).
    pub fn lid_of(&self, node: usize) -> Lid {
        Lid(node as u16 + 1)
    }

    /// Node for a LID.
    pub fn node_of(&self, lid: Lid) -> Option<usize> {
        (lid.0 as usize)
            .checked_sub(1)
            .filter(|n| *n < self.num_switches())
    }

    /// What's connected to `(switch, port)`.
    pub fn peer(&self, switch: usize, port: usize) -> Peer {
        let (x, y) = self.coords(switch);
        match port {
            PORT_HOST => Peer::Hca { node: switch },
            PORT_EAST if x + 1 < self.dim => Peer::Switch {
                switch: self.switch_at(x + 1, y),
                port: PORT_WEST,
            },
            PORT_WEST if x > 0 => Peer::Switch {
                switch: self.switch_at(x - 1, y),
                port: PORT_EAST,
            },
            PORT_NORTH if y + 1 < self.dim => Peer::Switch {
                switch: self.switch_at(x, y + 1),
                port: PORT_SOUTH,
            },
            PORT_SOUTH if y > 0 => Peer::Switch {
                switch: self.switch_at(x, y - 1),
                port: PORT_NORTH,
            },
            _ => Peer::None,
        }
    }

    /// Dimension-order routing: the output port switch `s` uses toward the
    /// node attached to `dest_switch`. X is corrected first, then Y; at the
    /// destination switch the host port is returned.
    pub fn route(&self, s: usize, dest_switch: usize) -> usize {
        let (x, y) = self.coords(s);
        let (dx, dy) = self.coords(dest_switch);
        if x < dx {
            PORT_EAST
        } else if x > dx {
            PORT_WEST
        } else if y < dy {
            PORT_NORTH
        } else if y > dy {
            PORT_SOUTH
        } else {
            PORT_HOST
        }
    }

    /// Hop count (number of switches traversed) from node `a` to node `b`.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        ax.abs_diff(bx) + ay.abs_diff(by) + 1
    }
}

impl Topology for MeshTopology {
    fn name(&self) -> &'static str {
        "mesh"
    }

    fn num_switches(&self) -> usize {
        MeshTopology::num_switches(self)
    }

    fn num_nodes(&self) -> usize {
        MeshTopology::num_switches(self)
    }

    fn radix(&self) -> usize {
        5
    }

    fn host_attachment(&self, node: usize) -> (usize, usize) {
        (node, PORT_HOST)
    }

    fn peer(&self, switch: usize, port: usize) -> Peer {
        MeshTopology::peer(self, switch, port)
    }

    /// Dimension-order routing is single-path: the hash is ignored.
    fn route_flow(&self, switch: usize, dst: usize, _flow_hash: u64) -> usize {
        MeshTopology::route(self, switch, dst)
    }

    fn diameter(&self) -> usize {
        2 * (self.dim - 1) + 1
    }

    /// 2×2 switch tiles: each domain keeps its intra-tile links internal
    /// and touches at most four neighbor tiles. A 2×2 mesh collapses to
    /// one domain.
    fn partition(&self, max_domains: usize) -> Vec<usize> {
        let cap = max_domains.max(1);
        let tiles_x = self.dim.div_ceil(2);
        (0..MeshTopology::num_switches(self))
            .map(|s| {
                let (x, y) = self.coords(s);
                ((y / 2) * tiles_x + x / 2) % cap
            })
            .collect()
    }
}

/// A compacted event-domain assignment plus the link census the parallel
/// engine and its property tests need: which switch lives in which
/// domain, how many switch-to-switch links stay internal versus cross
/// domains, and the minimum propagation delay over the crossing links —
/// the conservative lookahead bound.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Per-switch domain id, dense in `0..num_domains` (first-appearance
    /// order of the raw ids, so numbering is deterministic).
    pub domain_of: Vec<usize>,
    /// Number of distinct domains.
    pub num_domains: usize,
}

impl Partition {
    /// Compute `topo.partition(max_domains)` and compact the ids to a
    /// dense `0..num_domains` range.
    pub fn of(topo: &dyn Topology, max_domains: usize) -> Self {
        let raw = topo.partition(max_domains);
        assert_eq!(
            raw.len(),
            topo.num_switches(),
            "{}: partition must assign every switch exactly once",
            topo.name()
        );
        let mut remap = std::collections::HashMap::new();
        let mut domain_of = Vec::with_capacity(raw.len());
        for d in raw {
            let next = remap.len();
            domain_of.push(*remap.entry(d).or_insert(next));
        }
        Partition {
            num_domains: remap.len(),
            domain_of,
        }
    }

    /// Domain of the switch a node hangs off.
    pub fn domain_of_node(&self, topo: &dyn Topology, node: usize) -> usize {
        self.domain_of[topo.host_attachment(node).0]
    }

    /// Directed switch-to-switch link counts `(internal, cross)`.
    pub fn link_census(&self, topo: &dyn Topology) -> (usize, usize) {
        let (mut internal, mut cross) = (0, 0);
        for s in 0..topo.num_switches() {
            for p in 0..topo.radix() {
                if let Peer::Switch { switch, .. } = topo.peer(s, p) {
                    if self.domain_of[s] == self.domain_of[switch] {
                        internal += 1;
                    } else {
                        cross += 1;
                    }
                }
            }
        }
        (internal, cross)
    }

    /// Minimum delay over cross-domain links per `delay_of(switch, port)`
    /// — the largest lookahead window that is still conservative. `None`
    /// when no link crosses a domain boundary (one effective domain, so
    /// no synchronization is needed at all).
    pub fn min_cross_delay(
        &self,
        topo: &dyn Topology,
        delay_of: &dyn Fn(usize, usize) -> crate::time::SimTime,
    ) -> Option<crate::time::SimTime> {
        let mut min = None;
        for s in 0..topo.num_switches() {
            for p in 0..topo.radix() {
                if let Peer::Switch { switch, .. } = topo.peer(s, p) {
                    if self.domain_of[s] != self.domain_of[switch] {
                        let d = delay_of(s, p);
                        min = Some(min.map_or(d, |m: crate::time::SimTime| m.min(d)));
                    }
                }
            }
        }
        min
    }
}

/// Generic invariant checks any [`Topology`] implementation must pass.
/// Unit tests run them against small instances of every generator; the
/// corpus-backed property test (`tests/topology_routing.rs`) samples
/// random instances and endpoint pairs.
pub mod conformance {
    use super::{Peer, Topology};

    /// Every switch-to-switch link is symmetric: the peer's peer is the
    /// original `(switch, port)`.
    pub fn peers_are_symmetric(t: &dyn Topology) {
        for s in 0..t.num_switches() {
            for p in 0..t.radix() {
                if let Peer::Switch { switch, port } = t.peer(s, p) {
                    assert!(switch < t.num_switches(), "peer out of range at {s}:{p}");
                    assert_eq!(
                        t.peer(switch, port),
                        Peer::Switch { switch: s, port: p },
                        "asymmetric link {s}:{p} <-> {switch}:{port} on {}",
                        t.name()
                    );
                }
            }
        }
    }

    /// Each node's attachment port faces exactly that node's HCA, and no
    /// two nodes share a `(switch, port)`.
    pub fn hosts_attach_uniquely(t: &dyn Topology) {
        let mut seen = std::collections::BTreeSet::new();
        for node in 0..t.num_nodes() {
            let (s, p) = t.host_attachment(node);
            assert!(s < t.num_switches() && p < t.radix());
            assert_eq!(
                t.peer(s, p),
                Peer::Hca { node },
                "attachment of node {node} disagrees with peer() on {}",
                t.name()
            );
            assert!(seen.insert((s, p)), "shared attachment {s}:{p}");
        }
    }

    /// Walk the route from `src` to `dst` under `flow_hash`: it must
    /// reach `dst`'s attachment without revisiting a switch (loop-free)
    /// in at most [`Topology::diameter`] switches. Returns the switches
    /// traversed.
    pub fn route_is_sound(t: &dyn Topology, src: usize, dst: usize, flow_hash: u64) -> usize {
        let (mut s, _) = t.host_attachment(src);
        let (dsw, dport) = t.host_attachment(dst);
        let mut visited = vec![s];
        loop {
            let port = t.route_flow(s, dst, flow_hash);
            assert!(port < t.radix(), "route picked port {port} out of range");
            if s == dsw {
                assert_eq!(port, dport, "at dst switch the host port is returned");
                return visited.len();
            }
            match t.peer(s, port) {
                Peer::Switch { switch, .. } => s = switch,
                other => panic!(
                    "{}: route {src}->{dst} (hash {flow_hash:#x}) fell off at {s}:{port}: {other:?}",
                    t.name()
                ),
            }
            assert!(
                !visited.contains(&s),
                "{}: route {src}->{dst} (hash {flow_hash:#x}) loops back to switch {s}",
                t.name()
            );
            visited.push(s);
            assert!(
                visited.len() <= t.diameter(),
                "{}: route {src}->{dst} (hash {flow_hash:#x}) exceeds diameter {}",
                t.name(),
                t.diameter()
            );
        }
    }

    /// All-pairs routing soundness for a sample of flow hashes.
    pub fn routing_reaches_everyone(t: &dyn Topology, hashes: &[u64]) {
        for src in 0..t.num_nodes() {
            for dst in 0..t.num_nodes() {
                for &h in hashes {
                    route_is_sound(t, src, dst, h);
                }
            }
        }
    }

    /// LIDs are 1-based, dense, and invert correctly.
    pub fn lids_round_trip(t: &dyn Topology) {
        use ib_packet::types::Lid;
        for node in 0..t.num_nodes() {
            let lid = t.lid_of(node);
            assert!(lid.0 as usize == node + 1, "LIDs are dense and 1-based");
            assert_eq!(t.node_of(lid), Some(node));
        }
        assert_eq!(t.node_of(Lid(0)), None);
        assert_eq!(t.node_of(Lid(t.num_nodes() as u16 + 1)), None);
    }

    /// The full conformance suite (all-pairs routing over `hashes`).
    pub fn check_all(t: &dyn Topology, hashes: &[u64]) {
        peers_are_symmetric(t);
        hosts_attach_uniquely(t);
        lids_round_trip(t);
        routing_reaches_everyone(t, hashes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let t = MeshTopology::new(4);
        for s in 0..16 {
            let (x, y) = t.coords(s);
            assert_eq!(t.switch_at(x, y), s);
        }
    }

    /// Link symmetry, parametric over the side length (satellite fix: the
    /// old test hardcoded dim = 4) and shared with the generator
    /// conformance suite.
    #[test]
    fn peers_are_symmetric() {
        for dim in 1..=6 {
            conformance::peers_are_symmetric(&MeshTopology::new(dim));
        }
    }

    #[test]
    fn edges_have_no_peer() {
        let t = MeshTopology::new(4);
        assert_eq!(t.peer(0, PORT_WEST), Peer::None);
        assert_eq!(t.peer(0, PORT_SOUTH), Peer::None);
        assert_eq!(t.peer(15, PORT_EAST), Peer::None);
        assert_eq!(t.peer(15, PORT_NORTH), Peer::None);
    }

    #[test]
    fn host_port_reaches_hca() {
        let t = MeshTopology::new(4);
        assert_eq!(MeshTopology::peer(&t, 7, PORT_HOST), Peer::Hca { node: 7 });
        assert_eq!(Topology::host_attachment(&t, 7), (7, PORT_HOST));
    }

    /// Routing reaches every destination, parametric over the side length.
    /// The hop bound is the mesh diameter `2·(dim−1)` switch-to-switch
    /// transitions — the satellite fix for the old `hops <= 6`, which was
    /// only valid for dim = 4.
    #[test]
    fn routing_reaches_destination() {
        for dim in 1..=6 {
            let t = MeshTopology::new(dim);
            let n = MeshTopology::num_switches(&t);
            for src in 0..n {
                for dst in 0..n {
                    let mut s = src;
                    let mut hops = 0;
                    loop {
                        let port = t.route(s, dst);
                        if port == PORT_HOST {
                            break;
                        }
                        match MeshTopology::peer(&t, s, port) {
                            Peer::Switch { switch, .. } => s = switch,
                            other => panic!("route fell off the mesh: {other:?}"),
                        }
                        hops += 1;
                        assert!(
                            hops <= 2 * (dim - 1),
                            "route too long {src}->{dst} at dim {dim}"
                        );
                    }
                    assert_eq!(s, dst, "route {src}->{dst} ended at {s}");
                    assert_eq!(
                        hops + 1,
                        t.hops(src, dst),
                        "hop count mismatch {src}->{dst}"
                    );
                }
            }
        }
    }

    /// The same invariants through the trait-level conformance suite —
    /// what the fat-tree and dragonfly generators also run.
    #[test]
    fn mesh_passes_trait_conformance() {
        for dim in 1..=5 {
            conformance::check_all(&MeshTopology::new(dim), &[0, 1, flow_hash(3, 7)]);
        }
    }

    #[test]
    fn x_is_corrected_before_y() {
        let t = MeshTopology::new(4);
        // From (0,0) to (3,3): first hop must be EAST.
        assert_eq!(t.route(0, 15), PORT_EAST);
        // From (3,0) to (3,3): X equal, go NORTH.
        assert_eq!(t.route(3, 15), PORT_NORTH);
    }

    #[test]
    fn lids_are_one_based() {
        let t = MeshTopology::new(4);
        assert_eq!(t.lid_of(0), Lid(1));
        assert_eq!(t.node_of(Lid(16)), Some(15));
        assert_eq!(t.node_of(Lid(0)), None);
        assert_eq!(t.node_of(Lid(17)), None);
    }

    #[test]
    fn hops_examples() {
        let t = MeshTopology::new(4);
        assert_eq!(t.hops(0, 0), 1, "self traffic still crosses own switch");
        assert_eq!(t.hops(0, 3), 4);
        assert_eq!(t.hops(0, 15), 7);
        // The trait-level walk agrees with the closed form (single path,
        // so the hash is irrelevant).
        assert_eq!(t.hops_on_path(0, 15, 0xDEAD), 7);
    }

    #[test]
    fn mesh_partition_is_two_by_two_tiles() {
        let t = MeshTopology::new(4);
        let p = Partition::of(&t, usize::MAX);
        assert_eq!(p.num_domains, 4);
        // (0,0) and (1,1) share a tile; (2,1) is the next tile east.
        assert_eq!(
            p.domain_of[t.switch_at(0, 0)],
            p.domain_of[t.switch_at(1, 1)]
        );
        assert_ne!(
            p.domain_of[t.switch_at(1, 1)],
            p.domain_of[t.switch_at(2, 1)]
        );
        // Intra-tile links stay internal; tile borders cross.
        let (internal, cross) = p.link_census(&t);
        assert_eq!(internal, 4 * 4 * 2, "4 tiles × 4 intra-tile links × 2 dirs");
        assert_eq!(cross, 2 * 4 * 2, "2 border seams × 4 links × 2 dirs");
        // The 2×2 mesh collapses to a single domain; a cap folds tiles.
        assert_eq!(
            Partition::of(&MeshTopology::new(2), usize::MAX).num_domains,
            1
        );
        assert_eq!(Partition::of(&t, 2).num_domains, 2);
        // Uniform delays make the lookahead the delay itself when any
        // link crosses, and None when nothing does.
        assert_eq!(p.min_cross_delay(&t, &|_, _| 10), Some(10));
        let single = Partition::of(&MeshTopology::new(2), usize::MAX);
        assert_eq!(
            single.min_cross_delay(&MeshTopology::new(2), &|_, _| 10),
            None
        );
    }

    #[test]
    fn flow_hash_is_deterministic_and_spreads() {
        assert_eq!(flow_hash(3, 7), flow_hash(3, 7));
        assert_ne!(flow_hash(3, 7), flow_hash(7, 3));
        // Low bits vary across neighboring flows (they steer ECMP).
        let lows: std::collections::BTreeSet<u64> =
            (0..16).map(|d| flow_hash(0, d) & 0xF).collect();
        assert!(lows.len() > 4, "hash low bits too clustered: {lows:?}");
    }
}
