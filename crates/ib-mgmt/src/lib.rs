//! # ib-mgmt
//!
//! The InfiniBand management plane as the paper's defenses need it:
//!
//! * [`partition`] — partitions and per-port P_Key tables (IBA spec §10.9),
//!   including the P_Key Violation Counter HCAs keep.
//! * [`trap`] — the trap MAD a port raises toward the Subnet Manager on a
//!   P_Key violation (spec §14.2.5), the signal §3.3 of the paper uses to
//!   switch on Stateful Ingress Filtering at exactly the right moment.
//! * [`enforcement`] — the three switch-side partition-enforcement designs
//!   of §3.3: Duplicate Partition Tables (DPT), Ingress Filtering (IF), and
//!   the paper's Stateful Ingress Filtering (SIF) with its
//!   `Invalid_P_Key_Table` and Ingress P_Key Violation Counter.
//! * [`keys`] — the five IBA key classes and the Table 3 vulnerability
//!   matrix as machine-checkable metadata.
//! * [`keymgmt`] — §4's two authentication-key management schemes:
//!   partition-level (one secret per partition, distributed by the SM under
//!   each CA's public key) and QP-level (per-connection secrets, indexed by
//!   `(Q_Key, source QP)` exactly as Figure 3 shows).
//! * [`sm`] — a Subnet Manager that assigns LIDs, owns partition
//!   membership, receives traps, and programs switch filters.
//!
//! Everything here is pure protocol logic — `ib-sim` drives these state
//! machines inside the discrete-event simulation, and `ib-security` uses
//! the key tables for real MAC tagging.

pub mod enforcement;
pub mod keymgmt;
pub mod keys;
pub mod partition;
pub mod sm;
pub mod trap;

pub use enforcement::{
    DptEnforcer, EnforcementKind, FilterDecision, IfEnforcer, PartitionEnforcer, SifEnforcer,
};
pub use keymgmt::{EpochRing, KeyEpoch, PartitionKeyManager, QpKeyManager, SecretKey};
pub use partition::{PartitionConfig, PartitionTable};
pub use sm::SubnetManager;
pub use trap::{Trap, TrapKind};
