//! Switch-side partition enforcement — §3.3 of the paper.
//!
//! Three designs, same interface:
//!
//! * **DPT** (Duplicate Partition Table): every switch holds the union of
//!   all P_Keys it might see and checks *every packet at every hop*.
//!   Memory `n·p` per switch, lookup `f(n·p)` per packet per hop.
//! * **IF** (Ingress Filtering): only the edge port a node hangs off checks,
//!   against that node's own keys. Memory `p`, lookup `f(p)` per packet —
//!   but paid even when no attack is happening.
//! * **SIF** (Stateful Ingress Filtering, the paper's contribution): edge
//!   ports filter only while an attack is in progress. A P_Key-violation
//!   trap makes the SM program the offender's edge switch with an
//!   `Invalid_P_Key_Table` entry; an *Ingress P_Key Violation Counter*
//!   that stops increasing for an idle period lets the switch disable
//!   itself. Lookup cost `Pr(attack)·f(min(Avg(p̄), p))`.
//!
//! Lookup costs are *reported*, not simulated here: each check returns the
//! number of table-lookup pipeline cycles it consumed, and `ib-sim` turns
//! cycles into time (the paper charges one clock per lookup, citing CACTI).

use crate::partition::PartitionTable;
use ib_packet::types::{Lid, PKey};

/// What the filter decided about a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterDecision {
    /// Forward normally.
    Pass,
    /// Discard: invalid P_Key.
    Drop,
}

/// Result of one enforcement check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterCheck {
    pub decision: FilterDecision,
    /// Pipeline cycles consumed by table lookups for this packet at this
    /// switch (the paper's `f(·)` cost, with f ≡ 1 cycle per table probed).
    pub lookup_cycles: u64,
}

impl FilterCheck {
    const PASS_FREE: FilterCheck = FilterCheck {
        decision: FilterDecision::Pass,
        lookup_cycles: 0,
    };
}

/// Which enforcement design a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EnforcementKind {
    /// No switch enforcement (stock IBA behaviour; HCAs still check).
    NoFiltering,
    Dpt,
    If,
    Sif,
}

impl EnforcementKind {
    /// Every design, in the paper's Figure 5 presentation order.
    pub const ALL: [EnforcementKind; 4] = [
        EnforcementKind::NoFiltering,
        EnforcementKind::Dpt,
        EnforcementKind::If,
        EnforcementKind::Sif,
    ];

    /// Display label matching the paper's Figure 5 x-axis.
    pub fn label(self) -> &'static str {
        match self {
            EnforcementKind::NoFiltering => "No Filtering",
            EnforcementKind::Dpt => "DPT",
            EnforcementKind::If => "IF",
            EnforcementKind::Sif => "SIF",
        }
    }

    /// Inverse of [`label`](Self::label), for JSON round-trips.
    pub fn from_label(label: &str) -> Option<EnforcementKind> {
        Self::ALL.into_iter().find(|k| k.label() == label)
    }
}

/// Common interface the simulator's switches drive.
pub trait PartitionEnforcer {
    /// Inspect a data packet at a switch.
    ///
    /// * `now` — simulation time (arbitrary units, used by SIF idle logic).
    /// * `port` — switch port the packet entered on.
    /// * `is_edge_port` — whether that port connects directly to an end
    ///   node (ingress position for IF/SIF).
    /// * `slid`/`pkey` — from the packet's LRH/BTH.
    fn check(
        &mut self,
        now: u64,
        port: usize,
        is_edge_port: bool,
        slid: Lid,
        pkey: PKey,
    ) -> FilterCheck;

    /// Which design this is.
    fn kind(&self) -> EnforcementKind;

    /// Memory footprint in table entries (for the Table 2 cross-check).
    fn table_entries(&self) -> usize;

    /// SM programming hook: register an invalid P_Key seen from the node on
    /// `port`. Only SIF reacts; others ignore it.
    fn register_invalid(&mut self, _now: u64, _port: usize, _pkey: PKey) {}
}

/// No-op enforcer: stock IBA switches.
#[derive(Debug, Default)]
pub struct NoEnforcer;

impl PartitionEnforcer for NoEnforcer {
    fn check(&mut self, _: u64, _: usize, _: bool, _: Lid, _: PKey) -> FilterCheck {
        FilterCheck::PASS_FREE
    }
    fn kind(&self) -> EnforcementKind {
        EnforcementKind::NoFiltering
    }
    fn table_entries(&self) -> usize {
        0
    }
}

/// DPT: one big table, consulted for every packet at every hop.
#[derive(Debug)]
pub struct DptEnforcer {
    table: PartitionTable,
}

impl DptEnforcer {
    /// Build with the union of every P_Key this switch might legitimately
    /// carry (in the paper's model: all `n·p` memberships).
    pub fn new(all_pkeys: impl IntoIterator<Item = PKey>) -> Self {
        DptEnforcer {
            table: PartitionTable::from_keys(all_pkeys),
        }
    }
}

impl PartitionEnforcer for DptEnforcer {
    fn check(
        &mut self,
        _now: u64,
        _port: usize,
        _is_edge: bool,
        _slid: Lid,
        pkey: PKey,
    ) -> FilterCheck {
        // Every packet, every hop: one table probe (1 cycle per the paper's
        // CACTI-based estimate).
        let (ok, _) = self.table.check(pkey);
        FilterCheck {
            decision: if ok {
                FilterDecision::Pass
            } else {
                FilterDecision::Drop
            },
            lookup_cycles: 1,
        }
    }
    fn kind(&self) -> EnforcementKind {
        EnforcementKind::Dpt
    }
    fn table_entries(&self) -> usize {
        self.table.len()
    }
}

/// IF: per-edge-port tables holding exactly the attached node's P_Keys.
#[derive(Debug)]
pub struct IfEnforcer {
    /// Indexed by switch port; `None` for fabric-facing ports.
    port_tables: Vec<Option<PartitionTable>>,
}

impl IfEnforcer {
    /// `port_keys[p]` is `Some(keys of the node on port p)` for edge ports.
    pub fn new(port_keys: Vec<Option<Vec<PKey>>>) -> Self {
        IfEnforcer {
            port_tables: port_keys
                .into_iter()
                .map(|opt| opt.map(PartitionTable::from_keys))
                .collect(),
        }
    }
}

impl PartitionEnforcer for IfEnforcer {
    fn check(
        &mut self,
        _now: u64,
        port: usize,
        is_edge: bool,
        _slid: Lid,
        pkey: PKey,
    ) -> FilterCheck {
        if !is_edge {
            return FilterCheck::PASS_FREE;
        }
        match self.port_tables.get_mut(port).and_then(Option::as_mut) {
            Some(table) => {
                let (ok, _) = table.check(pkey);
                FilterCheck {
                    decision: if ok {
                        FilterDecision::Pass
                    } else {
                        FilterDecision::Drop
                    },
                    lookup_cycles: 1,
                }
            }
            None => FilterCheck::PASS_FREE,
        }
    }
    fn kind(&self) -> EnforcementKind {
        EnforcementKind::If
    }
    fn table_entries(&self) -> usize {
        self.port_tables
            .iter()
            .filter_map(|t| t.as_ref().map(PartitionTable::len))
            .sum()
    }
}

/// Per-edge-port SIF state.
#[derive(Debug, Clone, Default)]
struct SifPortState {
    /// The Invalid_P_Key_Table the SM programs.
    invalid_table: Vec<PKey>,
    /// Ingress P_Key Violation Counter: invalid-P_Key packets *sent from*
    /// the attached node (paper §3.3 — note the direction is the mirror of
    /// the HCA's receive-side counter).
    violation_counter: u64,
    /// Whether ingress filtering is currently active on this port.
    enabled: bool,
    /// Last time the violation counter increased.
    last_violation: u64,
}

/// SIF: trap-activated, self-deactivating ingress filtering.
#[derive(Debug)]
pub struct SifEnforcer {
    ports: Vec<SifPortState>,
    /// If the violation counter is quiet this long, the port disables
    /// itself ("If this counter does not increase for some time, the switch
    /// disables ingress filtering by itself").
    idle_timeout: u64,
    /// Cap on Invalid_P_Key_Table size — "the Invalid_P_Key_Table should be
    /// used as long as the number of entries is smaller than the partition
    /// table", so the cap is the attached node's partition-table size.
    max_invalid_entries: usize,
    /// Lifetime count of packets dropped by this switch's SIF.
    pub dropped: u64,
}

impl SifEnforcer {
    /// A SIF engine for a switch with `num_ports` ports.
    pub fn new(num_ports: usize, idle_timeout: u64, max_invalid_entries: usize) -> Self {
        SifEnforcer {
            ports: vec![SifPortState::default(); num_ports],
            idle_timeout,
            max_invalid_entries: max_invalid_entries.max(1),
            dropped: 0,
        }
    }

    /// Whether filtering is currently enabled on `port` (test/metric hook).
    pub fn is_enabled(&self, port: usize) -> bool {
        self.ports.get(port).is_some_and(|p| p.enabled)
    }

    /// The violation counter for `port`.
    pub fn violation_counter(&self, port: usize) -> u64 {
        self.ports.get(port).map_or(0, |p| p.violation_counter)
    }
}

impl PartitionEnforcer for SifEnforcer {
    fn check(
        &mut self,
        now: u64,
        port: usize,
        is_edge: bool,
        _slid: Lid,
        pkey: PKey,
    ) -> FilterCheck {
        if !is_edge {
            return FilterCheck::PASS_FREE;
        }
        let Some(state) = self.ports.get_mut(port) else {
            return FilterCheck::PASS_FREE;
        };
        if !state.enabled {
            return FilterCheck::PASS_FREE;
        }
        // Self-disable on idleness before doing work.
        if now.saturating_sub(state.last_violation) >= self.idle_timeout {
            state.enabled = false;
            state.invalid_table.clear();
            return FilterCheck::PASS_FREE;
        }
        let hit = state.invalid_table.contains(&pkey);
        if hit {
            state.violation_counter += 1;
            state.last_violation = now;
            self.dropped += 1;
            FilterCheck {
                decision: FilterDecision::Drop,
                lookup_cycles: 1,
            }
        } else {
            FilterCheck {
                decision: FilterDecision::Pass,
                lookup_cycles: 1,
            }
        }
    }

    fn kind(&self) -> EnforcementKind {
        EnforcementKind::Sif
    }

    fn table_entries(&self) -> usize {
        self.ports.iter().map(|p| p.invalid_table.len()).sum()
    }

    fn register_invalid(&mut self, now: u64, port: usize, pkey: PKey) {
        let Some(state) = self.ports.get_mut(port) else {
            return;
        };
        if !state.invalid_table.contains(&pkey) {
            if state.invalid_table.len() >= self.max_invalid_entries {
                // Table exhausted: fall back to evicting the oldest entry —
                // beyond this point plain IF would be cheaper (paper §3.3).
                state.invalid_table.remove(0);
            }
            state.invalid_table.push(pkey);
        }
        state.enabled = true;
        state.last_violation = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EDGE: bool = true;
    const FABRIC: bool = false;

    #[test]
    fn no_enforcer_passes_everything_free() {
        let mut e = NoEnforcer;
        let c = e.check(0, 0, EDGE, Lid(1), PKey(0x1234));
        assert_eq!(c.decision, FilterDecision::Pass);
        assert_eq!(c.lookup_cycles, 0);
    }

    #[test]
    fn dpt_checks_every_packet() {
        let mut e = DptEnforcer::new([PKey(0x8001), PKey(0x8002)]);
        let ok = e.check(0, 3, FABRIC, Lid(1), PKey(0x8001));
        assert_eq!(ok.decision, FilterDecision::Pass);
        assert_eq!(ok.lookup_cycles, 1, "DPT pays even on fabric ports");
        let bad = e.check(0, 3, FABRIC, Lid(1), PKey(0x8009));
        assert_eq!(bad.decision, FilterDecision::Drop);
    }

    #[test]
    fn if_only_checks_edge_ports() {
        let mut e = IfEnforcer::new(vec![
            Some(vec![PKey(0x8001)]), // port 0: edge
            None,                     // port 1: fabric
        ]);
        let fabric = e.check(0, 1, FABRIC, Lid(1), PKey(0x9999));
        assert_eq!(fabric.decision, FilterDecision::Pass);
        assert_eq!(fabric.lookup_cycles, 0);
        let edge_ok = e.check(0, 0, EDGE, Lid(1), PKey(0x8001));
        assert_eq!(edge_ok.decision, FilterDecision::Pass);
        assert_eq!(edge_ok.lookup_cycles, 1);
        let edge_bad = e.check(0, 0, EDGE, Lid(1), PKey(0x9999));
        assert_eq!(edge_bad.decision, FilterDecision::Drop);
    }

    #[test]
    fn sif_free_until_activated() {
        let mut e = SifEnforcer::new(5, 1000, 16);
        let c = e.check(0, 0, EDGE, Lid(1), PKey(0x6666));
        assert_eq!(c.decision, FilterDecision::Pass);
        assert_eq!(c.lookup_cycles, 0, "disabled SIF costs nothing");
    }

    #[test]
    fn sif_drops_registered_key_and_passes_others() {
        let mut e = SifEnforcer::new(5, 1000, 16);
        e.register_invalid(10, 0, PKey(0x6666));
        assert!(e.is_enabled(0));
        let bad = e.check(11, 0, EDGE, Lid(1), PKey(0x6666));
        assert_eq!(bad.decision, FilterDecision::Drop);
        assert_eq!(bad.lookup_cycles, 1);
        let good = e.check(12, 0, EDGE, Lid(1), PKey(0x8001));
        assert_eq!(good.decision, FilterDecision::Pass);
        assert_eq!(good.lookup_cycles, 1, "enabled SIF pays the lookup");
        assert_eq!(e.violation_counter(0), 1);
        assert_eq!(e.dropped, 1);
    }

    #[test]
    fn sif_self_disables_when_idle() {
        let mut e = SifEnforcer::new(5, 100, 16);
        e.register_invalid(0, 2, PKey(0x6666));
        assert_eq!(
            e.check(50, 2, EDGE, Lid(1), PKey(0x6666)).decision,
            FilterDecision::Drop
        );
        // Quiet period ≥ idle_timeout: next check disables and passes.
        let c = e.check(151, 2, EDGE, Lid(1), PKey(0x6666));
        assert_eq!(c.decision, FilterDecision::Pass);
        assert!(!e.is_enabled(2));
        assert_eq!(e.table_entries(), 0, "invalid table cleared on disable");
    }

    #[test]
    fn sif_violations_keep_it_enabled() {
        let mut e = SifEnforcer::new(5, 100, 16);
        e.register_invalid(0, 0, PKey(0x6666));
        for t in (10..500).step_by(50) {
            assert_eq!(
                e.check(t, 0, EDGE, Lid(1), PKey(0x6666)).decision,
                FilterDecision::Drop,
                "t={t}"
            );
        }
        assert!(e.is_enabled(0));
    }

    #[test]
    fn sif_per_port_isolation() {
        let mut e = SifEnforcer::new(5, 1000, 16);
        e.register_invalid(0, 0, PKey(0x6666));
        let other_port = e.check(1, 1, EDGE, Lid(1), PKey(0x6666));
        assert_eq!(other_port.decision, FilterDecision::Pass);
        assert_eq!(other_port.lookup_cycles, 0, "port 1 never activated");
    }

    #[test]
    fn sif_invalid_table_capped() {
        let mut e = SifEnforcer::new(5, 1000, 4);
        for i in 0..10u16 {
            e.register_invalid(0, 0, PKey(0x4000 | i));
        }
        assert!(e.table_entries() <= 4);
        // Most recent keys retained.
        assert_eq!(
            e.check(1, 0, EDGE, Lid(1), PKey(0x4009)).decision,
            FilterDecision::Drop
        );
    }

    #[test]
    fn fabric_ports_never_pay_for_sif() {
        let mut e = SifEnforcer::new(5, 1000, 16);
        e.register_invalid(0, 0, PKey(0x6666));
        let c = e.check(1, 0, FABRIC, Lid(1), PKey(0x6666));
        assert_eq!(c.decision, FilterDecision::Pass);
        assert_eq!(c.lookup_cycles, 0);
    }

    #[test]
    fn kind_labels() {
        assert_eq!(EnforcementKind::Sif.label(), "SIF");
        assert_eq!(EnforcementKind::NoFiltering.label(), "No Filtering");
    }
}
