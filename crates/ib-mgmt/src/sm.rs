//! A Subnet Manager model: LID assignment, partition creation with
//! secret-key distribution, M_Key checks on management operations, and the
//! trap-driven SIF programming loop of §3.3.

use std::collections::HashMap;

use crate::keymgmt::{KeyEnvelope, PartitionKeyManager, SecretKey};
use crate::partition::PartitionConfig;
use crate::trap::{Trap, TrapKind};
use ib_crypto::toyrsa::PublicKey;
use ib_packet::types::{Lid, PKey};

/// A 64-bit management key guarding SMP writes to a port (spec §14.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MKey(pub u64);

/// An action the SM wants applied to the fabric: program an ingress
/// filter. The simulator applies it after the SM→switch MAD latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramFilter {
    /// Switch to program.
    pub switch: usize,
    /// Edge port on that switch (where the violator is attached).
    pub port: usize,
    /// The invalid P_Key to register.
    pub pkey: PKey,
}

/// The Subnet Manager.
#[derive(Debug)]
pub struct SubnetManager {
    /// node id → assigned LID (LIDs are 1-based; 0 is reserved).
    lids: Vec<Lid>,
    /// Where each LID's node hangs off the fabric: LID → (switch, port).
    attachments: HashMap<Lid, (usize, usize)>,
    /// CA public-key directory ("we assume SM knows public keys of all CAs").
    directory: HashMap<Lid, PublicKey>,
    /// Per-port M_Keys.
    mkeys: HashMap<Lid, MKey>,
    /// Partition definitions.
    partitions: Vec<PartitionConfig>,
    /// Partition-level secret keys.
    pub keymgr: PartitionKeyManager,
    /// Count of traps processed (metrics).
    pub traps_handled: u64,
}

impl SubnetManager {
    /// A subnet with `num_nodes` end nodes. LIDs are assigned 1..=n.
    pub fn new(num_nodes: usize, seed: u64) -> Self {
        SubnetManager {
            lids: (0..num_nodes).map(|i| Lid(i as u16 + 1)).collect(),
            attachments: HashMap::new(),
            directory: HashMap::new(),
            mkeys: HashMap::new(),
            partitions: Vec::new(),
            keymgr: PartitionKeyManager::new(seed),
            traps_handled: 0,
        }
    }

    /// LID of node `i`.
    pub fn lid_of(&self, node: usize) -> Lid {
        self.lids[node]
    }

    /// Node index for a LID, if assigned.
    pub fn node_of(&self, lid: Lid) -> Option<usize> {
        (lid.0 as usize)
            .checked_sub(1)
            .filter(|i| *i < self.lids.len())
    }

    /// Record where a node is attached (done during subnet sweep).
    pub fn attach(&mut self, lid: Lid, switch: usize, port: usize) {
        self.attachments.insert(lid, (switch, port));
    }

    /// Register a CA's public key.
    pub fn register_public_key(&mut self, lid: Lid, key: PublicKey) {
        self.directory.insert(lid, key);
    }

    /// Assign an M_Key to a port; returns it.
    pub fn assign_mkey(&mut self, lid: Lid, mkey: MKey) -> MKey {
        self.mkeys.insert(lid, mkey);
        mkey
    }

    /// Check an SMP write against the port's M_Key (spec: mismatch is
    /// rejected and may raise an M_Key-violation trap).
    pub fn check_mkey(&self, lid: Lid, presented: MKey) -> bool {
        self.mkeys.get(&lid).is_none_or(|k| *k == presented)
    }

    /// Create a partition: records membership, mints the partition secret,
    /// and returns the secret plus one envelope per member whose public key
    /// is on file.
    pub fn create_partition(
        &mut self,
        config: PartitionConfig,
    ) -> (SecretKey, Vec<(usize, KeyEnvelope)>) {
        let secret = self.keymgr.create_partition(config.pkey);
        let mut envelopes = Vec::new();
        for &member in &config.members {
            let lid = self.lid_of(member);
            if let Some(pk) = self.directory.get(&lid) {
                envelopes.push((member, KeyEnvelope::seal(&secret, pk)));
            }
        }
        self.partitions.push(config);
        (secret, envelopes)
    }

    /// All partitions containing `node`.
    pub fn partitions_of(&self, node: usize) -> Vec<PKey> {
        self.partitions
            .iter()
            .filter(|p| p.members.contains(&node))
            .map(|p| p.pkey)
            .collect()
    }

    /// All partitions.
    pub fn partitions(&self) -> &[PartitionConfig] {
        &self.partitions
    }

    /// §3.3's SM step: "When the SM receives a trap message, it knows who
    /// sent the invalid P_Key packets and locates the switch it is
    /// connected to. SM can register the invalid P_Key to the
    /// Invalid_P_Key_Table of the switch, and then enable the switch's
    /// filtering function."
    pub fn handle_trap(&mut self, trap: &Trap) -> Option<ProgramFilter> {
        self.traps_handled += 1;
        match trap.kind {
            TrapKind::PKeyViolation {
                bad_pkey,
                violator_slid,
            } => {
                let &(switch, port) = self.attachments.get(&violator_slid)?;
                Some(ProgramFilter {
                    switch,
                    port,
                    pkey: bad_pkey,
                })
            }
            TrapKind::MKeyViolation { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_crypto::toyrsa::generate_keypair;

    #[test]
    fn lid_assignment() {
        let sm = SubnetManager::new(4, 1);
        assert_eq!(sm.lid_of(0), Lid(1));
        assert_eq!(sm.lid_of(3), Lid(4));
        assert_eq!(sm.node_of(Lid(1)), Some(0));
        assert_eq!(sm.node_of(Lid(5)), None);
        assert_eq!(sm.node_of(Lid(0)), None);
    }

    #[test]
    fn partition_creation_with_envelopes() {
        let mut sm = SubnetManager::new(3, 9);
        let (pk0, sk0) = generate_keypair(100);
        let (pk1, _sk1) = generate_keypair(101);
        sm.register_public_key(Lid(1), pk0);
        sm.register_public_key(Lid(2), pk1);
        let (secret, envs) = sm.create_partition(PartitionConfig {
            pkey: PKey(0x8001),
            members: vec![0, 1, 2], // node 2 has no registered key
        });
        assert_eq!(envs.len(), 2, "only nodes with keys on file get envelopes");
        let (member, env) = &envs[0];
        assert_eq!(*member, 0);
        assert_eq!(env.open(&sk0), Some(secret));
        assert_eq!(sm.partitions_of(1), vec![PKey(0x8001)]);
        assert!(sm.partitions_of(1).contains(&PKey(0x8001)));
    }

    #[test]
    fn trap_maps_violator_to_edge_switch() {
        let mut sm = SubnetManager::new(4, 9);
        sm.attach(Lid(3), 7, 4);
        let trap = Trap::pkey_violation(Lid(1), PKey(0x6666), Lid(3), 1);
        let action = sm.handle_trap(&trap).unwrap();
        assert_eq!(
            action,
            ProgramFilter {
                switch: 7,
                port: 4,
                pkey: PKey(0x6666)
            }
        );
        assert_eq!(sm.traps_handled, 1);
    }

    #[test]
    fn trap_for_unknown_violator_is_dropped() {
        let mut sm = SubnetManager::new(4, 9);
        let trap = Trap::pkey_violation(Lid(1), PKey(0x6666), Lid(99), 1);
        assert_eq!(sm.handle_trap(&trap), None);
        assert_eq!(sm.traps_handled, 1, "still counted");
    }

    #[test]
    fn mkey_checks() {
        let mut sm = SubnetManager::new(2, 9);
        assert!(sm.check_mkey(Lid(1), MKey(0)), "no M_Key set: open access");
        sm.assign_mkey(Lid(1), MKey(0xDEAD));
        assert!(sm.check_mkey(Lid(1), MKey(0xDEAD)));
        assert!(!sm.check_mkey(Lid(1), MKey(0xBEEF)));
    }
}
