//! Authentication-key management — §4.2 (partition-level) and §4.3
//! (QP-level) of the paper.
//!
//! Both schemes produce 16-byte MAC secrets and differ only in granularity
//! and exchange cost:
//!
//! * **Partition-level** (Figure 2): the SM generates one secret per
//!   partition at creation time and ships it to every member CA under that
//!   CA's public key. Lookup: `P_Key → secret`. Zero per-connection
//!   exchange cost (the Figure 6 "No Key ≈ With Key" result for this mode),
//!   but every QP in the partition shares the secret.
//! * **QP-level** (Figure 3): connection-oriented QPs exchange a secret at
//!   connect time; datagram QPs mint a fresh secret on every Q_Key request.
//!   Lookup needs `(Q_Key, source QP)` because one QP may issue many
//!   secrets — exactly the Node A table of Figure 3. Costs one RTT per new
//!   peer, which the simulator charges.
//!
//! Public-key transport uses [`ib_crypto::toyrsa`] (a documented
//! simulation of the paper's PKI assumption).

use std::collections::HashMap;

use ib_crypto::toyrsa::{self, PrivateKey, PublicKey};
use ib_packet::types::{PKey, QKey, Qpn};

/// A 16-byte MAC secret (the key for UMAC/HMAC/PMAC instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey(pub [u8; 16]);

impl SecretKey {
    /// Derive deterministically from a seed (simulation reproducibility).
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1);
        let mut out = [0u8; 16];
        for chunk in out.chunks_mut(8) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        SecretKey(out)
    }
}

/// An encrypted secret key in flight (the toy-RSA envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEnvelope {
    pub ciphertext: Vec<u64>,
}

impl KeyEnvelope {
    /// Seal `secret` to `recipient`.
    pub fn seal(secret: &SecretKey, recipient: &PublicKey) -> Self {
        KeyEnvelope {
            ciphertext: toyrsa::encrypt(recipient, &secret.0),
        }
    }

    /// Open with the recipient's private key.
    pub fn open(&self, key: &PrivateKey) -> Option<SecretKey> {
        let bytes = toyrsa::decrypt(key, &self.ciphertext)?;
        let arr: [u8; 16] = bytes.try_into().ok()?;
        Some(SecretKey(arr))
    }
}

/// SM-side partition-level key manager (§4.2).
#[derive(Debug, Default)]
pub struct PartitionKeyManager {
    secrets: HashMap<PKey, SecretKey>,
    counter: u64,
    seed: u64,
}

impl PartitionKeyManager {
    /// Deterministic manager for a simulation seed.
    pub fn new(seed: u64) -> Self {
        PartitionKeyManager {
            secrets: HashMap::new(),
            counter: 0,
            seed,
        }
    }

    /// Create (or look up) the secret for a partition. "When the SM creates
    /// a partition, it generates a secret key for that partition."
    pub fn create_partition(&mut self, pkey: PKey) -> SecretKey {
        self.counter += 1;
        let seed = self.seed ^ (self.counter << 17) ^ pkey.0 as u64;
        *self
            .secrets
            .entry(pkey)
            .or_insert_with(|| SecretKey::from_seed(seed))
    }

    /// The secret for `pkey`, if the partition exists.
    pub fn secret(&self, pkey: PKey) -> Option<SecretKey> {
        self.secrets.get(&pkey).copied()
    }

    /// Envelope the partition secret for one member CA.
    pub fn distribute(&self, pkey: PKey, member: &PublicKey) -> Option<KeyEnvelope> {
        Some(KeyEnvelope::seal(self.secrets.get(&pkey)?, member))
    }
}

/// CA-side key tables — the per-node tables of Figures 2 and 3 combined.
#[derive(Debug, Default)]
pub struct NodeKeyTable {
    /// Figure 2: P_Key → partition secret.
    partition: HashMap<PKey, SecretKey>,
    /// Figure 3 (datagram): (my Q_Key, peer source QP) → secret.
    datagram: HashMap<(QKey, Qpn), SecretKey>,
    /// Connected service: local QP → secret shared with its bound peer.
    connection: HashMap<Qpn, SecretKey>,
}

impl NodeKeyTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a partition secret received from the SM.
    pub fn install_partition_secret(&mut self, pkey: PKey, secret: SecretKey) {
        self.partition.insert(pkey, secret);
    }

    /// Look up by P_Key (partition-level authentication).
    pub fn partition_secret(&self, pkey: PKey) -> Option<SecretKey> {
        self.partition.get(&pkey).copied()
    }

    /// Install a per-(Q_Key, source QP) datagram secret.
    pub fn install_datagram_secret(&mut self, qkey: QKey, src_qp: Qpn, secret: SecretKey) {
        self.datagram.insert((qkey, src_qp), secret);
    }

    /// Figure 3 lookup: "to index a secret key, both Q_Key and source QP
    /// are necessary."
    pub fn datagram_secret(&self, qkey: QKey, src_qp: Qpn) -> Option<SecretKey> {
        self.datagram.get(&(qkey, src_qp)).copied()
    }

    /// Install a connection secret for a bound QP.
    pub fn install_connection_secret(&mut self, local_qp: Qpn, secret: SecretKey) {
        self.connection.insert(local_qp, secret);
    }

    /// Look up the connection secret for a bound QP.
    pub fn connection_secret(&self, local_qp: Qpn) -> Option<SecretKey> {
        self.connection.get(&local_qp).copied()
    }

    /// Total stored secrets (memory accounting).
    pub fn len(&self) -> usize {
        self.partition.len() + self.datagram.len() + self.connection.len()
    }

    /// Whether no secrets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// QP-level key manager for one node (§4.3): mints secrets for connection
/// setup and Q_Key requests, sealing them to peer public keys.
#[derive(Debug)]
pub struct QpKeyManager {
    counter: u64,
    seed: u64,
    /// Q_Keys this node has assigned to its datagram QPs.
    qkeys: HashMap<Qpn, QKey>,
    next_qkey: u32,
}

impl QpKeyManager {
    /// Deterministic manager for a node.
    pub fn new(seed: u64) -> Self {
        QpKeyManager {
            counter: 0,
            seed,
            qkeys: HashMap::new(),
            next_qkey: 0x1000,
        }
    }

    fn mint(&mut self) -> SecretKey {
        self.counter += 1;
        SecretKey::from_seed(self.seed ^ (self.counter << 9) ^ 0xA5A5_5A5A)
    }

    /// Connection-oriented setup: "a QP that initiates the connection
    /// creates a secret key and sends it to a destination QP."
    /// Returns the secret (to install locally) and the envelope to send.
    pub fn initiate_connection(&mut self, peer: &PublicKey) -> (SecretKey, KeyEnvelope) {
        let secret = self.mint();
        let env = KeyEnvelope::seal(&secret, peer);
        (secret, env)
    }

    /// Assign (or return) the Q_Key for a local datagram QP.
    pub fn qkey_for(&mut self, qp: Qpn) -> QKey {
        if let Some(k) = self.qkeys.get(&qp) {
            return *k;
        }
        let k = QKey(self.next_qkey);
        self.next_qkey += 1;
        self.qkeys.insert(qp, k);
        k
    }

    /// Handle a Q_Key request from `requester_qp`: "a secret key is
    /// generated at every Q_Key request, which gets encrypted by the
    /// requester's public key before sending it."
    ///
    /// Returns what the responder must remember `(qkey, secret)` and the
    /// reply to send `(qkey, envelope)`.
    pub fn issue_qkey(
        &mut self,
        responder_qp: Qpn,
        requester_pub: &PublicKey,
    ) -> (QKey, SecretKey, KeyEnvelope) {
        let qkey = self.qkey_for(responder_qp);
        let secret = self.mint();
        let env = KeyEnvelope::seal(&secret, requester_pub);
        (qkey, secret, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_crypto::toyrsa::generate_keypair;

    #[test]
    fn secret_from_seed_deterministic_and_distinct() {
        assert_eq!(SecretKey::from_seed(1), SecretKey::from_seed(1));
        assert_ne!(SecretKey::from_seed(1), SecretKey::from_seed(2));
        assert_ne!(SecretKey::from_seed(0), SecretKey::from_seed(1));
    }

    #[test]
    fn envelope_roundtrip() {
        let (pk, sk) = generate_keypair(11);
        let secret = SecretKey::from_seed(99);
        let env = KeyEnvelope::seal(&secret, &pk);
        assert_eq!(env.open(&sk), Some(secret));
    }

    #[test]
    fn envelope_wrong_key_fails_or_garbles() {
        let (pk, _) = generate_keypair(11);
        let (_, sk2) = generate_keypair(12);
        let secret = SecretKey::from_seed(99);
        let env = KeyEnvelope::seal(&secret, &pk);
        assert_ne!(env.open(&sk2), Some(secret));
    }

    #[test]
    fn partition_flow_figure2() {
        // SM creates partitions I and II; nodes A, B share I; A, C share II.
        let mut sm = PartitionKeyManager::new(7);
        let (pk_a, sk_a) = generate_keypair(1);
        let (pk_b, sk_b) = generate_keypair(2);
        let (pk_c, sk_c) = generate_keypair(3);
        let p1 = PKey(0x8001);
        let p2 = PKey(0x8002);
        let s_k1 = sm.create_partition(p1);
        let s_k2 = sm.create_partition(p2);
        assert_ne!(s_k1, s_k2);

        let mut node_a = NodeKeyTable::new();
        let mut node_b = NodeKeyTable::new();
        let mut node_c = NodeKeyTable::new();
        node_a.install_partition_secret(p1, sm.distribute(p1, &pk_a).unwrap().open(&sk_a).unwrap());
        node_a.install_partition_secret(p2, sm.distribute(p2, &pk_a).unwrap().open(&sk_a).unwrap());
        node_b.install_partition_secret(p1, sm.distribute(p1, &pk_b).unwrap().open(&sk_b).unwrap());
        node_c.install_partition_secret(p2, sm.distribute(p2, &pk_c).unwrap().open(&sk_c).unwrap());

        // A and B agree on S_K1; A and C on S_K2; B knows nothing of II.
        assert_eq!(node_a.partition_secret(p1), Some(s_k1));
        assert_eq!(node_b.partition_secret(p1), Some(s_k1));
        assert_eq!(node_a.partition_secret(p2), Some(s_k2));
        assert_eq!(node_c.partition_secret(p2), Some(s_k2));
        assert_eq!(node_b.partition_secret(p2), None);
    }

    #[test]
    fn create_partition_idempotent() {
        let mut sm = PartitionKeyManager::new(7);
        let a = sm.create_partition(PKey(0x8001));
        let b = sm.create_partition(PKey(0x8001));
        assert_eq!(a, b, "re-creating returns the existing secret");
    }

    #[test]
    fn connection_flow() {
        let (pk_b, sk_b) = generate_keypair(21);
        let mut mgr_a = QpKeyManager::new(100);
        let (secret, env) = mgr_a.initiate_connection(&pk_b);
        let received = env.open(&sk_b).unwrap();
        assert_eq!(received, secret);

        let mut table_a = NodeKeyTable::new();
        let mut table_b = NodeKeyTable::new();
        table_a.install_connection_secret(Qpn(1), secret);
        table_b.install_connection_secret(Qpn(9), received);
        assert_eq!(
            table_a.connection_secret(Qpn(1)),
            table_b.connection_secret(Qpn(9))
        );
    }

    #[test]
    fn datagram_flow_figure3() {
        // Node A's QP2 issues distinct secrets to QP4 (node B) and QP5
        // (node C); A's table needs (Q_Key, src QP) to disambiguate.
        let (pk_b, sk_b) = generate_keypair(31);
        let (pk_c, sk_c) = generate_keypair(32);
        let mut mgr_a = QpKeyManager::new(500);
        let mut table_a = NodeKeyTable::new();

        let (qk2, s_k2, env_b) = mgr_a.issue_qkey(Qpn(2), &pk_b);
        table_a.install_datagram_secret(qk2, Qpn(4), s_k2);
        let (qk2_again, s_k3, env_c) = mgr_a.issue_qkey(Qpn(2), &pk_c);
        table_a.install_datagram_secret(qk2_again, Qpn(5), s_k3);

        assert_eq!(qk2, qk2_again, "same QP keeps its Q_Key");
        assert_ne!(s_k2, s_k3, "fresh secret per request");
        assert_eq!(table_a.datagram_secret(qk2, Qpn(4)), Some(s_k2));
        assert_eq!(table_a.datagram_secret(qk2, Qpn(5)), Some(s_k3));
        assert_eq!(table_a.datagram_secret(qk2, Qpn(6)), None);

        // Requesters decrypt their copies.
        assert_eq!(env_b.open(&sk_b), Some(s_k2));
        assert_eq!(env_c.open(&sk_c), Some(s_k3));
        // And cross-decryption fails.
        assert_ne!(env_b.open(&sk_c), Some(s_k2));
    }

    #[test]
    fn distinct_qps_get_distinct_qkeys() {
        let mut mgr = QpKeyManager::new(1);
        let k1 = mgr.qkey_for(Qpn(1));
        let k2 = mgr.qkey_for(Qpn(2));
        assert_ne!(k1, k2);
        assert_eq!(mgr.qkey_for(Qpn(1)), k1);
    }

    #[test]
    fn node_table_len() {
        let mut t = NodeKeyTable::new();
        assert!(t.is_empty());
        t.install_partition_secret(PKey(1), SecretKey::from_seed(1));
        t.install_datagram_secret(QKey(2), Qpn(3), SecretKey::from_seed(2));
        t.install_connection_secret(Qpn(4), SecretKey::from_seed(3));
        assert_eq!(t.len(), 3);
    }
}
