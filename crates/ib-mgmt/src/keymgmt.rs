//! Authentication-key management — §4.2 (partition-level) and §4.3
//! (QP-level) of the paper.
//!
//! Both schemes produce 16-byte MAC secrets and differ only in granularity
//! and exchange cost:
//!
//! * **Partition-level** (Figure 2): the SM generates one secret per
//!   partition at creation time and ships it to every member CA under that
//!   CA's public key. Lookup: `P_Key → secret`. Zero per-connection
//!   exchange cost (the Figure 6 "No Key ≈ With Key" result for this mode),
//!   but every QP in the partition shares the secret.
//! * **QP-level** (Figure 3): connection-oriented QPs exchange a secret at
//!   connect time; datagram QPs mint a fresh secret on every Q_Key request.
//!   Lookup needs `(Q_Key, source QP)` because one QP may issue many
//!   secrets — exactly the Node A table of Figure 3. Costs one RTT per new
//!   peer, which the simulator charges.
//!
//! Public-key transport uses [`ib_crypto::toyrsa`] (a documented
//! simulation of the paper's PKI assumption).

use std::collections::HashMap;

use ib_crypto::toyrsa::{self, PrivateKey, PublicKey};
use ib_packet::types::{PKey, QKey, Qpn};

/// A 16-byte MAC secret (the key for UMAC/HMAC/PMAC instances).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SecretKey(pub [u8; 16]);

impl SecretKey {
    /// Derive deterministically from a seed (simulation reproducibility).
    pub fn from_seed(seed: u64) -> Self {
        let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).max(1);
        let mut out = [0u8; 16];
        for chunk in out.chunks_mut(8) {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            chunk.copy_from_slice(&s.to_le_bytes());
        }
        SecretKey(out)
    }
}

/// A monotonically increasing key-epoch number (the key plane's version
/// counter for one scope index).
///
/// The wire carries only the low 7 bits (BTH `Resv7b` — see
/// `ib_packet::bth`); [`KeyEpoch::wire_id`] produces them and
/// [`KeyEpoch::resolve_wire`] reconstructs the full epoch at the receiver
/// using a half-ring rule against its own current epoch, exactly like PSN
/// windows disambiguate 24-bit sequence numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct KeyEpoch(pub u32);

impl KeyEpoch {
    /// The pre-rotation epoch every scope starts in. Its wire id is 0, so
    /// epoch-less traffic and epoch-0 traffic are byte-identical.
    pub const ZERO: KeyEpoch = KeyEpoch(0);

    /// The successor epoch.
    pub fn next(self) -> KeyEpoch {
        KeyEpoch(self.0 + 1)
    }

    /// The 7-bit on-wire id (BTH `Resv7b`).
    pub fn wire_id(self) -> u8 {
        (self.0 & 0x7F) as u8
    }

    /// Reconstruct the full epoch a wire id names, relative to `current`:
    /// ids up to 63 steps ahead of `current` (mod 128) resolve forward,
    /// the rest resolve backward (`None` if that would precede epoch 0).
    /// Sound as long as fewer than 64 rotations happen within one
    /// end-to-end delivery window — rotation periods are many RTTs.
    pub fn resolve_wire(wire: u8, current: KeyEpoch) -> Option<KeyEpoch> {
        let diff = wire.wrapping_sub(current.wire_id()) & 0x7F;
        if diff < 64 {
            Some(KeyEpoch(current.0 + diff as u32))
        } else {
            current.0.checked_sub(128 - diff as u32).map(KeyEpoch)
        }
    }
}

/// A small ordered set of live `(epoch, key)` versions for one scope index
/// — the receive side holds epoch N and (inside the grace window) N−1; the
/// send side always uses the newest.
#[derive(Debug, Clone, Default)]
pub struct EpochRing {
    /// Sorted ascending by epoch; the last entry is current. Never empty
    /// once a key is installed.
    entries: Vec<(KeyEpoch, SecretKey)>,
}

impl EpochRing {
    /// A ring holding `secret` at [`KeyEpoch::ZERO`].
    pub fn new(secret: SecretKey) -> Self {
        EpochRing {
            entries: vec![(KeyEpoch::ZERO, secret)],
        }
    }

    /// The newest `(epoch, key)` version, if any key is installed.
    pub fn current(&self) -> Option<(KeyEpoch, SecretKey)> {
        self.entries.last().copied()
    }

    /// Install (or replace) the key for `epoch`, keeping the ring sorted.
    pub fn install(&mut self, epoch: KeyEpoch, secret: SecretKey) {
        match self.entries.binary_search_by_key(&epoch, |e| e.0) {
            Ok(i) => self.entries[i].1 = secret,
            Err(i) => self.entries.insert(i, (epoch, secret)),
        }
    }

    /// Drop every version strictly below `epoch` (grace-window expiry).
    pub fn retire_below(&mut self, epoch: KeyEpoch) {
        self.entries.retain(|e| e.0 >= epoch);
    }

    /// The key installed for exactly `epoch`.
    pub fn secret_at(&self, epoch: KeyEpoch) -> Option<SecretKey> {
        self.entries
            .binary_search_by_key(&epoch, |e| e.0)
            .ok()
            .map(|i| self.entries[i].1)
    }

    /// Find the live version matching a 7-bit wire id, newest first (the
    /// verify path: current epoch matches instantly, graced ones next).
    pub fn secret_by_wire(&self, wire: u8) -> Option<(KeyEpoch, SecretKey)> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.0.wire_id() == wire)
            .copied()
    }

    /// Number of live versions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no version is installed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An encrypted secret key in flight (the toy-RSA envelope).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyEnvelope {
    pub ciphertext: Vec<u64>,
}

impl KeyEnvelope {
    /// Seal `secret` to `recipient`.
    pub fn seal(secret: &SecretKey, recipient: &PublicKey) -> Self {
        KeyEnvelope {
            ciphertext: toyrsa::encrypt(recipient, &secret.0),
        }
    }

    /// Open with the recipient's private key.
    pub fn open(&self, key: &PrivateKey) -> Option<SecretKey> {
        let bytes = toyrsa::decrypt(key, &self.ciphertext)?;
        let arr: [u8; 16] = bytes.try_into().ok()?;
        Some(SecretKey(arr))
    }
}

/// SM-side partition-level key manager (§4.2), extended with
/// epoch-numbered key versions for the replicated key plane: every
/// partition holds an [`EpochRing`], [`Self::rotate`] mints the next
/// epoch's secret, and a follower replica mirrors the leader's versions
/// through [`Self::install_version`].
#[derive(Debug, Default)]
pub struct PartitionKeyManager {
    secrets: HashMap<PKey, EpochRing>,
    counter: u64,
    seed: u64,
}

impl PartitionKeyManager {
    /// Deterministic manager for a simulation seed.
    pub fn new(seed: u64) -> Self {
        PartitionKeyManager {
            secrets: HashMap::new(),
            counter: 0,
            seed,
        }
    }

    fn mint(&mut self, pkey: PKey) -> SecretKey {
        self.counter += 1;
        SecretKey::from_seed(self.seed ^ (self.counter << 17) ^ pkey.0 as u64)
    }

    /// Create (or look up) the secret for a partition. "When the SM creates
    /// a partition, it generates a secret key for that partition." Returns
    /// the partition's *current* secret.
    pub fn create_partition(&mut self, pkey: PKey) -> SecretKey {
        if let Some((_, s)) = self.secrets.get(&pkey).and_then(EpochRing::current) {
            return s;
        }
        let s = self.mint(pkey);
        self.secrets.insert(pkey, EpochRing::new(s));
        s
    }

    /// The current secret for `pkey`, if the partition exists.
    pub fn secret(&self, pkey: PKey) -> Option<SecretKey> {
        Some(self.secrets.get(&pkey)?.current()?.1)
    }

    /// The current `(epoch, secret)` version for `pkey`.
    pub fn current(&self, pkey: PKey) -> Option<(KeyEpoch, SecretKey)> {
        self.secrets.get(&pkey)?.current()
    }

    /// The secret `pkey` had at exactly `epoch`, if still retained.
    pub fn secret_at(&self, pkey: PKey, epoch: KeyEpoch) -> Option<SecretKey> {
        self.secrets.get(&pkey)?.secret_at(epoch)
    }

    /// Mint the next epoch's secret for `pkey` — the leader's rotation
    /// step. Returns the new `(epoch, secret)` version.
    pub fn rotate(&mut self, pkey: PKey) -> Option<(KeyEpoch, SecretKey)> {
        let epoch = self.secrets.get(&pkey)?.current()?.0.next();
        let s = self.mint(pkey);
        self.secrets.get_mut(&pkey)?.install(epoch, s);
        Some((epoch, s))
    }

    /// Mirror a key version minted elsewhere (follower replicas applying
    /// the leader's replicate-key MADs; also how a new leader adopts
    /// versions it never minted).
    pub fn install_version(&mut self, pkey: PKey, epoch: KeyEpoch, secret: SecretKey) {
        self.secrets.entry(pkey).or_default().install(epoch, secret);
    }

    /// Envelope the current partition secret for one member CA.
    pub fn distribute(&self, pkey: PKey, member: &PublicKey) -> Option<KeyEnvelope> {
        Some(KeyEnvelope::seal(&self.secret(pkey)?, member))
    }
}

/// CA-side key tables — the per-node tables of Figures 2 and 3 combined.
/// Partition and connection scopes hold epoch-versioned rings (the lazy
/// re-keying state); datagram secrets stay single-version — they are
/// already minted fresh per Q_Key request.
#[derive(Debug, Default)]
pub struct NodeKeyTable {
    /// Figure 2: P_Key → epoch-versioned partition secrets.
    partition: HashMap<PKey, EpochRing>,
    /// Figure 3 (datagram): (my Q_Key, peer source QP) → secret.
    datagram: HashMap<(QKey, Qpn), SecretKey>,
    /// Connected service: local QP → epoch-versioned secrets shared with
    /// its bound peer.
    connection: HashMap<Qpn, EpochRing>,
}

impl NodeKeyTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a partition secret received from the SM (at
    /// [`KeyEpoch::ZERO`] — the pre-rotation install path).
    pub fn install_partition_secret(&mut self, pkey: PKey, secret: SecretKey) {
        self.install_partition_epoch(pkey, KeyEpoch::ZERO, secret);
    }

    /// Install a partition secret for a specific epoch (key-update MADs).
    pub fn install_partition_epoch(&mut self, pkey: PKey, epoch: KeyEpoch, secret: SecretKey) {
        self.partition
            .entry(pkey)
            .or_default()
            .install(epoch, secret);
    }

    /// Look up by P_Key (partition-level authentication): the *current*
    /// epoch's secret.
    pub fn partition_secret(&self, pkey: PKey) -> Option<SecretKey> {
        Some(self.partition.get(&pkey)?.current()?.1)
    }

    /// The current partition key epoch (what the send side stamps).
    pub fn partition_epoch(&self, pkey: PKey) -> Option<KeyEpoch> {
        Some(self.partition.get(&pkey)?.current()?.0)
    }

    /// Resolve a 7-bit wire epoch id to a live partition key version.
    pub fn partition_secret_by_wire(&self, pkey: PKey, wire: u8) -> Option<(KeyEpoch, SecretKey)> {
        self.partition.get(&pkey)?.secret_by_wire(wire)
    }

    /// Drop partition key versions older than `epoch` (grace expiry).
    pub fn retire_partition_below(&mut self, pkey: PKey, epoch: KeyEpoch) {
        if let Some(ring) = self.partition.get_mut(&pkey) {
            ring.retire_below(epoch);
        }
    }

    /// Install a per-(Q_Key, source QP) datagram secret.
    pub fn install_datagram_secret(&mut self, qkey: QKey, src_qp: Qpn, secret: SecretKey) {
        self.datagram.insert((qkey, src_qp), secret);
    }

    /// Figure 3 lookup: "to index a secret key, both Q_Key and source QP
    /// are necessary."
    pub fn datagram_secret(&self, qkey: QKey, src_qp: Qpn) -> Option<SecretKey> {
        self.datagram.get(&(qkey, src_qp)).copied()
    }

    /// Install a connection secret for a bound QP (at [`KeyEpoch::ZERO`]).
    pub fn install_connection_secret(&mut self, local_qp: Qpn, secret: SecretKey) {
        self.install_connection_epoch(local_qp, KeyEpoch::ZERO, secret);
    }

    /// Install a connection secret for a specific epoch.
    pub fn install_connection_epoch(&mut self, local_qp: Qpn, epoch: KeyEpoch, secret: SecretKey) {
        self.connection
            .entry(local_qp)
            .or_default()
            .install(epoch, secret);
    }

    /// Look up the current connection secret for a bound QP.
    pub fn connection_secret(&self, local_qp: Qpn) -> Option<SecretKey> {
        Some(self.connection.get(&local_qp)?.current()?.1)
    }

    /// The current connection key epoch for a bound QP.
    pub fn connection_epoch(&self, local_qp: Qpn) -> Option<KeyEpoch> {
        Some(self.connection.get(&local_qp)?.current()?.0)
    }

    /// Resolve a 7-bit wire epoch id to a live connection key version.
    pub fn connection_secret_by_wire(
        &self,
        local_qp: Qpn,
        wire: u8,
    ) -> Option<(KeyEpoch, SecretKey)> {
        self.connection.get(&local_qp)?.secret_by_wire(wire)
    }

    /// Drop connection key versions older than `epoch` (grace expiry).
    pub fn retire_connection_below(&mut self, local_qp: Qpn, epoch: KeyEpoch) {
        if let Some(ring) = self.connection.get_mut(&local_qp) {
            ring.retire_below(epoch);
        }
    }

    /// Total stored secrets across all live epochs (memory accounting).
    pub fn len(&self) -> usize {
        self.partition.values().map(EpochRing::len).sum::<usize>()
            + self.datagram.len()
            + self.connection.values().map(EpochRing::len).sum::<usize>()
    }

    /// Whether no secrets are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// QP-level key manager for one node (§4.3): mints secrets for connection
/// setup and Q_Key requests, sealing them to peer public keys.
#[derive(Debug)]
pub struct QpKeyManager {
    counter: u64,
    seed: u64,
    /// Q_Keys this node has assigned to its datagram QPs.
    qkeys: HashMap<Qpn, QKey>,
    next_qkey: u32,
}

impl QpKeyManager {
    /// Deterministic manager for a node.
    pub fn new(seed: u64) -> Self {
        QpKeyManager {
            counter: 0,
            seed,
            qkeys: HashMap::new(),
            next_qkey: 0x1000,
        }
    }

    fn mint(&mut self) -> SecretKey {
        self.counter += 1;
        SecretKey::from_seed(self.seed ^ (self.counter << 9) ^ 0xA5A5_5A5A)
    }

    /// Connection-oriented setup: "a QP that initiates the connection
    /// creates a secret key and sends it to a destination QP."
    /// Returns the secret (to install locally) and the envelope to send.
    pub fn initiate_connection(&mut self, peer: &PublicKey) -> (SecretKey, KeyEnvelope) {
        let secret = self.mint();
        let env = KeyEnvelope::seal(&secret, peer);
        (secret, env)
    }

    /// Assign (or return) the Q_Key for a local datagram QP.
    pub fn qkey_for(&mut self, qp: Qpn) -> QKey {
        if let Some(k) = self.qkeys.get(&qp) {
            return *k;
        }
        let k = QKey(self.next_qkey);
        self.next_qkey += 1;
        self.qkeys.insert(qp, k);
        k
    }

    /// Handle a Q_Key request from `requester_qp`: "a secret key is
    /// generated at every Q_Key request, which gets encrypted by the
    /// requester's public key before sending it."
    ///
    /// Returns what the responder must remember `(qkey, secret)` and the
    /// reply to send `(qkey, envelope)`.
    pub fn issue_qkey(
        &mut self,
        responder_qp: Qpn,
        requester_pub: &PublicKey,
    ) -> (QKey, SecretKey, KeyEnvelope) {
        let qkey = self.qkey_for(responder_qp);
        let secret = self.mint();
        let env = KeyEnvelope::seal(&secret, requester_pub);
        (qkey, secret, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_crypto::toyrsa::generate_keypair;

    #[test]
    fn secret_from_seed_deterministic_and_distinct() {
        assert_eq!(SecretKey::from_seed(1), SecretKey::from_seed(1));
        assert_ne!(SecretKey::from_seed(1), SecretKey::from_seed(2));
        assert_ne!(SecretKey::from_seed(0), SecretKey::from_seed(1));
    }

    #[test]
    fn envelope_roundtrip() {
        let (pk, sk) = generate_keypair(11);
        let secret = SecretKey::from_seed(99);
        let env = KeyEnvelope::seal(&secret, &pk);
        assert_eq!(env.open(&sk), Some(secret));
    }

    #[test]
    fn envelope_wrong_key_fails_or_garbles() {
        let (pk, _) = generate_keypair(11);
        let (_, sk2) = generate_keypair(12);
        let secret = SecretKey::from_seed(99);
        let env = KeyEnvelope::seal(&secret, &pk);
        assert_ne!(env.open(&sk2), Some(secret));
    }

    /// Negative path: a mismatched private key must never reconstruct the
    /// sealed secret — across many keypairs, either decryption fails
    /// outright (bad length framing) or yields garbage bytes.
    #[test]
    fn envelope_mismatched_private_key_never_recovers_secret() {
        let (pk, sk) = generate_keypair(40);
        let secret = SecretKey::from_seed(123);
        let env = KeyEnvelope::seal(&secret, &pk);
        assert_eq!(env.open(&sk), Some(secret), "sanity: right key works");
        for wrong_seed in 41..61 {
            let (_, wrong_sk) = generate_keypair(wrong_seed);
            assert_ne!(
                env.open(&wrong_sk),
                Some(secret),
                "seed {wrong_seed}: wrong private key recovered the secret"
            );
        }
    }

    /// Negative path: tampered envelopes — flipped ciphertext blocks, a
    /// corrupted length block, truncation, and an empty ciphertext — must
    /// not open to the original secret.
    #[test]
    fn envelope_tampering_detected() {
        let (pk, sk) = generate_keypair(77);
        let secret = SecretKey::from_seed(555);
        let env = KeyEnvelope::seal(&secret, &pk);

        // Flip each ciphertext block in turn (block 0 is the length).
        for i in 0..env.ciphertext.len() {
            let mut bad = env.clone();
            bad.ciphertext[i] ^= 1;
            assert_ne!(
                bad.open(&sk),
                Some(secret),
                "block {i}: tampered envelope opened to the secret"
            );
        }
        // Truncate: drop the last block.
        let mut short = env.clone();
        short.ciphertext.pop();
        assert_eq!(short.open(&sk), None, "truncated envelope must not open");
        // Empty ciphertext.
        let empty = KeyEnvelope { ciphertext: vec![] };
        assert_eq!(empty.open(&sk), None);
        // Length block claiming more bytes than the blocks carry.
        let mut overlong = env.clone();
        overlong.ciphertext.remove(1);
        assert_eq!(overlong.open(&sk), None);
    }

    #[test]
    fn partition_flow_figure2() {
        // SM creates partitions I and II; nodes A, B share I; A, C share II.
        let mut sm = PartitionKeyManager::new(7);
        let (pk_a, sk_a) = generate_keypair(1);
        let (pk_b, sk_b) = generate_keypair(2);
        let (pk_c, sk_c) = generate_keypair(3);
        let p1 = PKey(0x8001);
        let p2 = PKey(0x8002);
        let s_k1 = sm.create_partition(p1);
        let s_k2 = sm.create_partition(p2);
        assert_ne!(s_k1, s_k2);

        let mut node_a = NodeKeyTable::new();
        let mut node_b = NodeKeyTable::new();
        let mut node_c = NodeKeyTable::new();
        node_a.install_partition_secret(p1, sm.distribute(p1, &pk_a).unwrap().open(&sk_a).unwrap());
        node_a.install_partition_secret(p2, sm.distribute(p2, &pk_a).unwrap().open(&sk_a).unwrap());
        node_b.install_partition_secret(p1, sm.distribute(p1, &pk_b).unwrap().open(&sk_b).unwrap());
        node_c.install_partition_secret(p2, sm.distribute(p2, &pk_c).unwrap().open(&sk_c).unwrap());

        // A and B agree on S_K1; A and C on S_K2; B knows nothing of II.
        assert_eq!(node_a.partition_secret(p1), Some(s_k1));
        assert_eq!(node_b.partition_secret(p1), Some(s_k1));
        assert_eq!(node_a.partition_secret(p2), Some(s_k2));
        assert_eq!(node_c.partition_secret(p2), Some(s_k2));
        assert_eq!(node_b.partition_secret(p2), None);
    }

    #[test]
    fn create_partition_idempotent() {
        let mut sm = PartitionKeyManager::new(7);
        let a = sm.create_partition(PKey(0x8001));
        let b = sm.create_partition(PKey(0x8001));
        assert_eq!(a, b, "re-creating returns the existing secret");
    }

    #[test]
    fn connection_flow() {
        let (pk_b, sk_b) = generate_keypair(21);
        let mut mgr_a = QpKeyManager::new(100);
        let (secret, env) = mgr_a.initiate_connection(&pk_b);
        let received = env.open(&sk_b).unwrap();
        assert_eq!(received, secret);

        let mut table_a = NodeKeyTable::new();
        let mut table_b = NodeKeyTable::new();
        table_a.install_connection_secret(Qpn(1), secret);
        table_b.install_connection_secret(Qpn(9), received);
        assert_eq!(
            table_a.connection_secret(Qpn(1)),
            table_b.connection_secret(Qpn(9))
        );
    }

    #[test]
    fn datagram_flow_figure3() {
        // Node A's QP2 issues distinct secrets to QP4 (node B) and QP5
        // (node C); A's table needs (Q_Key, src QP) to disambiguate.
        let (pk_b, sk_b) = generate_keypair(31);
        let (pk_c, sk_c) = generate_keypair(32);
        let mut mgr_a = QpKeyManager::new(500);
        let mut table_a = NodeKeyTable::new();

        let (qk2, s_k2, env_b) = mgr_a.issue_qkey(Qpn(2), &pk_b);
        table_a.install_datagram_secret(qk2, Qpn(4), s_k2);
        let (qk2_again, s_k3, env_c) = mgr_a.issue_qkey(Qpn(2), &pk_c);
        table_a.install_datagram_secret(qk2_again, Qpn(5), s_k3);

        assert_eq!(qk2, qk2_again, "same QP keeps its Q_Key");
        assert_ne!(s_k2, s_k3, "fresh secret per request");
        assert_eq!(table_a.datagram_secret(qk2, Qpn(4)), Some(s_k2));
        assert_eq!(table_a.datagram_secret(qk2, Qpn(5)), Some(s_k3));
        assert_eq!(table_a.datagram_secret(qk2, Qpn(6)), None);

        // Requesters decrypt their copies.
        assert_eq!(env_b.open(&sk_b), Some(s_k2));
        assert_eq!(env_c.open(&sk_c), Some(s_k3));
        // And cross-decryption fails.
        assert_ne!(env_b.open(&sk_c), Some(s_k2));
    }

    #[test]
    fn distinct_qps_get_distinct_qkeys() {
        let mut mgr = QpKeyManager::new(1);
        let k1 = mgr.qkey_for(Qpn(1));
        let k2 = mgr.qkey_for(Qpn(2));
        assert_ne!(k1, k2);
        assert_eq!(mgr.qkey_for(Qpn(1)), k1);
    }

    #[test]
    fn node_table_len() {
        let mut t = NodeKeyTable::new();
        assert!(t.is_empty());
        t.install_partition_secret(PKey(1), SecretKey::from_seed(1));
        t.install_datagram_secret(QKey(2), Qpn(3), SecretKey::from_seed(2));
        t.install_connection_secret(Qpn(4), SecretKey::from_seed(3));
        assert_eq!(t.len(), 3);
        // A second epoch is a second live secret until retired.
        t.install_partition_epoch(PKey(1), KeyEpoch(1), SecretKey::from_seed(4));
        assert_eq!(t.len(), 4);
        t.retire_partition_below(PKey(1), KeyEpoch(1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn wire_id_resolution_half_ring() {
        // Forward within 63 steps.
        assert_eq!(
            KeyEpoch::resolve_wire(5, KeyEpoch(3)),
            Some(KeyEpoch(5)),
            "small forward step"
        );
        // Backward: wire 126 seen by a receiver at epoch 128 (wire 0).
        assert_eq!(
            KeyEpoch::resolve_wire(126, KeyEpoch(128)),
            Some(KeyEpoch(126))
        );
        // Forward across the 7-bit wrap: receiver at 126, wire 2 → 130.
        assert_eq!(
            KeyEpoch::resolve_wire(2, KeyEpoch(126)),
            Some(KeyEpoch(130))
        );
        // Backward below zero is unrepresentable.
        assert_eq!(KeyEpoch::resolve_wire(127, KeyEpoch(0)), None);
        // Identity.
        for cur in [0u32, 1, 64, 127, 128, 1000] {
            let cur = KeyEpoch(cur);
            assert_eq!(KeyEpoch::resolve_wire(cur.wire_id(), cur), Some(cur));
        }
    }

    #[test]
    fn epoch_ring_install_retire_lookup() {
        let (s0, s1, s2) = (
            SecretKey::from_seed(1),
            SecretKey::from_seed(2),
            SecretKey::from_seed(3),
        );
        let mut ring = EpochRing::new(s0);
        assert_eq!(ring.current(), Some((KeyEpoch::ZERO, s0)));
        // Out-of-order install keeps the ring sorted.
        ring.install(KeyEpoch(2), s2);
        ring.install(KeyEpoch(1), s1);
        assert_eq!(ring.current(), Some((KeyEpoch(2), s2)));
        assert_eq!(ring.secret_at(KeyEpoch(1)), Some(s1));
        assert_eq!(ring.secret_by_wire(0), Some((KeyEpoch::ZERO, s0)));
        assert_eq!(ring.secret_by_wire(2), Some((KeyEpoch(2), s2)));
        assert_eq!(ring.secret_by_wire(3), None);
        ring.retire_below(KeyEpoch(2));
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.secret_by_wire(0), None, "graced-out version is gone");
        // Re-install replaces in place.
        ring.install(KeyEpoch(2), s0);
        assert_eq!(ring.current(), Some((KeyEpoch(2), s0)));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn manager_rotation_and_follower_mirroring() {
        let mut leader = PartitionKeyManager::new(9);
        let pkey = PKey(0x8001);
        let s0 = leader.create_partition(pkey);
        assert_eq!(leader.current(pkey), Some((KeyEpoch::ZERO, s0)));

        let (e1, s1) = leader.rotate(pkey).unwrap();
        assert_eq!(e1, KeyEpoch(1));
        assert_ne!(s1, s0, "rotation mints a fresh secret");
        assert_eq!(leader.secret(pkey), Some(s1), "secret() tracks current");
        assert_eq!(leader.secret_at(pkey, KeyEpoch::ZERO), Some(s0));
        assert_eq!(
            leader.create_partition(pkey),
            s1,
            "re-create returns the current version, not a reset"
        );

        // A follower mirrors versions it never minted and can take over.
        let mut follower = PartitionKeyManager::new(9999);
        follower.install_version(pkey, KeyEpoch::ZERO, s0);
        follower.install_version(pkey, e1, s1);
        assert_eq!(follower.current(pkey), Some((e1, s1)));
        let (e2, s2) = follower.rotate(pkey).unwrap();
        assert_eq!(e2, KeyEpoch(2));
        assert_ne!(s2, s1);

        // rotate() on an unknown partition is a no-op.
        assert_eq!(leader.rotate(PKey(0x4444)), None);
    }
}
