//! Partitions and P_Key tables (IBA spec §10.9).
//!
//! A partition is a set of ports allowed to talk to each other; membership
//! is proven by carrying a matching P_Key in the BTH. The HCA *must* check
//! arriving P_Keys against its partition table; a switch *may* (that
//! optionality is the gap the paper's DoS attack drives through).

use ib_packet::types::PKey;

/// Per-spec limit: a port's partition table holds at most 32768 entries
/// (the paper's §6 uses this bound for its 64 KB memory estimate).
pub const MAX_PKEYS_PER_PORT: usize = 32_768;

/// Static description of one partition for subnet configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionConfig {
    /// The partition key (15-bit base; full-membership bit set by the SM
    /// per member).
    pub pkey: PKey,
    /// Member node indices (simulator-level node ids).
    pub members: Vec<usize>,
}

/// A port's partition table plus the violation counter the spec mandates.
#[derive(Debug, Clone, Default)]
pub struct PartitionTable {
    entries: Vec<PKey>,
    /// P_Key Violation Counter (spec §14.2.5.9): incremented on every
    /// arriving packet whose P_Key fails to match.
    pub violation_counter: u64,
}

impl PartitionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a list of keys (deduplicated).
    pub fn from_keys(keys: impl IntoIterator<Item = PKey>) -> Self {
        let mut t = Self::new();
        for k in keys {
            t.insert(k);
        }
        t
    }

    /// Add a P_Key. Returns false (and does nothing) if the table is full
    /// or the key is already present.
    pub fn insert(&mut self, pkey: PKey) -> bool {
        if self.entries.len() >= MAX_PKEYS_PER_PORT || self.entries.contains(&pkey) {
            return false;
        }
        self.entries.push(pkey);
        true
    }

    /// Remove a P_Key; returns whether it was present.
    pub fn remove(&mut self, pkey: PKey) -> bool {
        let before = self.entries.len();
        self.entries.retain(|k| *k != pkey);
        self.entries.len() != before
    }

    /// Number of entries — the `p` of the paper's Table 2 overhead model.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The spec's matching rule over the whole table: linear scan, applying
    /// [`PKey::matches`]. Returns the matching table entry if any.
    ///
    /// The number of comparisons performed models the paper's `f(p)` table
    /// lookup cost; [`PartitionTable::check`] reports it.
    pub fn find_match(&self, incoming: PKey) -> Option<PKey> {
        self.entries.iter().copied().find(|k| k.matches(incoming))
    }

    /// Check an arriving packet's P_Key; bumps the violation counter on a
    /// mismatch. Returns `(accepted, comparisons_performed)` — the latter
    /// feeds the Table 2 lookup-cost accounting.
    pub fn check(&mut self, incoming: PKey) -> (bool, usize) {
        for (i, k) in self.entries.iter().enumerate() {
            if k.matches(incoming) {
                return (true, i + 1);
            }
        }
        self.violation_counter += 1;
        (false, self.entries.len())
    }

    /// Iterate the stored keys.
    pub fn keys(&self) -> impl Iterator<Item = PKey> + '_ {
        self.entries.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_match() {
        let mut t = PartitionTable::new();
        assert!(t.insert(PKey(0x8001)));
        assert!(t.insert(PKey(0x8002)));
        assert!(!t.insert(PKey(0x8001)), "duplicate rejected");
        assert_eq!(t.len(), 2);
        assert_eq!(t.find_match(PKey(0x0001)), Some(PKey(0x8001)));
        assert_eq!(t.find_match(PKey(0x8003)), None);
    }

    #[test]
    fn check_counts_violations() {
        let mut t = PartitionTable::from_keys([PKey(0x8001)]);
        let (ok, _) = t.check(PKey(0x8001));
        assert!(ok);
        assert_eq!(t.violation_counter, 0);
        let (ok, cmp) = t.check(PKey(0x8999));
        assert!(!ok);
        assert_eq!(cmp, 1, "scanned whole table");
        assert_eq!(t.violation_counter, 1);
        t.check(PKey(0x8999));
        assert_eq!(t.violation_counter, 2);
    }

    #[test]
    fn limited_members_cannot_talk_to_each_other() {
        // Receiver holds a limited-member key; a limited-member packet must
        // be rejected (spec §10.9.3), and the violation recorded.
        let mut t = PartitionTable::from_keys([PKey(0x0005)]);
        let (ok, _) = t.check(PKey(0x0005));
        assert!(!ok);
        let (ok, _) = t.check(PKey(0x8005));
        assert!(ok, "full-member packet accepted by limited-member port");
    }

    #[test]
    fn comparisons_reflect_scan_depth() {
        let mut t = PartitionTable::from_keys((1..=10).map(|i| PKey(0x8000 | i)));
        let (ok, cmp) = t.check(PKey(0x8000 | 7));
        assert!(ok);
        assert_eq!(cmp, 7);
        let (_, cmp) = t.check(PKey(0x8000 | 99));
        assert_eq!(cmp, 10);
    }

    #[test]
    fn remove_works() {
        let mut t = PartitionTable::from_keys([PKey(0x8001), PKey(0x8002)]);
        assert!(t.remove(PKey(0x8001)));
        assert!(!t.remove(PKey(0x8001)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.find_match(PKey(0x8001)), None);
    }

    #[test]
    fn capacity_limit_enforced() {
        let mut t = PartitionTable::new();
        for i in 0..MAX_PKEYS_PER_PORT {
            assert!(t.insert(PKey(i as u16 | 0x8000)) || i >= 32768);
        }
        // Table is full of the 32768 distinct full-member keys; next insert fails.
        assert_eq!(t.len(), MAX_PKEYS_PER_PORT);
        // All 16-bit patterns with the high bit are taken, so use a limited one.
        assert!(!t.insert(PKey(0x0001)) || t.len() < MAX_PKEYS_PER_PORT);
    }
}
