//! Trap MADs — the notification channel from ports to the Subnet Manager
//! (IBA spec §14.2.5, Notice/Trap).
//!
//! The paper's SIF mechanism (§3.3) is trap-driven: "when an incoming
//! packet's P_Key does not match with the receiver's P_Key, the receiver
//! may send a trap message to the Subnet Manager … we suggest to use this
//! trap message to find the right timing for ingress filtering."
//!
//! Traps travel as management datagrams on VL15 to QP0/QP1; the simulator
//! models them as small high-priority packets with a configurable delivery
//! latency.

use ib_packet::types::{Lid, PKey};

/// Size of a MAD on the wire (spec: MADs are 256-byte datagrams).
pub const MAD_BYTES: usize = 256;

/// The trap conditions this reproduction models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapKind {
    /// Spec trap 257/258 analogue: a packet arrived with a P_Key that does
    /// not match any entry of the receiving port's table.
    PKeyViolation {
        /// Offending key as carried in the packet.
        bad_pkey: PKey,
        /// LID the offending packet claimed as its source.
        violator_slid: Lid,
    },
    /// M_Key violation (wrong or missing M_Key on a management op).
    MKeyViolation { violator_slid: Lid },
}

/// A trap notice in flight toward the SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trap {
    /// Port that detected the condition and raised the trap.
    pub reporter: Lid,
    /// What happened.
    pub kind: TrapKind,
    /// Repress-style dedup token: reporters rate-limit identical traps;
    /// the sequence number lets the SM spot gaps.
    pub sequence: u64,
}

impl Trap {
    /// Convenience constructor for the P_Key-violation trap.
    pub fn pkey_violation(
        reporter: Lid,
        bad_pkey: PKey,
        violator_slid: Lid,
        sequence: u64,
    ) -> Self {
        Trap {
            reporter,
            kind: TrapKind::PKeyViolation {
                bad_pkey,
                violator_slid,
            },
            sequence,
        }
    }

    /// Serialize as a real SubnTrap MAD (256-byte wire form, spec §13.4) —
    /// what actually travels to the SM on VL15.
    pub fn to_mad(&self) -> ib_packet::mad::Mad {
        match self.kind {
            TrapKind::PKeyViolation {
                bad_pkey,
                violator_slid,
            } => ib_packet::mad::Mad::pkey_violation_trap(
                self.reporter,
                bad_pkey,
                violator_slid,
                self.sequence,
            ),
            TrapKind::MKeyViolation { violator_slid } => {
                // Modeled with the same Notice layout, trap number left as
                // 257; M_Key traps are not routed to SIF programming.
                ib_packet::mad::Mad::pkey_violation_trap(
                    self.reporter,
                    PKey(0),
                    violator_slid,
                    self.sequence,
                )
            }
        }
    }

    /// Parse a trap back out of a MAD.
    pub fn from_mad(mad: &ib_packet::mad::Mad) -> Option<Trap> {
        let (reporter, violator_slid, bad_pkey) = mad.decode_pkey_violation()?;
        Some(Trap {
            reporter,
            kind: TrapKind::PKeyViolation {
                bad_pkey,
                violator_slid,
            },
            sequence: mad.transaction_id,
        })
    }
}

/// Per-port trap rate limiter: a port should not flood the SM with
/// identical traps (that would itself be a DoS vector on the SM, one of the
/// §7 "more DoS attacks" the paper flags). Emits at most one trap per
/// (kind-specific key) per `min_interval` of time.
#[derive(Debug, Clone)]
pub struct TrapThrottle {
    min_interval: u64,
    last_sent: Vec<(PKey, u64)>,
    sequence: u64,
}

impl TrapThrottle {
    /// A throttle emitting at most one trap per `min_interval` time units
    /// per offending P_Key.
    pub fn new(min_interval: u64) -> Self {
        TrapThrottle {
            min_interval,
            last_sent: Vec::new(),
            sequence: 0,
        }
    }

    /// Ask to emit a P_Key-violation trap at time `now`; returns the trap
    /// if the throttle admits it.
    pub fn offer(
        &mut self,
        now: u64,
        reporter: Lid,
        bad_pkey: PKey,
        violator_slid: Lid,
    ) -> Option<Trap> {
        if let Some(entry) = self.last_sent.iter_mut().find(|(k, _)| *k == bad_pkey) {
            if now.saturating_sub(entry.1) < self.min_interval {
                return None;
            }
            entry.1 = now;
        } else {
            self.last_sent.push((bad_pkey, now));
        }
        self.sequence += 1;
        Some(Trap::pkey_violation(
            reporter,
            bad_pkey,
            violator_slid,
            self.sequence,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throttle_admits_first_and_spaced() {
        let mut th = TrapThrottle::new(100);
        let t0 = th.offer(0, Lid(1), PKey(0x9), Lid(2));
        assert!(t0.is_some());
        assert!(
            th.offer(50, Lid(1), PKey(0x9), Lid(2)).is_none(),
            "too soon"
        );
        assert!(th.offer(100, Lid(1), PKey(0x9), Lid(2)).is_some());
    }

    #[test]
    fn throttle_is_per_pkey() {
        let mut th = TrapThrottle::new(100);
        assert!(th.offer(0, Lid(1), PKey(0x9), Lid(2)).is_some());
        assert!(
            th.offer(1, Lid(1), PKey(0xA), Lid(2)).is_some(),
            "different key"
        );
    }

    #[test]
    fn sequence_increments() {
        let mut th = TrapThrottle::new(1);
        let a = th.offer(0, Lid(1), PKey(1), Lid(2)).unwrap();
        let b = th.offer(10, Lid(1), PKey(1), Lid(2)).unwrap();
        assert_eq!(b.sequence, a.sequence + 1);
    }

    #[test]
    fn trap_mad_roundtrip() {
        let t = Trap::pkey_violation(Lid(3), PKey(0x8777), Lid(8), 99);
        let mad = t.to_mad();
        assert_eq!(mad.to_bytes().len(), ib_packet::mad::MAD_LEN);
        let back = Trap::from_mad(&mad).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn trap_carries_violator() {
        let t = Trap::pkey_violation(Lid(5), PKey(0x77), Lid(9), 1);
        match t.kind {
            TrapKind::PKeyViolation {
                bad_pkey,
                violator_slid,
            } => {
                assert_eq!(bad_pkey, PKey(0x77));
                assert_eq!(violator_slid, Lid(9));
            }
            _ => panic!("wrong kind"),
        }
        assert_eq!(t.reporter, Lid(5));
    }
}
