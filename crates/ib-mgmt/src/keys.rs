//! The five IBA key classes and the paper's Table 3 vulnerability matrix,
//! encoded as data so examples and tests can demonstrate each exposure.
//!
//! §4.1: "Plaintext Keys in the packet might be exposed causing [the]
//! following vulnerabilities" — the point of the ICRC-as-MAC scheme is that
//! *capturing* any of these keys stops being sufficient to *use* them.

/// The key classes IBA defines (spec §3.5.3 and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyClass {
    /// Management Key — guards SMP configuration of a port. "Controls
    /// almost everything in a subnet."
    MKey,
    /// Baseboard Management Key — guards baseboard/hardware management.
    BKey,
    /// Partition Key — proves partition membership; in every data packet.
    PKey,
    /// Queue Key — authorizes datagram delivery to a QP.
    QKey,
    /// Memory keys (L_Key local, R_Key remote) — authorize (RDMA) memory
    /// access.
    MemoryKey,
}

/// What an attacker gains from capturing a key of this class, and what
/// other keys the attack additionally requires — Table 3, row by row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vulnerability {
    pub class: KeyClass,
    /// Table 3's description, abridged.
    pub impact: &'static str,
    /// Keys the attacker must hold *in addition* for the exploit to work
    /// (e.g. R_Key abuse on a datagram QP also needs P_Key and Q_Key).
    pub also_requires: &'static [KeyClass],
    /// Whether the paper's per-packet MAC closes this hole (all of them —
    /// that is the Q.5/A.5 claim — but via different key-management levels).
    pub closed_by_mac: bool,
}

/// The Table 3 matrix.
pub const VULNERABILITIES: &[Vulnerability] = &[
    Vulnerability {
        class: KeyClass::MKey,
        impact: "reconfigure the subnet: reassign LIDs, change forwarding, \
                 disconnect communicating nodes",
        also_requires: &[],
        closed_by_mac: true,
    },
    Vulnerability {
        class: KeyClass::BKey,
        impact: "change hardware/baseboard configuration of nodes and switches",
        also_requires: &[],
        closed_by_mac: true,
    },
    Vulnerability {
        class: KeyClass::PKey,
        impact: "break partition membership restriction; partition existence \
                 itself may be classified",
        also_requires: &[],
        closed_by_mac: true,
    },
    Vulnerability {
        class: KeyClass::QKey,
        impact: "disrupt or corrupt a datagram QP's communication (packet is \
                 accepted solely because the Q_Key matches)",
        also_requires: &[KeyClass::PKey],
        closed_by_mac: true,
    },
    Vulnerability {
        class: KeyClass::MemoryKey,
        impact: "read or write remote memory via RDMA with no destination-QP \
                 intervention",
        // Datagram service: needs P_Key and Q_Key too; connected service:
        // only P_Key. We record the datagram (worst-documented) row.
        also_requires: &[KeyClass::PKey, KeyClass::QKey],
        closed_by_mac: true,
    },
];

impl KeyClass {
    /// Spec name of the key class.
    pub fn name(self) -> &'static str {
        match self {
            KeyClass::MKey => "M_Key",
            KeyClass::BKey => "B_Key",
            KeyClass::PKey => "P_Key",
            KeyClass::QKey => "Q_Key",
            KeyClass::MemoryKey => "L_Key/R_Key",
        }
    }

    /// Table 3 row for this class.
    pub fn vulnerability(self) -> &'static Vulnerability {
        VULNERABILITIES
            .iter()
            .find(|v| v.class == self)
            .expect("every class has a Table 3 row")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_has_a_row() {
        for class in [
            KeyClass::MKey,
            KeyClass::BKey,
            KeyClass::PKey,
            KeyClass::QKey,
            KeyClass::MemoryKey,
        ] {
            let v = class.vulnerability();
            assert_eq!(v.class, class);
            assert!(!v.impact.is_empty());
        }
    }

    #[test]
    fn mac_closes_all_rows() {
        // The paper's A.5 claim, recorded as an invariant of the matrix.
        assert!(VULNERABILITIES.iter().all(|v| v.closed_by_mac));
    }

    #[test]
    fn qkey_attack_requires_pkey() {
        let v = KeyClass::QKey.vulnerability();
        assert!(v.also_requires.contains(&KeyClass::PKey));
    }

    #[test]
    fn rdma_attack_requires_pkey_and_qkey() {
        let v = KeyClass::MemoryKey.vulnerability();
        assert!(v.also_requires.contains(&KeyClass::PKey));
        assert!(v.also_requires.contains(&KeyClass::QKey));
    }

    #[test]
    fn names() {
        assert_eq!(KeyClass::MKey.name(), "M_Key");
        assert_eq!(KeyClass::MemoryKey.name(), "L_Key/R_Key");
    }
}
