//! Boundary-value tests across the trap → SM → SIF pipeline: the exact
//! instants where the trap throttle re-admits, where an idle SIF port
//! self-disables, and where the Invalid_P_Key_Table starts evicting.

use ib_mgmt::enforcement::{FilterDecision, PartitionEnforcer, SifEnforcer};
use ib_mgmt::sm::ProgramFilter;
use ib_mgmt::trap::TrapThrottle;
use ib_mgmt::SubnetManager;
use ib_packet::types::{Lid, PKey};

const EDGE: bool = true;

/// One tick under `min_interval` stays muted; exactly `min_interval`
/// re-admits. The spacing is measured from the last *admitted* trap.
#[test]
fn throttle_boundary_is_min_interval_exactly() {
    let mut th = TrapThrottle::new(100);
    assert!(th.offer(0, Lid(1), PKey(0x9), Lid(2)).is_some());
    assert!(th.offer(99, Lid(1), PKey(0x9), Lid(2)).is_none(), "t-1");
    assert!(th.offer(100, Lid(1), PKey(0x9), Lid(2)).is_some(), "t");
    // The admission at 100 resets the clock: 199 is again one short.
    assert!(th.offer(199, Lid(1), PKey(0x9), Lid(2)).is_none());
    assert!(th.offer(200, Lid(1), PKey(0x9), Lid(2)).is_some());
}

/// A muted offer must not bump the sequence counter — gaps in sequence
/// numbers are how the SM spots genuinely lost traps.
#[test]
fn muted_offers_do_not_consume_sequence_numbers() {
    let mut th = TrapThrottle::new(100);
    let a = th.offer(0, Lid(1), PKey(0x9), Lid(2)).unwrap();
    assert!(th.offer(1, Lid(1), PKey(0x9), Lid(2)).is_none());
    assert!(th.offer(2, Lid(1), PKey(0x9), Lid(2)).is_none());
    let b = th.offer(100, Lid(1), PKey(0x9), Lid(2)).unwrap();
    assert_eq!(b.sequence, a.sequence + 1, "mutes left no gap");
}

/// The idle self-disable fires at exactly `idle_timeout` after the last
/// violation — one tick earlier the filter still drops.
#[test]
fn sif_self_disables_at_exactly_idle_timeout() {
    let mut sif = SifEnforcer::new(4, 1000, 8);
    sif.register_invalid(0, 2, PKey(0x6666));
    assert!(sif.is_enabled(2));

    // A hit at t=0 refreshes last_violation.
    let c = sif.check(0, 2, EDGE, Lid(9), PKey(0x6666));
    assert_eq!(c.decision, FilterDecision::Drop);

    // t = idle_timeout - 1: still armed, still dropping.
    let c = sif.check(999, 2, EDGE, Lid(9), PKey(0x6666));
    assert_eq!(c.decision, FilterDecision::Drop, "one tick early");

    // That drop itself refreshed the clock; go quiet from t=999.
    let c = sif.check(999 + 999, 2, EDGE, Lid(9), PKey(0x6666));
    assert_eq!(c.decision, FilterDecision::Drop, "quiet window not over");
    // Last violation now at 1998; 1998 + 1000 is the first quiet instant.
    let c = sif.check(1998 + 1000, 2, EDGE, Lid(9), PKey(0x6666));
    assert_eq!(
        c.decision,
        FilterDecision::Pass,
        "exactly idle_timeout of quiet disables the port"
    );
    assert!(!sif.is_enabled(2));
    assert_eq!(sif.table_entries(), 0, "disable clears the invalid table");
}

/// The passing check after self-disable costs no lookup; subsequent
/// traffic on the disabled port is free until re-enabled by a trap.
#[test]
fn disabled_port_passes_free_until_reprogrammed() {
    let mut sif = SifEnforcer::new(2, 10, 4);
    sif.register_invalid(0, 0, PKey(0x7777));
    assert_eq!(
        sif.check(10, 0, EDGE, Lid(3), PKey(0x7777)).decision,
        FilterDecision::Pass
    );
    let c = sif.check(11, 0, EDGE, Lid(3), PKey(0x7777));
    assert_eq!(c.decision, FilterDecision::Pass);
    assert_eq!(c.lookup_cycles, 0, "disabled ports pay nothing");
    // A new trap re-arms the same port and dropping resumes.
    sif.register_invalid(12, 0, PKey(0x7777));
    assert_eq!(
        sif.check(13, 0, EDGE, Lid(3), PKey(0x7777)).decision,
        FilterDecision::Drop
    );
}

/// The table holds exactly `max_invalid_entries`; the entry that tips it
/// over evicts the oldest (FIFO), never grows past the cap.
#[test]
fn invalid_table_evicts_oldest_at_exactly_the_cap() {
    let mut sif = SifEnforcer::new(1, 1_000_000, 3);
    for (i, k) in [0x8001u16, 0x8002, 0x8003].into_iter().enumerate() {
        sif.register_invalid(i as u64, 0, PKey(k));
    }
    assert_eq!(sif.table_entries(), 3, "at the cap, nothing evicted");
    // Re-registering a resident key is idempotent.
    sif.register_invalid(3, 0, PKey(0x8002));
    assert_eq!(sif.table_entries(), 3);
    // One past the cap: 0x8001 (oldest) leaves, 0x8004 enters.
    sif.register_invalid(4, 0, PKey(0x8004));
    assert_eq!(sif.table_entries(), 3);
    assert_eq!(
        sif.check(5, 0, EDGE, Lid(2), PKey(0x8001)).decision,
        FilterDecision::Pass,
        "evicted key no longer drops"
    );
    assert_eq!(
        sif.check(6, 0, EDGE, Lid(2), PKey(0x8004)).decision,
        FilterDecision::Drop,
        "newest key drops"
    );
}

/// A zero-entry cap is clamped to one usable slot.
#[test]
fn zero_capacity_clamps_to_one_entry() {
    let mut sif = SifEnforcer::new(1, 100, 0);
    sif.register_invalid(0, 0, PKey(0x9001));
    assert_eq!(sif.table_entries(), 1);
    sif.register_invalid(1, 0, PKey(0x9002));
    assert_eq!(sif.table_entries(), 1, "still one; oldest evicted");
    assert_eq!(
        sif.check(2, 0, EDGE, Lid(2), PKey(0x9002)).decision,
        FilterDecision::Drop
    );
}

/// End to end across the boundary: a throttled trap at the reporter
/// becomes a `ProgramFilter` at the SM becomes a dropping SIF port —
/// and the throttle's mute window never reaches the SM at all.
#[test]
fn trap_to_sm_to_sif_programs_the_right_port() {
    let mut sm = SubnetManager::new(8, 7);
    sm.attach(Lid(5), 2, 3); // violator node 4 hangs off switch 2 port 3
    let mut th = TrapThrottle::new(50);
    let mut sif = SifEnforcer::new(8, 10_000, 4);

    let trap = th.offer(0, Lid(1), PKey(0x6666), Lid(5)).unwrap();
    let ProgramFilter { switch, port, pkey } = sm.handle_trap(&trap).unwrap();
    assert_eq!((switch, port, pkey), (2, 3, PKey(0x6666)));
    sif.register_invalid(0, port, pkey);

    assert!(th.offer(49, Lid(1), PKey(0x6666), Lid(5)).is_none());
    assert_eq!(sm.traps_handled, 1, "muted repeat never reached the SM");
    assert_eq!(
        sif.check(1, 3, EDGE, Lid(5), PKey(0x6666)).decision,
        FilterDecision::Drop
    );
    assert_eq!(
        sif.check(2, 4, EDGE, Lid(5), PKey(0x6666)).decision,
        FilterDecision::Pass,
        "only the programmed port filters"
    );
}
