//! # ib-transport
//!
//! An IBA Reliable Connection (RC) transport layered on the paper's
//! secure receive path, closing the loop the §7 replay defense opens:
//! a reliable transport *legitimately* retransmits packets under their
//! **original PSN** (IBA §9.7.5.1.1), so a genuine retransmit is
//! byte-identical — nonce, MAC tag and all — to an attacker's replay.
//! This crate builds the sender/receiver machinery that makes the
//! distinction operational:
//!
//! * [`qp`] — the RC queue-pair state machine: PSN assignment, a bounded
//!   in-flight window, cumulative ACKs with coalescing, NAK(PSN sequence
//!   error) triggering go-back-N, RNR back-off, and retransmission on
//!   timeout with exponential back-off up to a retry-exhausted dead state.
//! * [`endpoint`] — [`endpoint::SecureRcEndpoint`] marries an
//!   [`qp::RcQp`] to an [`ib_security::SecureChannel`]: data packets are
//!   sealed (tagged) once per PSN so retransmits reproduce identical
//!   bytes, and inbound packets pass transport-order classification
//!   *before* the replay window so the window's bitmap stays strictly
//!   in delivery order.
//! * [`sim`] — a two-endpoint discrete-event harness over lossy links
//!   ([`ib_sim::FaultConfig`]) with an on-path attacker replaying
//!   captured data packets; produces the fig_replay metrics (goodput,
//!   delivery latency, retransmits, replays admitted). Kept as the
//!   point-to-point determinism oracle.
//! * [`fabric`] — the same endpoints attached to HCAs of a full
//!   [`ib_sim::Simulator`] mesh: wire buffers ride real VL arbitration,
//!   credits, per-link faults and Figure-5 attack traffic, so the
//!   retransmission and replay machinery is measured under congestion
//!   (the fig_rdma experiment: SEND / RDMA WRITE / RDMA READ).
//! * [`config`] — [`config::RcConfig`] knobs with JSON round-tripping.
//!
//! The invariant that keeps retransmission and replay defense compatible:
//! the transport's in-flight window never exceeds the replay window
//! depth, so a retransmit of an undelivered PSN is always still
//! judgeable ([`ib_security::ReplayVerdict::Fresh`]) when it lands.

pub mod config;
pub mod endpoint;
pub mod fabric;
pub mod qp;
pub mod sim;

pub use config::{RcConfig, RetransmitMode};
pub use endpoint::{EndpointStats, SecureRcEndpoint};
pub use fabric::{run_fabric_sim, FabricReport, FabricSimConfig, RdmaOp};
pub use qp::{RcQp, RxClass, RxReply, TxItem};
pub use sim::{run_replay_sim, ReplayReport, ReplaySimConfig};
