//! Two-endpoint discrete-event harness: a reliable connection over lossy
//! links with an on-path replay attacker — the fig_replay experiment.
//!
//! Endpoint 0 posts `messages` payloads to endpoint 1 across a
//! full-duplex link whose two directions each run an independent
//! [`FaultInjector`] stream (drop / corrupt / reorder). An attacker taps
//! the data direction, captures every clean data packet, and re-injects
//! every `replay_every`-th one verbatim after `replay_delay` — the §7
//! threat model. Captured bytes are perfectly valid (correct MAC,
//! plausible PSN), so only the replay window can tell them from the
//! sender's own retransmits.
//!
//! Everything is deterministic in `seed`: the two fault streams are
//! `Seed::stream(0)`/`stream(1)` of it, event ties break by insertion
//! order, and the report is bit-identical across same-seed runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use ib_mgmt::keymgmt::SecretKey;
use ib_packet::types::{Lid, PKey, Qpn};
use ib_packet::Packet;
use ib_runtime::{Json, Seed, ToJson};
use ib_security::ChannelSecurity;
use ib_sim::time::{ps_to_us, tx_time_ps, MS, NS, US};
use ib_sim::{FaultConfig, FaultInjector, OnlineStats, SimTime};

use crate::config::RcConfig;
use crate::endpoint::SecureRcEndpoint;

/// Everything one fig_replay point needs to reproduce itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySimConfig {
    /// Master seed; fault streams derive from it.
    pub seed: u64,
    /// Security arm under test.
    pub security: ChannelSecurity,
    /// Messages endpoint 0 posts.
    pub messages: usize,
    /// Payload bytes per message (≥ 8; the first 8 carry the index).
    pub payload_len: usize,
    /// Per-direction link fault profile.
    pub fault: FaultConfig,
    /// Attacker replays every n-th captured data packet (0 = no attacker).
    pub replay_every: u64,
    /// Delay between capture and re-injection.
    pub replay_delay: SimTime,
    /// One-way link propagation delay.
    pub link_delay: SimTime,
    /// Link rate.
    pub gbps: f64,
    /// Transport knobs.
    pub rc: RcConfig,
    /// Replay-window depth for the auth+replay-window arm.
    pub replay_window: u32,
    /// Safety valve: give up past this simulated instant.
    pub max_sim_time: SimTime,
}

impl Default for ReplaySimConfig {
    fn default() -> Self {
        ReplaySimConfig {
            seed: 1,
            security: ChannelSecurity::AuthReplay,
            messages: 200,
            payload_len: 256,
            fault: FaultConfig::default(),
            replay_every: 3,
            replay_delay: 5 * US,
            link_delay: 100 * NS,
            gbps: 2.5,
            rc: RcConfig::default(),
            replay_window: 64,
            max_sim_time: 500 * MS,
        }
    }
}

impl ReplaySimConfig {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", self.seed.to_json()),
            ("security", self.security.label().to_json()),
            ("messages", (self.messages as u64).to_json()),
            ("payload_len", (self.payload_len as u64).to_json()),
            ("fault", self.fault.to_json()),
            ("replay_every", self.replay_every.to_json()),
            ("replay_delay_ps", self.replay_delay.to_json()),
            ("link_delay_ps", self.link_delay.to_json()),
            ("gbps", self.gbps.to_json()),
            ("rc", self.rc.to_json()),
            ("replay_window", self.replay_window.to_json()),
            ("max_sim_time_ps", self.max_sim_time.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<ReplaySimConfig> {
        Some(ReplaySimConfig {
            seed: v.get("seed")?.as_u64()?,
            security: ChannelSecurity::from_label(v.get("security")?.as_str()?)?,
            messages: v.get("messages")?.as_u64()? as usize,
            payload_len: v.get("payload_len")?.as_u64()? as usize,
            fault: FaultConfig::from_json(v.get("fault")?)?,
            replay_every: v.get("replay_every")?.as_u64()?,
            replay_delay: v.get("replay_delay_ps")?.as_u64()?,
            link_delay: v.get("link_delay_ps")?.as_u64()?,
            gbps: v.get("gbps")?.as_f64()?,
            rc: RcConfig::from_json(v.get("rc")?)?,
            replay_window: v.get("replay_window")?.as_u64()? as u32,
            max_sim_time: v.get("max_sim_time_ps")?.as_u64()?,
        })
    }
}

/// One fig_replay data point.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Unique messages that reached the application.
    pub delivered: u64,
    /// Messages posted.
    pub expected: u64,
    /// Sender exhausted its retries (QP error state).
    pub failed: bool,
    /// Run hit `max_sim_time` before completing.
    pub timed_out: bool,
    /// Instant the run ended, µs.
    pub completion_us: f64,
    /// Unique delivered payload bits over the completion time.
    pub goodput_gbps: f64,
    /// Post-to-first-delivery latency per unique message, µs.
    pub latency_us: OnlineStats,
    /// Sender retransmissions (timeouts + go-back-N).
    pub retransmits: u64,
    /// Attacker packets injected.
    pub replays_injected: u64,
    /// Attacker packets the receive path admitted as fresh — the §7
    /// security failure count. Always 0 under auth+replay-window.
    pub replays_admitted: u64,
    /// Already-received payloads delivered again to the application
    /// (attacker-caused *and* lost-ACK-retransmit-caused, no window).
    pub duplicates_delivered: u64,
    /// Duplicates the channel suppressed.
    pub dup_suppressed: u64,
    /// Packets the fault layer dropped on the wire.
    pub link_drops: u64,
    /// Wire buffers discarded at parse (fault-layer corruption).
    pub corrupt_drops: u64,
    /// Packets failing MAC/ICRC at either endpoint.
    pub rejected_auth: u64,
    /// Packets rejected as older than the replay window.
    pub rejected_stale: u64,
}

impl ReplayReport {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("delivered", self.delivered.to_json()),
            ("expected", self.expected.to_json()),
            ("failed", self.failed.to_json()),
            ("timed_out", self.timed_out.to_json()),
            ("completion_us", self.completion_us.to_json()),
            ("goodput_gbps", self.goodput_gbps.to_json()),
            ("latency_us", self.latency_us.to_json()),
            ("retransmits", self.retransmits.to_json()),
            ("replays_injected", self.replays_injected.to_json()),
            ("replays_admitted", self.replays_admitted.to_json()),
            ("duplicates_delivered", self.duplicates_delivered.to_json()),
            ("dup_suppressed", self.dup_suppressed.to_json()),
            ("link_drops", self.link_drops.to_json()),
            ("corrupt_drops", self.corrupt_drops.to_json()),
            ("rejected_auth", self.rejected_auth.to_json()),
            ("rejected_stale", self.rejected_stale.to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<ReplayReport> {
        Some(ReplayReport {
            delivered: v.get("delivered")?.as_u64()?,
            expected: v.get("expected")?.as_u64()?,
            failed: v.get("failed")?.as_bool()?,
            timed_out: v.get("timed_out")?.as_bool()?,
            completion_us: v.get("completion_us")?.as_f64()?,
            goodput_gbps: v.get("goodput_gbps")?.as_f64()?,
            latency_us: OnlineStats::from_json(v.get("latency_us")?)?,
            retransmits: v.get("retransmits")?.as_u64()?,
            replays_injected: v.get("replays_injected")?.as_u64()?,
            replays_admitted: v.get("replays_admitted")?.as_u64()?,
            duplicates_delivered: v.get("duplicates_delivered")?.as_u64()?,
            dup_suppressed: v.get("dup_suppressed")?.as_u64()?,
            link_drops: v.get("link_drops")?.as_u64()?,
            corrupt_drops: v.get("corrupt_drops")?.as_u64()?,
            rejected_auth: v.get("rejected_auth")?.as_u64()?,
            rejected_stale: v.get("rejected_stale")?.as_u64()?,
        })
    }
}

enum Ev {
    /// Bytes arrive at endpoint `dst`.
    Wire { dst: usize, bytes: Vec<u8> },
    /// Timer wake-up for endpoint `dst`.
    Wake { dst: usize },
    /// Attacker re-injects captured bytes at endpoint 1.
    Inject { bytes: Vec<u8> },
}

struct HeapItem {
    at: SimTime,
    seq: u64,
    ev: Ev,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    /// Min-heap by (time, insertion order): BinaryHeap is a max-heap, so
    /// invert.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

struct Sim<'a> {
    cfg: &'a ReplaySimConfig,
    eps: [SecureRcEndpoint; 2],
    /// Per-direction fault streams: 0 = data direction (0→1), 1 = ACKs.
    faults: [FaultInjector; 2],
    /// Per-direction link serialization horizon.
    busy: [SimTime; 2],
    heap: BinaryHeap<HeapItem>,
    seq: u64,
    /// Earliest Wake already queued per endpoint (dedup).
    next_wake: [Option<SimTime>; 2],
    captured: u64,
    /// Reused scratch for each pump's wire buffers (the buffers inside
    /// cycle through the endpoints' recycle pools).
    wire_out: Vec<Vec<u8>>,
    seen: Vec<bool>,
    post_time: Vec<SimTime>,
    latency: OnlineStats,
    delivered_unique: u64,
    duplicates_delivered: u64,
    replays_injected: u64,
    replays_admitted: u64,
    link_drops: u64,
}

impl Sim<'_> {
    fn push(&mut self, at: SimTime, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapItem { at, seq, ev });
    }

    /// Transmit everything endpoint `src` has ready, through the fault
    /// layer, onto its directed link.
    fn pump(&mut self, now: SimTime, src: usize) {
        let mut out = std::mem::take(&mut self.wire_out);
        self.eps[src].poll_into(now, &mut out);
        for bytes in out.drain(..) {
            let start = self.busy[src].max(now);
            let tx_end = start + tx_time_ps(bytes.len(), self.cfg.gbps);
            self.busy[src] = tx_end;
            match self.faults[src].decide() {
                ib_sim::FaultOutcome::Drop => {
                    self.link_drops += 1;
                    // The buffer never left this endpoint: give it back.
                    self.eps[src].recycle(bytes);
                }
                ib_sim::FaultOutcome::Deliver {
                    corrupt,
                    extra_delay_ps,
                } => {
                    let mut bytes = bytes;
                    if corrupt {
                        let mid = bytes.len() / 2;
                        bytes[mid] ^= 0xFF;
                    }
                    let arrival = tx_end + self.cfg.link_delay + extra_delay_ps;
                    // The attacker taps the data direction and captures
                    // clean data packets as they arrive at endpoint 1.
                    if src == 0 && !corrupt && self.cfg.replay_every > 0 {
                        let is_data = Packet::parse(&bytes)
                            .map(|p| p.aeth.is_none())
                            .unwrap_or(false);
                        if is_data {
                            self.captured += 1;
                            if self.captured.is_multiple_of(self.cfg.replay_every) {
                                self.replays_injected += 1;
                                self.push(
                                    arrival + self.cfg.replay_delay,
                                    Ev::Inject {
                                        bytes: bytes.clone(),
                                    },
                                );
                            }
                        }
                    }
                    self.push(
                        arrival,
                        Ev::Wire {
                            dst: 1 - src,
                            bytes,
                        },
                    );
                }
            }
        }
        self.wire_out = out;
        self.schedule_wake(now, src);
    }

    fn schedule_wake(&mut self, now: SimTime, i: usize) {
        if let Some(deadline) = self.eps[i].next_deadline() {
            let deadline = deadline.max(now);
            let stale = match self.next_wake[i] {
                Some(queued) => queued > deadline || queued < now,
                None => true,
            };
            if stale {
                self.next_wake[i] = Some(deadline);
                self.push(deadline, Ev::Wake { dst: i });
            }
        }
    }

    /// Drain endpoint 1's delivered messages into the uniqueness ledger.
    fn drain_rx(&mut self, now: SimTime) {
        for payload in self.eps[1].take_delivered() {
            let idx = u64::from_le_bytes(payload[..8].try_into().unwrap()) as usize;
            assert!(idx < self.seen.len(), "payload index out of range");
            if self.seen[idx] {
                self.duplicates_delivered += 1;
            } else {
                self.seen[idx] = true;
                self.delivered_unique += 1;
                self.latency.push(ps_to_us(now - self.post_time[idx]));
            }
        }
    }
}

/// Deterministic payload for message `i`: 8-byte index then a repeating
/// pattern derived from it.
pub(crate) fn payload_for(i: usize, len: usize) -> Vec<u8> {
    let mut p = vec![0u8; len.max(8)];
    p[..8].copy_from_slice(&(i as u64).to_le_bytes());
    for (k, b) in p.iter_mut().enumerate().skip(8) {
        *b = (i as u8).wrapping_mul(31).wrapping_add(k as u8);
    }
    p
}

/// Run one fig_replay point to completion (all messages delivered and
/// acknowledged), sender failure, or the time limit.
pub fn run_replay_sim(cfg: &ReplaySimConfig) -> ReplayReport {
    assert!(cfg.payload_len >= 8, "payload must hold the 8-byte index");
    let secret = SecretKey::from_seed(cfg.seed ^ 0x005E_C2E7);
    let pkey = PKey(0x8001);
    let make = |lid, peer, sec| {
        SecureRcEndpoint::new(
            sec,
            pkey,
            secret,
            cfg.replay_window,
            cfg.rc,
            lid,
            peer,
            Qpn(7),
        )
    };
    let fseed = Seed(cfg.seed ^ 0xFA17_FA17);
    let mut sim = Sim {
        cfg,
        eps: [
            make(Lid(1), Lid(2), cfg.security),
            make(Lid(2), Lid(1), cfg.security),
        ],
        faults: [
            FaultInjector::new(cfg.fault, fseed.stream(0)),
            FaultInjector::new(cfg.fault, fseed.stream(1)),
        ],
        busy: [0; 2],
        heap: BinaryHeap::new(),
        seq: 0,
        next_wake: [None; 2],
        captured: 0,
        wire_out: Vec::new(),
        seen: vec![false; cfg.messages],
        post_time: vec![0; cfg.messages],
        latency: OnlineStats::new(),
        delivered_unique: 0,
        duplicates_delivered: 0,
        replays_injected: 0,
        replays_admitted: 0,
        link_drops: 0,
    };
    for i in 0..cfg.messages {
        sim.eps[0].post(payload_for(i, cfg.payload_len));
    }
    sim.push(0, Ev::Wake { dst: 0 });

    let mut now = 0;
    let mut timed_out = false;
    while let Some(item) = sim.heap.pop() {
        now = item.at;
        if now > cfg.max_sim_time {
            timed_out = true;
            break;
        }
        match item.ev {
            Ev::Wire { dst, bytes } => {
                sim.eps[dst].handle_wire(now, &bytes);
                sim.eps[dst].recycle(bytes);
                sim.drain_rx(now);
                sim.pump(now, dst);
            }
            Ev::Wake { dst } => {
                if sim.next_wake[dst] == Some(now) {
                    sim.next_wake[dst] = None;
                }
                sim.pump(now, dst);
            }
            Ev::Inject { bytes } => {
                // Delta-count admissions around exactly this injection so
                // the attacker's successes are not conflated with the
                // sender's own lost-ACK retransmits.
                let before = sim.eps[1].stats.dup_admitted_fresh;
                sim.eps[1].handle_wire(now, &bytes);
                sim.eps[1].recycle(bytes);
                sim.replays_admitted += sim.eps[1].stats.dup_admitted_fresh - before;
                sim.drain_rx(now);
                sim.pump(now, 1);
            }
        }
        if sim.eps[0].failed() {
            break;
        }
        if sim.delivered_unique == cfg.messages as u64 && sim.eps[0].tx_idle() {
            break;
        }
    }

    // The attacker keeps replaying after the transfer completes; the
    // window's delivery state persists, so these must still be judged
    // (and, with the window, still rejected).
    if !timed_out && !sim.eps[0].failed() {
        while let Some(item) = sim.heap.pop() {
            if let Ev::Inject { bytes } = item.ev {
                let before = sim.eps[1].stats.dup_admitted_fresh;
                sim.eps[1].handle_wire(item.at, &bytes);
                sim.eps[1].recycle(bytes);
                sim.replays_admitted += sim.eps[1].stats.dup_admitted_fresh - before;
                sim.drain_rx(item.at);
            }
        }
    }

    let completion_ps = now.max(1);
    let bits = (sim.delivered_unique * cfg.payload_len as u64 * 8) as f64;
    let rx_channel = sim.eps[1].channel().stats;
    let tx_channel = sim.eps[0].channel().stats;
    ReplayReport {
        delivered: sim.delivered_unique,
        expected: cfg.messages as u64,
        failed: sim.eps[0].failed(),
        timed_out,
        completion_us: ps_to_us(completion_ps),
        goodput_gbps: bits / (completion_ps as f64 * 1e-12) / 1e9,
        latency_us: sim.latency,
        retransmits: sim.eps[0].retransmits(),
        replays_injected: sim.replays_injected,
        replays_admitted: sim.replays_admitted,
        duplicates_delivered: sim.duplicates_delivered,
        dup_suppressed: sim.eps[1].stats.dup_suppressed,
        link_drops: sim.link_drops,
        corrupt_drops: sim.eps[0].stats.parse_drops + sim.eps[1].stats.parse_drops,
        rejected_auth: rx_channel.rejected_auth + tx_channel.rejected_auth,
        rejected_stale: rx_channel.rejected_stale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base(security: ChannelSecurity) -> ReplaySimConfig {
        ReplaySimConfig {
            security,
            messages: 60,
            payload_len: 64,
            ..ReplaySimConfig::default()
        }
    }

    #[test]
    fn clean_link_no_attacker_delivers_everything() {
        for arm in ChannelSecurity::ALL {
            let cfg = ReplaySimConfig {
                replay_every: 0,
                ..base(arm)
            };
            let r = run_replay_sim(&cfg);
            assert_eq!(r.delivered, 60, "{arm:?}");
            assert!(!r.failed && !r.timed_out);
            assert_eq!(r.retransmits, 0, "{arm:?}: nothing to recover");
            assert_eq!(r.duplicates_delivered, 0);
            assert!(r.goodput_gbps > 0.0);
            assert_eq!(r.latency_us.count(), 60);
        }
    }

    #[test]
    fn replay_attack_defeated_only_by_window() {
        for arm in ChannelSecurity::ALL {
            let cfg = ReplaySimConfig {
                replay_every: 2,
                ..base(arm)
            };
            let r = run_replay_sim(&cfg);
            assert_eq!(r.delivered, 60, "{arm:?}: attack must not block delivery");
            assert!(r.replays_injected >= 20, "{arm:?}: attacker was active");
            match arm {
                ChannelSecurity::AuthReplay => {
                    assert_eq!(r.replays_admitted, 0, "window stops every replay");
                    assert_eq!(r.duplicates_delivered, 0);
                    // Every injected replay was either suppressed as a
                    // duplicate or aged past the window and rejected.
                    assert!(r.dup_suppressed + r.rejected_stale >= r.replays_injected);
                }
                ChannelSecurity::NoAuth | ChannelSecurity::Auth => {
                    assert!(
                        r.replays_admitted > 0,
                        "{arm:?}: without the window, replays land"
                    );
                    assert!(r.duplicates_delivered >= r.replays_admitted);
                }
            }
        }
    }

    #[test]
    fn lossy_link_still_delivers_every_message() {
        for arm in ChannelSecurity::ALL {
            let cfg = ReplaySimConfig {
                fault: FaultConfig::lossy(0.02, 50_000),
                replay_every: 3,
                ..base(arm)
            };
            let r = run_replay_sim(&cfg);
            assert_eq!(r.delivered, 60, "{arm:?}: reliable despite 2% loss");
            assert!(!r.failed && !r.timed_out, "{arm:?}");
            assert!(r.retransmits > 0, "{arm:?}: loss forces retransmission");
            if arm == ChannelSecurity::AuthReplay {
                assert_eq!(r.replays_admitted, 0, "retransmits don't open the door");
            }
        }
    }

    #[test]
    fn same_seed_same_report_different_seed_different() {
        let cfg = ReplaySimConfig {
            fault: FaultConfig::lossy(0.05, 50_000),
            seed: 42,
            ..base(ChannelSecurity::AuthReplay)
        };
        let a = run_replay_sim(&cfg).to_json().to_string();
        let b = run_replay_sim(&cfg).to_json().to_string();
        assert_eq!(a, b, "bit-identical across same-seed runs");
        let c = run_replay_sim(&ReplaySimConfig { seed: 43, ..cfg })
            .to_json()
            .to_string();
        assert_ne!(a, c, "seed actually steers the faults");
    }

    #[test]
    fn config_and_report_json_round_trip() {
        let cfg = ReplaySimConfig {
            fault: FaultConfig::lossy(0.01, 25_000),
            security: ChannelSecurity::Auth,
            ..ReplaySimConfig::default()
        };
        let back =
            ReplaySimConfig::from_json(&Json::parse(&cfg.to_json().to_string()).unwrap()).unwrap();
        assert_eq!(back, cfg);

        let small = ReplaySimConfig {
            messages: 10,
            payload_len: 32,
            ..cfg
        };
        let report = run_replay_sim(&small);
        let text = report.to_json().to_string();
        let parsed = ReplayReport::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed.to_json().to_string(), text);
    }
}
