//! RC transport knobs, JSON round-trippable so experiment configs embed
//! them next to the [`ib_sim::SimConfig`] they ride with.

use ib_runtime::{Json, ToJson};
use ib_sim::time::{MS, US};
use ib_sim::SimTime;

/// Loss-recovery strategy ablation (the fig_rdma comparison axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetransmitMode {
    /// IBA's native behavior: a NAK or timeout rewinds to the oldest
    /// unacknowledged PSN and everything from there is resent.
    GoBackN,
    /// A NAK resends only the missing PSN; the receiver buffers
    /// ahead-of-expected packets (admitting them through the replay
    /// window out of order) and delivers once the gap heals.
    SelectiveRepeat,
}

impl RetransmitMode {
    /// Stable label for JSON / tables.
    pub fn label(self) -> &'static str {
        match self {
            RetransmitMode::GoBackN => "gbn",
            RetransmitMode::SelectiveRepeat => "sr",
        }
    }

    /// Inverse of [`label`](Self::label).
    pub fn from_label(s: &str) -> Option<RetransmitMode> {
        match s {
            "gbn" => Some(RetransmitMode::GoBackN),
            "sr" => Some(RetransmitMode::SelectiveRepeat),
            _ => None,
        }
    }
}

/// Reliable-connection transport parameters.
///
/// The one security-critical field is [`window`](RcConfig::window): it
/// must not exceed the receive channel's replay-window depth, or a
/// genuine retransmit could age out of the window and be rejected as
/// stale. [`crate::endpoint::SecureRcEndpoint::new`] asserts this.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RcConfig {
    /// Maximum unacknowledged packets in flight (send window).
    pub window: u32,
    /// Initial retransmission timeout, ps.
    pub rto: SimTime,
    /// Cap on the exponentially backed-off RTO, ps.
    pub rto_max: SimTime,
    /// Consecutive timeouts without forward progress before the QP goes
    /// to the error (dead) state.
    pub max_retries: u32,
    /// Coalesce ACKs: acknowledge every n-th in-order packet immediately…
    pub ack_coalesce: u32,
    /// …and any straggler after this delay, ps.
    pub ack_delay: SimTime,
    /// Receiver-not-ready back-off the RNR NAK asks the sender to wait, ps.
    pub rnr_timer: SimTime,
    /// First PSN of the connection.
    pub initial_psn: u32,
    /// Receive-side buffer budget (messages held undrained before the
    /// receiver answers RNR NAK).
    pub rx_capacity: usize,
    /// Path MTU in bytes: messages longer than this are segmented into
    /// First/Middle/Last packets sharing one MSN.
    pub mtu: usize,
    /// Loss-recovery strategy.
    pub retransmit: RetransmitMode,
}

impl Default for RcConfig {
    fn default() -> Self {
        RcConfig {
            window: 32,
            rto: 100 * US,
            rto_max: 2 * MS,
            max_retries: 10,
            ack_coalesce: 4,
            ack_delay: 10 * US,
            rnr_timer: 50 * US,
            initial_psn: 0,
            rx_capacity: 1024,
            mtu: 1024,
            retransmit: RetransmitMode::GoBackN,
        }
    }
}

impl RcConfig {
    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("window", self.window.to_json()),
            ("rto_ps", self.rto.to_json()),
            ("rto_max_ps", self.rto_max.to_json()),
            ("max_retries", self.max_retries.to_json()),
            ("ack_coalesce", self.ack_coalesce.to_json()),
            ("ack_delay_ps", self.ack_delay.to_json()),
            ("rnr_timer_ps", self.rnr_timer.to_json()),
            ("initial_psn", self.initial_psn.to_json()),
            ("rx_capacity", (self.rx_capacity as u64).to_json()),
            ("mtu", (self.mtu as u64).to_json()),
            ("retransmit", self.retransmit.label().to_json()),
        ])
    }

    /// Inverse of [`to_json`](Self::to_json).
    pub fn from_json(v: &Json) -> Option<RcConfig> {
        Some(RcConfig {
            window: v.get("window")?.as_u64()? as u32,
            rto: v.get("rto_ps")?.as_u64()?,
            rto_max: v.get("rto_max_ps")?.as_u64()?,
            max_retries: v.get("max_retries")?.as_u64()? as u32,
            ack_coalesce: v.get("ack_coalesce")?.as_u64()? as u32,
            ack_delay: v.get("ack_delay_ps")?.as_u64()?,
            rnr_timer: v.get("rnr_timer_ps")?.as_u64()?,
            initial_psn: v.get("initial_psn")?.as_u64()? as u32,
            rx_capacity: v.get("rx_capacity")?.as_u64()? as usize,
            mtu: v.get("mtu")?.as_u64()? as usize,
            retransmit: RetransmitMode::from_label(v.get("retransmit")?.as_str()?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_fit_replay_window() {
        let cfg = RcConfig::default();
        assert!(cfg.window <= 64, "send window must fit the replay window");
        assert!(cfg.rto < cfg.rto_max);
        assert!(cfg.ack_coalesce >= 1);
    }

    #[test]
    fn json_round_trip() {
        let cfg = RcConfig {
            window: 16,
            rto: 7 * US,
            initial_psn: 0xFF_FFF0,
            mtu: 512,
            retransmit: RetransmitMode::SelectiveRepeat,
            ..RcConfig::default()
        };
        let text = cfg.to_json().to_string();
        let back = RcConfig::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, cfg);
    }
}
