//! The RC queue-pair state machine, both halves.
//!
//! **Sender**: posted verbs (SEND, RDMA WRITE, RDMA READ request, READ
//! response) are segmented at the configured MTU into First/Middle/Last/
//! Only packets, become PSN-numbered transmissions inside a bounded
//! in-flight window, and carry their opcode + optional RETH with them.
//! Cumulative ACKs release the window; recovery from a NAK(PSN sequence
//! error) or a retransmission timeout depends on
//! [`RetransmitMode`](crate::config::RetransmitMode):
//!
//! * **Go-back-N** (IBA native): rewind the cursor to the oldest
//!   unacknowledged packet and resend everything from there.
//! * **Selective repeat** (ablation): a NAK queues only the missing PSN
//!   for retransmission; a timeout — which carries no information about
//!   *which* packets were lost — queues everything outstanding.
//!
//! Timeouts back off exponentially; too many without progress and the QP
//! enters the dead (retry-exhausted) state, IBA's QP error state.
//!
//! **Receiver**: tracks the expected PSN. In-order packets advance it and
//! feed the ACK coalescer; the 24-bit MSN advances only on the packet
//! that *completes a message* (Only/Last — one MSN per message, however
//! many MTU segments carried it). A packet *ahead* of expected signals a
//! gap and draws one NAK per gap; a packet *behind* is a duplicate
//! (lost-ACK retransmit or replay — the transport cannot tell, and
//! [`crate::endpoint`] explains why it does not need to) and draws an
//! immediate re-ACK. When the receive buffer is exhausted the receiver
//! answers RNR NAK instead of silently dropping.
//!
//! Retransmissions reuse the **original PSN** — [`TxItem::psn`] is fixed
//! at first transmission. That single fact is what makes the replay
//! window's delivered-vs-lost distinction (see [`ib_security::channel`])
//! the only sound dedup criterion.

use std::collections::VecDeque;

use ib_packet::types::RKey;
use ib_packet::{Operation, Reth};
use ib_sim::SimTime;

use crate::config::{RcConfig, RetransmitMode};

/// PSNs are 24-bit, wrapping.
pub const PSN_MASK: u32 = 0x00FF_FFFF;
/// Half the PSN space: the ahead/behind decision threshold.
pub const PSN_HALF: u32 = 1 << 23;

/// `psn + n` in the 24-bit ring.
pub fn psn_add(psn: u32, n: u32) -> u32 {
    psn.wrapping_add(n) & PSN_MASK
}

/// Forward distance from `from` to `to` in the 24-bit ring.
pub fn psn_sub(to: u32, from: u32) -> u32 {
    to.wrapping_sub(from) & PSN_MASK
}

/// True when `a` is strictly ahead of `b` by less than half the ring
/// (the IBA shortest-distance rule, wrap-safe).
pub fn psn_ahead(a: u32, b: u32) -> bool {
    a != b && psn_sub(a, b) < PSN_HALF
}

/// One transmission the sender half asks the wire layer to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxItem {
    /// The packet's PSN — original on retransmit, never renumbered.
    pub psn: u32,
    /// BTH operation for this segment (fixed at segmentation time so a
    /// retransmit reproduces identical bytes).
    pub op: Operation,
    /// RETH for RDMA First/Only segments and READ requests.
    pub reth: Option<Reth>,
    /// Segment payload.
    pub payload: Vec<u8>,
    /// True when this segment completes its message (Only/Last — the
    /// receiver advances MSN exactly on these).
    pub msg_end: bool,
    /// True when this PSN has been on the wire before.
    pub retransmit: bool,
    /// Selective repeat: queued for retransmission by a NAK or timeout,
    /// cleared when [`RcQp::poll_tx`] serves it.
    retx_queued: bool,
}

/// A segmented packet waiting for a window slot (PSN assigned on admit).
#[derive(Debug)]
struct Seg {
    op: Operation,
    reth: Option<Reth>,
    payload: Vec<u8>,
    msg_end: bool,
}

/// Verb family, for mapping segment position to the BTH operation.
#[derive(Debug, Clone, Copy)]
enum SegKind {
    Send,
    Write,
    ReadResponse,
}

impl SegKind {
    fn op(self, first: bool, last: bool) -> Operation {
        match (self, first, last) {
            (SegKind::Send, true, true) => Operation::SendOnly,
            (SegKind::Send, true, false) => Operation::SendFirst,
            (SegKind::Send, false, false) => Operation::SendMiddle,
            (SegKind::Send, false, true) => Operation::SendLast,
            (SegKind::Write, true, true) => Operation::RdmaWriteOnly,
            (SegKind::Write, true, false) => Operation::RdmaWriteFirst,
            (SegKind::Write, false, false) => Operation::RdmaWriteMiddle,
            (SegKind::Write, false, true) => Operation::RdmaWriteLast,
            (SegKind::ReadResponse, true, true) => Operation::RdmaReadResponseOnly,
            (SegKind::ReadResponse, true, false) => Operation::RdmaReadResponseFirst,
            (SegKind::ReadResponse, false, false) => Operation::RdmaReadResponseMiddle,
            (SegKind::ReadResponse, false, true) => Operation::RdmaReadResponseLast,
        }
    }
}

/// Where an arriving data PSN sits relative to the receiver's expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxClass {
    /// Exactly the expected PSN: deliverable.
    InOrder,
    /// Older than expected: duplicate of something already received.
    Behind,
    /// Newer than expected: a gap — something in between was lost.
    Ahead,
}

/// Acknowledgment traffic the receiver half wants sent back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxReply {
    /// Cumulative ACK: everything through `psn` has been received.
    Ack { psn: u32, msn: u32 },
    /// NAK(PSN sequence error): resume from `psn` (the expected PSN).
    Nak { psn: u32, msn: u32 },
    /// Receiver not ready: retry `psn` after the RNR timer.
    Rnr { psn: u32, msn: u32 },
}

/// What a retransmission-timer expiry produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Deadline not reached or nothing outstanding.
    None,
    /// Retransmission queued; the next [`RcQp::poll_tx`] calls re-emit.
    Rewind,
    /// Retries exhausted: the QP is dead (IBA error state).
    Failed,
}

/// Both halves of one RC queue pair.
#[derive(Debug)]
pub struct RcQp {
    cfg: RcConfig,

    // ---- sender half ----
    pending: VecDeque<Seg>,
    in_flight: VecDeque<TxItem>,
    next_psn: u32,
    /// Go-back-N: index into `in_flight` of the next packet to
    /// (re)transmit. Equal to `in_flight.len()` when everything
    /// outstanding is already on the wire. Unused under selective repeat
    /// (the per-item `retx_queued` flags replace it).
    resend_cursor: usize,
    rto_deadline: Option<SimTime>,
    backoff_exp: u32,
    retries: u32,
    rnr_until: Option<SimTime>,
    dead: bool,
    /// Total retransmissions performed (fig_replay metric).
    pub retransmits: u64,

    // ---- receiver half ----
    expected_psn: u32,
    /// Messages received in order (the AETH MSN, 24-bit). One per
    /// *message*, not per packet: only Only/Last segments advance it.
    msn: u32,
    since_ack: u32,
    ack_deadline: Option<SimTime>,
    nak_outstanding: bool,
    rx_in_use: usize,
}

impl RcQp {
    /// A fresh QP; both directions start at `cfg.initial_psn`.
    pub fn new(cfg: RcConfig) -> Self {
        assert!(cfg.window >= 1, "send window must hold at least one packet");
        assert!(cfg.ack_coalesce >= 1, "ack_coalesce of 0 would never ACK");
        assert!(cfg.mtu >= 1, "zero MTU cannot carry data");
        RcQp {
            pending: VecDeque::new(),
            in_flight: VecDeque::new(),
            next_psn: cfg.initial_psn & PSN_MASK,
            resend_cursor: 0,
            rto_deadline: None,
            backoff_exp: 0,
            retries: 0,
            rnr_until: None,
            dead: false,
            retransmits: 0,
            expected_psn: cfg.initial_psn & PSN_MASK,
            msn: 0,
            since_ack: 0,
            ack_deadline: None,
            nak_outstanding: false,
            rx_in_use: 0,
            cfg,
        }
    }

    /// The configuration this QP runs under.
    pub fn config(&self) -> &RcConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Sender half
    // ------------------------------------------------------------------

    /// Queue a SEND message (alias of [`post_send`](Self::post_send),
    /// kept for the pre-verbs API).
    pub fn post(&mut self, payload: Vec<u8>) {
        self.post_send(payload);
    }

    /// Queue a SEND message, segmented at the MTU.
    pub fn post_send(&mut self, payload: Vec<u8>) {
        self.segment(SegKind::Send, None, payload);
    }

    /// Queue an RDMA WRITE of `payload` to `virt_addr` under `rkey`. The
    /// RETH (address + R_Key + DMA length) rides the First/Only segment
    /// and is covered by the MAC.
    pub fn post_write(&mut self, virt_addr: u64, rkey: RKey, payload: Vec<u8>) {
        let reth = Reth {
            virt_addr,
            rkey,
            dma_len: payload.len() as u32,
        };
        self.segment(SegKind::Write, Some(reth), payload);
    }

    /// Queue an RDMA READ request for `len` bytes at `virt_addr` under
    /// `rkey` (a single payload-less RETH-carrying packet; the responder
    /// answers with segmented READ responses).
    pub fn post_read(&mut self, virt_addr: u64, rkey: RKey, len: u32) {
        self.pending.push_back(Seg {
            op: Operation::RdmaReadRequest,
            reth: Some(Reth {
                virt_addr,
                rkey,
                dma_len: len,
            }),
            payload: Vec::new(),
            msg_end: true,
        });
    }

    /// Queue the responder's data for an RDMA READ, segmented at the MTU
    /// into ReadResponse First/Middle/Last/Only packets.
    pub fn post_read_response(&mut self, payload: Vec<u8>) {
        self.segment(SegKind::ReadResponse, None, payload);
    }

    /// Cut a message into MTU-sized segments sharing one MSN. A message
    /// that fits a single MTU moves the caller's buffer straight into the
    /// queue — no copy, keeping the hot send path allocation-free.
    fn segment(&mut self, kind: SegKind, reth: Option<Reth>, payload: Vec<u8>) {
        let mtu = self.cfg.mtu;
        if payload.len() <= mtu {
            self.pending.push_back(Seg {
                op: kind.op(true, true),
                reth,
                payload,
                msg_end: true,
            });
            return;
        }
        let n = payload.len().div_ceil(mtu);
        for (i, chunk) in payload.chunks(mtu).enumerate() {
            let first = i == 0;
            let last = i == n - 1;
            self.pending.push_back(Seg {
                op: kind.op(first, last),
                reth: if first { reth } else { None },
                payload: chunk.to_vec(),
                msg_end: last,
            });
        }
    }

    /// True when every posted message has been sent *and* acknowledged.
    pub fn tx_idle(&self) -> bool {
        self.pending.is_empty() && self.in_flight.is_empty()
    }

    /// True when retries were exhausted and the QP is in the error state.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Current retransmission timeout with exponential back-off applied.
    fn current_rto(&self) -> SimTime {
        let shifted = self
            .cfg
            .rto
            .checked_shl(self.backoff_exp)
            .unwrap_or(SimTime::MAX);
        shifted.min(self.cfg.rto_max)
    }

    /// Next packet to put on the wire, if the window, RNR back-off and
    /// error state allow one. Retransmissions are served before new
    /// admissions. Arms the retransmission timer.
    ///
    /// Returns a borrow of the window entry — posted payloads move into
    /// the in-flight window and are never cloned, so the steady-state
    /// send path performs no allocation here.
    pub fn poll_tx(&mut self, now: SimTime) -> Option<&TxItem> {
        if self.dead {
            return None;
        }
        if let Some(until) = self.rnr_until {
            if now < until {
                return None;
            }
            self.rnr_until = None;
        }
        let retx = match self.cfg.retransmit {
            RetransmitMode::GoBackN if self.resend_cursor < self.in_flight.len() => {
                let idx = self.resend_cursor;
                self.resend_cursor += 1;
                Some(idx)
            }
            RetransmitMode::SelectiveRepeat => {
                self.in_flight.iter().position(|item| item.retx_queued)
            }
            RetransmitMode::GoBackN => None,
        };
        let idx = match retx {
            Some(idx) => {
                let item = &mut self.in_flight[idx];
                item.retransmit = true;
                item.retx_queued = false;
                self.retransmits += 1;
                idx
            }
            None if (self.in_flight.len() as u32) < self.cfg.window && !self.pending.is_empty() => {
                let seg = self.pending.pop_front().unwrap();
                self.in_flight.push_back(TxItem {
                    psn: self.next_psn,
                    op: seg.op,
                    reth: seg.reth,
                    payload: seg.payload,
                    msg_end: seg.msg_end,
                    retransmit: false,
                    retx_queued: false,
                });
                self.next_psn = psn_add(self.next_psn, 1);
                self.resend_cursor = self.in_flight.len();
                self.in_flight.len() - 1
            }
            None => return None,
        };
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.current_rto());
        }
        Some(&self.in_flight[idx])
    }

    /// Cumulative ACK: everything through `psn` is received. Releases the
    /// window, resets back-off on progress, re-arms or clears the timer.
    pub fn on_ack(&mut self, now: SimTime, psn: u32) {
        let mut released = 0usize;
        while let Some(front) = self.in_flight.front() {
            if psn_ahead(front.psn, psn) {
                break; // front is newer than the ACK: still outstanding
            }
            self.in_flight.pop_front();
            released += 1;
        }
        if released == 0 {
            return; // stale or duplicate ACK: no state change
        }
        self.resend_cursor = self.resend_cursor.saturating_sub(released);
        self.backoff_exp = 0;
        self.retries = 0;
        self.rnr_until = None;
        self.rto_deadline = if self.in_flight.is_empty() {
            None
        } else {
            Some(now + self.current_rto())
        };
    }

    /// NAK(PSN sequence error) asking to resume from `psn`: everything
    /// before it is implicitly acknowledged, then go-back-N rewinds to it
    /// — or, under selective repeat, only `psn` itself is queued for
    /// retransmission (the receiver is buffering everything past the gap).
    pub fn on_nak(&mut self, now: SimTime, psn: u32) {
        self.on_ack(now, psn_sub(psn, 1));
        self.queue_retx_from(psn);
        if !self.in_flight.is_empty() {
            self.rto_deadline = Some(now + self.current_rto());
        }
    }

    /// RNR NAK: receiver wants `psn` again but not before `delay` elapses.
    pub fn on_rnr(&mut self, now: SimTime, psn: u32, delay: SimTime) {
        self.on_ack(now, psn_sub(psn, 1));
        self.queue_retx_from(psn);
        self.rnr_until = Some(now + delay);
        if !self.in_flight.is_empty() {
            self.rto_deadline = Some(now + self.current_rto());
        }
    }

    /// Mode-dependent reaction to "the receiver wants `psn` again".
    fn queue_retx_from(&mut self, psn: u32) {
        match self.cfg.retransmit {
            RetransmitMode::GoBackN => self.resend_cursor = 0,
            RetransmitMode::SelectiveRepeat => {
                if let Some(item) = self.in_flight.iter_mut().find(|item| item.psn == psn) {
                    item.retx_queued = true;
                }
            }
        }
    }

    /// Retransmission-timer check. On expiry: count a retry, double the
    /// back-off, queue retransmission (rewind under go-back-N; everything
    /// outstanding under selective repeat, since a timeout says nothing
    /// about *which* packet was lost) — or declare the QP dead once
    /// `max_retries` consecutive timeouts pass without progress.
    pub fn on_timeout(&mut self, now: SimTime) -> TimeoutAction {
        if self.dead || self.in_flight.is_empty() {
            return TimeoutAction::None;
        }
        match self.rto_deadline {
            Some(deadline) if now >= deadline => {}
            _ => return TimeoutAction::None,
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.dead = true;
            self.rto_deadline = None;
            return TimeoutAction::Failed;
        }
        // Cap the exponent: current_rto saturates at rto_max anyway.
        self.backoff_exp = (self.backoff_exp + 1).min(32);
        match self.cfg.retransmit {
            RetransmitMode::GoBackN => self.resend_cursor = 0,
            RetransmitMode::SelectiveRepeat => {
                for item in &mut self.in_flight {
                    item.retx_queued = true;
                }
            }
        }
        self.rto_deadline = Some(now + self.current_rto());
        TimeoutAction::Rewind
    }

    /// Earliest instant the sender half needs waking (RTO or RNR expiry).
    pub fn tx_deadline(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.rnr_until) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // ------------------------------------------------------------------
    // Receiver half
    // ------------------------------------------------------------------

    /// Where `psn` sits relative to the expected PSN.
    pub fn rx_classify(&self, psn: u32) -> RxClass {
        if psn == self.expected_psn {
            RxClass::InOrder
        } else if psn_ahead(psn, self.expected_psn) {
            RxClass::Ahead
        } else {
            RxClass::Behind
        }
    }

    /// The PSN the receiver expects next.
    pub fn expected_psn(&self) -> u32 {
        self.expected_psn
    }

    /// Messages fully received in order so far (the AETH MSN).
    pub fn msn(&self) -> u32 {
        self.msn
    }

    /// True while the receive buffer can take another message.
    pub fn rx_has_budget(&self) -> bool {
        self.rx_in_use < self.cfg.rx_capacity
    }

    /// Reserve one receive-buffer slot (the endpoint pairs this with a
    /// delivered message).
    pub fn rx_reserve(&mut self) {
        self.rx_in_use += 1;
    }

    /// Release a receive-buffer slot once the application drains a message.
    pub fn rx_release(&mut self) {
        self.rx_in_use = self.rx_in_use.saturating_sub(1);
    }

    /// The cumulative ACK for everything received so far.
    fn cumulative_ack(&self) -> RxReply {
        RxReply::Ack {
            psn: psn_sub(self.expected_psn, 1),
            msn: self.msn,
        }
    }

    /// In-order packet accepted: advance the expectation — and, when the
    /// packet completes a message (`msg_end`), the MSN — then coalesce
    /// the ACK: every `ack_coalesce`-th packet acknowledges immediately,
    /// a straggler is acknowledged after `ack_delay` via
    /// [`RcQp::poll_ack`].
    pub fn rx_accept(&mut self, now: SimTime, msg_end: bool) -> Option<RxReply> {
        self.expected_psn = psn_add(self.expected_psn, 1);
        if msg_end {
            self.msn = psn_add(self.msn, 1);
        }
        self.nak_outstanding = false;
        self.since_ack += 1;
        if self.since_ack >= self.cfg.ack_coalesce {
            self.since_ack = 0;
            self.ack_deadline = None;
            Some(self.cumulative_ack())
        } else {
            self.ack_deadline = Some(now + self.cfg.ack_delay);
            None
        }
    }

    /// A duplicate (behind-expected) packet: re-ACK immediately so a
    /// sender whose ACK was lost stops retransmitting. Cumulative ACKs
    /// are idempotent, so this is always safe.
    pub fn rx_duplicate(&mut self) -> RxReply {
        self.cumulative_ack()
    }

    /// A gap (ahead-of-expected packet): emit one NAK per gap asking for
    /// the expected PSN; further ahead packets stay silent until the gap
    /// heals, so one loss burst draws one recovery round, not one per
    /// packet.
    pub fn rx_gap(&mut self) -> Option<RxReply> {
        if self.nak_outstanding {
            return None;
        }
        self.nak_outstanding = true;
        Some(RxReply::Nak {
            psn: self.expected_psn,
            msn: self.msn,
        })
    }

    /// Receive buffer full: ask the sender to back off and retry the
    /// expected PSN.
    pub fn rx_not_ready(&self) -> RxReply {
        RxReply::Rnr {
            psn: self.expected_psn,
            msn: self.msn,
        }
    }

    /// Fire the delayed-ACK timer: flush a coalesced straggler ACK.
    pub fn poll_ack(&mut self, now: SimTime) -> Option<RxReply> {
        match self.ack_deadline {
            Some(deadline) if now >= deadline && self.since_ack > 0 => {
                self.since_ack = 0;
                self.ack_deadline = None;
                Some(self.cumulative_ack())
            }
            _ => None,
        }
    }

    /// Earliest instant the receiver half needs waking (delayed ACK).
    pub fn rx_deadline(&self) -> Option<SimTime> {
        self.ack_deadline
    }

    /// Earliest instant either half needs waking.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.tx_deadline(), self.rx_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::time::US;

    fn qp(window: u32) -> RcQp {
        RcQp::new(RcConfig {
            window,
            ack_coalesce: 1,
            ..RcConfig::default()
        })
    }

    fn sr_qp(window: u32) -> RcQp {
        RcQp::new(RcConfig {
            window,
            ack_coalesce: 1,
            retransmit: RetransmitMode::SelectiveRepeat,
            ..RcConfig::default()
        })
    }

    #[test]
    fn psn_arithmetic_wraps() {
        assert_eq!(psn_add(PSN_MASK, 1), 0);
        assert_eq!(psn_sub(0, PSN_MASK), 1);
        assert!(psn_ahead(2, PSN_MASK));
        assert!(!psn_ahead(PSN_MASK, 2));
        assert!(!psn_ahead(5, 5));
    }

    #[test]
    fn window_bounds_in_flight() {
        let mut q = qp(4);
        for i in 0..10u8 {
            q.post(vec![i]);
        }
        let mut sent = Vec::new();
        while let Some(item) = q.poll_tx(0) {
            assert!(!item.retransmit);
            sent.push(item.psn);
        }
        assert_eq!(sent, vec![0, 1, 2, 3], "window caps the burst");
        // Cumulative ACK of PSN 1 opens two slots.
        q.on_ack(10, 1);
        assert_eq!(q.poll_tx(10).unwrap().psn, 4);
        assert_eq!(q.poll_tx(10).unwrap().psn, 5);
        assert!(q.poll_tx(10).is_none());
    }

    #[test]
    fn timeout_rewinds_with_original_psns_and_backs_off() {
        let mut q = qp(3);
        for i in 0..3u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        let rto = q.current_rto();
        assert_eq!(q.on_timeout(rto - 1), TimeoutAction::None);
        assert_eq!(q.on_timeout(rto), TimeoutAction::Rewind);
        // Retransmits carry the original PSNs, in order.
        let r0 = q.poll_tx(rto).unwrap().clone();
        let r1 = q.poll_tx(rto).unwrap().clone();
        assert!(r0.retransmit && r1.retransmit);
        assert_eq!((r0.psn, r1.psn), (0, 1));
        assert_eq!(q.retransmits, 2);
        // Back-off doubled the deadline.
        assert!(q.current_rto() >= 2 * RcConfig::default().rto);
        // Progress resets back-off.
        q.on_ack(rto + 1, 2);
        assert!(q.tx_idle());
        assert_eq!(q.current_rto(), RcConfig::default().rto);
    }

    #[test]
    fn retries_exhaust_to_dead_state() {
        let mut q = RcQp::new(RcConfig {
            max_retries: 2,
            ..RcConfig::default()
        });
        q.post(vec![1]);
        let mut now = 0;
        q.poll_tx(now);
        let mut failed = false;
        for _ in 0..4 {
            now = q.tx_deadline().unwrap();
            match q.on_timeout(now) {
                TimeoutAction::Failed => {
                    failed = true;
                    break;
                }
                TimeoutAction::Rewind => {
                    q.poll_tx(now);
                }
                TimeoutAction::None => unreachable!("deadline reached"),
            }
        }
        assert!(failed, "third consecutive timeout kills the QP");
        assert!(q.is_dead());
        assert!(q.poll_tx(now).is_none(), "dead QP transmits nothing");
    }

    #[test]
    fn nak_triggers_go_back_n_from_requested_psn() {
        let mut q = qp(5);
        for i in 0..5u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        // Receiver got 0,1 then a gap: NAK asks for 2.
        q.on_nak(10, 2);
        let next = q.poll_tx(10).unwrap();
        assert_eq!(next.psn, 2);
        assert!(next.retransmit);
        assert_eq!(q.poll_tx(10).unwrap().psn, 3);
    }

    #[test]
    fn selective_repeat_nak_resends_only_missing_psn() {
        let mut q = sr_qp(5);
        for i in 0..5u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        // Receiver got 0,1 then a gap: NAK asks for 2. Under SR only
        // PSN 2 goes back on the wire; 3 and 4 stay buffered remotely.
        q.on_nak(10, 2);
        let next = q.poll_tx(10).unwrap();
        assert_eq!(next.psn, 2);
        assert!(next.retransmit);
        assert!(q.poll_tx(10).is_none(), "3 and 4 are not resent");
        assert_eq!(q.retransmits, 1);
        // The cumulative ACK after the gap heals releases everything.
        q.on_ack(20, 4);
        assert!(q.tx_idle());
    }

    #[test]
    fn selective_repeat_timeout_requeues_everything() {
        let mut q = sr_qp(3);
        for i in 0..3u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        let rto = q.current_rto();
        assert_eq!(q.on_timeout(rto), TimeoutAction::Rewind);
        let psns: Vec<u32> = std::iter::from_fn(|| q.poll_tx(rto).map(|t| t.psn)).collect();
        assert_eq!(psns, vec![0, 1, 2], "timeout blinds SR: resend all");
        assert_eq!(q.retransmits, 3);
    }

    #[test]
    fn segmentation_shares_one_msn() {
        let mtu = RcConfig::default().mtu;
        let mut q = qp(8);
        // 2.5 MTUs -> First, Middle, Last.
        q.post(vec![7u8; mtu * 2 + mtu / 2]);
        let items: Vec<TxItem> = std::iter::from_fn(|| q.poll_tx(0).cloned()).collect();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].op, Operation::SendFirst);
        assert_eq!(items[1].op, Operation::SendMiddle);
        assert_eq!(items[2].op, Operation::SendLast);
        assert!(!items[0].msg_end && !items[1].msg_end && items[2].msg_end);
        assert_eq!(items[0].payload.len(), mtu);
        assert_eq!(items[2].payload.len(), mtu / 2);
        // Receiver: MSN advances once, on the Last segment.
        let mut r = qp(8);
        r.rx_accept(0, items[0].msg_end);
        r.rx_accept(0, items[1].msg_end);
        assert_eq!(r.msn(), 0, "mid-message: MSN unchanged");
        assert_eq!(
            r.rx_accept(0, items[2].msg_end),
            Some(RxReply::Ack { psn: 2, msn: 1 })
        );
    }

    #[test]
    fn write_segments_carry_reth_on_first_only() {
        let mtu = RcConfig::default().mtu;
        let mut q = qp(8);
        let rkey = RKey(0xDEAD_BEEF);
        q.post_write(0x1000, rkey, vec![1u8; mtu * 2]);
        let items: Vec<TxItem> = std::iter::from_fn(|| q.poll_tx(0).cloned()).collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].op, Operation::RdmaWriteFirst);
        assert_eq!(items[1].op, Operation::RdmaWriteLast);
        let reth = items[0].reth.expect("First segment carries the RETH");
        assert_eq!(reth.virt_addr, 0x1000);
        assert_eq!(reth.rkey, rkey);
        assert_eq!(reth.dma_len, (mtu * 2) as u32);
        assert!(items[1].reth.is_none(), "Middle/Last carry no RETH");
        // A short write is a RETH-carrying Only.
        q.post_write(0x2000, rkey, vec![2u8; 10]);
        let only = q.poll_tx(0).unwrap();
        assert_eq!(only.op, Operation::RdmaWriteOnly);
        assert!(only.reth.is_some());
    }

    #[test]
    fn read_request_and_response_shapes() {
        let mtu = RcConfig::default().mtu;
        let mut q = qp(8);
        q.post_read(0x3000, RKey(5), (mtu * 3) as u32);
        let req = q.poll_tx(0).unwrap().clone();
        assert_eq!(req.op, Operation::RdmaReadRequest);
        assert!(req.payload.is_empty());
        assert_eq!(req.reth.unwrap().dma_len, (mtu * 3) as u32);
        assert!(req.msg_end);
        // Responder side: 3 MTUs of response data -> First, Middle, Last
        // (Middle being the opcode this PR adds).
        let mut r = qp(8);
        r.post_read_response(vec![9u8; mtu * 3]);
        let ops: Vec<Operation> = std::iter::from_fn(|| q_next_op(&mut r)).collect();
        assert_eq!(
            ops,
            vec![
                Operation::RdmaReadResponseFirst,
                Operation::RdmaReadResponseMiddle,
                Operation::RdmaReadResponseLast,
            ]
        );
    }

    fn q_next_op(q: &mut RcQp) -> Option<Operation> {
        q.poll_tx(0).map(|t| t.op)
    }

    #[test]
    fn rnr_pauses_transmission() {
        let mut q = qp(2);
        q.post(vec![1]);
        q.post(vec![2]);
        q.poll_tx(0);
        q.on_rnr(5, 0, 50 * US);
        assert!(q.poll_tx(6).is_none(), "paused during RNR back-off");
        let resumed = q.poll_tx(5 + 50 * US).unwrap();
        assert_eq!(resumed.psn, 0);
        assert!(resumed.retransmit);
    }

    #[test]
    fn receiver_classifies_and_coalesces() {
        let mut q = RcQp::new(RcConfig {
            ack_coalesce: 2,
            ..RcConfig::default()
        });
        assert_eq!(q.rx_classify(0), RxClass::InOrder);
        assert_eq!(q.rx_classify(3), RxClass::Ahead);
        assert_eq!(q.rx_classify(PSN_MASK), RxClass::Behind);
        // First in-order packet: coalesced (delayed ACK armed).
        assert_eq!(q.rx_accept(0, true), None);
        assert!(q.rx_deadline().is_some());
        // Second: immediate cumulative ACK of PSN 1.
        assert_eq!(q.rx_accept(1, true), Some(RxReply::Ack { psn: 1, msn: 2 }));
        assert!(q.rx_deadline().is_none());
        // Straggler third: flushed by the timer.
        assert_eq!(q.rx_accept(2, true), None);
        let deadline = q.rx_deadline().unwrap();
        assert_eq!(q.poll_ack(deadline - 1), None);
        assert_eq!(q.poll_ack(deadline), Some(RxReply::Ack { psn: 2, msn: 3 }));
    }

    #[test]
    fn one_nak_per_gap() {
        let mut q = qp(4);
        assert_eq!(q.rx_gap(), Some(RxReply::Nak { psn: 0, msn: 0 }));
        assert_eq!(q.rx_gap(), None, "gap already NAKed");
        // The gap heals (expected packet arrives): NAK state resets.
        q.rx_accept(0, true);
        assert!(q.rx_gap().is_some());
    }

    #[test]
    fn rx_budget_tracks_reservations() {
        let mut q = RcQp::new(RcConfig {
            rx_capacity: 2,
            ..RcConfig::default()
        });
        assert!(q.rx_has_budget());
        q.rx_reserve();
        q.rx_reserve();
        assert!(!q.rx_has_budget());
        assert_eq!(q.rx_not_ready(), RxReply::Rnr { psn: 0, msn: 0 });
        q.rx_release();
        assert!(q.rx_has_budget());
    }

    #[test]
    fn duplicate_reacks_cumulatively() {
        let mut q = qp(4);
        q.rx_accept(0, true);
        q.rx_accept(0, true);
        assert_eq!(q.rx_duplicate(), RxReply::Ack { psn: 1, msn: 2 });
    }

    #[test]
    fn sender_psn_wraps_across_the_ring() {
        let mut q = RcQp::new(RcConfig {
            window: 4,
            ack_coalesce: 1,
            initial_psn: PSN_MASK - 1,
            ..RcConfig::default()
        });
        for i in 0..4u8 {
            q.post(vec![i]);
        }
        let psns: Vec<u32> = std::iter::from_fn(|| q.poll_tx(0).map(|t| t.psn)).collect();
        assert_eq!(psns, vec![PSN_MASK - 1, PSN_MASK, 0, 1]);
        // Cumulative ACK across the wrap releases all four.
        q.on_ack(1, 1);
        assert!(q.tx_idle());
    }
}
