//! The RC queue-pair state machine, both halves.
//!
//! **Sender**: posts become PSN-numbered transmissions inside a bounded
//! in-flight window. Cumulative ACKs release the window; a NAK(PSN
//! sequence error) or a retransmission timeout rewinds the go-back-N
//! cursor to the oldest unacknowledged packet. Timeouts back off
//! exponentially; too many without progress and the QP enters the dead
//! (retry-exhausted) state, IBA's QP error state.
//!
//! **Receiver**: tracks the expected PSN. In-order packets advance it and
//! feed the ACK coalescer; a packet *ahead* of expected signals a gap and
//! draws one NAK per gap; a packet *behind* is a duplicate (lost-ACK
//! retransmit or replay — the transport cannot tell, and [`crate::endpoint`]
//! explains why it does not need to) and draws an immediate re-ACK. When
//! the receive buffer is exhausted the receiver answers RNR NAK instead
//! of silently dropping.
//!
//! Retransmissions reuse the **original PSN** — [`TxItem::psn`] is fixed
//! at first transmission. That single fact is what makes the replay
//! window's delivered-vs-lost distinction (see [`ib_security::channel`])
//! the only sound dedup criterion.

use std::collections::VecDeque;

use ib_sim::SimTime;

use crate::config::RcConfig;

/// PSNs are 24-bit, wrapping.
pub const PSN_MASK: u32 = 0x00FF_FFFF;
/// Half the PSN space: the ahead/behind decision threshold.
pub const PSN_HALF: u32 = 1 << 23;

/// `psn + n` in the 24-bit ring.
pub fn psn_add(psn: u32, n: u32) -> u32 {
    psn.wrapping_add(n) & PSN_MASK
}

/// Forward distance from `from` to `to` in the 24-bit ring.
pub fn psn_sub(to: u32, from: u32) -> u32 {
    to.wrapping_sub(from) & PSN_MASK
}

/// True when `a` is strictly ahead of `b` by less than half the ring
/// (the IBA shortest-distance rule, wrap-safe).
pub fn psn_ahead(a: u32, b: u32) -> bool {
    a != b && psn_sub(a, b) < PSN_HALF
}

/// One transmission the sender half asks the wire layer to carry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxItem {
    /// The packet's PSN — original on retransmit, never renumbered.
    pub psn: u32,
    /// Message payload.
    pub payload: Vec<u8>,
    /// True when this PSN has been on the wire before.
    pub retransmit: bool,
}

/// Where an arriving data PSN sits relative to the receiver's expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxClass {
    /// Exactly the expected PSN: deliverable.
    InOrder,
    /// Older than expected: duplicate of something already received.
    Behind,
    /// Newer than expected: a gap — something in between was lost.
    Ahead,
}

/// Acknowledgment traffic the receiver half wants sent back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RxReply {
    /// Cumulative ACK: everything through `psn` has been received.
    Ack { psn: u32, msn: u32 },
    /// NAK(PSN sequence error): resume from `psn` (the expected PSN).
    Nak { psn: u32, msn: u32 },
    /// Receiver not ready: retry `psn` after the RNR timer.
    Rnr { psn: u32, msn: u32 },
}

/// What a retransmission-timer expiry produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeoutAction {
    /// Deadline not reached or nothing outstanding.
    None,
    /// Go-back-N rewound; the next [`RcQp::poll_tx`] calls retransmit.
    Rewind,
    /// Retries exhausted: the QP is dead (IBA error state).
    Failed,
}

/// Both halves of one RC queue pair.
#[derive(Debug)]
pub struct RcQp {
    cfg: RcConfig,

    // ---- sender half ----
    pending: VecDeque<Vec<u8>>,
    in_flight: VecDeque<TxItem>,
    next_psn: u32,
    /// Index into `in_flight` of the next packet to (re)transmit. Equal to
    /// `in_flight.len()` when everything outstanding is already on the wire.
    resend_cursor: usize,
    rto_deadline: Option<SimTime>,
    backoff_exp: u32,
    retries: u32,
    rnr_until: Option<SimTime>,
    dead: bool,
    /// Total retransmissions performed (fig_replay metric).
    pub retransmits: u64,

    // ---- receiver half ----
    expected_psn: u32,
    /// Messages received in order (the AETH MSN, 24-bit).
    msn: u32,
    since_ack: u32,
    ack_deadline: Option<SimTime>,
    nak_outstanding: bool,
    rx_in_use: usize,
}

impl RcQp {
    /// A fresh QP; both directions start at `cfg.initial_psn`.
    pub fn new(cfg: RcConfig) -> Self {
        assert!(cfg.window >= 1, "send window must hold at least one packet");
        assert!(cfg.ack_coalesce >= 1, "ack_coalesce of 0 would never ACK");
        RcQp {
            pending: VecDeque::new(),
            in_flight: VecDeque::new(),
            next_psn: cfg.initial_psn & PSN_MASK,
            resend_cursor: 0,
            rto_deadline: None,
            backoff_exp: 0,
            retries: 0,
            rnr_until: None,
            dead: false,
            retransmits: 0,
            expected_psn: cfg.initial_psn & PSN_MASK,
            msn: 0,
            since_ack: 0,
            ack_deadline: None,
            nak_outstanding: false,
            rx_in_use: 0,
            cfg,
        }
    }

    /// The configuration this QP runs under.
    pub fn config(&self) -> &RcConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Sender half
    // ------------------------------------------------------------------

    /// Queue a message for transmission.
    pub fn post(&mut self, payload: Vec<u8>) {
        self.pending.push_back(payload);
    }

    /// True when every posted message has been sent *and* acknowledged.
    pub fn tx_idle(&self) -> bool {
        self.pending.is_empty() && self.in_flight.is_empty()
    }

    /// True when retries were exhausted and the QP is in the error state.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Current retransmission timeout with exponential back-off applied.
    fn current_rto(&self) -> SimTime {
        let shifted = self
            .cfg
            .rto
            .checked_shl(self.backoff_exp)
            .unwrap_or(SimTime::MAX);
        shifted.min(self.cfg.rto_max)
    }

    /// Next packet to put on the wire, if the window, RNR back-off and
    /// error state allow one. Arms the retransmission timer.
    ///
    /// Returns a borrow of the window entry — posted payloads move into
    /// the in-flight window and are never cloned, so the steady-state
    /// send path performs no allocation here.
    pub fn poll_tx(&mut self, now: SimTime) -> Option<&TxItem> {
        if self.dead {
            return None;
        }
        if let Some(until) = self.rnr_until {
            if now < until {
                return None;
            }
            self.rnr_until = None;
        }
        let idx = if self.resend_cursor < self.in_flight.len() {
            let idx = self.resend_cursor;
            self.in_flight[idx].retransmit = true;
            self.retransmits += 1;
            self.resend_cursor += 1;
            idx
        } else if (self.in_flight.len() as u32) < self.cfg.window && !self.pending.is_empty() {
            let payload = self.pending.pop_front().unwrap();
            self.in_flight.push_back(TxItem {
                psn: self.next_psn,
                payload,
                retransmit: false,
            });
            self.next_psn = psn_add(self.next_psn, 1);
            self.resend_cursor = self.in_flight.len();
            self.in_flight.len() - 1
        } else {
            return None;
        };
        if self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.current_rto());
        }
        Some(&self.in_flight[idx])
    }

    /// Cumulative ACK: everything through `psn` is received. Releases the
    /// window, resets back-off on progress, re-arms or clears the timer.
    pub fn on_ack(&mut self, now: SimTime, psn: u32) {
        let mut released = 0usize;
        while let Some(front) = self.in_flight.front() {
            if psn_ahead(front.psn, psn) {
                break; // front is newer than the ACK: still outstanding
            }
            self.in_flight.pop_front();
            released += 1;
        }
        if released == 0 {
            return; // stale or duplicate ACK: no state change
        }
        self.resend_cursor = self.resend_cursor.saturating_sub(released);
        self.backoff_exp = 0;
        self.retries = 0;
        self.rnr_until = None;
        self.rto_deadline = if self.in_flight.is_empty() {
            None
        } else {
            Some(now + self.current_rto())
        };
    }

    /// NAK(PSN sequence error) asking to resume from `psn`: everything
    /// before it is implicitly acknowledged, then go-back-N from there.
    pub fn on_nak(&mut self, now: SimTime, psn: u32) {
        self.on_ack(now, psn_sub(psn, 1));
        self.resend_cursor = 0;
        if !self.in_flight.is_empty() {
            self.rto_deadline = Some(now + self.current_rto());
        }
    }

    /// RNR NAK: receiver wants `psn` again but not before `delay` elapses.
    pub fn on_rnr(&mut self, now: SimTime, psn: u32, delay: SimTime) {
        self.on_ack(now, psn_sub(psn, 1));
        self.resend_cursor = 0;
        self.rnr_until = Some(now + delay);
        if !self.in_flight.is_empty() {
            self.rto_deadline = Some(now + self.current_rto());
        }
    }

    /// Retransmission-timer check. On expiry: count a retry, double the
    /// back-off, rewind go-back-N — or declare the QP dead once
    /// `max_retries` consecutive timeouts pass without progress.
    pub fn on_timeout(&mut self, now: SimTime) -> TimeoutAction {
        if self.dead || self.in_flight.is_empty() {
            return TimeoutAction::None;
        }
        match self.rto_deadline {
            Some(deadline) if now >= deadline => {}
            _ => return TimeoutAction::None,
        }
        self.retries += 1;
        if self.retries > self.cfg.max_retries {
            self.dead = true;
            self.rto_deadline = None;
            return TimeoutAction::Failed;
        }
        // Cap the exponent: current_rto saturates at rto_max anyway.
        self.backoff_exp = (self.backoff_exp + 1).min(32);
        self.resend_cursor = 0;
        self.rto_deadline = Some(now + self.current_rto());
        TimeoutAction::Rewind
    }

    /// Earliest instant the sender half needs waking (RTO or RNR expiry).
    pub fn tx_deadline(&self) -> Option<SimTime> {
        match (self.rto_deadline, self.rnr_until) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    // ------------------------------------------------------------------
    // Receiver half
    // ------------------------------------------------------------------

    /// Where `psn` sits relative to the expected PSN.
    pub fn rx_classify(&self, psn: u32) -> RxClass {
        if psn == self.expected_psn {
            RxClass::InOrder
        } else if psn_ahead(psn, self.expected_psn) {
            RxClass::Ahead
        } else {
            RxClass::Behind
        }
    }

    /// The PSN the receiver expects next.
    pub fn expected_psn(&self) -> u32 {
        self.expected_psn
    }

    /// True while the receive buffer can take another message.
    pub fn rx_has_budget(&self) -> bool {
        self.rx_in_use < self.cfg.rx_capacity
    }

    /// Reserve one receive-buffer slot (the endpoint pairs this with a
    /// delivered message).
    pub fn rx_reserve(&mut self) {
        self.rx_in_use += 1;
    }

    /// Release a receive-buffer slot once the application drains a message.
    pub fn rx_release(&mut self) {
        self.rx_in_use = self.rx_in_use.saturating_sub(1);
    }

    /// The cumulative ACK for everything received so far.
    fn cumulative_ack(&self) -> RxReply {
        RxReply::Ack {
            psn: psn_sub(self.expected_psn, 1),
            msn: self.msn,
        }
    }

    /// In-order packet accepted: advance the expectation and coalesce the
    /// ACK — every `ack_coalesce`-th packet acknowledges immediately, a
    /// straggler is acknowledged after `ack_delay` via [`RcQp::poll_ack`].
    pub fn rx_accept(&mut self, now: SimTime) -> Option<RxReply> {
        self.expected_psn = psn_add(self.expected_psn, 1);
        self.msn = psn_add(self.msn, 1);
        self.nak_outstanding = false;
        self.since_ack += 1;
        if self.since_ack >= self.cfg.ack_coalesce {
            self.since_ack = 0;
            self.ack_deadline = None;
            Some(self.cumulative_ack())
        } else {
            self.ack_deadline = Some(now + self.cfg.ack_delay);
            None
        }
    }

    /// A duplicate (behind-expected) packet: re-ACK immediately so a
    /// sender whose ACK was lost stops retransmitting. Cumulative ACKs
    /// are idempotent, so this is always safe.
    pub fn rx_duplicate(&mut self) -> RxReply {
        self.cumulative_ack()
    }

    /// A gap (ahead-of-expected packet): emit one NAK per gap asking for
    /// the expected PSN; further ahead packets stay silent until the gap
    /// heals, so one loss burst draws one go-back-N, not one per packet.
    pub fn rx_gap(&mut self) -> Option<RxReply> {
        if self.nak_outstanding {
            return None;
        }
        self.nak_outstanding = true;
        Some(RxReply::Nak {
            psn: self.expected_psn,
            msn: self.msn,
        })
    }

    /// Receive buffer full: ask the sender to back off and retry the
    /// expected PSN.
    pub fn rx_not_ready(&self) -> RxReply {
        RxReply::Rnr {
            psn: self.expected_psn,
            msn: self.msn,
        }
    }

    /// Fire the delayed-ACK timer: flush a coalesced straggler ACK.
    pub fn poll_ack(&mut self, now: SimTime) -> Option<RxReply> {
        match self.ack_deadline {
            Some(deadline) if now >= deadline && self.since_ack > 0 => {
                self.since_ack = 0;
                self.ack_deadline = None;
                Some(self.cumulative_ack())
            }
            _ => None,
        }
    }

    /// Earliest instant the receiver half needs waking (delayed ACK).
    pub fn rx_deadline(&self) -> Option<SimTime> {
        self.ack_deadline
    }

    /// Earliest instant either half needs waking.
    pub fn next_deadline(&self) -> Option<SimTime> {
        match (self.tx_deadline(), self.rx_deadline()) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_sim::time::US;

    fn qp(window: u32) -> RcQp {
        RcQp::new(RcConfig {
            window,
            ack_coalesce: 1,
            ..RcConfig::default()
        })
    }

    #[test]
    fn psn_arithmetic_wraps() {
        assert_eq!(psn_add(PSN_MASK, 1), 0);
        assert_eq!(psn_sub(0, PSN_MASK), 1);
        assert!(psn_ahead(2, PSN_MASK));
        assert!(!psn_ahead(PSN_MASK, 2));
        assert!(!psn_ahead(5, 5));
    }

    #[test]
    fn window_bounds_in_flight() {
        let mut q = qp(4);
        for i in 0..10u8 {
            q.post(vec![i]);
        }
        let mut sent = Vec::new();
        while let Some(item) = q.poll_tx(0) {
            assert!(!item.retransmit);
            sent.push(item.psn);
        }
        assert_eq!(sent, vec![0, 1, 2, 3], "window caps the burst");
        // Cumulative ACK of PSN 1 opens two slots.
        q.on_ack(10, 1);
        assert_eq!(q.poll_tx(10).unwrap().psn, 4);
        assert_eq!(q.poll_tx(10).unwrap().psn, 5);
        assert!(q.poll_tx(10).is_none());
    }

    #[test]
    fn timeout_rewinds_with_original_psns_and_backs_off() {
        let mut q = qp(3);
        for i in 0..3u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        let rto = q.current_rto();
        assert_eq!(q.on_timeout(rto - 1), TimeoutAction::None);
        assert_eq!(q.on_timeout(rto), TimeoutAction::Rewind);
        // Retransmits carry the original PSNs, in order.
        let r0 = q.poll_tx(rto).unwrap().clone();
        let r1 = q.poll_tx(rto).unwrap().clone();
        assert!(r0.retransmit && r1.retransmit);
        assert_eq!((r0.psn, r1.psn), (0, 1));
        assert_eq!(q.retransmits, 2);
        // Back-off doubled the deadline.
        assert!(q.current_rto() >= 2 * RcConfig::default().rto);
        // Progress resets back-off.
        q.on_ack(rto + 1, 2);
        assert!(q.tx_idle());
        assert_eq!(q.current_rto(), RcConfig::default().rto);
    }

    #[test]
    fn retries_exhaust_to_dead_state() {
        let mut q = RcQp::new(RcConfig {
            max_retries: 2,
            ..RcConfig::default()
        });
        q.post(vec![1]);
        let mut now = 0;
        q.poll_tx(now);
        let mut failed = false;
        for _ in 0..4 {
            now = q.tx_deadline().unwrap();
            match q.on_timeout(now) {
                TimeoutAction::Failed => {
                    failed = true;
                    break;
                }
                TimeoutAction::Rewind => {
                    q.poll_tx(now);
                }
                TimeoutAction::None => unreachable!("deadline reached"),
            }
        }
        assert!(failed, "third consecutive timeout kills the QP");
        assert!(q.is_dead());
        assert!(q.poll_tx(now).is_none(), "dead QP transmits nothing");
    }

    #[test]
    fn nak_triggers_go_back_n_from_requested_psn() {
        let mut q = qp(5);
        for i in 0..5u8 {
            q.post(vec![i]);
        }
        while q.poll_tx(0).is_some() {}
        // Receiver got 0,1 then a gap: NAK asks for 2.
        q.on_nak(10, 2);
        let next = q.poll_tx(10).unwrap();
        assert_eq!(next.psn, 2);
        assert!(next.retransmit);
        assert_eq!(q.poll_tx(10).unwrap().psn, 3);
    }

    #[test]
    fn rnr_pauses_transmission() {
        let mut q = qp(2);
        q.post(vec![1]);
        q.post(vec![2]);
        q.poll_tx(0);
        q.on_rnr(5, 0, 50 * US);
        assert!(q.poll_tx(6).is_none(), "paused during RNR back-off");
        let resumed = q.poll_tx(5 + 50 * US).unwrap();
        assert_eq!(resumed.psn, 0);
        assert!(resumed.retransmit);
    }

    #[test]
    fn receiver_classifies_and_coalesces() {
        let mut q = RcQp::new(RcConfig {
            ack_coalesce: 2,
            ..RcConfig::default()
        });
        assert_eq!(q.rx_classify(0), RxClass::InOrder);
        assert_eq!(q.rx_classify(3), RxClass::Ahead);
        assert_eq!(q.rx_classify(PSN_MASK), RxClass::Behind);
        // First in-order packet: coalesced (delayed ACK armed).
        assert_eq!(q.rx_accept(0), None);
        assert!(q.rx_deadline().is_some());
        // Second: immediate cumulative ACK of PSN 1.
        assert_eq!(q.rx_accept(1), Some(RxReply::Ack { psn: 1, msn: 2 }));
        assert!(q.rx_deadline().is_none());
        // Straggler third: flushed by the timer.
        assert_eq!(q.rx_accept(2), None);
        let deadline = q.rx_deadline().unwrap();
        assert_eq!(q.poll_ack(deadline - 1), None);
        assert_eq!(q.poll_ack(deadline), Some(RxReply::Ack { psn: 2, msn: 3 }));
    }

    #[test]
    fn one_nak_per_gap() {
        let mut q = qp(4);
        assert_eq!(q.rx_gap(), Some(RxReply::Nak { psn: 0, msn: 0 }));
        assert_eq!(q.rx_gap(), None, "gap already NAKed");
        // The gap heals (expected packet arrives): NAK state resets.
        q.rx_accept(0);
        assert!(q.rx_gap().is_some());
    }

    #[test]
    fn rx_budget_tracks_reservations() {
        let mut q = RcQp::new(RcConfig {
            rx_capacity: 2,
            ..RcConfig::default()
        });
        assert!(q.rx_has_budget());
        q.rx_reserve();
        q.rx_reserve();
        assert!(!q.rx_has_budget());
        assert_eq!(q.rx_not_ready(), RxReply::Rnr { psn: 0, msn: 0 });
        q.rx_release();
        assert!(q.rx_has_budget());
    }

    #[test]
    fn duplicate_reacks_cumulatively() {
        let mut q = qp(4);
        q.rx_accept(0);
        q.rx_accept(0);
        assert_eq!(q.rx_duplicate(), RxReply::Ack { psn: 1, msn: 2 });
    }

    #[test]
    fn sender_psn_wraps_across_the_ring() {
        let mut q = RcQp::new(RcConfig {
            window: 4,
            ack_coalesce: 1,
            initial_psn: PSN_MASK - 1,
            ..RcConfig::default()
        });
        for i in 0..4u8 {
            q.post(vec![i]);
        }
        let psns: Vec<u32> = std::iter::from_fn(|| q.poll_tx(0).map(|t| t.psn)).collect();
        assert_eq!(psns, vec![PSN_MASK - 1, PSN_MASK, 0, 1]);
        // Cumulative ACK across the wrap releases all four.
        q.on_ack(1, 1);
        assert!(q.tx_idle());
    }
}
